file(REMOVE_RECURSE
  "CMakeFiles/idde_baselines.dir/allocators.cpp.o"
  "CMakeFiles/idde_baselines.dir/allocators.cpp.o.d"
  "CMakeFiles/idde_baselines.dir/cdp.cpp.o"
  "CMakeFiles/idde_baselines.dir/cdp.cpp.o.d"
  "CMakeFiles/idde_baselines.dir/dup_g.cpp.o"
  "CMakeFiles/idde_baselines.dir/dup_g.cpp.o.d"
  "CMakeFiles/idde_baselines.dir/idde_ip.cpp.o"
  "CMakeFiles/idde_baselines.dir/idde_ip.cpp.o.d"
  "CMakeFiles/idde_baselines.dir/local_placement.cpp.o"
  "CMakeFiles/idde_baselines.dir/local_placement.cpp.o.d"
  "CMakeFiles/idde_baselines.dir/saa.cpp.o"
  "CMakeFiles/idde_baselines.dir/saa.cpp.o.d"
  "libidde_baselines.a"
  "libidde_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
