# Empty compiler generated dependencies file for idde_tool.
# This may be replaced when dependencies are built.
