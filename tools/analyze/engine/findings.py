"""Finding and FileReport: what rules produce and workers return."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    `key` is the stable fingerprint used for baseline matching and
    deduplication: it must survive unrelated edits to the file (so it never
    embeds a line number). `line` is informational only.
    """

    file: str
    line: int
    rule: str
    key: str
    message: str

    def as_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "key": self.key,
            "message": self.message,
        }


@dataclass
class FileReport:
    """Per-file scan result: local findings plus facts for global passes.

    `facts` is a rule-namespaced dict (e.g. facts["lock_edges"]) consumed by
    rules that need the whole project — the lock-order graph is assembled
    from every file's declarations before nesting can be judged.
    """

    rel: str
    findings: list[Finding] = field(default_factory=list)
    facts: dict[str, Any] = field(default_factory=dict)
    suppressed: int = 0
