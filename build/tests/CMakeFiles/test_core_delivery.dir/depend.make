# Empty dependencies file for test_core_delivery.
# This may be replaced when dependencies are built.
