#include "core/strategy_io.hpp"

#include "util/assert.hpp"

namespace idde::core {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json strategy_to_json(const Strategy& strategy) {
  JsonArray allocation;
  for (const ChannelSlot& slot : strategy.allocation) {
    if (!slot.allocated()) {
      allocation.emplace_back(nullptr);
    } else {
      allocation.push_back(Json(JsonObject{
          {"server", Json(slot.server)},
          {"channel", Json(slot.channel)},
      }));
    }
  }
  JsonArray placements;
  for (std::size_t k = 0; k < strategy.delivery.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      placements.push_back(Json(JsonObject{
          {"server", Json(i)},
          {"item", Json(k)},
      }));
    }
  }
  return Json(JsonObject{
      {"format", Json("idde-strategy-v1")},
      {"approach", Json(strategy.approach_name)},
      {"collaborative_delivery", Json(strategy.collaborative_delivery)},
      {"allocation", Json(std::move(allocation))},
      {"placements", Json(std::move(placements))},
  });
}

Strategy strategy_from_json(const model::ProblemInstance& instance,
                            const Json& json) {
  IDDE_ASSERT(json.string_or("format", "") == "idde-strategy-v1",
              "unknown strategy format");
  const auto& allocation_json = json.at("allocation").as_array();
  IDDE_ASSERT(allocation_json.size() == instance.user_count(),
              "allocation size mismatch");

  AllocationProfile allocation(instance.user_count(), kUnallocated);
  for (std::size_t j = 0; j < allocation_json.size(); ++j) {
    const Json& slot = allocation_json[j];
    if (slot.is_null()) continue;
    allocation[j] = ChannelSlot{
        static_cast<std::size_t>(slot.at("server").as_int()),
        static_cast<std::size_t>(slot.at("channel").as_int()),
    };
  }

  DeliveryProfile delivery(instance);
  for (const Json& placement : json.at("placements").as_array()) {
    delivery.place(static_cast<std::size_t>(placement.at("server").as_int()),
                   static_cast<std::size_t>(placement.at("item").as_int()));
  }

  Strategy strategy{std::move(allocation), std::move(delivery)};
  strategy.approach_name = json.string_or("approach", "");
  strategy.collaborative_delivery =
      json.bool_or("collaborative_delivery", true);
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

std::string strategy_to_string(const Strategy& strategy, int indent) {
  return strategy_to_json(strategy).dump(indent);
}

Strategy strategy_from_string(const model::ProblemInstance& instance,
                              const std::string& text) {
  return strategy_from_json(instance, Json::parse(text));
}

}  // namespace idde::core
