file(REMOVE_RECURSE
  "libidde_core.a"
)
