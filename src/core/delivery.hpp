// DeliveryEvaluator: incremental evaluation of total delivery latency under
// a fixed user allocation. It is the work-horse of Phase 2 — the greedy
// planner asks "how much total latency would placing d_k on v_i remove?"
// thousands of times, so each request caches its current best latency and a
// candidate placement is scored by a single pass over the item's requests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

class DeliveryEvaluator {
 public:
  /// Snapshots the allocation (only the serving server of each user
  /// matters for latency). All requests start at the cloud latency, i.e.
  /// the empty sigma. With `collaborative` false, a replica only helps the
  /// users allocated to its own server (local-or-cloud delivery — the
  /// semantics of the non-collaborative baselines).
  DeliveryEvaluator(const model::ProblemInstance& instance,
                    const AllocationProfile& allocation,
                    bool collaborative = true);

  /// Total latency reduction (seconds) of adding sigma_{i,k}, given all
  /// placements committed so far. Never negative (Eq. 8 takes the min).
  [[nodiscard]] double gain_seconds(std::size_t server,
                                    std::size_t item) const;

  /// Commits sigma_{i,k}: permanently lowers the affected requests'
  /// latencies. Returns the realised gain (== gain_seconds beforehand).
  double commit(std::size_t server, std::size_t item);

  /// Recomputes nothing: running total of sum_{j,k} zeta * L_{j,k}.
  [[nodiscard]] double total_latency_seconds() const noexcept {
    return total_latency_;
  }

  /// L_ave (Eq. 9), seconds.
  [[nodiscard]] double average_latency_seconds() const;

  [[nodiscard]] std::size_t request_count() const noexcept {
    return request_user_.size();
  }

 private:
  const model::ProblemInstance* instance_;
  bool collaborative_;
  /// Serving server per user (ChannelSlot::kNone when unallocated).
  std::vector<std::size_t> serving_server_;
  // Flat request arrays, grouped per item via item_requests_.
  std::vector<std::size_t> request_user_;
  std::vector<std::size_t> request_item_;
  std::vector<double> request_latency_;  ///< current best (Eq. 8)
  std::vector<std::vector<std::size_t>> item_requests_;
  double total_latency_ = 0.0;
};

/// Convenience: evaluates a complete strategy's total latency from scratch.
[[nodiscard]] double total_latency_seconds(
    const model::ProblemInstance& instance, const AllocationProfile& allocation,
    const DeliveryProfile& delivery, bool collaborative = true);

}  // namespace idde::core
