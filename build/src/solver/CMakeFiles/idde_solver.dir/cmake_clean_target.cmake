file(REMOVE_RECURSE
  "libidde_solver.a"
)
