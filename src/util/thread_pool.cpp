#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace idde::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  IDDE_EXPECTS(task != nullptr);
  {
    const MutexLock lock(mutex_);
    IDDE_ASSERT(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  const MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(mutex_);
}

std::size_t ThreadPool::queued() {
  const MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) task_ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_lanes(pool, count,
                     [&body](std::size_t /*lane*/, std::size_t i) { body(i); });
}

void parallel_for_lanes(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  std::exception_ptr first_error;
  Mutex error_mutex;
  std::atomic<std::size_t> next{0};
  // One task per worker, each draining a shared index counter: cheap for
  // both many-tiny and few-large iteration bodies.
  const std::size_t lanes = std::min(pool.size(), count);
  std::size_t lanes_done = 0;
  Mutex done_mutex;
  CondVar done_cv;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&, lane] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        try {
          body(lane, i);
        } catch (...) {
          const MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      // Notify while holding the lock: the waiter owns done_cv/done_mutex
      // on its stack, and the lock guarantees it cannot observe the final
      // count and destroy them before this worker is done touching them.
      const MutexLock lock(done_mutex);
      if (++lanes_done == lanes) done_cv.notify_all();
    });
  }
  {
    const MutexLock lock(done_mutex);
    while (lanes_done != lanes) done_cv.wait(done_mutex);
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace idde::util
