// CDP — Centralized Data Placement, after Liu et al., "Cache placement in
// Fog-RANs: from centralized to distributed algorithms" (TWC'17), adapted
// to the IDDE setting as in Section 4.1 of the paper:
//  - users join their nearest covering server (the strongest-gain rule of
//    the shared communication model; no interference game),
//  - a centralized greedy fills storage by absolute local-hit value
//    (demand * cloud saving), assuming requests are served from the
//    user's own server or the cloud — Fog-RAN has no inter-cache
//    transfers, so the policy duplicates popular items across servers.
// The resulting strategy is still *evaluated* under the full collaborative
// model (Eq. 8), like every other approach.
#pragma once

#include "core/approach.hpp"

namespace idde::baselines {

class Cdp final : public core::Approach {
 public:
  [[nodiscard]] std::string name() const override { return "CDP"; }

  [[nodiscard]] core::Strategy solve(const model::ProblemInstance& instance,
                                     util::Rng& rng) const override;
};

}  // namespace idde::baselines
