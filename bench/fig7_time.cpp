// Figure 7 — computation time (s) of all five approaches across the four
// experiment sets. The paper's bar chart shows IDDE-IP orders of magnitude
// above the heuristics; the ratio (not the absolute seconds) is the
// reproduced quantity, since IDDE-IP is an explicitly time-budgeted solver.
#include <cstdio>
#include <iostream>

#include "sim/paper.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const int reps = util::experiment_reps(3);
  const double ip_budget = util::ip_budget_ms(200.0);
  std::printf(
      "Fig. 7: computation time per approach, averaged over all points of "
      "each set (%d reps/point, IDDE-IP budget %.0f ms)\n\n",
      reps, ip_budget);

  const auto approaches = sim::make_paper_approaches(ip_budget);
  util::TextTable table(
      {"set", "IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G", "unit"});

  for (const sim::PaperSet& set : sim::paper_sets()) {
    sim::SweepOptions options;
    options.repetitions = reps;
    options.on_point = [](const sim::PointResult& point) {
      std::fprintf(stderr, "  done %s\n", point.label.c_str());
    };
    const auto results = sim::run_sweep(set.points, approaches, options);

    // Average solve time per approach across the set's points.
    std::vector<util::RunningStats> stats(approaches.size());
    for (const sim::PointResult& point : results) {
      for (std::size_t a = 0; a < point.cells.size(); ++a) {
        stats[a].add(point.cells[a].solve_ms.mean);
      }
    }
    auto row = table.start_row();
    row.add(set.name);
    for (std::size_t a = 0; a < approaches.size(); ++a) {
      row.add(stats[a].mean(), 3);
    }
    row.add("ms");
  }
  table.print(std::cout);
  std::puts(
      "\nPaper shape: IDDE-IP is 2-3 orders of magnitude slower than the "
      "heuristics; IDDE-G, CDP and DUP-G solve in sub-second time; SAA sits "
      "in between.");
  return 0;
}
