#include "core/greedy_delivery.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::core {

namespace {

/// Telemetry for a finished plan: counters, the post-plan per-request
/// latency distribution (the Eq. 8 resolution the strategy commits to),
/// and per-server storage-budget utilisation. Observation only.
void record_plan_telemetry(const model::ProblemInstance& instance,
                           const DeliveryEvaluator& evaluator,
                           const GreedyDeliveryResult& result) {
  IDDE_OBS_COUNT("delivery.plans_total", 1);
  IDDE_OBS_COUNT("delivery.candidates_scanned_total",
                 result.gain_evaluations);
  IDDE_OBS_COUNT("delivery.placements_total", result.placements);
#if IDDE_OBS
  if (obs::enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    obs::Histogram& latency =
        registry.histogram("delivery.request_latency_ms");
    for (std::size_t id = 0; id < evaluator.request_count(); ++id) {
      latency.record(evaluator.request_latency_seconds(id) * 1e3);
    }
    obs::Histogram& utilization =
        registry.histogram("delivery.budget_utilization");
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      const double capacity = instance.server(i).storage_mb;
      if (capacity <= 0.0) continue;
      utilization.record(1.0 - result.delivery.free_mb(i) / capacity);
    }
  }
#else
  (void)instance;
  (void)evaluator;
#endif
}

constexpr double kMinGain = 1e-12;  // "no feasible improving decision"

}  // namespace

GreedyDeliveryPlanner::GreedyDeliveryPlanner(
    const model::ProblemInstance& instance)
    : instance_(&instance) {}

DeliveryEvaluator& GreedyDeliveryPlanner::evaluator_for(
    const AllocationProfile& allocation) {
  if (evaluator_.has_value()) {
    evaluator_->reset(allocation);
  } else {
    evaluator_.emplace(*instance_, allocation);
  }
  return *evaluator_;
}

GreedyDeliveryResult GreedyDeliveryPlanner::plan(
    const AllocationProfile& allocation) {
  const model::ProblemInstance& instance = *instance_;
  IDDE_OBS_SPAN("delivery.plan");
  GreedyDeliveryResult result{DeliveryProfile(instance), 0, 0};
  DeliveryEvaluator& evaluator = evaluator_for(allocation);

  // The initial fill pushes up to S*K candidates; reserving the member
  // vector once bounds its capacity for every later plan — the loops below
  // run push_heap/pop_heap in place with no per-move allocation (the same
  // sift operations std::priority_queue performs, hence the same pop
  // order and the same plan).
  heap_.clear();
  heap_.reserve(instance.server_count() * instance.data_count());
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    for (std::size_t k = 0; k < instance.data_count(); ++k) {
      if (!result.delivery.can_place(i, k)) continue;
      const double gain = evaluator.gain_seconds(i, k);
      ++result.gain_evaluations;
      if (gain > kMinGain) {
        heap_.push_back(Candidate{gain / instance.data(k).size_mb, i, k});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }

  while (!heap_.empty()) {
    const Candidate top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    // Storage only shrinks, so a now-infeasible candidate never returns.
    if (!result.delivery.can_place(top.server, top.item)) continue;
    const double gain = evaluator.gain_seconds(top.server, top.item);
    ++result.gain_evaluations;
    const double ratio = gain / instance.data(top.item).size_mb;
    if (gain <= kMinGain) continue;  // decayed to nothing, drop
    if (!heap_.empty() && ratio < heap_.front().ratio) {
      // Stale: the refreshed key is no longer the maximum.
      heap_.push_back(Candidate{ratio, top.server, top.item});
      std::push_heap(heap_.begin(), heap_.end());
      continue;
    }
    evaluator.commit(top.server, top.item);
    result.delivery.place(top.server, top.item);
    ++result.placements;
  }
  record_plan_telemetry(instance, evaluator, result);
  return result;
}

GreedyDeliveryResult GreedyDeliveryPlanner::plan_naive(
    const AllocationProfile& allocation) {
  const model::ProblemInstance& instance = *instance_;
  GreedyDeliveryResult result{DeliveryProfile(instance), 0, 0};
  DeliveryEvaluator& evaluator = evaluator_for(allocation);

  for (;;) {
    double best_ratio = 0.0;
    std::size_t best_server = 0;
    std::size_t best_item = 0;
    bool found = false;
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      for (std::size_t k = 0; k < instance.data_count(); ++k) {
        if (!result.delivery.can_place(i, k)) continue;
        const double gain = evaluator.gain_seconds(i, k);
        ++result.gain_evaluations;
        if (gain <= kMinGain) continue;
        const double ratio = gain / instance.data(k).size_mb;
        if (!found || ratio > best_ratio) {
          best_ratio = ratio;
          best_server = i;
          best_item = k;
          found = true;
        }
      }
    }
    if (!found) break;
    evaluator.commit(best_server, best_item);
    result.delivery.place(best_server, best_item);
    ++result.placements;
  }
  return result;
}

}  // namespace idde::core
