// Quickstart: build one IDDE instance, solve it with every approach, and
// print the paper's three metrics. This is the 60-second tour of the
// public API:
//   InstanceParams -> InstanceBuilder -> ProblemInstance
//   Approach::solve -> Strategy -> evaluate()
#include <cstdio>

#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace idde;

  std::size_t servers = 30;
  std::size_t users = 200;
  std::size_t data = 5;
  double density = 1.0;
  std::size_t seed = 42;
  double ip_budget_ms = 200.0;

  util::CliParser cli(
      "quickstart: solve one IDDE instance with all five approaches");
  cli.add_size("servers", &servers, "number of edge servers N");
  cli.add_size("users", &users, "number of users M");
  cli.add_size("data", &data, "number of data items K");
  cli.add_double("density", &density, "edge-network link density");
  cli.add_size("seed", &seed, "instance seed");
  cli.add_double("ip-budget-ms", &ip_budget_ms, "IDDE-IP time budget");
  if (!cli.parse(argc, argv)) return 0;

  model::InstanceParams params = sim::paper_default_params();
  params.server_count = servers;
  params.user_count = users;
  params.data_count = data;
  params.density = density;

  std::printf("Building instance: N=%zu M=%zu K=%zu density=%.1f seed=%zu\n",
              servers, users, data, density, seed);
  const model::ProblemInstance instance =
      model::make_instance(params, static_cast<std::uint64_t>(seed));

  util::TextTable table(
      {"approach", "R_avg (MB/s)", "L_avg (ms)", "time (ms)", "allocated",
       "placements"});
  for (const core::ApproachPtr& approach :
       sim::make_paper_approaches(ip_budget_ms)) {
    util::Rng rng(static_cast<std::uint64_t>(seed) ^ 0x5eedULL);
    const sim::RunRecord record =
        sim::run_approach(instance, *approach, rng, /*require_valid=*/true);
    table.start_row()
        .add(record.approach)
        .add(record.metrics.avg_rate_mbps)
        .add(record.metrics.avg_latency_ms)
        .add(record.solve_ms, 3)
        .add(record.metrics.allocated_users)
        .add(record.metrics.placements);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
