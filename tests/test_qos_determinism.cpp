// Overload determinism contract (ISSUE PR 5, satellite c): the QoS engine
// — open-loop arrivals, admission queues, shedding, retry budget,
// breakers, composed with a fault plan — must yield bit-identical
// FlowSimReports regardless of solver thread count and across repeated
// runs. The engine is single-threaded and seed-pure; this test (run under
// TSan in CI) pins that contract for every shedding policy.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/idde_g.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance_builder.hpp"
#include "qos/arrivals.hpp"
#include "sim/overload.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

core::Strategy solve_with_threads(const model::ProblemInstance& inst,
                                  std::size_t threads, std::uint64_t seed) {
  core::IddeGOptions options;
  options.game.threads = threads;
  util::Rng rng(seed);
  return core::IddeG(options).solve(inst, rng);
}

constexpr qos::SheddingPolicy kPolicies[] = {
    qos::SheddingPolicy::kNone,
    qos::SheddingPolicy::kRejectNewest,
    qos::SheddingPolicy::kDeadlineAware,
};

void expect_bit_identical(const des::FlowSimResult& a,
                          const des::FlowSimResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].user, b.flows[f].user);
    EXPECT_EQ(a.flows[f].item, b.flows[f].item);
    EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s);
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
    EXPECT_EQ(a.flows[f].outcome, b.flows[f].outcome);
    EXPECT_EQ(a.flows[f].queue_wait_s, b.flows[f].queue_wait_s);
    EXPECT_EQ(a.flows[f].deadline_missed, b.flows[f].deadline_missed);
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries);
    EXPECT_EQ(a.flows[f].forced_cloud, b.flows[f].forced_cloud);
    EXPECT_EQ(a.flows[f].tier, b.flows[f].tier);
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
  EXPECT_EQ(a.p95_duration_ms, b.p95_duration_ms);
  EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
  EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.retry_count, b.retry_count);
  EXPECT_EQ(a.forced_cloud_fetches, b.forced_cloud_fetches);
  EXPECT_EQ(a.tier_counts, b.tier_counts);
  EXPECT_EQ(a.qos.offered, b.qos.offered);
  EXPECT_EQ(a.qos.admitted, b.qos.admitted);
  EXPECT_EQ(a.qos.shed, b.qos.shed);
  EXPECT_EQ(a.qos.rejected, b.qos.rejected);
  EXPECT_EQ(a.qos.deadline_misses, b.qos.deadline_misses);
  EXPECT_EQ(a.qos.goodput_flows, b.qos.goodput_flows);
  EXPECT_EQ(a.qos.goodput_rps, b.qos.goodput_rps);
  EXPECT_EQ(a.qos.retries_denied, b.qos.retries_denied);
  EXPECT_EQ(a.qos.breaker_opens, b.qos.breaker_opens);
  EXPECT_EQ(a.qos.mean_queue_wait_ms, b.qos.mean_queue_wait_ms);
  EXPECT_EQ(a.qos.tier_p50_ms, b.qos.tier_p50_ms);
  EXPECT_EQ(a.qos.tier_p99_ms, b.qos.tier_p99_ms);
}

TEST(QosDeterminism, ArrivalScheduleIsBitIdenticalForSameSeed) {
  const auto inst = model::make_instance(small_params(), 5);
  qos::ArrivalConfig config;
  config.process = qos::ArrivalProcess::kFlashCrowd;
  config.load_multiplier = 4.0;
  config.window_s = 10.0;
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  const auto a = qos::generate_arrivals(inst, config, rng_a);
  const auto b = qos::generate_arrivals(inst, config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].time_s, b[i].time_s);
  }
  util::Rng rng_c(100);
  const auto c = qos::generate_arrivals(inst, config, rng_c);
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].time_s != c[i].time_s;
  }
  EXPECT_TRUE(any_diff);  // the schedule does depend on the seed
}

// The full pipeline — solve, draw a chaos plan, run the overload-aware
// replay — must be bit-identical between a 1-thread and a hardware-thread
// solve, for every shedding policy.
TEST(QosDeterminism, PipelineIdenticalAcrossSolverThreadCounts) {
  for (std::uint64_t seed = 40; seed <= 41; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto serial = solve_with_threads(inst, 1, seed);
    const auto parallel = solve_with_threads(inst, 0, seed);  // hw threads

    for (const auto policy : kPolicies) {
      sim::OverloadCell cell;
      cell.qos = sim::chaos_qos_config(6.0, policy, 0.1);
      cell.fault = sim::chaos_fault_profile();
      cell.seed = seed;
      const auto a = sim::run_overload_cell(inst, serial, cell);
      const auto b = sim::run_overload_cell(inst, parallel, cell);
      expect_bit_identical(a, b);
    }
  }
}

TEST(QosDeterminism, RepeatedRunsAreBitIdentical) {
  const auto inst = model::make_instance(small_params(), 50);
  const auto strategy = solve_with_threads(inst, 0, 50);
  for (const auto policy : kPolicies) {
    sim::OverloadCell cell;
    cell.qos = sim::chaos_qos_config(8.0, policy, 0.0);
    cell.qos.arrivals.process = qos::ArrivalProcess::kFlashCrowd;
    cell.fault = sim::chaos_fault_profile();
    cell.seed = 50;
    const auto a = sim::run_overload_cell(inst, strategy, cell);
    const auto b = sim::run_overload_cell(inst, strategy, cell);
    expect_bit_identical(a, b);
    EXPECT_EQ(a.qos.admitted + a.qos.shed + a.qos.rejected, a.qos.offered);
  }
}

TEST(QosDeterminism, DifferentSeedsDiverge) {
  const auto inst = model::make_instance(small_params(), 60);
  const auto strategy = solve_with_threads(inst, 0, 60);
  sim::OverloadCell cell;
  cell.qos = sim::overload_qos_config(6.0, qos::SheddingPolicy::kDeadlineAware,
                                      0.1);
  cell.seed = 60;
  const auto a = sim::run_overload_cell(inst, strategy, cell);
  cell.seed = 61;
  const auto b = sim::run_overload_cell(inst, strategy, cell);
  EXPECT_TRUE(a.qos.offered != b.qos.offered ||
              a.makespan_s != b.makespan_s ||
              a.mean_duration_ms != b.mean_duration_ms);
}

}  // namespace
