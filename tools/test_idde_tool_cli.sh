#!/usr/bin/env bash
# CLI contract test for idde_tool (ISSUE PR 5, satellite b).
#
# Every failure path must produce exactly one structured
# "idde_tool: error: ..." line on stderr and a nonzero exit — never an
# abort, a raw assert message, or a backtrace. Usage:
#
#   test_idde_tool_cli.sh /path/to/idde_tool
set -u

TOOL=${1:?usage: test_idde_tool_cli.sh /path/to/idde_tool}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# run <expected_exit> <args...> — captures stderr for the error checks.
run() {
  local expected=$1
  shift
  "$TOOL" "$@" >"$WORK/stdout" 2>"$WORK/stderr"
  local actual=$?
  if [ "$actual" -ne "$expected" ]; then
    echo "FAIL: '$TOOL $*' exited $actual, want $expected" >&2
    cat "$WORK/stderr" >&2
    FAILURES=$((FAILURES + 1))
    return 1
  fi
  # 134 = SIGABRT, 139 = SIGSEGV: any signal death is an automatic fail
  # (caught above by the exit-code mismatch, spelled out here for clarity).
  return 0
}

expect_error_line() {
  if ! grep -q '^idde_tool: error: ' "$WORK/stderr"; then
    echo "FAIL: expected a structured 'idde_tool: error:' line, got:" >&2
    cat "$WORK/stderr" >&2
    FAILURES=$((FAILURES + 1))
  fi
  if [ "$(wc -l <"$WORK/stderr")" -ne 1 ]; then
    echo "FAIL: expected exactly one stderr line, got:" >&2
    cat "$WORK/stderr" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

# --- failure paths ---------------------------------------------------------

run 1 # no arguments: usage + exit 1

run 2 frobnicate && expect_error_line

run 1 eval --instance "$WORK/does-not-exist.json" && expect_error_line

printf 'this is not json{' >"$WORK/garbage.json"
run 1 eval --instance "$WORK/garbage.json" && expect_error_line
grep -q 'invalid JSON at byte' "$WORK/stderr" || {
  echo "FAIL: parse failure should report a byte offset" >&2
  FAILURES=$((FAILURES + 1))
}

printf '{"format":"idde-instance-v1","servers":[],"users":[],"data":[],"requests":[[0]],"edges":[],"cloud_speed_mbps":1,"radio":{"channels_per_server":1,"noise_watts":0,"bandwidth_mbps":[],"gain":[]}}' \
  >"$WORK/bad-shape.json"
run 1 eval --instance "$WORK/bad-shape.json" && expect_error_line

run 1 replay --instance "$WORK/garbage.json" && expect_error_line

# --- happy path ------------------------------------------------------------

cd "$WORK" || exit 1
run 0 gen --out "$WORK/instance.json" --seed 3 || true
run 0 solve --instance "$WORK/instance.json" --approach IDDE-G \
  --out "$WORK/strategy.json" --seed 3 || true
run 0 eval --instance "$WORK/instance.json" --strategy "$WORK/strategy.json" \
  || true
run 0 replay --instance "$WORK/instance.json" \
  --strategy "$WORK/strategy.json" --load 4 --policy deadline-aware \
  --chaos --seed 3 --out "$WORK/report.json" || true
[ -s "$WORK/report.json" ] || {
  echo "FAIL: replay did not write report.json" >&2
  FAILURES=$((FAILURES + 1))
}
grep -q '"goodput_flows"' "$WORK/report.json" || {
  echo "FAIL: report.json is missing SLO stats" >&2
  FAILURES=$((FAILURES + 1))
}

# A bad policy name through the same top-level handler.
run 1 replay --instance "$WORK/instance.json" \
  --strategy "$WORK/strategy.json" --policy drop-everything \
  && expect_error_line

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI contract check(s) failed" >&2
  exit 1
fi
echo "idde_tool CLI contract: all checks passed"
