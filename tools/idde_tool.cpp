// idde_tool — command-line front end tying the serialisation layers
// together. Subcommands:
//
//   gen    --scenario <params.json> --seed S --out instance.json
//          Materialise an instance from generator parameters.
//   solve  --instance instance.json --approach IDDE-G --out strategy.json
//          Solve a stored instance and print the metrics.
//   eval   --instance instance.json --strategy strategy.json
//          Re-evaluate a stored strategy (e.g. after editing it by hand).
//   replay --instance instance.json --strategy strategy.json [--qos cfg.json]
//          [--chaos] [--load X] [--policy P] [--out report.json]
//          Replay through the overload-aware DES (DESIGN.md §12) and print
//          the SLO accounting; --chaos composes a fault plan on top.
//   serve  --ticks N --seed S [--restore snap.json] [--checkpoint snap.json]
//          Run the self-healing online controller (DESIGN.md §15): churn +
//          mobility + server faults with event-driven equilibrium repair.
//          --checkpoint writes a checksummed snapshot at the end;
//          --restore resumes one bit-identically.
//
// Run without arguments for usage. Every failure — unreadable file,
// malformed JSON, bad flag value — exits nonzero with a single structured
// "idde_tool: error: ..." line on stderr; the tool never aborts or dumps a
// backtrace on untrusted input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <iostream>

#include "core/metrics.hpp"
#include "serve/checkpoint.hpp"
#include "serve/controller.hpp"
#include "core/strategy_io.hpp"
#include "core/validation.hpp"
#include "model/instance_io.hpp"
#include "obs/obs.hpp"
#include "sim/overload.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

using namespace idde;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
}

int cmd_gen(int argc, const char* const* argv) {
  std::string scenario;
  std::string out = "instance.json";
  std::size_t seed = 1;
  util::CliParser cli("idde_tool gen: materialise an instance");
  cli.add_string("scenario", &scenario,
                 "generator params JSON (empty = paper defaults)");
  cli.add_string("out", &out, "output instance path");
  cli.add_size("seed", &seed, "generator seed");
  if (!cli.parse(argc, argv)) return 0;

  model::InstanceParams params = sim::paper_default_params();
  if (!scenario.empty()) {
    params = sim::params_from_string(read_file(scenario));
  }
  const model::ProblemInstance instance =
      model::make_instance(params, static_cast<std::uint64_t>(seed));
  write_file(out, model::instance_to_string(instance, 1));
  std::printf("wrote %s (N=%zu M=%zu K=%zu)\n", out.c_str(),
              instance.server_count(), instance.user_count(),
              instance.data_count());
  return 0;
}

const core::Approach* find_approach(
    const std::vector<core::ApproachPtr>& approaches,
    const std::string& name) {
  for (const auto& approach : approaches) {
    if (approach->name() == name) return approach.get();
  }
  return nullptr;
}

int cmd_solve(int argc, const char* const* argv) {
  std::string instance_path = "instance.json";
  std::string approach_name = "IDDE-G";
  std::string out = "strategy.json";
  std::size_t seed = 1;
  double ip_budget_ms = 200.0;
  std::size_t threads = 1;
  util::CliParser cli("idde_tool solve: solve a stored instance");
  cli.add_string("instance", &instance_path, "instance JSON path");
  cli.add_string("approach", &approach_name,
                 "IDDE-IP | IDDE-G | SAA | CDP | DUP-G");
  cli.add_string("out", &out, "output strategy path");
  cli.add_size("seed", &seed, "solver seed");
  cli.add_double("ip-budget-ms", &ip_budget_ms, "IDDE-IP budget");
  cli.add_size("threads", &threads,
               "allocation-game worker threads (1 = serial, 0 = hardware)");
  std::string trace_out;
  std::string metrics_out;
  cli.add_string("trace-out", &trace_out,
                 "write a chrome://tracing JSON of the solve here");
  cli.add_string("metrics-out", &metrics_out,
                 "write the telemetry scrape (counters/histograms/spans) here");
  if (!cli.parse(argc, argv)) return 0;
  // Either output implies telemetry; --trace-out additionally buffers the
  // span events for the timeline export.
  if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  const model::ProblemInstance instance =
      model::instance_from_string(read_file(instance_path));
  const auto approaches = sim::make_paper_approaches(ip_budget_ms, threads);
  const core::Approach* approach = find_approach(approaches, approach_name);
  if (approach == nullptr) {
    std::fprintf(stderr, "unknown approach '%s'\n", approach_name.c_str());
    return 1;
  }
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const sim::RunRecord record = sim::run_approach(instance, *approach, rng);
  std::printf("%s: R_avg %.2f MB/s, L_avg %.2f ms, %.3f ms solve, %s\n",
              record.approach.c_str(), record.metrics.avg_rate_mbps,
              record.metrics.avg_latency_ms, record.solve_ms,
              record.strategy_valid ? "valid" : "INVALID");
  // Re-solve to materialise the strategy for output (run_approach consumes
  // it internally; determinism makes the two runs identical).
  util::Rng rng2(static_cast<std::uint64_t>(seed));
  write_file(out,
             core::strategy_to_string(approach->solve(instance, rng2), 1));
  std::printf("wrote %s\n", out.c_str());

  if (obs::enabled()) {
    std::printf("\nper-phase rollup:\n");
    obs::Tracer::global().rollup_table().print(std::cout);
  }
  if (!metrics_out.empty()) {
    write_file(metrics_out, obs::telemetry_json().dump(1) + "\n");
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::global().write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
}

int cmd_eval(int argc, const char* const* argv) {
  std::string instance_path = "instance.json";
  std::string strategy_path = "strategy.json";
  util::CliParser cli("idde_tool eval: evaluate a stored strategy");
  cli.add_string("instance", &instance_path, "instance JSON path");
  cli.add_string("strategy", &strategy_path, "strategy JSON path");
  if (!cli.parse(argc, argv)) return 0;

  const model::ProblemInstance instance =
      model::instance_from_string(read_file(instance_path));
  const core::Strategy strategy =
      core::strategy_from_string(instance, read_file(strategy_path));
  const auto problems = core::validate_strategy(instance, strategy);
  for (const std::string& problem : problems) {
    std::fprintf(stderr, "violation: %s\n", problem.c_str());
  }
  const core::StrategyMetrics metrics = core::evaluate(instance, strategy);
  std::printf(
      "%s: R_avg %.2f MB/s, L_avg %.2f ms, %zu/%zu users allocated, %zu "
      "placements, %s\n",
      strategy.approach_name.empty() ? "(unnamed)"
                                     : strategy.approach_name.c_str(),
      metrics.avg_rate_mbps, metrics.avg_latency_ms, metrics.allocated_users,
      instance.user_count(), metrics.placements,
      problems.empty() ? "feasible" : "INFEASIBLE");
  return problems.empty() ? 0 : 1;
}

int cmd_replay(int argc, const char* const* argv) {
  std::string instance_path = "instance.json";
  std::string strategy_path = "strategy.json";
  std::string qos_path;
  std::string out;
  std::size_t seed = 1;
  double load = 1.0;
  double retry_ratio = -1.0;
  std::string policy_name = "deadline-aware";
  bool chaos = false;
  util::CliParser cli("idde_tool replay: overload-aware DES replay");
  cli.add_string("instance", &instance_path, "instance JSON path");
  cli.add_string("strategy", &strategy_path, "strategy JSON path");
  cli.add_string("qos", &qos_path,
                 "QoS config JSON (overrides --load/--policy/--retry-ratio)");
  cli.add_double("load", &load, "offered-load multiplier");
  cli.add_string("policy", &policy_name, "none | reject-newest | deadline-aware");
  cli.add_double("retry-ratio", &retry_ratio,
                 "retry-budget tokens per fresh arrival (<0 = unlimited)");
  cli.add_flag("chaos", &chaos, "compose the chaos fault plan on top");
  cli.add_size("seed", &seed, "arrival/fault seed");
  cli.add_string("out", &out, "write the full report JSON here");
  if (!cli.parse(argc, argv)) return 0;

  const model::ProblemInstance instance =
      model::instance_from_string(read_file(instance_path));
  const core::Strategy strategy =
      core::strategy_from_string(instance, read_file(strategy_path));

  sim::OverloadCell cell;
  cell.seed = static_cast<std::uint64_t>(seed);
  const qos::SheddingPolicy policy =
      qos::shedding_policy_from_string(policy_name);
  cell.qos = chaos ? sim::chaos_qos_config(load, policy, retry_ratio)
                   : sim::overload_qos_config(load, policy, retry_ratio);
  if (!qos_path.empty()) {
    cell.qos = qos::qos_from_json(util::Json::parse(read_file(qos_path)));
  }
  if (chaos) cell.fault = sim::chaos_fault_profile();

  const des::FlowSimResult result =
      sim::run_overload_cell(instance, strategy, cell);
  std::printf(
      "offered %zu (%.1f rps)  admitted %zu  shed %zu  rejected %zu\n"
      "goodput %zu (%.1f rps)  deadline misses %zu  mean queue wait %.2f ms\n"
      "retries %zu (denied %zu)  breaker opens %zu  forced cloud %zu\n",
      result.qos.offered, result.qos.offered_rps, result.qos.admitted,
      result.qos.shed, result.qos.rejected, result.qos.goodput_flows,
      result.qos.goodput_rps, result.qos.deadline_misses,
      result.qos.mean_queue_wait_ms, result.retry_count,
      result.qos.retries_denied, result.qos.breaker_opens,
      result.forced_cloud_fetches);
  if (!out.empty()) {
    util::JsonObject report;
    report["qos_config"] = qos::qos_to_json(cell.qos);
    report["fault_profile"] = sim::fault_profile_to_json(cell.fault);
    report["seed"] = cell.seed;
    report["stats"] = sim::qos_stats_to_json(result.qos);
    report["mean_duration_ms"] = result.mean_duration_ms;
    report["p99_duration_ms"] = result.p99_duration_ms;
    report["makespan_s"] = result.makespan_s;
    write_file(out, util::Json(std::move(report)).dump(1) + "\n");
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  std::size_t ticks = 60;
  std::size_t seed = 1;
  std::size_t servers = 12;
  std::size_t users = 60;
  std::size_t data = 4;
  std::size_t flash_tick = 0;
  std::size_t threads = 1;
  std::string restore_path;
  std::string checkpoint_path;
  std::string report_path;
  util::CliParser cli(
      "idde_tool serve: self-healing online controller (churn + mobility + "
      "faults, event-driven equilibrium repair)");
  cli.add_size("ticks", &ticks, "ticks to run (after restore, if any)");
  cli.add_size("seed", &seed, "trajectory seed");
  cli.add_size("servers", &servers, "edge server count");
  cli.add_size("users", &users, "user count");
  cli.add_size("data", &data, "data item count");
  cli.add_size("flash-tick", &flash_tick,
               "inject a mass failure (40% of servers) at this tick (0 = off)");
  cli.add_size("threads", &threads, "repair solver threads");
  cli.add_string("restore", &restore_path,
                 "resume from this checkpoint (must match config + seed)");
  cli.add_string("checkpoint", &checkpoint_path,
                 "write the final checkpoint here");
  cli.add_string("out", &report_path, "write the status report JSON here");
  if (!cli.parse(argc, argv)) return 0;

  serve::ServeConfig config;
  config.base = sim::paper_default_params();
  config.base.server_count = servers;
  config.base.user_count = users;
  config.base.data_count = data;
  config.churn.arrival_rate_hz = 1.0 / 60.0;
  config.churn.mean_session_s = 120.0;
  config.churn.initial_online_fraction = 0.9;
  // Fixed fault-plan horizon, deliberately independent of --ticks: a split
  // run (checkpoint, then restore with the remaining ticks) must see the
  // exact fault plan of an uninterrupted run, or the trajectories silently
  // diverge. Past the horizon every server stays up.
  config.faults.horizon_s = 3600.0;
  config.faults.server_mtbf_s = 200.0;
  config.faults.server_mttr_s = 10.0;
  config.sigma_refresh_period_ticks = 20;
  config.solver_threads = threads;
  if (flash_tick > 0) {
    config.faults.server_mtbf_s = 0.0;
    config.flash_failure_tick = flash_tick;
    config.flash_failure_fraction = 0.4;
  }

  serve::ServeController controller(config,
                                    static_cast<std::uint64_t>(seed));
  if (!restore_path.empty()) {
    controller.restore(read_file(restore_path));
    std::printf("restored %s at tick %zu\n", restore_path.c_str(),
                controller.current_tick());
  }
  for (std::size_t step = 0; step < ticks; ++step) {
    const serve::TickReport report = controller.tick();
    if (report.events > 0 || report.degraded) {
      std::printf("tick %zu: events=%zu repairs=%zu backlog=%zu shed=%zu%s%s\n",
                  report.tick, report.events, report.repairs, report.backlog,
                  report.shed, report.degraded ? " degraded" : "",
                  report.breaker_open ? " BREAKER-OPEN" : "");
    }
  }
  const serve::ServeStatus& status = controller.status();
  std::printf(
      "serve: %zu ticks, %zu events, %zu repairs (%zu rounds), "
      "%zu degraded tick(s), %zu strike(s), %zu trip(s), backlog %zu\n"
      "trajectory hash %016llx\n",
      status.ticks, status.events_total, status.repairs_total,
      status.repair_rounds_total, status.degraded_ticks,
      status.watchdog_strikes, status.breaker_trips,
      controller.backlog_size(),
      static_cast<unsigned long long>(controller.trajectory_hash()));

  if (!checkpoint_path.empty()) {
    write_file(checkpoint_path, controller.checkpoint(1) + "\n");
    std::printf("wrote %s\n", checkpoint_path.c_str());
  }
  if (!report_path.empty()) {
    util::JsonObject report;
    report["ticks"] = status.ticks;
    report["events_total"] = status.events_total;
    report["repairs_total"] = status.repairs_total;
    report["repair_rounds_total"] = status.repair_rounds_total;
    report["degraded_ticks"] = status.degraded_ticks;
    report["backlog_peak"] = status.backlog_peak;
    report["shed_total"] = status.shed_total;
    report["watchdog_strikes"] = status.watchdog_strikes;
    report["breaker_trips"] = status.breaker_trips;
    report["lkg_restores"] = status.lkg_restores;
    report["recovery_ticks"] = status.recovery_ticks;
    report["backlog"] = controller.backlog_size();
    report["trajectory_hash"] = serve::u64_to_hex(controller.trajectory_hash());
    write_file(report_path, util::Json(std::move(report)).dump(1) + "\n");
    std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::puts(
        "usage: idde_tool <gen|solve|eval|replay|serve> [options]\n"
        "  gen    materialise an instance from generator params\n"
        "  solve  solve a stored instance with one approach\n"
        "  eval   re-evaluate a stored strategy\n"
        "  replay overload-aware DES replay (admission/retry/breakers)\n"
        "  serve  self-healing online controller (checkpoint/restore)\n"
        "run a subcommand with --help for its options");
    return 1;
  }
  const std::string command = argv[1];
  // Top-level handler: every failure is one structured line on stderr and
  // a nonzero exit — malformed input must never abort or print a raw
  // backtrace (tools/test_idde_tool_cli.sh pins this).
  try {
    if (command == "gen") return cmd_gen(argc - 1, argv + 1);
    if (command == "solve") return cmd_solve(argc - 1, argv + 1);
    if (command == "eval") return cmd_eval(argc - 1, argv + 1);
    if (command == "replay") return cmd_replay(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    std::fprintf(stderr, "idde_tool: error: unknown command '%s'\n",
                 command.c_str());
    return 2;
  } catch (const idde::util::JsonError& error) {
    if (error.offset() != idde::util::JsonError::npos) {
      std::fprintf(stderr, "idde_tool: error: %s: invalid JSON at byte %zu: %s\n",
                   command.c_str(), error.offset(), error.what());
    } else {
      std::fprintf(stderr, "idde_tool: error: %s: invalid input: %s\n",
                   command.c_str(), error.what());
    }
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "idde_tool: error: %s: %s\n", command.c_str(),
                 error.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "idde_tool: error: %s: unknown error\n",
                 command.c_str());
    return 1;
  }
}
