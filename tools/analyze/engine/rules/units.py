"""Unit-safety pack: physical quantities must spell their unit.

Eq. 3-8 plumbing moves dBm, watts, Mbps, MB, and milliseconds through raw
`double`s. The type system cannot tell them apart, so the API contract is
carried by names: a public-header function parameter or double-returning
function whose name says it is a physical quantity (power, latency,
bandwidth, ...) must also say its unit (`_watts`, `_ms`, `_mbps`, ...).
A quantity word with a dimensionless marker (`_scale`, `_ratio`, `_prob`,
...) is a pure number and exempt.

Scope: headers under src/ (the public API surface); declarations only —
locals inside inline bodies are matched neither by the parameter pass
(parameter lists are identified by their enclosing parens) nor by the
return pass (paren-depth 0 requirement).
"""

from __future__ import annotations

import re

from ..config import HEADER_SUFFIXES, Config
from ..findings import Finding
from ..source import SourceFile

RULES = {
    "unit-suffix": (
        "raw double/int64 carrying a physical quantity in a public header "
        "must spell its unit in the name (_ms, _watts, _dbm, _hz, _bytes, "
        "_mbps, _m, ...)"),
}

NUMERIC_TYPES = r"(?:double|float|std::int64_t|std::uint64_t|int64_t)"
PARAM = re.compile(
    r"\b" + NUMERIC_TYPES + r"\s+(?P<name>[a-z]\w*)\s*(?=[,)=])")
RETURN_FN = re.compile(
    r"\b" + NUMERIC_TYPES + r"\s+(?P<name>[a-z]\w*)\s*\(")


def classify(name: str, cfg: Config) -> str | None:
    """Returns the offending quantity token, or None when the name passes."""
    tokens = name.lower().split("_")
    if any(token in cfg.unit_tokens for token in tokens):
        return None
    if any(token in cfg.dimensionless_tokens for token in tokens):
        return None
    for token in tokens:
        if token in cfg.quantity_tokens:
            return token
    return None


def paren_intervals(code: str) -> list[tuple[int, int]]:
    """(open, close) offsets of every parenthesised span, innermost-first
    resolvable by containment."""
    stack: list[int] = []
    spans: list[tuple[int, int]] = []
    for pos, ch in enumerate(code):
        if ch == "(":
            stack.append(pos)
        elif ch == ")" and stack:
            spans.append((stack.pop(), pos))
    return spans


def scan(sf: SourceFile, cfg: Config):
    findings: list[Finding] = []
    suppressed = 0
    if (not sf.rel.endswith(HEADER_SUFFIXES)
            or not cfg.in_scope(sf.rel, cfg.unit_scope)):
        return findings, {"suppressed": 0}

    spans = paren_intervals(sf.code)

    def enclosing_open(pos: int) -> int | None:
        best: tuple[int, int] | None = None
        for open_pos, close_pos in spans:
            if open_pos < pos < close_pos:
                if best is None or open_pos > best[0]:
                    best = (open_pos, close_pos)
        return None if best is None else best[0]

    def report(offset: int, kind: str, name: str, token: str) -> None:
        nonlocal suppressed
        line = sf.line_of(offset)
        if sf.allowed(line, "unit-suffix"):
            suppressed += 1
            return
        findings.append(Finding(
            sf.rel, line, "unit-suffix", f"{kind}:{name}",
            f"{kind} `{name}` is a physical quantity (`{token}`) carried by "
            "a raw numeric type; spell the unit in the name (_ms, _watts, "
            "_dbm, _hz, _bytes, _mbps, _m, ...) or mark it dimensionless "
            "(_scale, _ratio, _prob, ...)"))

    for match in PARAM.finditer(sf.code):
        open_pos = enclosing_open(match.start())
        if open_pos is None:
            continue  # not inside parens: a local/member declaration
        before = sf.code[:open_pos].rstrip()
        if not before or not (before[-1].isalnum() or before[-1] == "_"):
            continue  # enclosing paren is not a function's parameter list
        token = classify(match.group("name"), cfg)
        if token is not None:
            report(match.start(), "parameter", match.group("name"), token)

    depth = 0
    depth_at: dict[int, int] = {}
    matches = list(RETURN_FN.finditer(sf.code))
    starts = {m.start() for m in matches}
    for pos, ch in enumerate(sf.code):
        if pos in starts:
            depth_at[pos] = depth
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
    for match in matches:
        if depth_at.get(match.start(), 1) != 0:
            continue  # inside a parameter list: handled by the param pass
        token = classify(match.group("name"), cfg)
        if token is not None:
            report(match.start(), "function", match.group("name"), token)

    return findings, {"suppressed": suppressed}
