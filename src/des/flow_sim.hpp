// Flow-level event-driven replay of a delivery strategy.
//
// The paper's latency metric (Eq. 8/9) is analytic: every transfer gets the
// full link bandwidth, so concurrent deliveries never contend. This module
// replays the same deliveries as *fluid flows* over the edge network:
// each non-local request becomes a flow from its chosen replica to the
// user's serving server along the cheapest route; flows crossing a link
// share its capacity max-min fairly; rates are recomputed at every flow
// arrival/completion (a standard fluid DES).
//
// Comparing the replayed completion times with the analytic L_avg
// quantifies the contention error of the paper's model — and lets us check
// that the approach ranking survives contention (bench/ext_contention).
#pragma once

#include <cstddef>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::des {

struct FlowSimOptions {
  /// Scale factor on every edge-link capacity (1.0 = the instance's
  /// 2000-6000 MB/s links; < 1 stresses contention).
  double link_capacity_scale = 1.0;
  /// Requests arrive over [0, window); 0 = everything at t = 0 (the
  /// worst-case burst).
  double arrival_window_s = 0.0;
  /// The cloud leg is modelled uncontended at the instance's cloud speed
  /// (the bottleneck the paper assumes); local hits complete instantly.
};

struct FlowRecord {
  std::size_t user = 0;
  std::size_t item = 0;
  double arrival_s = 0.0;
  double completion_s = 0.0;
  /// Transfer duration (completion - arrival).
  [[nodiscard]] double duration_s() const { return completion_s - arrival_s; }
  bool from_cloud = false;
  bool local_hit = false;
  std::size_t hops = 0;
};

struct FlowSimResult {
  std::vector<FlowRecord> flows;          ///< one per request
  double mean_duration_ms = 0.0;          ///< the DES analogue of L_avg
  double p95_duration_ms = 0.0;
  double makespan_s = 0.0;                ///< last completion
  std::size_t local_hits = 0;
  std::size_t cloud_fetches = 0;
  std::size_t rate_recomputations = 0;    ///< DES bookkeeping
};

class FlowLevelSimulator {
 public:
  explicit FlowLevelSimulator(const model::ProblemInstance& instance,
                              FlowSimOptions options = {});

  /// Replays the strategy's deliveries. `rng` only drives arrival jitter
  /// (unused when arrival_window_s == 0).
  [[nodiscard]] FlowSimResult run(const core::Strategy& strategy,
                                  util::Rng& rng) const;

 private:
  const model::ProblemInstance* instance_;
  FlowSimOptions options_;
  // Link table: one entry per undirected edge, with capacity in MB/s.
  struct Link {
    std::size_t a;
    std::size_t b;
    double capacity_mbps;
  };
  std::vector<Link> links_;
  /// link index by (min(a,b), max(a,b)); kNoLink when absent.
  [[nodiscard]] std::size_t link_between(std::size_t a, std::size_t b) const;
  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
};

}  // namespace idde::des
