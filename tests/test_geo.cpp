// Geometry, spatial index, point processes and the synthetic EUA scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/bbox.hpp"
#include "geo/eua.hpp"
#include "geo/generators.hpp"
#include "geo/point.hpp"
#include "geo/spatial_grid.hpp"

namespace {

using namespace idde::geo;
using idde::util::Rng;

TEST(Point, Distances) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance_m2({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_m({-1, -1}, {-4, 3}), 5.0);
}

TEST(BoundingBox, ContainsAndClamp) {
  const BoundingBox box = BoundingBox::square(10.0);
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({10, 10}));
  EXPECT_FALSE(box.contains({10.1, 5}));
  EXPECT_EQ(box.clamp({-5, 20}), (Point{0, 10}));
  EXPECT_EQ(box.clamp({3, 4}), (Point{3, 4}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 10.0);
}

class SpatialGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    bounds_ = BoundingBox::square(1000.0);
    points_ = generate_uniform(300, bounds_, rng);
    grid_ = std::make_unique<SpatialGrid>(points_, bounds_, 50.0);
  }

  std::vector<std::size_t> brute_force_radius(const Point& c,
                                              double r) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (distance_m(points_[i], c) <= r) out.push_back(i);
    }
    return out;
  }

  BoundingBox bounds_;
  std::vector<Point> points_;
  std::unique_ptr<SpatialGrid> grid_;
};

TEST_F(SpatialGridTest, RadiusQueryMatchesBruteForce) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const Point c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const double r = rng.uniform(10, 300);
    EXPECT_EQ(grid_->query_radius(c, r), brute_force_radius(c, r));
  }
}

TEST_F(SpatialGridTest, ZeroRadiusFindsOnlyCoincidentPoints) {
  const auto result = grid_->query_radius(points_[5], 0.0);
  EXPECT_FALSE(result.empty());
  for (const std::size_t i : result) {
    EXPECT_DOUBLE_EQ(distance_m(points_[i], points_[5]), 0.0);
  }
}

TEST_F(SpatialGridTest, NearestMatchesBruteForce) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const Point c{rng.uniform(-100, 1100), rng.uniform(-100, 1100)};
    const std::size_t found = grid_->nearest(c);
    double best = 1e18;
    std::size_t expected = SpatialGrid::npos;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const double d = squared_distance_m2(points_[i], c);
      if (d < best) {
        best = d;
        expected = i;
      }
    }
    ASSERT_NE(found, SpatialGrid::npos);
    // Ties are acceptable: require equal distance rather than equal index.
    EXPECT_DOUBLE_EQ(squared_distance_m2(points_[found], c), best)
        << "found " << found << " expected " << expected;
  }
}

TEST(SpatialGrid, EmptyGrid) {
  const SpatialGrid grid({}, BoundingBox::square(10.0), 1.0);
  EXPECT_EQ(grid.nearest({1, 1}), SpatialGrid::npos);
  EXPECT_TRUE(grid.query_radius({1, 1}, 100.0).empty());
}

TEST(SpatialGrid, SinglePoint) {
  const SpatialGrid grid({Point{5, 5}}, BoundingBox::square(10.0), 2.0);
  EXPECT_EQ(grid.nearest({0, 0}), 0u);
  EXPECT_EQ(grid.query_radius({5, 5}, 0.1).size(), 1u);
}

TEST(Generators, UniformStaysInBounds) {
  Rng rng(1);
  const BoundingBox box{{10, 20}, {30, 50}};
  for (const Point& p : generate_uniform(500, box, rng)) {
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(Generators, UniformCountAndSpread) {
  Rng rng(2);
  const BoundingBox box = BoundingBox::square(100.0);
  const auto pts = generate_uniform(2000, box, rng);
  EXPECT_EQ(pts.size(), 2000u);
  double mx = 0.0;
  for (const Point& p : pts) mx += p.x;
  EXPECT_NEAR(mx / 2000.0, 50.0, 3.0);
}

TEST(Generators, JitteredGridExactCountInBounds) {
  Rng rng(3);
  const BoundingBox box = BoundingBox::square(1000.0);
  for (const std::size_t n : {1u, 5u, 12u, 125u}) {
    const auto pts = generate_jittered_grid(n, box, 30.0, rng);
    EXPECT_EQ(pts.size(), n);
    for (const Point& p : pts) EXPECT_TRUE(box.contains(p));
  }
}

TEST(Generators, JitteredGridZeroJitterIsRegular) {
  Rng rng(4);
  const BoundingBox box = BoundingBox::square(100.0);
  const auto a = generate_jittered_grid(9, box, 0.0, rng);
  const auto b = generate_jittered_grid(9, box, 0.0, rng);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // 3x3 grid over 100: first point at (100/3)*0.5.
  EXPECT_NEAR(a[0].x, 100.0 / 6.0, 1e-9);
}

TEST(Generators, ThomasClustersAroundCenters) {
  Rng rng(5);
  const BoundingBox box = BoundingBox::square(1000.0);
  const std::vector<Point> centers{{200, 200}, {800, 800}};
  ThomasParams params{.parent_count = 2,
                      .cluster_stddev = 20.0,
                      .background_fraction = 0.0};
  const auto pts = generate_thomas(400, box, params, rng, &centers);
  EXPECT_EQ(pts.size(), 400u);
  // Every point should be near one of the two centres (5 sigma).
  for (const Point& p : pts) {
    const double d = std::min(distance_m(p, centers[0]), distance_m(p, centers[1]));
    EXPECT_LT(d, 100.0);
  }
}

TEST(Generators, ThomasBackgroundFractionOneIsUniform) {
  Rng rng(6);
  const BoundingBox box = BoundingBox::square(1000.0);
  ThomasParams params{.parent_count = 1,
                      .cluster_stddev = 1.0,
                      .background_fraction = 1.0};
  const auto pts = generate_thomas(1000, box, params, rng);
  double mean_x = 0.0;
  for (const Point& p : pts) mean_x += p.x;
  EXPECT_NEAR(mean_x / 1000.0, 500.0, 40.0);
}

TEST(Eua, GeneratesRequestedCounts) {
  Rng rng(7);
  const EuaScenarioParams params;
  const EuaScenario s = generate_eua_scenario(params, rng);
  EXPECT_EQ(s.server_positions.size(), 125u);
  EXPECT_EQ(s.coverage_radii_m.size(), 125u);
  EXPECT_EQ(s.user_positions.size(), 816u);
  for (const double r : s.coverage_radii_m) {
    EXPECT_GE(r, params.min_coverage_radius_m);
    EXPECT_LE(r, params.max_coverage_radius_m);
  }
  for (const Point& p : s.server_positions) EXPECT_TRUE(s.bounds.contains(p));
  for (const Point& p : s.user_positions) EXPECT_TRUE(s.bounds.contains(p));
}

TEST(Eua, DeterministicForSameSeed) {
  Rng a(9);
  Rng b(9);
  const EuaScenario sa = generate_eua_scenario({}, a);
  const EuaScenario sb = generate_eua_scenario({}, b);
  EXPECT_EQ(sa.server_positions, sb.server_positions);
  EXPECT_EQ(sa.user_positions, sb.user_positions);
  EXPECT_EQ(sa.coverage_radii_m, sb.coverage_radii_m);
}

TEST(Eua, SubsampleKeepsPairing) {
  Rng rng(10);
  const EuaScenario full = generate_eua_scenario({}, rng);
  Rng sub_rng(11);
  const EuaScenario sub = subsample(full, 30, 200, sub_rng);
  EXPECT_EQ(sub.server_positions.size(), 30u);
  EXPECT_EQ(sub.coverage_radii_m.size(), 30u);
  EXPECT_EQ(sub.user_positions.size(), 200u);
  // Every sampled (position, radius) pair must exist in the full scenario.
  for (std::size_t s = 0; s < 30; ++s) {
    bool found = false;
    for (std::size_t i = 0; i < full.server_positions.size(); ++i) {
      if (full.server_positions[i] == sub.server_positions[s] &&
          full.coverage_radii_m[i] == sub.coverage_radii_m[s]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Eua, SubsampleCoveredPrefersCoveredUsers) {
  Rng rng(12);
  const EuaScenario full = generate_eua_scenario({}, rng);
  Rng sub_rng(13);
  const EuaScenario sub = subsample_covered(full, 30, 200, sub_rng);
  std::size_t covered = 0;
  for (const Point& u : sub.user_positions) {
    for (std::size_t s = 0; s < sub.server_positions.size(); ++s) {
      if (distance_m(u, sub.server_positions[s]) <= sub.coverage_radii_m[s]) {
        ++covered;
        break;
      }
    }
  }
  // With 30 of 125 servers there are far more than 200 covered users in
  // the 816 pool, so everyone sampled should be covered.
  EXPECT_EQ(covered, 200u);
}

// Coverage-multiplicity sweep across sub-sampled sizes: the synthetic EUA
// should look like the CBD extraction (mean coverage roughly 1-6 and a
// covered majority) at every N used by the paper.
class EuaCoverageTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EuaCoverageTest, CoverageMultiplicityInRange) {
  Rng rng(14);
  const EuaScenario full = generate_eua_scenario({}, rng);
  Rng sub_rng(15 + GetParam());
  const EuaScenario sub = subsample_covered(full, GetParam(), 200, sub_rng);
  double total = 0.0;
  for (const Point& u : sub.user_positions) {
    for (std::size_t s = 0; s < sub.server_positions.size(); ++s) {
      if (distance_m(u, sub.server_positions[s]) <= sub.coverage_radii_m[s]) {
        total += 1.0;
      }
    }
  }
  const double mean = total / 200.0;
  EXPECT_GE(mean, 0.9);
  EXPECT_LE(mean, 8.0);
}

INSTANTIATE_TEST_SUITE_P(PaperNs, EuaCoverageTest,
                         ::testing::Values(20, 25, 30, 35, 40, 45, 50));

}  // namespace
