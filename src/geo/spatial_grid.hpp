// Uniform-grid spatial index over points. Coverage computation ("which
// servers cover user u_j") is a radius query per user; the grid makes the
// instance build O(M + N) instead of O(M·N) for city-scale scenarios.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/bbox.hpp"
#include "geo/point.hpp"

namespace idde::geo {

class SpatialGrid {
 public:
  /// Builds an index over `points` inside `bounds` with roughly
  /// `cell_size_m`-metre cells. Points outside bounds are clamped into it.
  SpatialGrid(const std::vector<Point>& points, BoundingBox bounds,
              double cell_size_m);

  /// Indices of all points within `radius_m` metres of `center` (inclusive).
  [[nodiscard]] std::vector<std::size_t> query_radius(const Point& center,
                                                      double radius_m) const;

  /// Index of the nearest point to `center`; npos when the grid is empty.
  [[nodiscard]] std::size_t nearest(const Point& center) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  [[nodiscard]] std::size_t cell_of(const Point& p) const noexcept;
  [[nodiscard]] std::size_t cell_index(std::size_t cx,
                                       std::size_t cy) const noexcept {
    return cy * cells_x_ + cx;
  }

  std::vector<Point> points_;
  BoundingBox bounds_;
  double cell_size_;
  std::size_t cells_x_ = 0;
  std::size_t cells_y_ = 0;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> cell_items_;
};

}  // namespace idde::geo
