// Phase-1 game tests: convergence, Nash property, update-rule variants,
// the potential function, and metric plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/game.hpp"
#include "core/metrics.hpp"
#include "core/potential.hpp"
#include "model/instance_builder.hpp"

namespace {

using namespace idde;
using core::AllocationProfile;
using core::ChannelSlot;
using core::GameOptions;
using core::GameResult;
using core::IddeUGame;
using core::UpdateRule;
using model::InstanceParams;
using model::ProblemInstance;

InstanceParams tiny_params(std::size_t n = 6, std::size_t m = 18,
                           std::size_t k = 3) {
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

TEST(IddeUGame, ConvergesOnDefaultInstance) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 1);
  IddeUGame game(inst);
  const GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.moves, 0u);
  EXPECT_EQ(result.allocation.size(), inst.user_count());
}

TEST(IddeUGame, AllCoveredUsersEndUpAllocated) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 2);
  const GameResult result = IddeUGame(inst).run();
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!inst.covering_servers(j).empty()) {
      EXPECT_TRUE(result.allocation[j].allocated()) << "user " << j;
    } else {
      EXPECT_FALSE(result.allocation[j].allocated());
    }
  }
}

TEST(IddeUGame, AllocationRespectsCoverage) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 3);
  const GameResult result = IddeUGame(inst).run();
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!result.allocation[j].allocated()) continue;
    const auto& covering = inst.covering_servers(j);
    EXPECT_TRUE(std::binary_search(covering.begin(), covering.end(),
                                   result.allocation[j].server));
    EXPECT_LT(result.allocation[j].channel,
              inst.radio_env().channels_per_server);
  }
}

TEST(IddeUGame, ConvergedProfileIsNashWhenNoUserFrozen) {
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    const ProblemInstance inst = model::make_instance(tiny_params(), seed);
    const GameResult result = IddeUGame(inst).run();
    if (result.converged && result.frozen_users == 0) {
      EXPECT_TRUE(core::is_nash_equilibrium(inst, result.allocation))
          << "seed " << seed;
    }
  }
}

TEST(IddeUGame, RunFromExistingProfileConverges) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 4);
  IddeUGame game(inst);
  const GameResult first = game.run();
  // Re-running from the equilibrium is an immediate no-op.
  const GameResult second = game.run_from(first.allocation);
  if (first.frozen_users == 0) {
    EXPECT_EQ(second.moves, 0u);
    EXPECT_TRUE(second.converged);
  }
}

TEST(IddeUGame, MoveBudgetTerminatesEvenWhenTiny) {
  const ProblemInstance inst = model::make_instance(tiny_params(10, 60), 5);
  GameOptions options;
  options.max_moves_per_user = 1;
  const GameResult result = IddeUGame(inst, options).run();
  EXPECT_TRUE(result.converged);
  // Each user moved at most once.
  EXPECT_LE(result.moves, inst.user_count());
}

TEST(IddeUGame, RoundCapReportsNonConvergence) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 6);
  GameOptions options;
  options.max_rounds = 1;
  const GameResult result = IddeUGame(inst, options).run();
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(IddeUGame, BestImprovementMovesOnePerRound) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 7);
  GameOptions options;
  options.rule = UpdateRule::kBestImprovement;
  const GameResult result = IddeUGame(inst, options).run();
  // One winner per round, plus the final silent round.
  EXPECT_EQ(result.rounds, result.moves + 1);
}

TEST(IddeUGame, AsyncSweepUsesFewRounds) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 8);
  GameOptions best;
  best.rule = UpdateRule::kBestImprovement;
  GameOptions sweep;
  sweep.rule = UpdateRule::kAsyncSweep;
  const GameResult rb = IddeUGame(inst, best).run();
  const GameResult rs = IddeUGame(inst, sweep).run();
  EXPECT_LT(rs.rounds, rb.rounds);
  EXPECT_TRUE(rs.converged);
}

TEST(IddeUGame, AllRulesReachComparableRates) {
  const ProblemInstance inst = model::make_instance(tiny_params(8, 40), 9);
  double rates[3];
  int idx = 0;
  for (const UpdateRule rule :
       {UpdateRule::kBestImprovement, UpdateRule::kFirstImprovement,
        UpdateRule::kAsyncSweep}) {
    GameOptions options;
    options.rule = rule;
    const GameResult result = IddeUGame(inst, options).run();
    EXPECT_TRUE(result.converged);
    rates[idx++] = core::average_data_rate_mbps(inst, result.allocation);
  }
  // Equilibria may differ but should be within ~25% of each other.
  const double lo = *std::min_element(rates, rates + 3);
  const double hi = *std::max_element(rates, rates + 3);
  EXPECT_LT((hi - lo) / hi, 0.25);
}

TEST(IddeUGame, CandidateRestrictionHonoured) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 11);
  // Restrict every user to its first covering server only.
  std::vector<std::vector<std::size_t>> candidates(inst.user_count());
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto& covering = inst.covering_servers(j);
    if (!covering.empty()) candidates[j] = {covering.front()};
  }
  GameOptions options;
  options.candidate_servers = &candidates;
  const GameResult result = IddeUGame(inst, options).run();
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (result.allocation[j].allocated()) {
      EXPECT_EQ(result.allocation[j].server,
                inst.covering_servers(j).front());
    }
  }
}

TEST(Metrics, UnallocatedUsersHaveZeroRate) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 12);
  const AllocationProfile none(inst.user_count(), core::kUnallocated);
  const auto rates = core::user_rates(inst, none);
  for (const double r : rates) EXPECT_EQ(r, 0.0);
  EXPECT_EQ(core::average_data_rate_mbps(inst, none), 0.0);
}

TEST(Metrics, RatesRespectShannonCap) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 13);
  const GameResult result = IddeUGame(inst).run();
  const auto rates = core::user_rates(inst, result.allocation);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    EXPECT_LE(rates[j], inst.user(j).max_rate_mbps + 1e-9);
    EXPECT_GE(rates[j], 0.0);
  }
}

TEST(Metrics, LoneUserHitsItsCap) {
  InstanceParams p = tiny_params(5, 1, 2);
  const ProblemInstance inst = model::make_instance(p, 14);
  const GameResult result = IddeUGame(inst).run();
  const auto rates = core::user_rates(inst, result.allocation);
  ASSERT_TRUE(result.allocation[0].allocated());
  // A single user with no interference is limited only by R_max.
  EXPECT_NEAR(rates[0], inst.user(0).max_rate_mbps, 1e-6);
}

TEST(Metrics, MoreUsersLowerAverageRate) {
  InstanceParams small = tiny_params(10, 30, 3);
  InstanceParams big = tiny_params(10, 150, 3);
  double rate_small = 0.0;
  double rate_big = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const ProblemInstance a = model::make_instance(small, 20 + seed);
    const ProblemInstance b = model::make_instance(big, 20 + seed);
    rate_small +=
        core::average_data_rate_mbps(a, IddeUGame(a).run().allocation);
    rate_big += core::average_data_rate_mbps(b, IddeUGame(b).run().allocation);
  }
  EXPECT_GT(rate_small, rate_big);
}

TEST(Potential, InterferenceBoundNonNegative) {
  // Use a dense instance so some users see multiple covering servers.
  const ProblemInstance inst =
      model::make_instance(tiny_params(40, 60, 3), 15);
  bool any_positive = false;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const double bound = core::interference_bound_watts(inst, j);
    EXPECT_GE(bound, 0.0);
    // T_j is strictly positive exactly when the user has more than one
    // candidate gain (best channel has headroom above the worst one).
    if (inst.covering_servers(j).size() >= 2) any_positive |= bound > 0.0;
    if (inst.covering_servers(j).empty()) {
      EXPECT_EQ(bound, 0.0);
    }
  }
  EXPECT_TRUE(any_positive);
}

TEST(Potential, IncreasesAlongBestResponseTrajectory) {
  // Theorem 3 is proved under homogeneous channel gains; on generic
  // instances the potential-game property is only approximate (see
  // EXPERIMENTS.md). We therefore check the trajectory statistically:
  // the potential must increase for the overwhelming majority of applied
  // moves and end higher than it started.
  std::size_t increases = 0;
  std::size_t moves = 0;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const ProblemInstance inst =
        model::make_instance(tiny_params(5, 14, 2), seed);
    // Replay the game one round at a time via run_from.
    AllocationProfile profile(inst.user_count(), core::kUnallocated);
    double last_potential = core::potential(inst, profile);
    GameOptions options;
    options.max_rounds = 1;
    for (int step = 0; step < 200; ++step) {
      const GameResult result = IddeUGame(inst, options).run_from(profile);
      if (result.moves == 0) break;
      const double next_potential = core::potential(inst, result.allocation);
      ++moves;
      if (next_potential > last_potential - 1e-12) ++increases;
      last_potential = next_potential;
      profile = result.allocation;
    }
  }
  ASSERT_GT(moves, 20u);
  EXPECT_GE(static_cast<double>(increases) / static_cast<double>(moves),
            0.9);
}

// Convergence sweep across paper-scale shapes.
class GameConvergenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GameConvergenceTest, Converges) {
  const auto [n, m] = GetParam();
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  const ProblemInstance inst = model::make_instance(p, 40 + n * m);
  const GameResult result = IddeUGame(inst).run();
  EXPECT_TRUE(result.converged) << "n=" << n << " m=" << m;
  // Theorem 4-style sanity: the number of moves stays far below the cap.
  EXPECT_LT(result.moves, 32 * m);
}

INSTANTIATE_TEST_SUITE_P(PaperShapes, GameConvergenceTest,
                         ::testing::Combine(::testing::Values(20, 30, 50),
                                            ::testing::Values(50, 200)));

}  // namespace
