// Fixture: hot-tagged file (see fixtures/config.json hot_path_files).
#include <memory>
#include <vector>

namespace fixture {

void kernel(std::vector<int>& out) {
  auto scratch = std::make_unique<int[]>(16);  // hot-path-alloc
  out.push_back(1);  // hot-path-alloc: no out.reserve( in this file
  (void)scratch;
}

void cold_setup(std::vector<int>& buf) {
  buf.reserve(64);
  buf.push_back(0);  // reserved above: no finding
  int* raw = new int[4];  // lint: alloc-ok(setup path, runs once)
  delete[] raw;
}

}  // namespace fixture
