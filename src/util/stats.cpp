#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace idde::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

Estimate summarize(std::span<const double> samples) {
  RunningStats stats;
  for (const double x : samples) stats.add(x);
  return summarize(stats);
}

Estimate summarize(const RunningStats& stats) {
  // 1.96 ~ z-score for 95% two-sided coverage; with the small repetition
  // counts used in CI runs this slightly understates the width vs. a
  // t-quantile, which is acceptable for shape comparisons.
  return Estimate{.mean = stats.mean(),
                  .half_width = 1.96 * stats.stderr_mean(),
                  .n = stats.count()};
}

double percentile(std::span<const double> samples, double p) {
  IDDE_EXPECTS(!samples.empty());
  IDDE_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();  // p == 100 exactly
  const std::size_t hi = lo + 1;
  const double frac = rank - static_cast<double>(lo);
  // Exact ranks and equal endpoints return the sample itself: no fp drift
  // on duplicates, and an infinite sample (cloud outage, unreachable
  // replica) never poisons a finite quantile through 0 * inf = NaN.
  if (frac == 0.0 || sorted[lo] == sorted[hi]) return sorted[lo];
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double relative_reduction(double ours, double other) {
  if (other == 0.0) return 0.0;
  return (other - ours) / other;
}

double relative_gain(double ours, double other) {
  if (other == 0.0) return 0.0;
  return (ours - other) / other;
}

}  // namespace idde::util
