// Ablation (google-benchmark): incremental interference bookkeeping vs the
// from-scratch reference, measured on the operation the game loop performs
// — evaluating every candidate of every user once (one best-response
// round). DESIGN.md §6 documents why the incremental form exists.
#include <benchmark/benchmark.h>

#include "model/instance_builder.hpp"
#include "radio/interference.hpp"

namespace {

using namespace idde;

model::ProblemInstance make_inst(std::size_t n, std::size_t m) {
  model::InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = 5;
  return model::make_instance(p, 7 + n + m);
}

void BM_SinrIncremental(benchmark::State& state) {
  const auto inst = make_inst(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)));
  const auto& env = inst.radio_env();
  radio::InterferenceField field(env);
  // Allocate everyone somewhere first.
  for (std::size_t j = 0; j < env.user_count; ++j) {
    const auto& cov = env.covering_servers[j];
    if (!cov.empty()) field.add_user(j, {cov[0], j % env.channels_per_server});
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t j = 0; j < env.user_count; ++j) {
      for (const std::size_t i : env.covering_servers[j]) {
        for (std::size_t x = 0; x < env.channels_per_server; ++x) {
          sum += field.sinr(j, {i, x});
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}

void BM_SinrReference(benchmark::State& state) {
  const auto inst = make_inst(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)));
  const auto& env = inst.radio_env();
  std::vector<radio::ChannelSlot> alloc(env.user_count, radio::kUnallocated);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    const auto& cov = env.covering_servers[j];
    if (!cov.empty()) {
      alloc[j] = radio::ChannelSlot{cov[0], j % env.channels_per_server};
    }
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t j = 0; j < env.user_count; ++j) {
      for (const std::size_t i : env.covering_servers[j]) {
        for (std::size_t x = 0; x < env.channels_per_server; ++x) {
          sum += radio::sinr_reference(env, alloc, j, {i, x});
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}

void SinrArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({20, 100})->Args({30, 200})->Args({50, 350});
}

BENCHMARK(BM_SinrIncremental)->Apply(SinrArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SinrReference)->Apply(SinrArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
