#include "model/request_matrix.hpp"

#include "util/assert.hpp"

namespace idde::model {

RequestMatrix::RequestMatrix(std::size_t user_count, std::size_t data_count)
    : by_user_(user_count),
      by_item_(data_count),
      flags_(user_count * data_count, false) {}

void RequestMatrix::add_request(std::size_t user, std::size_t item) {
  IDDE_EXPECTS(user < by_user_.size());
  IDDE_EXPECTS(item < by_item_.size());
  const std::size_t flat = user * by_item_.size() + item;
  if (flags_[flat]) return;
  flags_[flat] = true;
  by_user_[user].push_back(item);
  by_item_[item].push_back(user);
  ++total_;
}

bool RequestMatrix::requests(std::size_t user, std::size_t item) const {
  IDDE_EXPECTS(user < by_user_.size());
  IDDE_EXPECTS(item < by_item_.size());
  return flags_[user * by_item_.size() + item];
}

std::span<const std::size_t> RequestMatrix::items_of(std::size_t user) const {
  IDDE_EXPECTS(user < by_user_.size());
  return by_user_[user];
}

std::span<const std::size_t> RequestMatrix::users_of(std::size_t item) const {
  IDDE_EXPECTS(item < by_item_.size());
  return by_item_[item];
}

}  // namespace idde::model
