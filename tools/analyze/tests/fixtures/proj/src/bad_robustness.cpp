// Fixture: retry continuations with no bound anywhere in the file —
// unbounded-retry fires on the counter increment; the backoff re-enqueue
// is inline-suppressed and counts as suppressed, not found.
#include <cstddef>

namespace fixture {

struct Task {
  std::size_t attempts = 0;
  double backoff_s = 0.1;
};

bool submit(Task task);
void schedule_retry(double delay_s);

void drain(Task task) {
  while (!submit(task)) {
    task.attempts += 1;  // finding: nothing caps the loop
  }
}

void requeue(Task task) {
  while (!submit(task)) {
    schedule_retry(task.backoff_s);  // lint: allow(unbounded-retry)
  }
}

}  // namespace fixture
