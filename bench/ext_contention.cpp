// Extension bench — does the paper's conclusion survive link contention?
// The analytic latency model gives every transfer exclusive bandwidth; the
// flow-level DES replays the same strategies with max-min fair sharing on
// every edge link. We report analytic vs replayed latency for all five
// approaches at several contention levels.
#include <cstdio>
#include <iostream>

#include "core/metrics.hpp"
#include "des/flow_sim.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const int reps = util::experiment_reps(3);
  const double ip_budget = util::ip_budget_ms(100.0);
  std::printf(
      "Contention replay at N=30 M=200 K=5 (%d reps)\n\n", reps);

  const model::InstanceBuilder builder(sim::paper_default_params());
  const auto approaches = sim::make_paper_approaches(ip_budget);

  struct Case {
    const char* label;
    double scale;
    double window_s;
  };
  const Case cases[] = {
      {"arrivals spread over 10 s, capacity x1.0", 1.0, 10.0},
      {"arrivals spread over 10 s, capacity x0.1", 0.1, 10.0},
      {"synchronised burst (t=0), capacity x1.0", 1.0, 0.0},
  };
  for (const Case& c : cases) {
    util::TextTable table({"approach", "analytic L_avg (ms)",
                           "DES mean (ms)", "DES p95 (ms)",
                           "inflation"});
    for (const auto& approach : approaches) {
      util::RunningStats analytic, des_mean, des_p95;
      for (int rep = 0; rep < reps; ++rep) {
        const auto inst =
            builder.build(7700 + static_cast<std::uint64_t>(rep));
        util::Rng rng(42 + static_cast<std::uint64_t>(rep));
        const auto strategy = approach->solve(inst, rng);
        analytic.add(core::average_latency_ms(inst, strategy.allocation,
                                              strategy.delivery,
                                              strategy.collaborative_delivery));
        des::FlowSimOptions options;
        options.link_capacity_scale = c.scale;
        options.arrival_window_s = c.window_s;
        const auto replay =
            des::FlowLevelSimulator(inst, options).run(strategy, rng);
        des_mean.add(replay.mean_duration_ms);
        des_p95.add(replay.p95_duration_ms);
      }
      table.start_row()
          .add(approach->name())
          .add(analytic.mean())
          .add(des_mean.mean())
          .add(des_p95.mean())
          .add(util::format(
              "{}x", util::fixed(analytic.mean() > 0.0
                                     ? des_mean.mean() / analytic.mean()
                                     : 1.0,
                                 2)));
    }
    std::printf("%s:\n", c.label);
    table.print(std::cout);
    std::puts("");
  }
  std::puts(
      "Findings: with arrivals spread over seconds (the regime the paper's "
      "per-request latency metric describes) the approach ordering is "
      "unchanged and the analytic model is conservative — inflation < 1x "
      "because the DES pipelines a flow across its hops (rate = min link) "
      "while Eq. 8 books the store-and-forward sum of per-hop times. "
      "Contention only bites when links are tight or arrivals fully "
      "synchronised, and then it bites the collaborative schemes — the "
      "non-collaborative CDP/DUP-G never route, so they are untouched but "
      "were already ~4x slower analytically. Only under a synchronised "
      "burst does CDP/DUP-G's cloud-only path transiently win on the mean, "
      "the one regime where Eq. 8's exclusive-bandwidth assumption is "
      "genuinely optimistic.");
  return 0;
}
