// Solver substrate: exhaustive oracles, placement branch-and-bound
// optimality on small instances, anytime behaviour, and the joint search.
#include <gtest/gtest.h>

#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "core/metrics.hpp"
#include "core/validation.hpp"
#include "model/instance_builder.hpp"
#include "solver/exhaustive.hpp"
#include "solver/joint_search.hpp"
#include "solver/placement_bnb.hpp"

namespace {

using namespace idde;
using core::AllocationProfile;
using model::InstanceParams;
using model::ProblemInstance;

InstanceParams micro_params(std::size_t n = 3, std::size_t m = 5,
                            std::size_t k = 2) {
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

TEST(ExhaustiveAllocation, BeatsOrMatchesEveryOtherProfileTried) {
  const ProblemInstance inst = model::make_instance(micro_params(), 1);
  const AllocationProfile best = solver::optimal_allocation(inst);
  const double best_rate = core::average_data_rate_mbps(inst, best);
  // Compare against the game equilibrium and random profiles.
  const auto game = core::IddeUGame(inst).run();
  EXPECT_GE(best_rate + 1e-9, core::average_data_rate_mbps(inst, game.allocation));
  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    AllocationProfile random(inst.user_count(), core::kUnallocated);
    for (std::size_t j = 0; j < inst.user_count(); ++j) {
      const auto& cov = inst.covering_servers(j);
      if (cov.empty()) continue;
      random[j] = core::ChannelSlot{
          cov[rng.index(cov.size())],
          rng.index(inst.radio_env().channels_per_server)};
    }
    EXPECT_GE(best_rate + 1e-9, core::average_data_rate_mbps(inst, random));
  }
}

TEST(ExhaustiveDelivery, BeatsOrMatchesGreedy) {
  for (std::uint64_t seed = 5; seed < 10; ++seed) {
    InstanceParams p = micro_params(4, 10, 3);  // 12 decisions
    const ProblemInstance inst = model::make_instance(p, seed);
    const auto game = core::IddeUGame(inst).run();
    const auto optimal = solver::optimal_delivery(inst, game.allocation);
    const auto greedy = core::GreedyDeliveryPlanner(inst).plan(game.allocation);
    EXPECT_LE(core::total_latency_seconds(inst, game.allocation, optimal),
              core::total_latency_seconds(inst, game.allocation,
                                          greedy.delivery) +
                  1e-9)
        << "seed " << seed;
  }
}

TEST(PlacementBnb, MatchesExhaustiveOptimumWithoutDeadline) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    InstanceParams p = micro_params(4, 10, 3);
    const ProblemInstance inst = model::make_instance(p, seed);
    const auto game = core::IddeUGame(inst).run();
    const util::Deadline no_deadline(-1.0);
    const auto bnb =
        solver::placement_branch_and_bound(inst, game.allocation, no_deadline);
    EXPECT_TRUE(bnb.proven_optimal);
    const auto oracle = solver::optimal_delivery(inst, game.allocation);
    EXPECT_NEAR(
        bnb.total_latency_seconds,
        core::total_latency_seconds(inst, game.allocation, oracle), 1e-9)
        << "seed " << seed;
  }
}

TEST(PlacementBnb, DeadlineStopsEarlyButStaysFeasible) {
  InstanceParams p;
  p.server_count = 20;
  p.user_count = 100;
  p.data_count = 6;
  const ProblemInstance inst = model::make_instance(p, 20);
  const auto game = core::IddeUGame(inst).run();
  const util::Deadline deadline(5.0);
  const auto bnb =
      solver::placement_branch_and_bound(inst, game.allocation, deadline);
  EXPECT_FALSE(bnb.proven_optimal);
  core::Strategy s{game.allocation, bnb.delivery};
  EXPECT_TRUE(core::validate_strategy(inst, s).empty());
  // The incumbent must at least improve on cloud-only delivery.
  core::DeliveryEvaluator cloud(inst, game.allocation);
  EXPECT_LT(bnb.total_latency_seconds, cloud.total_latency_seconds());
}

TEST(PlacementBnb, MoreTimeNeverHurts) {
  InstanceParams p;
  p.server_count = 12;
  p.user_count = 60;
  p.data_count = 5;
  const ProblemInstance inst = model::make_instance(p, 21);
  const auto game = core::IddeUGame(inst).run();
  const auto quick = solver::placement_branch_and_bound(
      inst, game.allocation, util::Deadline(2.0));
  const auto slow = solver::placement_branch_and_bound(
      inst, game.allocation, util::Deadline(200.0));
  EXPECT_LE(slow.total_latency_seconds,
            quick.total_latency_seconds + 1e-9);
  EXPECT_GE(slow.nodes_explored, quick.nodes_explored);
}

TEST(JointSearch, ProducesFeasibleStrategyWithinBudget) {
  const ProblemInstance inst = model::make_instance(micro_params(8, 40, 4), 30);
  util::Rng rng(30);
  util::Stopwatch sw;
  const auto result =
      solver::joint_search(inst, rng, {.budget_ms = 40.0});
  EXPECT_LE(sw.elapsed_ms(), 400.0);
  EXPECT_TRUE(core::validate_strategy(inst, result.strategy).empty());
  EXPECT_GT(result.allocation_probes, 0u);
  EXPECT_GT(result.placement_nodes, 0u);
  EXPECT_EQ(result.strategy.approach_name, "IDDE-IP");
}

TEST(JointSearch, MoreProbesWithMoreBudget) {
  const ProblemInstance inst = model::make_instance(micro_params(8, 40, 4), 31);
  util::Rng rng_a(31);
  util::Rng rng_b(31);
  const auto small = solver::joint_search(inst, rng_a, {.budget_ms = 10.0});
  const auto large = solver::joint_search(inst, rng_b, {.budget_ms = 80.0});
  EXPECT_GT(large.allocation_probes, small.allocation_probes);
}

TEST(JointSearch, BudgetSplitValidation) {
  const ProblemInstance inst = model::make_instance(micro_params(), 32);
  util::Rng rng(32);
  EXPECT_DEATH(
      (void)solver::joint_search(inst, rng,
                                 {.budget_ms = 10.0, .allocation_share = 0.0}),
      "precondition");
}

}  // namespace
