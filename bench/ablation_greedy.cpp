// Ablation (google-benchmark): lazy greedy vs naive rescanning in Phase 2.
// The lazy planner exploits the submodularity of the latency-reduction
// objective (DESIGN.md §6); this bench quantifies the saved gain
// evaluations and wall-clock across instance sizes.
#include <benchmark/benchmark.h>

#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "model/instance_builder.hpp"

namespace {

using namespace idde;

model::InstanceParams params_for(std::size_t n, std::size_t k) {
  model::InstanceParams p;
  p.server_count = n;
  p.user_count = n * 6;  // paper-like user density
  p.data_count = k;
  return p;
}

struct Prepared {
  model::ProblemInstance instance;
  core::AllocationProfile allocation;
};

Prepared prepare(std::size_t n, std::size_t k) {
  model::ProblemInstance instance =
      model::make_instance(params_for(n, k), 42 + n + k);
  core::AllocationProfile allocation =
      core::IddeUGame(instance).run().allocation;
  return Prepared{std::move(instance), std::move(allocation)};
}

void BM_GreedyLazy(benchmark::State& state) {
  const auto prepared = prepare(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  core::GreedyDeliveryPlanner planner(prepared.instance);
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const auto result = planner.plan(prepared.allocation);
    evaluations = result.gain_evaluations;
    benchmark::DoNotOptimize(result.placements);
  }
  state.counters["gain_evals"] = static_cast<double>(evaluations);
}

void BM_GreedyNaive(benchmark::State& state) {
  const auto prepared = prepare(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  core::GreedyDeliveryPlanner planner(prepared.instance);
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const auto result = planner.plan_naive(prepared.allocation);
    evaluations = result.gain_evaluations;
    benchmark::DoNotOptimize(result.placements);
  }
  state.counters["gain_evals"] = static_cast<double>(evaluations);
}

void GreedyArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({20, 5})->Args({30, 5})->Args({50, 5})->Args({30, 8});
}

BENCHMARK(BM_GreedyLazy)->Apply(GreedyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GreedyNaive)->Apply(GreedyArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
