#!/usr/bin/env python3
"""Zero-new-findings gate for clang scan-build results.

scan-build writes one plist per analyzed TU (plus the HTML report CI uploads
as an artifact). This gate fingerprints every diagnostic as
(checker, repo-relative file, issue hash) and compares the set against the
committed baseline:

  - a finding not in the baseline FAILS the gate (exit 1) — new analyzer
    findings must be fixed or explicitly baselined with a reason;
  - a baseline entry matching nothing is reported as stale but does not
    fail: diagnostics drift across clang versions, and the gate's contract
    is "no new findings", not "this exact set".

The issue hash (issue_hash_content_of_line_in_context) is content-anchored,
so unrelated edits do not detach baseline entries; when a plist lacks it,
the diagnostic description stands in.

Usage:
  scan_build_gate.py --results DIR [--baseline FILE] [--root DIR]
                     [--write-baseline FILE]

Exit status: 0 gate passed; 1 new findings; 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import plistlib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
REQUIRED_FIELDS = ("checker", "file", "hash", "reason")


def collect(results: Path, root: Path) -> list[dict]:
    """Fingerprints of every diagnostic in every plist under `results`."""
    findings = []
    for plist_path in sorted(results.rglob("*.plist")):
        with open(plist_path, "rb") as fh:
            try:
                doc = plistlib.load(fh)
            except Exception as err:  # malformed plist: a usage error
                raise ValueError(f"{plist_path}: not a valid plist: {err}")
        files = doc.get("files", [])
        for diag in doc.get("diagnostics", []):
            file_index = diag.get("location", {}).get("file", -1)
            path = files[file_index] if 0 <= file_index < len(files) else ""
            try:
                rel = Path(path).resolve().relative_to(root).as_posix()
            except ValueError:
                rel = path
            findings.append({
                "checker": diag.get("check_name", diag.get("type", "?")),
                "file": rel,
                "hash": diag.get("issue_hash_content_of_line_in_context",
                                 diag.get("description", "?")),
                "description": diag.get("description", ""),
                "line": diag.get("location", {}).get("line", 0),
            })
    return findings


def load_baseline(path: Path) -> list[dict]:
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON: {err}")
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(f'{path}: expected {{"entries": [...]}}')
    for i, entry in enumerate(data["entries"]):
        missing = [f for f in REQUIRED_FIELDS
                   if not isinstance(entry.get(f), str) or not entry[f].strip()]
        if missing:
            raise ValueError(
                f"{path}: entries[{i}] missing or empty field(s): "
                f"{', '.join(missing)} (every entry needs a one-line reason)")
    return data["entries"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="scan_build_gate")
    parser.add_argument("--results", required=True,
                        help="scan-build output directory (searched for "
                             "*.plist recursively)")
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--root", default=None)
    parser.add_argument("--write-baseline", default=None,
                        help="write the observed findings as a baseline "
                             "skeleton (reasons must then be filled in)")
    args = parser.parse_args(argv)

    try:
        results = Path(args.results)
        if not results.is_dir():
            raise ValueError(f"--results {results} is not a directory")
        root = Path(args.root).resolve() if args.root else REPO_ROOT
        baseline_path = (Path(args.baseline) if args.baseline
                         else REPO_ROOT / "tools" / "analyze"
                         / "scan_build_baseline.json")
        entries = load_baseline(baseline_path)
        findings = collect(results, root)
    except ValueError as err:
        print(f"scan_build_gate: error: {err}", file=sys.stderr)
        return 2

    if args.write_baseline:
        skeleton = {"entries": [
            {"checker": f["checker"], "file": f["file"], "hash": f["hash"],
             "reason": f"FILL IN: {f['description']}"[:120]}
            for f in findings]}
        Path(args.write_baseline).write_text(
            json.dumps(skeleton, indent=1, sort_keys=True) + "\n")
        print(f"scan_build_gate: wrote {len(findings)} entr(ies) to "
              f"{args.write_baseline}")
        return 0

    known = {(e["checker"], e["file"], e["hash"]) for e in entries}
    observed = {(f["checker"], f["file"], f["hash"]) for f in findings}
    new = [f for f in findings
           if (f["checker"], f["file"], f["hash"]) not in known]
    stale = [e for e in entries
             if (e["checker"], e["file"], e["hash"]) not in observed]

    for f in new:
        print(f"{f['file']}:{f['line']}: [{f['checker']}] {f['description']} "
              f"(hash {f['hash']})")
    for e in stale:
        print(f"note: stale baseline entry ({e['checker']}, {e['file']}) — "
              f"no longer reported; consider removing (reason was: "
              f"{e['reason']})")
    print(f"scan_build_gate: {len(findings)} finding(s), {len(new)} new, "
          f"{len(findings) - len(new)} baselined, {len(stale)} stale "
          f"baseline entr(ies): {'FAIL' if new else 'pass'}")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
