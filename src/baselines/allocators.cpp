#include "baselines/allocators.hpp"

#include <limits>
#include <vector>

#include "geo/point.hpp"
#include "util/assert.hpp"

namespace idde::baselines {

using core::AllocationProfile;
using core::ChannelSlot;

AllocationProfile nearest_allocation(const model::ProblemInstance& instance,
                                     ChannelPolicy policy, util::Rng* rng) {
  IDDE_EXPECTS(policy == ChannelPolicy::kLeastLoaded || rng != nullptr);
  const std::size_t channels = instance.radio_env().channels_per_server;
  AllocationProfile profile(instance.user_count(), core::kUnallocated);
  // Per-(server, channel) user counts for least-loaded channel selection.
  std::vector<std::size_t> load(instance.server_count() * channels, 0);
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    double best_distance = std::numeric_limits<double>::infinity();
    std::size_t best_server = ChannelSlot::kNone;
    for (const std::size_t i : instance.covering_servers(j)) {
      const double d = geo::distance_m(instance.server(i).position,
                                     instance.user(j).position);
      if (d < best_distance) {
        best_distance = d;
        best_server = i;
      }
    }
    if (best_server == ChannelSlot::kNone) continue;
    std::size_t best_channel = 0;
    if (policy == ChannelPolicy::kRandom) {
      best_channel = rng->index(channels);
    } else {
      for (std::size_t x = 1; x < channels; ++x) {
        if (load[best_server * channels + x] <
            load[best_server * channels + best_channel]) {
          best_channel = x;
        }
      }
    }
    ++load[best_server * channels + best_channel];
    profile[j] = ChannelSlot{best_server, best_channel};
  }
  return profile;
}

AllocationProfile random_allocation(const model::ProblemInstance& instance,
                                    util::Rng& rng) {
  const std::size_t channels = instance.radio_env().channels_per_server;
  AllocationProfile profile(instance.user_count(), core::kUnallocated);
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    const auto& covering = instance.covering_servers(j);
    if (covering.empty()) continue;
    const std::size_t server = covering[rng.index(covering.size())];
    profile[j] = ChannelSlot{server, rng.index(channels)};
  }
  return profile;
}

}  // namespace idde::baselines
