#include "core/potential.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace idde::core {

double interference_bound_watts(const model::ProblemInstance& instance,
                          std::size_t user) {
  const auto& env = instance.radio_env();
  const auto& covering = env.covering_servers[user];
  if (covering.empty()) return 0.0;

  // R_{j,min}: the smallest rate user j could see alone on any candidate
  // channel. T_j is then the interference headroom on the user's
  // *best-gain* channel while still sustaining R_{j,min} — evaluating the
  // bound at the min-rate channel itself would make it identically zero.
  double r_min = std::numeric_limits<double>::infinity();
  double bandwidth_at_min = 0.0;
  double best_gain = 0.0;
  for (const std::size_t i : covering) {
    const double g = env.gain_at(i, user);
    best_gain = std::max(best_gain, g);
    for (std::size_t x = 0; x < env.channels_per_server; ++x) {
      const double b = env.bandwidth_mbps_at(i, x);
      const double solo_rate =
          b * std::log2(1.0 + g * env.power[user] / env.noise_watts);
      if (solo_rate < r_min) {
        r_min = solo_rate;
        bandwidth_at_min = b;
      }
    }
  }
  const double denom = std::pow(2.0, r_min / bandwidth_at_min) - 1.0;
  IDDE_ASSERT(denom > 0.0, "degenerate rate in Lemma 2 bound");
  // >= 0 by construction; = 0 only when the user has a single candidate
  // gain (e.g. exactly one covering server).
  return std::max(0.0, best_gain * env.power[user] / denom - env.noise_watts);
}

double potential(const model::ProblemInstance& instance,
                 const AllocationProfile& allocation) {
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (allocation[j].allocated()) field.add_user(j, allocation[j]);
  }
  const std::size_t m = instance.user_count();
  std::vector<double> beta(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    if (allocation[j].allocated()) beta[j] = field.benefit(j, allocation[j]);
  }

  double pairwise = 0.0;
  double penalty = 0.0;
  double beta_sum = 0.0;
  for (std::size_t j = 0; j < m; ++j) beta_sum += beta[j];
  for (std::size_t j = 0; j < m; ++j) {
    if (allocation[j].allocated()) {
      // 1/2 sum_{j} sum_{q != j} beta_j beta_q over allocated pairs.
      pairwise += beta[j] * (beta_sum - beta[j]);
    } else {
      penalty += interference_bound_watts(instance, j) * beta_sum;
    }
  }
  return 0.5 * pairwise - penalty;
}

}  // namespace idde::core
