// IDDE-G+ — a joint-refinement extension beyond the paper.
//
// IDDE-G fixes the allocation before placing any data, so a user that is
// indifferent (or nearly indifferent) between two covering servers may be
// parked on the one that ends up far from its data. The refinement loop
// exploits that slack: after Phase 2, every user whose benefit would drop
// by at most `epsilon_fraction` is re-pointed to the candidate channel that
// minimises its own delivery latency under the current placements, and
// Phase 2 is re-run on the adjusted allocation. Iterating a couple of
// rounds trades an (explicitly bounded) sliver of Objective #1 for a
// further cut in Objective #2; bench/ext_refinement sweeps the trade-off.
#pragma once

#include "core/approach.hpp"
#include "core/game.hpp"

namespace idde::core {

struct RefinementOptions {
  GameOptions game;
  /// A refinement move may lower the mover's benefit by at most this
  /// fraction of its current benefit (0 = only latency-neutral ties).
  double epsilon_fraction = 0.05;
  /// Alternations of (reallocate, re-place) after the base IDDE-G run.
  std::size_t refinement_rounds = 2;
};

class IddeGPlus final : public Approach {
 public:
  explicit IddeGPlus(RefinementOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "IDDE-G+"; }

  [[nodiscard]] Strategy solve(const model::ProblemInstance& instance,
                               util::Rng& rng) const override;

  [[nodiscard]] const RefinementOptions& options() const noexcept {
    return options_;
  }

 private:
  RefinementOptions options_;
};

}  // namespace idde::core
