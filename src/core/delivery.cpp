#include "core/delivery.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::core {

DeliveryProfile::DeliveryProfile(const model::ProblemInstance& instance)
    : instance_(&instance),
      data_count_(instance.data_count()),
      flags_(instance.server_count() * instance.data_count(), false),
      hosts_flat_(instance.data_count() * instance.server_count(), 0),
      host_count_(instance.data_count(), 0) {
  free_kb_.reserve(instance.server_count());
  for (const model::EdgeServer& s : instance.servers()) {
    free_kb_.push_back(mb_to_kb(s.storage_mb));
  }
  item_kb_.reserve(instance.data_count());
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    item_kb_.push_back(mb_to_kb(instance.data(k).size_mb));
  }
}

bool DeliveryProfile::can_place(std::size_t server, std::size_t item) const {
  IDDE_EXPECTS(server < free_kb_.size());
  IDDE_EXPECTS(item < data_count_);
  if (placed(server, item)) return false;
  return item_kb_[item] <= free_kb_[server];
}

void DeliveryProfile::place(std::size_t server, std::size_t item) {
  IDDE_ASSERT(can_place(server, item), "infeasible placement");
  flags_[server * data_count_ + item] = true;
  free_kb_[server] -= item_kb_[item];
  // Shift-insert into the item's arena segment, keeping ids ascending.
  std::size_t* const seg = hosts_flat_.data() + item * free_kb_.size();
  std::size_t pos = host_count_[item];
  while (pos > 0 && seg[pos - 1] > server) {
    seg[pos] = seg[pos - 1];
    --pos;
  }
  seg[pos] = server;
  ++host_count_[item];
  ++count_;
}

void DeliveryProfile::remove(std::size_t server, std::size_t item) {
  IDDE_EXPECTS(server < free_kb_.size());
  IDDE_EXPECTS(item < data_count_);
  IDDE_ASSERT(placed(server, item), "removing absent placement");
  flags_[server * data_count_ + item] = false;
  free_kb_[server] += item_kb_[item];
  // Shift-erase from the item's arena segment, keeping ids ascending.
  std::size_t* const seg = hosts_flat_.data() + item * free_kb_.size();
  std::size_t pos = 0;
  while (seg[pos] != server) ++pos;
  for (std::size_t tail = pos + 1; tail < host_count_[item]; ++tail) {
    seg[tail - 1] = seg[tail];
  }
  --host_count_[item];
  --count_;
}

DeliveryProfile DeliveryProfile::restore(
    const model::ProblemInstance& instance,
    std::span<const std::pair<std::size_t, std::size_t>> placements,
    std::span<const double> free_mb) {
  IDDE_EXPECTS(free_mb.size() == instance.server_count());
  DeliveryProfile profile(instance);
  for (const auto& [server, item] : placements) {
    profile.place(server, item);
  }
  // Headroom is recomputed by the replay above: the integer-KB ledger is
  // order-independent, so it already matches the recorded values of any
  // genuine checkpoint (see header).
  return profile;
}

DeliveryEvaluator::DeliveryEvaluator(const model::ProblemInstance& instance,
                                     const AllocationProfile& allocation,
                                     bool collaborative)
    : instance_(&instance), collaborative_(collaborative) {
  const auto& requests = instance.requests();
  // Structure first (instance-dependent only), then the allocation-
  // dependent state via the same path reset() uses.
  std::vector<std::size_t> item_degree(instance.data_count(), 0);
  std::size_t total_requests = 0;
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : requests.items_of(j)) {
      ++item_degree[k];
      ++total_requests;
    }
  }
  request_user_.reserve(total_requests);
  request_item_.reserve(total_requests);
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : requests.items_of(j)) {
      request_user_.push_back(j);
      request_item_.push_back(k);
    }
  }
  item_req_offset_.assign(instance.data_count() + 1, 0);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    item_req_offset_[k + 1] = item_req_offset_[k] + item_degree[k];
  }
  item_req_ids_.resize(total_requests);
  std::vector<std::size_t> cursor(item_req_offset_.begin(),
                                  item_req_offset_.end() - 1);
  for (std::size_t id = 0; id < total_requests; ++id) {
    item_req_ids_[cursor[request_item_[id]]++] = id;
  }
  serving_server_.resize(instance.user_count());
  request_serving_.resize(total_requests);
  request_latency_.resize(total_requests);
  reset(allocation, collaborative);
}

void DeliveryEvaluator::reset(const AllocationProfile& allocation,
                              bool collaborative) {
  IDDE_EXPECTS(allocation.size() == instance_->user_count());
  collaborative_ = collaborative;
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    serving_server_[j] =
        allocation[j].allocated() ? allocation[j].server : ChannelSlot::kNone;
  }
  total_latency_ = 0.0;
  for (std::size_t id = 0; id < request_user_.size(); ++id) {
    request_serving_[id] = serving_server_[request_user_[id]];
    const double cloud = instance_->latency().cloud_transfer_seconds(
        instance_->data(request_item_[id]).size_mb);
    request_latency_[id] = cloud;
    total_latency_ += cloud;
  }
}

double DeliveryEvaluator::gain_seconds(std::size_t server,
                                       std::size_t item) const {
  IDDE_EXPECTS(server < instance_->server_count());
  IDDE_EXPECTS(item < instance_->data_count());
  const double size = instance_->data(item).size_mb;
  const auto& latency = instance_->latency();
  double gain = 0.0;
  for (std::size_t r = item_req_offset_[item]; r < item_req_offset_[item + 1];
       ++r) {
    const std::size_t id = item_req_ids_[r];
    const std::size_t serving = request_serving_[id];
    if (serving == ChannelSlot::kNone) continue;  // cloud-only user
    if (!collaborative_ && serving != server) continue;
    const double candidate =
        latency.edge_transfer_seconds(server, serving, size);
    if (candidate < request_latency_[id]) {
      gain += request_latency_[id] - candidate;
    }
  }
  return gain;
}

double DeliveryEvaluator::commit(std::size_t server, std::size_t item) {
  const double size = instance_->data(item).size_mb;
  const auto& latency = instance_->latency();
  double gain = 0.0;
  for (std::size_t r = item_req_offset_[item]; r < item_req_offset_[item + 1];
       ++r) {
    const std::size_t id = item_req_ids_[r];
    const std::size_t serving = request_serving_[id];
    if (serving == ChannelSlot::kNone) continue;
    if (!collaborative_ && serving != server) continue;
    const double candidate =
        latency.edge_transfer_seconds(server, serving, size);
    if (candidate < request_latency_[id]) {
      gain += request_latency_[id] - candidate;
      request_latency_[id] = candidate;
    }
  }
  total_latency_ -= gain;
  return gain;
}

double DeliveryEvaluator::average_latency_seconds() const {
  if (request_user_.empty()) return 0.0;
  return total_latency_ / static_cast<double>(request_user_.size());
}

namespace {

/// Fault-free Eq. 8 argmin over `hosts` with the cloud as the cap.
/// Returns kCloudSource when the cloud (or nothing) wins. Ties break to
/// the lowest host id, then to the edge over the cloud — the same order
/// the degraded argmin uses, so tier classification is stable.
std::size_t argmin_source(const model::ProblemInstance& instance,
                          std::span<const std::size_t> hosts,
                          std::size_t serving, double size_mb,
                          std::span<const std::uint8_t> server_up,
                          const net::CostMatrix* costs, double& best_seconds) {
  const auto& latency = instance.latency();
  std::size_t source = kCloudSource;
  best_seconds = latency.cloud_transfer_seconds(size_mb);
  for (const std::size_t host : hosts) {
    if (!server_up.empty() && !server_up[host]) continue;
    const double cost =
        costs != nullptr ? costs->cost(host, serving)
                         : latency.costs().cost(host, serving);
    const double seconds = cost * size_mb;
    if (seconds < best_seconds) {
      best_seconds = seconds;
      source = host;
    }
  }
  return source;
}

/// Per-request resolution telemetry (Eq. 8 tiers + latency distribution).
/// Shared by the fault layer and the DES replay, which both resolve
/// through this function.
void note_resolution(const FailoverDecision& decision) {
  switch (decision.tier) {
    case FallbackTier::kPrimary:
      IDDE_OBS_COUNT("resolve.primary_total", 1);
      break;
    case FallbackTier::kReplica:
      IDDE_OBS_COUNT("resolve.replica_total", 1);
      break;
    case FallbackTier::kCloud:
      IDDE_OBS_COUNT("resolve.cloud_total", 1);
      break;
  }
  IDDE_OBS_HISTOGRAM("resolve.latency_ms", decision.seconds * 1e3);
}

}  // namespace

FailoverDecision resolve_with_failover(
    const model::ProblemInstance& instance, std::span<const std::size_t> hosts,
    std::size_t serving, double size_mb,
    std::span<const std::uint8_t> server_up,
    const net::CostMatrix* degraded_costs,
    std::span<const std::size_t> fault_free_hosts) {
  const std::span<const std::size_t> reference =
      fault_free_hosts.empty() ? hosts : fault_free_hosts;
  FailoverDecision decision;
  const bool serving_dead = serving != ChannelSlot::kNone &&
                            !server_up.empty() && !server_up[serving];
  if (serving == ChannelSlot::kNone || serving_dead) {
    // Cloud-only user (no radio channel) or the user's own server died:
    // nothing can relay an edge replica, so the cloud serves directly.
    decision.source = kCloudSource;
    decision.seconds = instance.latency().cloud_transfer_seconds(size_mb);
    double fault_free = 0.0;
    const std::size_t fault_free_source =
        serving == ChannelSlot::kNone
            ? kCloudSource
            : argmin_source(instance, reference, serving, size_mb, {}, nullptr,
                            fault_free);
    decision.tier = fault_free_source == kCloudSource ? FallbackTier::kPrimary
                                                      : FallbackTier::kCloud;
    note_resolution(decision);
    return decision;
  }

  double fault_free_seconds = 0.0;
  const std::size_t fault_free_source = argmin_source(
      instance, reference, serving, size_mb, {}, nullptr, fault_free_seconds);
  decision.source = argmin_source(instance, hosts, serving, size_mb, server_up,
                                  degraded_costs, decision.seconds);
  if (decision.source == fault_free_source) {
    decision.tier = FallbackTier::kPrimary;
  } else if (decision.source == kCloudSource) {
    decision.tier = FallbackTier::kCloud;
  } else {
    decision.tier = FallbackTier::kReplica;
  }
  note_resolution(decision);
  return decision;
}

double total_latency_seconds(const model::ProblemInstance& instance,
                             const AllocationProfile& allocation,
                             const DeliveryProfile& delivery,
                             bool collaborative) {
  DeliveryEvaluator evaluator(instance, allocation, collaborative);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : delivery.hosts(k)) {
      evaluator.commit(i, k);
    }
  }
  return evaluator.total_latency_seconds();
}

}  // namespace idde::core
