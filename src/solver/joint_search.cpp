#include "solver/joint_search.hpp"

#include <algorithm>

#include "core/delivery.hpp"
#include "core/metrics.hpp"
#include "solver/placement_bnb.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace idde::solver {

namespace {

using core::AllocationProfile;
using core::ChannelSlot;

/// One probe: a uniformly random feasible assignment — every covered user
/// gets a random covering server and channel. This mirrors a CP search
/// diving without a domain-specific value heuristic: incumbents are
/// feasible-and-scored, not locally optimised, which is why the original
/// IDDE-IP trails IDDE-G on data rate despite its generous budget.
AllocationProfile construct_allocation(const model::ProblemInstance& instance,
                                       util::Rng& rng) {
  const std::size_t m = instance.user_count();
  const std::size_t channels = instance.radio_env().channels_per_server;
  AllocationProfile profile(m, core::kUnallocated);
  for (std::size_t j = 0; j < m; ++j) {
    const auto& covering = instance.covering_servers(j);
    if (covering.empty()) continue;
    profile[j] = ChannelSlot{covering[rng.index(covering.size())],
                             rng.index(channels)};
  }
  return profile;
}

}  // namespace

JointSearchResult joint_search(const model::ProblemInstance& instance,
                               util::Rng& rng,
                               const JointSearchOptions& options) {
  IDDE_EXPECTS(options.budget_ms > 0.0);
  IDDE_EXPECTS(options.allocation_share > 0.0 &&
               options.allocation_share < 1.0);

  // --- Objective #1: allocation probes under the first budget share. ---
  const util::Deadline allocation_deadline(options.budget_ms *
                                           options.allocation_share);
  AllocationProfile best_allocation;
  double best_rate = -1.0;
  std::size_t probes = 0;
  do {
    AllocationProfile candidate = construct_allocation(instance, rng);
    const double rate = core::average_data_rate_mbps(instance, candidate);
    ++probes;
    if (rate > best_rate) {
      best_rate = rate;
      best_allocation = std::move(candidate);
    }
  } while (!allocation_deadline.expired());

  // --- Objective #2: placement branch-and-bound with the remainder. ---
  const util::Deadline placement_deadline(
      options.budget_ms * (1.0 - options.allocation_share));
  PlacementSearchResult placement =
      placement_branch_and_bound(instance, best_allocation,
                                 placement_deadline);

  core::Strategy strategy{std::move(best_allocation),
                          std::move(placement.delivery)};
  strategy.approach_name = "IDDE-IP";
  strategy.placements = strategy.delivery.placement_count();
  return JointSearchResult{
      .strategy = std::move(strategy),
      .allocation_probes = probes,
      .placement_nodes = placement.nodes_explored,
      .placement_proven_optimal = placement.proven_optimal,
  };
}

}  // namespace idde::solver
