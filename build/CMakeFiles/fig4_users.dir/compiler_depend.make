# Empty compiler generated dependencies file for fig4_users.
# This may be replaced when dependencies are built.
