// The two halves of an IDDE strategy (Definitions 1 and 2):
//  - AllocationProfile alpha: one ChannelSlot per user,
//  - DeliveryProfile sigma: the set of (server, item) replica placements,
//    tracked together with per-server storage headroom.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/instance.hpp"
#include "radio/interference.hpp"

namespace idde::core {

using radio::ChannelSlot;
using radio::kUnallocated;

/// alpha = {alpha_1 .. alpha_M}; alpha_j = kUnallocated encodes (0,0).
using AllocationProfile = std::vector<ChannelSlot>;

/// Storage quantum for Eq. 6 accounting: sizes and capacities are tracked
/// in whole KB (rounded to nearest) so place/remove sequences are exact
/// integer arithmetic — replaying placements in any order reproduces the
/// same headroom bit-for-bit, with no float drift.
[[nodiscard]] inline std::int64_t mb_to_kb(double mb) {
  return std::llround(mb * 1024.0);
}

/// sigma = {sigma_{i,k}} with the storage constraint (Eq. 6) enforced at
/// every mutation. The cloud's implicit replicas (Eq. 7) are not stored.
class DeliveryProfile {
 public:
  explicit DeliveryProfile(const model::ProblemInstance& instance);

  /// True iff sigma_{i,k} = 1.
  [[nodiscard]] bool placed(std::size_t server, std::size_t item) const {
    return flags_[server * data_count_ + item];
  }

  /// Whether placing d_k on v_i would respect Eq. (6) (and is not a
  /// duplicate placement).
  [[nodiscard]] bool can_place(std::size_t server, std::size_t item) const;

  /// Sets sigma_{i,k} = 1. Aborts if infeasible — callers must check.
  void place(std::size_t server, std::size_t item);

  /// Clears sigma_{i,k} = 0, returning the item's KB to the server's
  /// headroom. Aborts if the placement does not exist — callers must
  /// check placed(). Because accounting is exact integer KB, any
  /// place/remove sequence leaves headroom identical to recomputing it
  /// from the surviving placements.
  void remove(std::size_t server, std::size_t item);

  /// Remaining reserved space on v_i (MB). Derived from the exact KB
  /// ledger: a pure function of the current placement set.
  [[nodiscard]] double free_mb(std::size_t server) const {
    return static_cast<double>(free_kb_[server]) / 1024.0;
  }

  /// Remaining reserved space on v_i in exact KB.
  [[nodiscard]] std::int64_t free_kb(std::size_t server) const {
    return free_kb_[server];
  }

  /// Servers currently hosting d_k (ascending ids).
  [[nodiscard]] std::span<const std::size_t> hosts(std::size_t item) const {
    return {hosts_flat_.data() + item * free_kb_.size(), host_count_[item]};
  }

  [[nodiscard]] std::size_t placement_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return free_kb_.size();
  }
  [[nodiscard]] std::size_t data_count() const noexcept { return data_count_; }

  /// Checkpoint/restore: rebuilds a profile from a placement list.
  /// Headroom is recomputed from the placements — integer-KB accounting
  /// makes replay order-independent, so a restored profile is
  /// bit-identical to the uninterrupted one regardless of the order the
  /// placements were recorded in. `free_mb` must have one entry per
  /// server and is accepted for interface compatibility with recorded
  /// checkpoints; the recomputed ledger is authoritative. Placements
  /// must be feasible and duplicate-free (checked).
  [[nodiscard]] static DeliveryProfile restore(
      const model::ProblemInstance& instance,
      std::span<const std::pair<std::size_t, std::size_t>> placements,
      std::span<const double> free_mb);

 private:
  const model::ProblemInstance* instance_;
  std::size_t data_count_;
  std::vector<bool> flags_;             // N x K
  std::vector<std::int64_t> free_kb_;   // per server, exact KB ledger
  std::vector<std::int64_t> item_kb_;   // per item, quantized size
  /// Host lists as a flat K x N arena: item k's hosts occupy
  /// hosts_flat_[k*N .. k*N + host_count_[k]), ascending. An item can have
  /// at most N hosts, so the segments never overflow and place() is a
  /// shift-insert with no allocation — the planners call it once per
  /// committed placement inside their hot loops.
  std::vector<std::size_t> hosts_flat_;   // K x N
  std::vector<std::size_t> host_count_;   // per item
  std::size_t count_ = 0;
};

/// A complete IDDE strategy plus solver diagnostics.
struct Strategy {
  Strategy(AllocationProfile alloc, DeliveryProfile del)
      : allocation(std::move(alloc)), delivery(std::move(del)) {}

  AllocationProfile allocation;
  DeliveryProfile delivery;
  /// Whether the scheme implements edge-server collaboration at delivery
  /// time. Approaches whose delivery plane cannot fetch from neighbouring
  /// edge servers (CDP, DUP-G — see Section 4.1/5 of the paper) serve a
  /// request from the user's own server or the cloud only; Eq. 8's full
  /// min applies when true.
  bool collaborative_delivery = true;
  // Diagnostics, filled by the producing approach.
  std::string approach_name;
  std::size_t game_rounds = 0;    ///< Phase-1 best-response rounds
  std::size_t game_moves = 0;     ///< applied allocation updates
  bool game_converged = true;     ///< false if the round cap was hit
  std::size_t placements = 0;     ///< Phase-2 placements taken
};

}  // namespace idde::core
