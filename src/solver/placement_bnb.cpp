#include "solver/placement_bnb.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace idde::solver {

namespace {

using core::AllocationProfile;
using core::ChannelSlot;
using core::DeliveryProfile;

class BnbContext {
 public:
  BnbContext(const model::ProblemInstance& instance,
             const AllocationProfile& allocation,
             const util::Deadline& deadline)
      : instance_(instance),
        deadline_(deadline),
        result_{DeliveryProfile(instance), 0.0, 0, false} {
    // Serving server per user.
    std::vector<std::size_t> serving;
    serving.reserve(instance.user_count());
    for (const ChannelSlot& slot : allocation) {
      serving.push_back(slot.allocated() ? slot.server : ChannelSlot::kNone);
    }
    // Absolute lower bound on the total latency any placement can reach:
    // every request relaxed to its cheapest conceivable source (ignoring
    // storage). Admissible, so pruning with it preserves optimality.
    const auto& requests = instance.requests();
    floor_sum_ = 0.0;
    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      for (const std::size_t k : requests.items_of(j)) {
        const double size = instance.data(k).size_mb;
        double floor = instance.latency().cloud_transfer_seconds(size);
        if (serving[j] != ChannelSlot::kNone) {
          for (std::size_t i = 0; i < instance.server_count(); ++i) {
            floor = std::min(floor, instance.latency().edge_transfer_seconds(
                                        i, serving[j], size));
          }
        }
        floor_sum_ += floor;
      }
    }
    // Branch in model order (sigma_{1,1} ... sigma_{N,K}), matching the
    // variable order an untuned CP model would dive on.
    decisions_.reserve(instance.server_count() * instance.data_count());
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      for (std::size_t k = 0; k < instance.data_count(); ++k) {
        decisions_.emplace_back(i, k);
      }
    }
    core::DeliveryEvaluator root(instance, allocation);
    result_.total_latency_seconds = root.total_latency_seconds() + 1.0;
    DeliveryProfile profile(instance);
    recurse(profile, root, 0);
    if (!deadline_.expired()) result_.proven_optimal = true;
  }

  PlacementSearchResult take() && { return std::move(result_); }

 private:
  void recurse(DeliveryProfile& profile, core::DeliveryEvaluator& evaluator,
               std::size_t depth) {
    ++result_.nodes_explored;
    if (evaluator.total_latency_seconds() < result_.total_latency_seconds) {
      result_.total_latency_seconds = evaluator.total_latency_seconds();
      result_.delivery = profile;
    }
    if (depth == decisions_.size() || deadline_.expired()) return;
    if (floor_sum_ >= result_.total_latency_seconds) return;  // optimal hit

    const auto [i, k] = decisions_[depth];
    if (profile.can_place(i, k)) {
      // Commits are not undoable, so branch on copies ("place" first —
      // the diving heuristic that produces the first incumbents).
      core::DeliveryEvaluator taken = evaluator;
      DeliveryProfile taken_profile = profile;
      taken.commit(i, k);
      taken_profile.place(i, k);
      recurse(taken_profile, taken, depth + 1);
    }
    recurse(profile, evaluator, depth + 1);
  }

  const model::ProblemInstance& instance_;
  const util::Deadline& deadline_;
  std::vector<std::pair<std::size_t, std::size_t>> decisions_;
  double floor_sum_ = 0.0;
  PlacementSearchResult result_;
};

}  // namespace

PlacementSearchResult placement_branch_and_bound(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation,
    const util::Deadline& deadline) {
  return BnbContext(instance, allocation, deadline).take();
}

}  // namespace idde::solver
