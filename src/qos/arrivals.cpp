#include "qos/arrivals.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace idde::qos {

namespace {

/// Arrival instant for one copy. Uniform placement over the window is the
/// order-statistics form of a Poisson process conditioned on its count;
/// the flash-crowd variant routes a fraction of draws into the burst.
double draw_time(const ArrivalConfig& config, util::Rng& rng) {
  if (config.process == ArrivalProcess::kFlashCrowd &&
      rng.bernoulli(config.flash_fraction)) {
    const double start = config.flash_start_s;
    const double width = std::max(config.flash_width_s, 1e-9);
    return rng.uniform(start, start + width);
  }
  return rng.uniform(0.0, config.window_s);
}

}  // namespace

std::vector<Arrival> generate_arrivals(const model::ProblemInstance& instance,
                                       const ArrivalConfig& config,
                                       util::Rng& rng) {
  IDDE_EXPECTS(!config.inert());
  IDDE_EXPECTS(config.load_multiplier >= 0.0);
  IDDE_EXPECTS(config.window_s > 0.0);

  const double whole = std::floor(config.load_multiplier);
  const double frac = config.load_multiplier - whole;
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(
      std::ceil(config.load_multiplier *
                static_cast<double>(instance.requests().total_requests()))));

  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : instance.requests().items_of(j)) {
      std::size_t copies = static_cast<std::size_t>(whole);
      if (frac > 0.0 && rng.bernoulli(frac)) ++copies;
      for (std::size_t c = 0; c < copies; ++c) {
        arrivals.push_back(Arrival{j, k, draw_time(config, rng)});
      }
    }
  }
  return arrivals;
}

}  // namespace idde::qos
