file(REMOVE_RECURSE
  "CMakeFiles/idde_solver.dir/exhaustive.cpp.o"
  "CMakeFiles/idde_solver.dir/exhaustive.cpp.o.d"
  "CMakeFiles/idde_solver.dir/joint_search.cpp.o"
  "CMakeFiles/idde_solver.dir/joint_search.cpp.o.d"
  "CMakeFiles/idde_solver.dir/placement_bnb.cpp.o"
  "CMakeFiles/idde_solver.dir/placement_bnb.cpp.o.d"
  "libidde_solver.a"
  "libidde_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
