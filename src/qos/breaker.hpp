// Per-server circuit breaker (closed / open / half-open).
//
// A server whose deliveries keep aborting (crashes, dead links) should be
// taken out of the source rotation instead of being retried into — every
// retry against a down server burns a retry token, a queue slot and the
// request's deadline. The breaker watches a rolling window of delivery
// outcomes per source server:
//
//   closed     all traffic allowed. When the window holds >= min_samples
//              outcomes and the failure fraction reaches
//              failure_threshold, trip to open.
//   open       the server is excluded from failover resolution (requests
//              fall through to surviving replicas or go cloud-direct) for
//              open_duration_s of simulated time.
//   half-open  after the cooldown, up to half_open_probes concurrent trial
//              deliveries are allowed. The first success closes the
//              breaker (window reset); the first failure re-opens it.
//
// All transitions are driven by simulated event times passed in by the
// engine — the breaker holds no clock and is fully deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qos/config.hpp"

namespace idde::qos {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config)
      : config_(config),
        // capacity-bound: config.window outcomes (ring buffer).
        outcomes_(config.window > 0 ? config.window : 1, 0) {}

  /// May this server serve a delivery starting at `now_s` (simulated seconds)? Transitions
  /// open -> half-open when the cooldown has elapsed.
  [[nodiscard]] bool allows(double now_s) noexcept {
    if (config_.inert()) return true;
    refresh(now_s);
    if (state_ == BreakerState::kClosed) return true;
    if (state_ == BreakerState::kOpen) return false;
    return probes_started_ < config_.half_open_probes;
  }

  /// The engine actually routed a delivery from this server (counts a
  /// half-open probe).
  void on_attempt_started(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) ++probes_started_;
  }

  void record_success(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) {
      close();
      return;
    }
    if (state_ == BreakerState::kClosed) push_outcome(1);
  }

  void record_failure(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) {
      open(now_s);
      return;
    }
    if (state_ != BreakerState::kClosed) return;  // outcomes while open: moot
    push_outcome(0);
    if (filled_ >= config_.min_samples && filled_ > 0) {
      const double failure_rate =
          static_cast<double>(failures_) / static_cast<double>(filled_);
      if (failure_rate >= config_.failure_threshold) open(now_s);
    }
  }

  [[nodiscard]] BreakerState state(double now_s) noexcept {
    refresh(now_s);
    return state_;
  }

  /// Times the breaker tripped closed -> open (or re-opened from
  /// half-open); the qos.breaker_opens metric.
  [[nodiscard]] std::size_t times_opened() const noexcept {
    return times_opened_;
  }

 private:
  void refresh(double now_s) noexcept {
    if (state_ == BreakerState::kOpen && now_s >= open_until_) {
      state_ = BreakerState::kHalfOpen;
      probes_started_ = 0;
    }
  }

  void open(double now_s) noexcept {
    state_ = BreakerState::kOpen;
    open_until_ = now_s + config_.open_duration_s;
    ++times_opened_;
  }

  void close() noexcept {
    state_ = BreakerState::kClosed;
    next_ = 0;
    filled_ = 0;
    failures_ = 0;
    for (auto& outcome : outcomes_) outcome = 0;
  }

  void push_outcome(std::uint8_t success) noexcept {
    if (filled_ == outcomes_.size()) {
      if (outcomes_[next_] == 0) --failures_;
    } else {
      ++filled_;
    }
    outcomes_[next_] = success;
    if (success == 0) ++failures_;
    next_ = (next_ + 1) % outcomes_.size();
  }

  BreakerConfig config_;
  std::vector<std::uint8_t> outcomes_;  // ring; capacity-bound: window
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t failures_ = 0;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_ = 0.0;
  std::size_t probes_started_ = 0;
  std::size_t times_opened_ = 0;
};

}  // namespace idde::qos
