// Mobility scenario — the paper's future work, made concrete: users walk a
// CBD for ten simulated minutes while the vendor periodically re-optimises
// the IDDE strategy. Prints the per-minute trace and the cost/benefit of
// re-solving.
#include <cstdio>

#include "dynamic/simulation.hpp"
#include "sim/paper.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace idde;

  std::size_t seed = 1;
  std::size_t steps = 600;          // 10 minutes at 1 s steps
  std::size_t resolve_period = 60;  // re-solve every minute
  bool cold_start = false;
  util::CliParser cli(
      "mobility: 10 minutes of walking users with periodic re-optimisation");
  cli.add_size("seed", &seed, "simulation seed");
  cli.add_size("steps", &steps, "number of 1 s steps");
  cli.add_size("resolve-period", &resolve_period,
               "steps between re-solves (0 = never)");
  cli.add_flag("cold-start", &cold_start,
               "restart the game from scratch at each re-solve");
  if (!cli.parse(argc, argv)) return 0;

  dynamic::DynamicParams params;
  params.base = sim::paper_default_params();
  params.steps = steps;
  params.resolve_period = resolve_period;
  params.warm_start = !cold_start;

  std::printf(
      "simulating %zu s of pedestrian mobility, re-solving every %zu s "
      "(%s start)\n\n",
      steps, resolve_period, cold_start ? "cold" : "warm");
  const dynamic::DynamicSummary summary =
      dynamic::DynamicSimulation(params, static_cast<std::uint64_t>(seed))
          .run();

  util::TextTable table({"t (s)", "R_avg (MB/s)", "L_avg (ms)", "dropped",
                         "handovers", "migration (MB)"});
  // One row per minute to keep the trace readable.
  double window_rate = 0.0;
  double window_latency = 0.0;
  std::size_t window_dropped = 0;
  std::size_t window_handovers = 0;
  double window_migration = 0.0;
  std::size_t in_window = 0;
  for (const dynamic::StepRecord& record : summary.steps) {
    window_rate += record.rate_mbps;
    window_latency += record.latency_ms;
    window_dropped += record.dropped_users;
    window_handovers += record.handovers;
    window_migration += record.migration_mb;
    ++in_window;
    if (in_window == 60 || &record == &summary.steps.back()) {
      table.start_row()
          .add(record.time_s, 0)
          .add(window_rate / static_cast<double>(in_window))
          .add(window_latency / static_cast<double>(in_window))
          .add(window_dropped)
          .add(window_handovers)
          .add(window_migration, 0);
      window_rate = window_latency = window_migration = 0.0;
      window_dropped = window_handovers = 0;
      in_window = 0;
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf(
      "\ntotals: %.1f km walked, %zu re-solves, %zu handovers, %.0f MB "
      "migrated\n",
      summary.total_distance_m / 1e3, summary.total_resolves,
      summary.total_handovers, summary.total_migration_mb);
  std::printf("time-averaged R_avg %.2f MB/s, L_avg %.2f ms\n",
              summary.mean_rate_mbps, summary.mean_latency_ms);
  return 0;
}
