// Extension bench — re-solve period trade-off under user mobility (the
// paper's future work, DESIGN.md §6): time-averaged R_avg/L_avg vs the
// migration traffic and handovers each policy pays.
#include <cstdio>
#include <iostream>

#include "dynamic/simulation.hpp"
#include "sim/paper.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const auto steps =
      static_cast<std::size_t>(util::env_int_or("IDDE_MOBILITY_STEPS", 120));
  const int reps = util::experiment_reps(3);
  std::printf(
      "Mobility extension: %zu x 1 s steps, %d seeds, N=20 M=120 K=5\n\n",
      steps, reps);

  model::InstanceParams base = sim::paper_default_params();
  base.server_count = 20;   // keep the bench brisk
  base.user_count = 120;

  util::TextTable table({"resolve period (s)", "R_avg (MB/s)", "L_avg (ms)",
                         "handovers", "migration (MB)", "resolves"});
  for (const std::size_t period : {0ul, 10ul, 30ul, 60ul, 120ul}) {
    double rate = 0.0;
    double latency = 0.0;
    double handovers = 0.0;
    double migration = 0.0;
    double resolves = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      dynamic::DynamicParams params;
      params.base = base;
      params.steps = steps;
      params.resolve_period = period;
      const auto summary =
          dynamic::DynamicSimulation(params,
                                     9000 + static_cast<std::uint64_t>(rep))
              .run();
      rate += summary.mean_rate_mbps;
      latency += summary.mean_latency_ms;
      handovers += static_cast<double>(summary.total_handovers);
      migration += summary.total_migration_mb;
      resolves += static_cast<double>(summary.total_resolves);
    }
    const double r = static_cast<double>(reps);
    table.start_row()
        .add(period == 0 ? std::string("never") : std::to_string(period))
        .add(rate / r)
        .add(latency / r)
        .add(handovers / r, 1)
        .add(migration / r, 0)
        .add(resolves / r, 1);
  }
  table.print(std::cout);
  std::puts(
      "\nExpected shape: shorter periods hold R_avg/L_avg near the static "
      "optimum at the price of migration traffic and handovers.");
  return 0;
}
