#include "net/graph_gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "util/assert.hpp"

namespace idde::net {

std::vector<Edge> generate_topology(std::size_t node_count,
                                    const TopologyParams& params,
                                    util::Rng& rng) {
  IDDE_EXPECTS(node_count > 0);
  IDDE_EXPECTS(params.density >= 0.0);
  IDDE_EXPECTS(params.min_speed_mbps > 0.0);
  IDDE_EXPECTS(params.max_speed_mbps >= params.min_speed_mbps);

  const auto draw_weight = [&] {
    return 1.0 / rng.uniform(params.min_speed_mbps, params.max_speed_mbps);
  };

  std::vector<Edge> edges;
  if (node_count == 1) return edges;

  // Random spanning tree: attach each node (in shuffled order) to a random
  // already-attached node. This yields a connected skeleton with random
  // shape (random recursive tree).
  std::vector<std::size_t> order(node_count);
  for (std::size_t i = 0; i < node_count; ++i) order[i] = i;
  rng.shuffle(order);
  std::set<std::pair<std::size_t, std::size_t>> used;
  const auto key = [](std::size_t a, std::size_t b) {
    return std::pair{std::min(a, b), std::max(a, b)};
  };
  for (std::size_t i = 1; i < node_count; ++i) {
    const std::size_t parent = order[rng.index(i)];
    edges.push_back(Edge{order[i], parent, draw_weight()});
    used.insert(key(order[i], parent));
  }

  const auto target = std::max<std::size_t>(
      node_count - 1,
      static_cast<std::size_t>(
          std::llround(params.density * static_cast<double>(node_count))));
  const std::size_t max_links = node_count * (node_count - 1) / 2;
  const std::size_t want = std::min(target, max_links);
  while (edges.size() < want) {
    const std::size_t a = rng.index(node_count);
    const std::size_t b = rng.index(node_count);
    if (a == b) continue;
    if (!used.insert(key(a, b)).second) continue;
    edges.push_back(Edge{a, b, draw_weight()});
  }
  return edges;
}

Graph generate_topology_graph(std::size_t node_count,
                              const TopologyParams& params, util::Rng& rng) {
  return Graph(node_count, generate_topology(node_count, params, rng));
}

}  // namespace idde::net
