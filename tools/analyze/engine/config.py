"""Analysis configuration: scope and vocabulary, overridable from JSON.

The defaults encode this repository's conventions. The analyzer self-tests
point `--config` at a small JSON file to rescope the engine onto a fixture
tree; production runs use the defaults plus the committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx")
HEADER_SUFFIXES = (".hpp", ".h", ".hxx")


@dataclass
class Config:
    # Directory roots scanned for sources, relative to the analysis root.
    # tests/ is deliberately out of scope: the concurrency stress suite
    # drives the pool with raw std::thread on purpose.
    roots: list[str] = field(default_factory=lambda: [
        "src", "bench", "tools", "examples",
    ])
    # Subtrees pruned from discovery. The analyzer's own fixtures are
    # violations on purpose; scanning them would fail every repo run.
    exclude: list[str] = field(default_factory=lambda: [
        "tools/analyze/tests/fixtures",
    ])

    # Scope prefixes (repo-relative directories, "/"-joined).
    sync_exempt: list[str] = field(default_factory=lambda: ["src/util"])
    sleep_exempt: list[str] = field(
        default_factory=lambda: ["src/util", "src/des"])
    timing_exempt: list[str] = field(
        default_factory=lambda: ["src/util", "src/obs"])
    queue_scoped: list[str] = field(
        default_factory=lambda: ["src/qos", "src/des", "src/coding"])
    atomic_exempt: list[str] = field(
        default_factory=lambda: ["src/util", "src/obs"])
    # Determinism, unit-safety, and retry-bound packs police shipped
    # library code only.
    determinism_scope: list[str] = field(default_factory=lambda: ["src"])
    unit_scope: list[str] = field(default_factory=lambda: ["src"])
    retry_scope: list[str] = field(default_factory=lambda: ["src"])
    # Wait-for-completion loops must carry an escape hatch (hedge deadline,
    # retry budget, timeout) in the layers that replay or serve deliveries.
    hedge_scope: list[str] = field(
        default_factory=lambda: ["src/des", "src/serve"])

    # Hot-tagged kernel files: benchmarked allocation-free per move
    # (bench/perf_kernels gates on the warm-call allocation count).
    hot_path_files: list[str] = field(default_factory=lambda: [
        "src/radio/interference.cpp",
        "src/radio/batch_eval.cpp",
        "src/radio/batch_eval.hpp",
        "src/core/greedy_delivery.cpp",
        "src/core/repair_planner.cpp",
        "src/coding/coded_evaluator.cpp",
        "src/coding/coded_planner.cpp",
        "src/coding/coded_resolver.cpp",
    ])

    # Unit-safety vocabulary. A double/int64 parameter or double-returning
    # function in a public header whose name contains a QUANTITY token must
    # also contain a UNIT token, unless a DIMENSIONLESS token marks it as a
    # pure number (scale factors, probabilities, exponents).
    quantity_tokens: list[str] = field(default_factory=lambda: [
        "power", "noise", "interference", "energy",
        "latency", "delay", "timeout", "deadline", "backoff", "duration",
        "elapsed", "interval", "period", "window", "now", "wait", "makespan",
        "bandwidth", "speed", "rate", "throughput", "goodput",
        "storage", "size",
        "distance", "radius",
        "freq", "frequency",
    ])
    unit_tokens: list[str] = field(default_factory=lambda: [
        "ns", "us", "ms", "s", "sec", "secs", "seconds", "minutes", "hours",
        "hz", "khz", "mhz", "ghz",
        "db", "dbm", "watts", "mw", "kw",
        "bits", "bytes", "kb", "mb", "gb", "tb",
        "kbps", "mbps", "gbps", "rps", "qps",
        "m", "km", "cm", "m2",
        "pct",
    ])
    dimensionless_tokens: list[str] = field(default_factory=lambda: [
        "scale", "factor", "ratio", "fraction", "prob", "probability",
        "multiplier", "exponent", "share", "weight", "coefficient",
        "index", "count", "quantile", "eta", "alpha", "beta", "gamma",
    ])

    def in_scope(self, rel: str, prefixes: list[str]) -> bool:
        return any(rel == p or rel.startswith(p + "/") for p in prefixes)

    @classmethod
    def load(cls, path: Path | None) -> "Config":
        cfg = cls()
        if path is None:
            return cfg
        data = json.loads(path.read_text())
        unknown = set(data) - set(cfg.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown config keys in {path}: {sorted(unknown)}")
        for key, value in data.items():
            setattr(cfg, key, value)
        return cfg
