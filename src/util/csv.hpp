// CSV emission for experiment results. Writers quote on demand and keep a
// fixed column schema so downstream plotting scripts can rely on headers.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace idde::util {

/// Escapes a field per RFC 4180 (quotes when it contains , " or newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

class CsvWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row; must match the header arity.
  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed cells; formats doubles with %.6g.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& add(std::string_view value);
    RowBuilder& add(double value);
    RowBuilder& add(long long value);
    RowBuilder& add(std::size_t value) {
      return add(static_cast<long long>(value));
    }
    RowBuilder& add(int value) { return add(static_cast<long long>(value)); }
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };

  RowBuilder start_row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }

 private:
  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace idde::util
