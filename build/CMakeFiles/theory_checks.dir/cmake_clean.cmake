file(REMOVE_RECURSE
  "CMakeFiles/theory_checks.dir/bench/theory_checks.cpp.o"
  "CMakeFiles/theory_checks.dir/bench/theory_checks.cpp.o.d"
  "bench/theory_checks"
  "bench/theory_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
