// Time-stepped IDDE under user mobility — the paper's future-work scenario.
//
// Each step the users walk (random waypoint), channel gains and coverage
// are recomputed, and the standing strategy keeps serving: users who walk
// out of their serving server's coverage are dropped to the cloud, rates
// degrade as distances grow. Every `resolve_period` steps the system
// re-runs IDDE-G — optionally warm-started from the standing allocation —
// and pays for the replica moves through the migration planner.
//
// The re-solve period is the central trade-off: frequent re-solves keep
// R_avg/L_avg near the static optimum but generate migration traffic and
// handovers; bench/ext_mobility sweeps it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/game.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/migration.hpp"
#include "dynamic/mobility.hpp"
#include "model/instance_builder.hpp"

namespace idde::dynamic {

struct DynamicParams {
  model::InstanceParams base;     ///< static world (servers, storage, ...)
  double step_seconds = 1.0;
  std::size_t steps = 120;
  /// Re-run IDDE-G every this many steps; 0 = solve once at t=0 only.
  std::size_t resolve_period = 30;
  MobilityParams mobility;
  /// Warm-start the game from the standing allocation (vs from scratch).
  bool warm_start = true;
  /// Session churn (users going on/offline). Disabled by default; when
  /// enabled, metrics are computed over online users only and arrivals
  /// wait for the next resolve to be allocated (serving from the cloud in
  /// the meantime).
  bool churn_enabled = false;
  ChurnParams churn;
  /// Rebuild the instance from scratch every step (`with_user_positions`)
  /// instead of through the change-tracked WorldTracker. The tracker is
  /// bit-identical by construction; the oracle path is retained for the
  /// equivalence test in tests/test_dynamic.cpp and as a bisection tool.
  bool rebuild_oracle = false;
};

struct StepRecord {
  double time_s = 0.0;
  double rate_mbps = 0.0;      ///< R_avg under the standing strategy
  double latency_ms = 0.0;     ///< L_avg under the standing strategy
  std::size_t dropped_users = 0;  ///< users outside their server's coverage
  bool resolved = false;
  std::size_t handovers = 0;      ///< users whose server changed (resolve)
  double migration_mb = 0.0;      ///< replica traffic paid at this resolve
  std::size_t game_moves = 0;     ///< best-response moves (resolve only)
  std::size_t online_users = 0;   ///< churn: users online this step
  std::size_t churn_events = 0;   ///< churn: arrivals + departures
};

struct DynamicSummary {
  std::vector<StepRecord> steps;
  double mean_rate_mbps = 0.0;
  double mean_latency_ms = 0.0;
  std::size_t total_handovers = 0;
  std::size_t total_resolves = 0;
  double total_migration_mb = 0.0;
  double total_distance_m = 0.0;  ///< walked by all users
};

class DynamicSimulation {
 public:
  DynamicSimulation(DynamicParams params, std::uint64_t seed);

  /// Runs the full horizon and returns the per-step trace + aggregates.
  [[nodiscard]] DynamicSummary run();

 private:
  DynamicParams params_;
  std::uint64_t seed_;
};

}  // namespace idde::dynamic
