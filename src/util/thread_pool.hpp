// Fixed-size worker pool used by the experiment harness to run independent
// repetitions concurrently. Tasks are type-erased; parallel_for blocks the
// caller and rethrows the first task exception.
//
// Concurrency contract (machine-checked under clang -Wthread-safety): all
// mutable pool state — the task queue, the in-flight count, and the stop
// flag — is guarded by the single `mutex_` capability. `workers_` is written
// only by the constructor and joined only by the destructor, so it needs no
// guard; no public method may be called concurrently with the destructor
// (the standard lifetime rule, not a lock-order one).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace idde::util {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Stops accepting work, drains every queued task, then joins the
  /// workers. TSan-clean by construction: the stop flag flips under
  /// `mutex_` and the join provides the final happens-before edge.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; it may run on any worker at any later point.
  void submit(std::function<void()> task) IDDE_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void wait_idle() IDDE_EXCLUDES(mutex_);

  /// Tasks submitted but not yet picked up by a worker — an instantaneous
  /// backlog reading for telemetry (racy by nature: the true depth may
  /// change before the caller uses it).
  [[nodiscard]] std::size_t queued() IDDE_EXCLUDES(mutex_);

 private:
  void worker_loop() IDDE_EXCLUDES(mutex_);

  /// Worker handles; immutable between constructor exit and destructor
  /// entry, hence not guarded.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ IDDE_GUARDED_BY(mutex_);
  std::size_t in_flight_ IDDE_GUARDED_BY(mutex_) = 0;
  bool stopping_ IDDE_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [0, count) across the pool; blocks until complete.
/// The first exception thrown by any body is rethrown on the caller.
/// Concurrent parallel_for calls on the same pool are allowed; each call
/// tracks its own completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// As parallel_for, but body(lane, i) also receives the index of the lane
/// (worker task) executing it, in [0, min(pool.size(), count)). A lane
/// runs on exactly one thread for the duration of the call, so lane-indexed
/// scratch (per-worker evaluators, arenas) needs no synchronisation.
void parallel_for_lanes(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace idde::util
