#include "baselines/dup_g.hpp"

#include <vector>

#include "baselines/local_placement.hpp"

namespace idde::baselines {

core::Strategy DupG::solve(const model::ProblemInstance& instance,
                           util::Rng& rng) const {
  // Step 1: per-coverage demand placement (no collaboration).
  std::vector<std::vector<std::size_t>> covered(instance.server_count());
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    covered[i] = instance.covered_users(i);
  }
  const LocalPlacementOptions options{.per_mb = true, .sample_fraction = 1.0};
  core::DeliveryProfile delivery =
      local_demand_placement(instance, covered, options, rng);

  // Step 2: allocation game over cache-holding covering servers.
  std::vector<std::vector<std::size_t>> candidates(instance.user_count());
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    const auto& covering = instance.covering_servers(j);
    for (const std::size_t i : covering) {
      bool holds_requested = false;
      for (const std::size_t k : instance.requests().items_of(j)) {
        if (delivery.placed(i, k)) {
          holds_requested = true;
          break;
        }
      }
      if (holds_requested) candidates[j].push_back(i);
    }
    // No fallback: DUP-G couples a user to a cache that can serve it; a
    // user none of whose covering servers hold its data stays unallocated
    // (and is served from the cloud), which is what costs DUP-G data rate
    // in the paper's comparison.
  }

  core::GameOptions game_options;
  game_options.rule = rule_;
  game_options.threads = game_threads_;
  game_options.candidate_servers = &candidates;
  game_options.max_rounds =
      std::max<std::size_t>(1000, instance.user_count() * 200);
  core::IddeUGame game(instance, game_options);
  core::GameResult result = game.run();

  core::Strategy strategy{std::move(result.allocation), std::move(delivery)};
  // The scheme the paper critiques "ignores edge servers' ability to
  // collaborate": its delivery plane is local-cache-or-cloud.
  strategy.collaborative_delivery = false;
  strategy.approach_name = name();
  strategy.game_rounds = result.rounds;
  strategy.game_moves = result.moves;
  strategy.game_converged = result.converged;
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

}  // namespace idde::baselines
