// Clang thread-safety-analysis annotations (-Wthread-safety), following the
// canonical macro set from the Clang documentation and Abseil. On compilers
// without the attributes (GCC, MSVC) every macro expands to nothing, so the
// annotated code compiles everywhere and the analysis is a pure add-on:
// a clang build with -Wthread-safety -Werror machine-checks that every
// access to IDDE_GUARDED_BY data happens with the named capability held.
//
// Use these through util::Mutex / util::MutexLock / util::CondVar
// (util/mutex.hpp); naked std::mutex is reserved for util/ internals and
// flagged by tools/lint/check_project.py elsewhere.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define IDDE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define IDDE_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a capability (lockable). `name` appears in diagnostics.
#define IDDE_CAPABILITY(name) IDDE_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define IDDE_SCOPED_CAPABILITY IDDE_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that the data member is protected by the given capability.
/// Reads require the capability held shared or exclusive; writes exclusive.
#define IDDE_GUARDED_BY(x) IDDE_THREAD_ANNOTATION_(guarded_by(x))

/// Like IDDE_GUARDED_BY, for the data pointed to by a pointer member.
#define IDDE_PT_GUARDED_BY(x) IDDE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may be called only with the capabilities held.
#define IDDE_REQUIRES(...) \
  IDDE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function may be called only with the capabilities NOT
/// held (deadlock guard for functions that acquire them internally).
#define IDDE_EXCLUDES(...) \
  IDDE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define IDDE_ACQUIRE(...) \
  IDDE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability; it must be held on entry.
#define IDDE_RELEASE(...) \
  IDDE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; holds it iff the return value
/// equals `result` (first argument).
#define IDDE_TRY_ACQUIRE(...) \
  IDDE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares lock-ordering edges for deadlock detection.
#define IDDE_ACQUIRED_BEFORE(...) \
  IDDE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define IDDE_ACQUIRED_AFTER(...) \
  IDDE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define IDDE_RETURN_CAPABILITY(x) IDDE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for functions whose locking is correct but inexpressible
/// (e.g. a condition-variable wait that unlocks and relocks internally).
/// Every use must carry a comment saying why the analysis cannot see it.
#define IDDE_NO_THREAD_SAFETY_ANALYSIS \
  IDDE_THREAD_ANNOTATION_(no_thread_safety_analysis)
