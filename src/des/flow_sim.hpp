// Flow-level event-driven replay of a delivery strategy.
//
// The paper's latency metric (Eq. 8/9) is analytic: every transfer gets the
// full link bandwidth, so concurrent deliveries never contend. This module
// replays the same deliveries as *fluid flows* over the edge network:
// each non-local request becomes a flow from its chosen replica to the
// user's serving server along the cheapest route; flows crossing a link
// share its capacity max-min fairly; rates are recomputed at every flow
// arrival/completion (a standard fluid DES).
//
// Comparing the replayed completion times with the analytic L_avg
// quantifies the contention error of the paper's model — and lets us check
// that the approach ranking survives contention (bench/ext_contention).
//
// With a fault::FaultPlan attached (FlowSimOptions::fault_plan) the replay
// runs through the degraded world instead: sources are chosen by the
// failover resolver against the epoch the request starts in, in-flight
// flows through a dead server or link abort at the epoch boundary and
// retry with capped exponential backoff (forced to the cloud past
// max_retries/timeout_s), and the cloud leg stalls through brown-out
// intervals. A null or inert plan takes the exact pre-fault code path —
// results are bit-identical to a plan-less run.
//
// With a qos::QosConfig attached (FlowSimOptions::qos) the replay becomes
// overload-aware (DESIGN.md §12): arrivals are generated open-loop so
// offered load can exceed capacity, every request passes a per-server
// bounded admission queue with pluggable shedding, retries draw from a
// global token-bucket budget, and per-source circuit breakers force
// cloud-direct delivery while open. Composes with a fault plan (chaos
// mode: faults + overload simultaneously). A null or inert config takes
// the exact pre-QoS code path — bit-identical to a config-less run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "coding/coded_profile.hpp"
#include "core/delivery.hpp"
#include "core/health.hpp"
#include "core/strategy.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance.hpp"
#include "qos/config.hpp"
#include "util/random.hpp"

namespace idde::des {

/// Hedged-delivery policy (the gray-failure engine, flow_sim_hedged.cpp).
/// A routed edge leg that has not completed by its hedge deadline
///
///   deadline = start + max(min_deadline_s,
///                          deadline_factor * expected_s
///                              * (health_aware ? score(source) : 1))
///
/// launches one speculative backup leg (another replica, or the cloud)
/// and the request takes the first genuine completion; the losers are
/// cancelled with their transferred bytes charged to hedge_wasted_mb.
/// A sick source (low health score) shortens its own deadline, so the
/// sicker the server the sooner its legs are hedged.
struct HedgeConfig {
  bool enabled = false;  ///< launch speculative backup legs
  /// Hedge deadline as a multiple of the leg's expected (uncontended,
  /// health-blind) transfer time.
  double deadline_factor = 8.0;
  /// Deadline floor, so near-zero expected times cannot hedge instantly.
  double min_deadline_s = 0.01;
  /// Speculative backup legs per request.
  std::size_t max_hedges = 1;
  /// Route new legs through core::resolve_with_health (demote gray
  /// servers) and scale hedge deadlines by the source's health score.
  bool health_aware = false;
  /// Tracker parameters used when health_aware is set.
  core::HealthConfig health;

  /// True when the hedged engine adds nothing over the plain replay.
  [[nodiscard]] bool inert() const noexcept {
    return !enabled && !health_aware;
  }
};

struct FlowSimOptions {
  /// Scale factor on every edge-link capacity (1.0 = the instance's
  /// 2000-6000 MB/s links; < 1 stresses contention).
  double link_capacity_scale = 1.0;
  /// Requests arrive over [0, window); 0 = everything at t = 0 (the
  /// worst-case burst).
  double arrival_window_s = 0.0;
  /// The cloud leg is modelled uncontended at the instance's cloud speed
  /// (the bottleneck the paper assumes); local hits complete instantly.

  /// Optional fault schedule (not owned; must outlive the simulator run).
  /// Null or inert = the fault-free replay, bit for bit.
  const fault::FaultPlan* fault_plan = nullptr;
  /// First retry delay after an aborted flow; doubles per attempt.
  double retry_backoff_s = 0.05;
  /// Cap on the exponential backoff.
  double retry_backoff_max_s = 2.0;
  /// Aborted flows retry at most this many times, then go cloud-direct.
  std::size_t max_retries = 8;
  /// A request older than this is forced to the cloud on its next abort.
  double timeout_s = 120.0;

  /// Optional overload-protection config (not owned; must outlive the run).
  /// Null or inert = the pre-QoS replay, bit for bit.
  const qos::QosConfig* qos = nullptr;

  /// Optional gray-failure schedule (not owned; must outlive the run):
  /// routed legs from a degraded server drain at rate / multiplier and may
  /// be lost (integrity failure on completion). Null or inert = the
  /// pre-gray replay, bit for bit. Composes with `fault_plan` (a server
  /// can be slow and later crash); not yet composable with a non-inert
  /// `qos` config or run_coded (enforced at construction).
  const fault::DegradationPlan* degradation = nullptr;
  /// Hedged-delivery / health-aware routing policy (see HedgeConfig).
  HedgeConfig hedge;
};

/// What finally happened to one offered arrival.
enum class FlowOutcome : std::uint8_t {
  kServed = 0,    ///< admitted and delivered (any tier)
  kShed = 1,      ///< dropped by deadline-aware shedding
  kRejected = 2,  ///< dropped by reject-newest on a full queue
};

struct FlowRecord {
  std::size_t user = 0;
  std::size_t item = 0;
  double arrival_s = 0.0;
  double completion_s = 0.0;
  /// Transfer duration (completion - arrival).
  [[nodiscard]] double duration_s() const { return completion_s - arrival_s; }
  bool from_cloud = false;
  bool local_hit = false;
  std::size_t hops = 0;
  // Fault-mode diagnostics (defaults describe the fault-free replay).
  std::size_t retries = 0;    ///< aborted attempts before success
  bool forced_cloud = false;  ///< hit the retry/timeout cap (or an empty
                              ///< retry budget / unmeetable retry deadline)
  core::FallbackTier tier = core::FallbackTier::kPrimary;
  // QoS-mode diagnostics (defaults describe the pre-QoS replay).
  FlowOutcome outcome = FlowOutcome::kServed;
  double queue_wait_s = 0.0;     ///< admission-queue wait before service
  bool deadline_missed = false;  ///< served, but after the SLO deadline
  // Gray/hedge-mode diagnostics (defaults describe the unhedged replay).
  bool hedged = false;        ///< at least one speculative leg was launched
  bool hedge_won = false;     ///< a speculative leg delivered the request
  std::size_t losses = 0;     ///< legs lost to gray integrity failures
};

/// SLO accounting of one run. For a run without an active QosConfig the
/// invariant collapses to offered == admitted == flows.size().
struct QosStats {
  std::size_t offered = 0;    ///< arrivals generated (open- or closed-loop)
  std::size_t admitted = 0;   ///< started service (== served: the schedule
                              ///< is finite, so every admitted request ends)
  std::size_t shed = 0;       ///< dropped by deadline-aware shedding
  std::size_t rejected = 0;   ///< dropped by reject-newest on a full queue
  std::size_t deadline_misses = 0;  ///< served but past the deadline
  std::size_t goodput_flows = 0;    ///< served within the deadline
  /// goodput_flows / arrival window — comparable across load multipliers.
  double goodput_rps = 0.0;
  double offered_rps = 0.0;
  std::size_t retries_denied = 0;  ///< retry-budget bucket was empty
  std::size_t breaker_opens = 0;   ///< breaker trips (closed/half-open -> open)
  double mean_queue_wait_ms = 0.0;
  /// Per-fallback-tier latency percentiles over served flows (0 when the
  /// tier served nothing).
  std::array<double, core::kFallbackTiers> tier_p50_ms{};
  std::array<double, core::kFallbackTiers> tier_p99_ms{};
};

struct FlowSimResult {
  std::vector<FlowRecord> flows;          ///< one per offered arrival
  double mean_duration_ms = 0.0;          ///< the DES analogue of L_avg
  double p95_duration_ms = 0.0;
  double p99_duration_ms = 0.0;           ///< degraded tail (faults live here)
  double max_duration_ms = 0.0;
  double makespan_s = 0.0;                ///< last completion
  std::size_t local_hits = 0;
  std::size_t cloud_fetches = 0;
  std::size_t rate_recomputations = 0;    ///< DES bookkeeping
  // Resilience aggregates (trivial — availability 1, zero counts — for a
  // fault-free replay).
  double availability = 1.0;  ///< flows served first-try at the primary tier
  std::size_t retry_count = 0;          ///< total aborted attempts
  std::size_t forced_cloud_fetches = 0;
  std::array<std::size_t, core::kFallbackTiers> tier_counts{};
  /// Overload/SLO accounting. Trivially consistent (offered == admitted,
  /// zero shed/rejected) for a run without an active QosConfig.
  QosStats qos;
  // Gray/hedge accounting (all zero outside the hedged engine).
  std::size_t hedge_launches = 0;   ///< speculative legs launched
  std::size_t hedge_wins = 0;       ///< requests delivered by a hedge leg
  std::size_t hedge_cancelled = 0;  ///< legs cancelled after losing a race
  std::size_t loss_aborts = 0;      ///< legs lost to gray integrity failures
  /// Exact bytes transferred by legs that did not deliver their request:
  /// race losers' partial transfers plus lost legs' full sizes.
  double hedge_wasted_mb = 0.0;
};

class FlowLevelSimulator {
 public:
  explicit FlowLevelSimulator(const model::ProblemInstance& instance,
                              FlowSimOptions options = {});

  /// Replays the strategy's deliveries. `rng` only drives arrival jitter
  /// (unused when arrival_window_s == 0).
  [[nodiscard]] FlowSimResult run(const core::Strategy& strategy,
                                  util::Rng& rng) const;

  /// Replays a coded strategy (flow_sim_coded.cpp): each request's e edge
  /// fragments become parallel fluid flows from their hosts and the k - e
  /// cloud fragments one uncontended cloud leg; the request completes when
  /// the last leg lands. An epoch that kills any leg aborts the whole
  /// attempt, which retries through the existing backoff / forced-cloud
  /// machinery. Works with or without a fault plan (the engine is the
  /// fault-mode one either way). With options_.qos non-inert it composes
  /// open-loop arrivals, deadline-aware shedding, the retry budget, and
  /// per-server circuit breakers; slot-based admission queues are not
  /// modelled for coded flows (service_slots must be 0). At k = 1 under a
  /// non-inert plan (and no QoS), the result is bit-identical to run() on
  /// the equivalent replication strategy — same rng draws, same events,
  /// same floats.
  [[nodiscard]] FlowSimResult run_coded(const coding::CodedStrategy& strategy,
                                        util::Rng& rng) const;

 private:
  const model::ProblemInstance* instance_;
  FlowSimOptions options_;
  // Link table: one entry per undirected edge, with capacity in MB/s.
  struct Link {
    std::size_t a;
    std::size_t b;
    double capacity_mbps;
  };
  std::vector<Link> links_;
  /// link index by (min(a,b), max(a,b)); kNoLink when absent.
  [[nodiscard]] std::size_t link_between(std::size_t a, std::size_t b) const;
  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);

  [[nodiscard]] FlowSimResult run_fault_free(const core::Strategy& strategy,
                                             util::Rng& rng) const;
  [[nodiscard]] FlowSimResult run_with_faults(const core::Strategy& strategy,
                                              util::Rng& rng) const;
  /// The overload-aware engine (flow_sim_qos.cpp): admission + shedding +
  /// retry budget + breakers, composed with an optional fault plan.
  [[nodiscard]] FlowSimResult run_with_qos(const core::Strategy& strategy,
                                           util::Rng& rng) const;
  /// The gray-failure engine (flow_sim_hedged.cpp): degradation-scaled
  /// fluid rates, per-leg loss lottery, health-aware source selection and
  /// hedged backup legs, composed with an optional fault plan.
  [[nodiscard]] FlowSimResult run_hedged(const core::Strategy& strategy,
                                         util::Rng& rng) const;
  /// `deadline_s` > 0 enables goodput/deadline accounting; `window_s` is
  /// the offered-load period the rates are normalised by (0 = makespan).
  static void finalize(FlowSimResult& result, double deadline_s = 0.0,
                       double window_s = 0.0);
};

}  // namespace idde::des
