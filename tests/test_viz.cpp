// ASCII map rendering: structure, glyph precedence, allocation view.
#include <gtest/gtest.h>

#include "core/game.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "viz/ascii_map.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 8;
  p.user_count = 25;
  p.data_count = 3;
  return p;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(AsciiMap, GridDimensionsMatchOptions) {
  const auto inst = model::make_instance(small_params(), 1);
  viz::MapOptions options;
  options.width_chars = 40;
  options.height_chars = 12;
  const auto lines = lines_of(viz::render_map(inst, options));
  // border + 12 rows + border + legend
  ASSERT_GE(lines.size(), 15u);
  EXPECT_EQ(lines[0].size(), 42u);  // width + 2 border chars
  for (std::size_t r = 1; r <= 12; ++r) {
    EXPECT_EQ(lines[r].size(), 42u);
    EXPECT_EQ(lines[r].front(), '|');
    EXPECT_EQ(lines[r].back(), '|');
  }
}

TEST(AsciiMap, ContainsServersAndUsers) {
  const auto inst = model::make_instance(small_params(), 2);
  const std::string map = viz::render_map(inst);
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_NE(map.find('+'), std::string::npos);
  EXPECT_NE(map.find("edge server (8)"), std::string::npos);
}

TEST(AsciiMap, CoverageToggle) {
  const auto inst = model::make_instance(small_params(), 3);
  viz::MapOptions with;
  viz::MapOptions without;
  without.show_coverage = false;
  const std::string map_with = viz::render_map(inst, with);
  // Count shading dots inside the grid only (legend also contains '.').
  const auto count_dots = [](const std::string& map) {
    std::size_t dots = 0;
    for (const std::string& line : lines_of(map)) {
      if (line.empty() || line.front() != '|') continue;
      for (const char c : line) dots += c == '.' ? 1 : 0;
    }
    return dots;
  };
  EXPECT_GT(count_dots(map_with), 0u);
  EXPECT_EQ(count_dots(viz::render_map(inst, without)), 0u);
}

TEST(AsciiMap, AllocationViewUsesLettersAndQuestionMarks) {
  const auto inst = model::make_instance(small_params(), 4);
  core::AllocationProfile alloc =
      core::IddeUGame(inst).run().allocation;
  // Force one unallocated user for the '?' glyph.
  alloc[0] = core::kUnallocated;
  viz::MapOptions options;
  options.allocation = &alloc;
  const std::string map = viz::render_map(inst, options);
  bool has_letter = false;
  for (const std::string& line : lines_of(map)) {
    if (line.empty() || line.front() != '|') continue;
    for (const char c : line) {
      if (c >= 'a' && c <= 'z') has_letter = true;
    }
  }
  EXPECT_TRUE(has_letter);
  EXPECT_NE(map.find("? unallocated"), std::string::npos);
}

TEST(AsciiMap, DeterministicOutput) {
  const auto inst = model::make_instance(small_params(), 5);
  EXPECT_EQ(viz::render_map(inst), viz::render_map(inst));
}

}  // namespace
