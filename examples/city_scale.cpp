// City-scale scenario: the full synthetic EUA layout (125 edge servers,
// 816 users — the complete extraction the paper sub-samples from) solved by
// IDDE-G, with a coverage report and a per-phase breakdown. Demonstrates
// that the library runs at full city scale, not just the paper's sweeps.
#include <cstdio>
#include <optional>

#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "model/instance_builder.hpp"
#include "model/validation.hpp"
#include "obs/obs.hpp"
#include "sim/paper.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace idde;

  std::size_t seed = 2022;
  std::size_t data = 12;
  util::CliParser cli("city_scale: solve the full 125-server/816-user city");
  cli.add_size("seed", &seed, "instance seed");
  cli.add_size("data", &data, "catalogue size K");
  if (!cli.parse(argc, argv)) return 0;

  model::InstanceParams params = sim::paper_default_params();
  params.server_count = params.eua.server_count;  // the whole city
  params.user_count = params.eua.user_count;
  params.data_count = data;

  std::optional<model::ProblemInstance> built;
  double build_ms = 0.0;
  {
    const obs::ScopedSpan build_span("city.build");
    built.emplace(model::make_instance(params, static_cast<std::uint64_t>(seed)));
    build_ms = build_span.elapsed_ms();
  }
  const model::ProblemInstance& instance = *built;
  std::printf("built city instance in %.1f ms: N=%zu M=%zu K=%zu\n", build_ms,
              instance.server_count(), instance.user_count(),
              instance.data_count());

  const model::CoverageStats coverage = model::coverage_stats(instance);
  std::printf(
      "coverage: %.2f servers/user on average, max %zu, %zu uncovered "
      "users\n",
      coverage.mean_coverage, coverage.max_coverage,
      coverage.uncovered_users);
  std::printf("reserved storage: %.0f MB across the system, catalogue %.0f "
              "MB\n",
              instance.total_storage_mb(),
              [&] {
                double total = 0.0;
                for (const auto& d : instance.data_items())
                  total += d.size_mb;
                return total;
              }());

  util::Rng rng(seed);
  std::optional<core::Strategy> solved;
  double solve_ms = 0.0;
  {
    const obs::ScopedSpan solve_span("city.solve");
    solved.emplace(core::IddeG().solve(instance, rng));
    solve_ms = solve_span.elapsed_ms();
  }
  const core::Strategy& strategy = *solved;
  const core::StrategyMetrics metrics = core::evaluate(instance, strategy);

  std::printf("\nIDDE-G at city scale (%.1f ms):\n", solve_ms);
  std::printf("  phase 1: %zu best-response rounds, %zu moves, %s\n",
              strategy.game_rounds, strategy.game_moves,
              strategy.game_converged ? "converged to Nash equilibrium"
                                      : "round cap hit");
  std::printf("  phase 2: %zu replica placements\n", strategy.placements);
  std::printf("  R_avg = %.2f MB/s over %zu users (%zu allocated)\n",
              metrics.avg_rate_mbps, instance.user_count(),
              metrics.allocated_users);
  std::printf("  L_avg = %.2f ms over %zu requests\n", metrics.avg_latency_ms,
              instance.requests().total_requests());
  return 0;
}
