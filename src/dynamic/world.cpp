#include "dynamic/world.hpp"

#include "util/assert.hpp"

namespace idde::dynamic {

model::ProblemInstance with_user_positions(
    const model::ProblemInstance& base,
    const std::vector<geo::Point>& positions,
    const radio::PathLossModel& pathloss) {
  IDDE_EXPECTS(positions.size() == base.user_count());

  std::vector<model::User> users = base.users();
  for (std::size_t j = 0; j < users.size(); ++j) {
    users[j].position = positions[j];
  }

  radio::RadioEnvironment env = base.radio_env();
  for (std::size_t i = 0; i < base.server_count(); ++i) {
    const geo::Point& sp = base.server(i).position;
    for (std::size_t j = 0; j < users.size(); ++j) {
      env.gain[i * users.size() + j] =
          pathloss.gain(geo::distance_m(sp, positions[j]));
    }
  }
  for (std::size_t j = 0; j < users.size(); ++j) {
    env.covering_servers[j].clear();
    for (std::size_t i = 0; i < base.server_count(); ++i) {
      if (geo::distance_m(base.server(i).position, positions[j]) <=
          base.server(i).coverage_radius_m) {
        env.covering_servers[j].push_back(i);
      }
    }
  }

  return model::ProblemInstance(base.servers(), std::move(users),
                                base.data_items(), base.requests(),
                                base.graph(), base.latency(), std::move(env));
}

std::vector<geo::Point> user_positions(const model::ProblemInstance& instance) {
  std::vector<geo::Point> positions;
  positions.reserve(instance.user_count());
  for (const model::User& user : instance.users()) {
    positions.push_back(user.position);
  }
  return positions;
}

}  // namespace idde::dynamic
