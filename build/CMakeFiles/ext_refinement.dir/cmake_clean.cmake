file(REMOVE_RECURSE
  "CMakeFiles/ext_refinement.dir/bench/ext_refinement.cpp.o"
  "CMakeFiles/ext_refinement.dir/bench/ext_refinement.cpp.o.d"
  "bench/ext_refinement"
  "bench/ext_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
