#include "dynamic/world.hpp"

#include "util/assert.hpp"

namespace idde::dynamic {

model::ProblemInstance with_user_positions(
    const model::ProblemInstance& base,
    const std::vector<geo::Point>& positions,
    const radio::PathLossModel& pathloss) {
  IDDE_EXPECTS(positions.size() == base.user_count());

  std::vector<model::User> users = base.users();
  for (std::size_t j = 0; j < users.size(); ++j) {
    users[j].position = positions[j];
  }

  radio::RadioEnvironment env = base.radio_env();
  for (std::size_t i = 0; i < base.server_count(); ++i) {
    const geo::Point& sp = base.server(i).position;
    for (std::size_t j = 0; j < users.size(); ++j) {
      env.gain[i * users.size() + j] =
          pathloss.gain(geo::distance_m(sp, positions[j]));
    }
  }
  for (std::size_t j = 0; j < users.size(); ++j) {
    env.covering_servers[j].clear();
    for (std::size_t i = 0; i < base.server_count(); ++i) {
      if (geo::distance_m(base.server(i).position, positions[j]) <=
          base.server(i).coverage_radius_m) {
        env.covering_servers[j].push_back(i);
      }
    }
  }

  return model::ProblemInstance(base.servers(), std::move(users),
                                base.data_items(), base.requests(),
                                base.graph(), base.latency(), std::move(env));
}

WorldTracker::WorldTracker(const model::ProblemInstance& base,
                           radio::PathLossModel pathloss)
    : base_(&base),
      pathloss_(pathloss),
      positions_(user_positions(base)),
      users_(base.users()),
      env_(base.radio_env()) {
  instance_.emplace(base.servers(), users_, base.data_items(),
                    base.requests(), base.graph(), base.latency(), env_);
}

std::size_t WorldTracker::update(const std::vector<geo::Point>& positions) {
  IDDE_EXPECTS(positions.size() == base_->user_count());
  const std::size_t server_count = base_->server_count();
  const std::size_t user_count = positions.size();
  std::size_t refreshed = 0;
  for (std::size_t j = 0; j < user_count; ++j) {
    if (positions[j] == positions_[j]) continue;
    positions_[j] = positions[j];
    users_[j].position = positions[j];
    env_.covering_servers[j].clear();
    for (std::size_t i = 0; i < server_count; ++i) {
      const model::EdgeServer& s = base_->server(i);
      const double dist = geo::distance_m(s.position, positions[j]);
      env_.gain[i * user_count + j] = pathloss_.gain(dist);
      if (dist <= s.coverage_radius_m) env_.covering_servers[j].push_back(i);
    }
    ++refreshed;
  }
  if (refreshed > 0) {
    instance_.emplace(base_->servers(), users_, base_->data_items(),
                      base_->requests(), base_->graph(), base_->latency(),
                      env_);
  }
  return refreshed;
}

std::vector<geo::Point> user_positions(const model::ProblemInstance& instance) {
  std::vector<geo::Point> positions;
  positions.reserve(instance.user_count());
  for (const model::User& user : instance.users()) {
    positions.push_back(user.position);
  }
  return positions;
}

}  // namespace idde::dynamic
