// Fixture: every construct here is a deliberate violation (or a deliberate
// non-violation) pinned by tests/golden.json. Not compiled.
#include "util/mutex.hpp"

#include <atomic>

namespace fixture {

// Declared edges forming a cycle a -> b -> c -> a: lock-cycle.
util::Mutex a_mutex IDDE_ACQUIRED_BEFORE(b_mutex);
util::Mutex b_mutex IDDE_ACQUIRED_BEFORE(c_mutex);
util::Mutex c_mutex IDDE_ACQUIRED_BEFORE(a_mutex);

// Nesting covered by a declared edge: no lock-order finding.
void covered() {
  util::MutexLock l1(a_mutex);
  util::MutexLock l2(b_mutex);
}

util::Mutex x_mutex;
util::Mutex y_mutex;

// Nesting with no declared edge: lock-order.
void undeclared() {
  util::MutexLock l1(x_mutex);
  util::MutexLock l2(y_mutex);
}

util::Mutex s_mutex;

// Re-acquisition while held: self-deadlock lock-order.
void self_nest() {
  util::MutexLock l1(s_mutex);
  {
    util::MutexLock l2(s_mutex);
  }
}

// Sequential scopes, never held together: no finding.
void sequential() {
  {
    util::MutexLock l1(x_mutex);
  }
  {
    util::MutexLock l2(y_mutex);
  }
}

std::atomic<int> counter{0};  // atomic-order: no justification

// memory-order: seq_cst tally, read only after the join
std::atomic<int> justified_counter{0};

}  // namespace fixture
