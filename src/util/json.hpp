// Minimal JSON value, parser and writer, used for scenario configuration and
// result files. Supports the full JSON grammar except for \u escapes beyond
// the BMP surrogate handling (inputs here are machine-generated ASCII).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace idde::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic for golden-file tests.
using JsonObject = std::map<std::string, Json, std::less<>>;

class JsonError : public std::runtime_error {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  using std::runtime_error::runtime_error;
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}

  /// Byte offset into the parsed document where the error was detected;
  /// npos when the error did not come from the parser (type mismatch,
  /// missing key, semantic validation).
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_ = npos;
};

class Json {
 public:
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             JsonArray, JsonObject>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_number() const { return holds<double>(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<JsonArray>(); }
  [[nodiscard]] bool is_object() const { return holds<JsonObject>(); }

  /// Typed accessors throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object member lookup; throws if not an object or key missing.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Returns nullptr when missing (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Member access with default.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

  /// Serialises; indent < 0 emits compact one-line JSON.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document. Throws JsonError carrying the byte
  /// offset of the first error (JsonError::offset()). Rejects duplicate
  /// object keys and nesting deeper than kMaxParseDepth — hostile inputs
  /// fail with a structured error instead of silently dropping data or
  /// exhausting the stack.
  static Json parse(std::string_view text);

  /// Maximum container nesting accepted by parse().
  static constexpr std::size_t kMaxParseDepth = 96;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }

  Value value_;
};

/// Validated accessors for untrusted documents. Unlike raw as_int() +
/// static_cast (which turns a negative or huge number into a wild index)
/// these throw JsonError with a descriptive message, so loaders fail
/// structurally instead of tripping internal asserts or UB downstream.
/// `what` names the field in the error message.
[[nodiscard]] std::size_t as_index(const Json& value, std::size_t bound,
                                   std::string_view what);
/// A finite number >= min_inclusive (rejects NaN / infinities).
[[nodiscard]] double as_finite(const Json& value, double min_inclusive,
                               std::string_view what);
/// A finite number > 0.
[[nodiscard]] double as_positive(const Json& value, std::string_view what);

}  // namespace idde::util
