# Empty compiler generated dependencies file for draw_city.
# This may be replaced when dependencies are built.
