file(REMOVE_RECURSE
  "libidde_model.a"
)
