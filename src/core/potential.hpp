// The potential function of the IDDE-U game (Eq. 13) and the per-user
// interference bound T_j of Lemma 2. Used by tests to check the
// potential-game property along best-response trajectories (Theorem 3) and
// by EXPERIMENTS.md's theory-check table.
#pragma once

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

/// Lemma 2's bound T_j = g_{i,x,j} p_j / (2^{R_{j,min}/B_{i,x}} - 1) - w,
/// evaluated at user j's best covering server and with R_{j,min} taken as
/// the smallest single-user rate over j's candidate channels. Returns 0 for
/// uncovered users (they have no candidate channels).
[[nodiscard]] double interference_bound_watts(const model::ProblemInstance& instance,
                                        std::size_t user);

/// Eq. 13: pairwise-product potential over allocated users, minus the
/// T_j-weighted penalty for unallocated users. O(M^2) — test-scale only.
[[nodiscard]] double potential(const model::ProblemInstance& instance,
                               const AllocationProfile& allocation);

}  // namespace idde::core
