// Phase 2 of IDDE-G (Algorithm 1, lines 22-26): greedily add the placement
// sigma_{i,k} with the highest latency-reduction-per-MB ratio (Eq. 17) until
// nothing feasible improves.
//
// Two planners are provided:
//  - plan(): lazy greedy. Because the committed min in Eq. 8 makes the gain
//    of every candidate monotonically non-increasing as sigma grows
//    (submodularity, the property behind Theorem 6), stale heap keys are
//    valid upper bounds: re-evaluate only the popped top and either commit
//    it (still the best) or push it back with its refreshed ratio.
//  - plan_naive(): re-scores all N*K candidates per step; the oracle for
//    tests and the ablation bench.
#pragma once

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

struct GreedyDeliveryResult {
  DeliveryProfile delivery;
  std::size_t placements = 0;
  std::size_t gain_evaluations = 0;
};

class GreedyDeliveryPlanner {
 public:
  explicit GreedyDeliveryPlanner(const model::ProblemInstance& instance);

  [[nodiscard]] GreedyDeliveryResult plan(
      const AllocationProfile& allocation) const;

  [[nodiscard]] GreedyDeliveryResult plan_naive(
      const AllocationProfile& allocation) const;

 private:
  const model::ProblemInstance* instance_;
};

}  // namespace idde::core
