file(REMOVE_RECURSE
  "CMakeFiles/ablation_greedy.dir/bench/ablation_greedy.cpp.o"
  "CMakeFiles/ablation_greedy.dir/bench/ablation_greedy.cpp.o.d"
  "bench/ablation_greedy"
  "bench/ablation_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
