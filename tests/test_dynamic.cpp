// Mobility extension: random waypoint, snapshot rebuilding, migration
// planning and the dynamic simulation loop.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "dynamic/migration.hpp"
#include "dynamic/mobility.hpp"
#include "dynamic/simulation.hpp"
#include "dynamic/world.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;
using dynamic::MobilityParams;
using dynamic::RandomWaypointModel;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 40;
  p.data_count = 3;
  return p;
}

TEST(RandomWaypoint, StaysInBoundsAndMoves) {
  util::Rng rng(1);
  const geo::BoundingBox bounds = geo::BoundingBox::square(500.0);
  std::vector<geo::Point> start{{10, 10}, {250, 250}, {490, 490}};
  RandomWaypointModel model(start, bounds, MobilityParams{}, rng);
  for (int step = 0; step < 100; ++step) {
    model.step(1.0, rng);
    for (const geo::Point& p : model.positions()) {
      EXPECT_TRUE(bounds.contains(p));
    }
  }
  EXPECT_GT(model.total_distance_m(), 0.0);
}

TEST(RandomWaypoint, SpeedBoundsRespected) {
  util::Rng rng(2);
  const geo::BoundingBox bounds = geo::BoundingBox::square(10000.0);
  std::vector<geo::Point> start{{5000, 5000}};
  MobilityParams params{.min_speed_mps = 1.0,
                        .max_speed_mps = 2.0,
                        .pause_seconds = 0.0};
  RandomWaypointModel model(start, bounds, params, rng);
  for (int step = 0; step < 50; ++step) {
    const geo::Point before = model.positions()[0];
    model.step(1.0, rng);
    const double moved = geo::distance_m(before, model.positions()[0]);
    // Up to max speed, possibly less when turning at a waypoint.
    EXPECT_LE(moved, 2.0 + 1e-9);
  }
  // Distance accumulates at at least min speed when there are no pauses.
  EXPECT_GE(model.total_distance_m(), 50.0 * 1.0 - 1e-6);
}

TEST(RandomWaypoint, PauseStopsMovement) {
  util::Rng rng(3);
  const geo::BoundingBox bounds = geo::BoundingBox::square(100.0);
  MobilityParams params{.min_speed_mps = 100.0,   // reach waypoint fast
                        .max_speed_mps = 100.0,
                        .pause_seconds = 1e9};    // then freeze
  RandomWaypointModel model({{50, 50}}, bounds, params, rng);
  model.step(10.0, rng);  // certainly arrived and paused
  const geo::Point frozen = model.positions()[0];
  model.step(10.0, rng);
  EXPECT_EQ(model.positions()[0], frozen);
}

TEST(World, SnapshotPreservesStaticsAndUpdatesRadio) {
  const auto base = model::make_instance(small_params(), 4);
  auto positions = dynamic::user_positions(base);
  // Move every user 400 m east (clamped world is 2 km, stays inside).
  for (auto& p : positions) p.x = std::min(p.x + 400.0, 1999.0);
  const radio::PathLossModel pathloss = radio::PathLossModel::paper_default();
  const auto snap = dynamic::with_user_positions(base, positions, pathloss);

  EXPECT_EQ(snap.server_count(), base.server_count());
  EXPECT_EQ(snap.data_count(), base.data_count());
  EXPECT_EQ(snap.requests().total_requests(),
            base.requests().total_requests());
  EXPECT_DOUBLE_EQ(snap.total_storage_mb(), base.total_storage_mb());
  // User metadata other than position survives.
  for (std::size_t j = 0; j < base.user_count(); ++j) {
    EXPECT_DOUBLE_EQ(snap.user(j).power_watts, base.user(j).power_watts);
    EXPECT_EQ(snap.user(j).position, positions[j]);
  }
  // Gains correspond to the new geometry.
  for (std::size_t i = 0; i < snap.server_count(); ++i) {
    for (std::size_t j = 0; j < snap.user_count(); ++j) {
      const double expected = pathloss.gain(
          geo::distance_m(snap.server(i).position, positions[j]));
      EXPECT_DOUBLE_EQ(snap.radio_env().gain_at(i, j), expected);
    }
  }
}

TEST(World, IdentityPositionsReproduceCoverage) {
  const auto base = model::make_instance(small_params(), 5);
  const auto snap = dynamic::with_user_positions(
      base, dynamic::user_positions(base),
      radio::PathLossModel::paper_default());
  for (std::size_t j = 0; j < base.user_count(); ++j) {
    EXPECT_EQ(snap.covering_servers(j), base.covering_servers(j));
  }
}

TEST(World, TrackerMatchesRebuildOracleBitExactly) {
  const auto base = model::make_instance(small_params(), 12);
  const radio::PathLossModel pathloss = radio::PathLossModel::paper_default();
  const geo::BoundingBox bounds = geo::BoundingBox::square(2000.0);
  util::Rng rng(12);
  RandomWaypointModel mobility(dynamic::user_positions(base), bounds,
                               MobilityParams{}, rng);
  dynamic::WorldTracker tracker(base, pathloss);
  for (int step = 0; step < 25; ++step) {
    mobility.step(1.0, rng);
    tracker.update(mobility.positions());
    const auto oracle =
        dynamic::with_user_positions(base, mobility.positions(), pathloss);
    const auto& tracked = tracker.instance();
    for (std::size_t j = 0; j < base.user_count(); ++j) {
      ASSERT_EQ(tracked.covering_servers(j), oracle.covering_servers(j))
          << "coverage diverged for user " << j << " at step " << step;
      for (std::size_t i = 0; i < base.server_count(); ++i) {
        // Bit-exact, not approximate: the tracker must be a pure caching
        // layer over the full rebuild.
        ASSERT_EQ(tracked.radio_env().gain_at(i, j),
                  oracle.radio_env().gain_at(i, j))
            << "gain diverged at (" << i << ", " << j << "), step " << step;
      }
    }
  }
}

TEST(World, TrackerSkipsUnchangedUsers) {
  const auto base = model::make_instance(small_params(), 13);
  dynamic::WorldTracker tracker(base,
                                radio::PathLossModel::paper_default());
  auto positions = dynamic::user_positions(base);
  EXPECT_EQ(tracker.update(positions), 0u);  // nobody moved
  positions[3].x += 25.0;
  positions[7].y += 10.0;
  EXPECT_EQ(tracker.update(positions), 2u);  // exactly the movers
  EXPECT_EQ(tracker.update(positions), 0u);  // settled again
}

TEST(DynamicSimulation, TrackedRunMatchesRebuildOracleRun) {
  dynamic::DynamicParams tracked;
  tracked.base = small_params();
  tracked.steps = 12;
  tracked.resolve_period = 4;
  tracked.churn_enabled = true;
  tracked.churn.arrival_rate_hz = 1.0 / 20.0;
  tracked.churn.mean_session_s = 20.0;
  dynamic::DynamicParams oracle = tracked;
  oracle.rebuild_oracle = true;
  const auto a = dynamic::DynamicSimulation(tracked, 21).run();
  const auto b = dynamic::DynamicSimulation(oracle, 21).run();
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].rate_mbps, b.steps[i].rate_mbps);
    EXPECT_EQ(a.steps[i].latency_ms, b.steps[i].latency_ms);
    EXPECT_EQ(a.steps[i].handovers, b.steps[i].handovers);
    EXPECT_EQ(a.steps[i].game_moves, b.steps[i].game_moves);
  }
  EXPECT_EQ(a.total_migration_mb, b.total_migration_mb);
  EXPECT_EQ(a.total_handovers, b.total_handovers);
}

TEST(RandomWaypoint, RestoreStateResumesIdentically) {
  const geo::BoundingBox bounds = geo::BoundingBox::square(800.0);
  std::vector<geo::Point> start{{100, 100}, {400, 400}, {700, 100}};
  util::Rng rng_a(31);
  RandomWaypointModel a(start, bounds, MobilityParams{}, rng_a);
  for (int i = 0; i < 10; ++i) a.step(1.0, rng_a);
  // Snapshot mid-walk, keep walking, then restore into a fresh model.
  const auto positions = a.positions();
  const auto walks = a.walks();
  const double walked = a.total_distance_m();
  const util::RngState rng_state = rng_a.state();
  for (int i = 0; i < 10; ++i) a.step(1.0, rng_a);

  util::Rng rng_b(999);  // deliberately different seed; state is restored
  RandomWaypointModel b(start, bounds, MobilityParams{}, rng_b);
  b.restore_state(positions, walks, walked);
  rng_b.set_state(rng_state);
  for (int i = 0; i < 10; ++i) b.step(1.0, rng_b);
  ASSERT_EQ(a.positions().size(), b.positions().size());
  for (std::size_t j = 0; j < a.positions().size(); ++j) {
    EXPECT_EQ(a.positions()[j], b.positions()[j]);
  }
  EXPECT_EQ(a.total_distance_m(), b.total_distance_m());
}

TEST(Churn, RestoreMaskRecountsAndResumes) {
  dynamic::ChurnParams params;
  params.arrival_rate_hz = 1.0 / 10.0;
  params.mean_session_s = 10.0;
  util::Rng rng_a(41);
  dynamic::ChurnProcess a(64, params, rng_a);
  for (int i = 0; i < 20; ++i) a.step(1.0, rng_a);
  const std::vector<bool> mask = a.mask();
  const util::RngState rng_state = rng_a.state();
  for (int i = 0; i < 20; ++i) a.step(1.0, rng_a);

  util::Rng rng_b(77);
  dynamic::ChurnProcess b(64, params, rng_b);
  b.restore_mask(mask);
  EXPECT_EQ(b.online_count(),
            static_cast<std::size_t>(
                std::count(mask.begin(), mask.end(), true)));
  rng_b.set_state(rng_state);
  for (int i = 0; i < 20; ++i) b.step(1.0, rng_b);
  EXPECT_EQ(a.mask(), b.mask());
  EXPECT_EQ(a.online_count(), b.online_count());
}

TEST(Migration, NoChangeNoTraffic) {
  const auto inst = model::make_instance(small_params(), 6);
  util::Rng rng(6);
  const auto strategy = core::IddeG().solve(inst, rng);
  const auto plan =
      dynamic::plan_migration(inst, strategy.delivery, strategy.delivery);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.total_mb, 0.0);
}

TEST(Migration, FromEmptyEverythingComesFromCloud) {
  const auto inst = model::make_instance(small_params(), 7);
  util::Rng rng(7);
  const auto strategy = core::IddeG().solve(inst, rng);
  const core::DeliveryProfile empty(inst);
  const auto plan = dynamic::plan_migration(inst, empty, strategy.delivery);
  EXPECT_EQ(plan.steps.size(), strategy.delivery.placement_count());
  EXPECT_EQ(plan.cloud_fetches, plan.steps.size());
  double expected_mb = 0.0;
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    expected_mb +=
        static_cast<double>(strategy.delivery.hosts(k).size()) *
        inst.data(k).size_mb;
  }
  EXPECT_NEAR(plan.total_mb, expected_mb, 1e-9);
}

TEST(Migration, PrefersEdgeSourceOverCloud) {
  const auto inst = model::make_instance(small_params(), 8);
  // previous: item 0 on server 0; next: item 0 on servers 0 and 1.
  core::DeliveryProfile previous(inst);
  previous.place(0, 0);
  core::DeliveryProfile next(inst);
  next.place(0, 0);
  next.place(1, 0);
  const auto plan = dynamic::plan_migration(inst, previous, next);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].to_server, 1u);
  EXPECT_EQ(plan.steps[0].from_server, 0u);  // edge beats 600 MB/s cloud
  EXPECT_EQ(plan.cloud_fetches, 0u);
}

TEST(DynamicSimulation, RunsAndAggregates) {
  dynamic::DynamicParams params;
  params.base = small_params();
  params.steps = 20;
  params.resolve_period = 5;
  dynamic::DynamicSimulation sim(params, 42);
  const auto summary = sim.run();
  ASSERT_EQ(summary.steps.size(), 20u);
  EXPECT_GT(summary.mean_rate_mbps, 0.0);
  EXPECT_GT(summary.mean_latency_ms, 0.0);
  EXPECT_EQ(summary.total_resolves, 1u + 4u);  // t=0 plus steps 5,10,15,20
  EXPECT_GT(summary.total_distance_m, 0.0);
  int resolved_steps = 0;
  for (const auto& record : summary.steps) {
    if (record.resolved) ++resolved_steps;
    EXPECT_GE(record.rate_mbps, 0.0);
  }
  EXPECT_EQ(resolved_steps, 4);
}

TEST(DynamicSimulation, DeterministicPerSeed) {
  dynamic::DynamicParams params;
  params.base = small_params();
  params.steps = 10;
  params.resolve_period = 3;
  const auto a = dynamic::DynamicSimulation(params, 9).run();
  const auto b = dynamic::DynamicSimulation(params, 9).run();
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps[i].rate_mbps, b.steps[i].rate_mbps);
    EXPECT_DOUBLE_EQ(a.steps[i].latency_ms, b.steps[i].latency_ms);
  }
  EXPECT_DOUBLE_EQ(a.total_migration_mb, b.total_migration_mb);
}

TEST(DynamicSimulation, ResolvingBeatsNeverResolving) {
  dynamic::DynamicParams never;
  never.base = small_params();
  never.steps = 60;
  never.resolve_period = 0;
  dynamic::DynamicParams often = never;
  often.resolve_period = 10;
  double never_rate = 0.0;
  double often_rate = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    never_rate +=
        dynamic::DynamicSimulation(never, 100 + seed).run().mean_rate_mbps;
    often_rate +=
        dynamic::DynamicSimulation(often, 100 + seed).run().mean_rate_mbps;
  }
  EXPECT_GT(often_rate, never_rate);
}

TEST(DynamicSimulation, NoResolveNoMigrationTraffic) {
  dynamic::DynamicParams params;
  params.base = small_params();
  params.steps = 15;
  params.resolve_period = 0;
  const auto summary = dynamic::DynamicSimulation(params, 11).run();
  EXPECT_EQ(summary.total_migration_mb, 0.0);
  EXPECT_EQ(summary.total_handovers, 0u);
  EXPECT_EQ(summary.total_resolves, 1u);
}

TEST(DynamicSimulation, WarmStartUsesFewerMoves) {
  dynamic::DynamicParams warm;
  warm.base = small_params();
  warm.steps = 30;
  warm.resolve_period = 10;
  warm.warm_start = true;
  dynamic::DynamicParams cold = warm;
  cold.warm_start = false;
  std::size_t warm_moves = 0;
  std::size_t cold_moves = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const auto& record :
         dynamic::DynamicSimulation(warm, 200 + seed).run().steps) {
      warm_moves += record.game_moves;
    }
    for (const auto& record :
         dynamic::DynamicSimulation(cold, 200 + seed).run().steps) {
      cold_moves += record.game_moves;
    }
  }
  EXPECT_LT(warm_moves, cold_moves);
}

}  // namespace

namespace {

using namespace idde;

TEST(Churn, InitialFractionRespected) {
  util::Rng rng(1);
  dynamic::ChurnParams params;
  params.initial_online_fraction = 0.5;
  dynamic::ChurnProcess churn(1000, params, rng);
  EXPECT_NEAR(static_cast<double>(churn.online_count()), 500.0, 60.0);
}

TEST(Churn, AllOnlineWhenFractionOne) {
  util::Rng rng(2);
  dynamic::ChurnProcess churn(50, dynamic::ChurnParams{}, rng);
  EXPECT_EQ(churn.online_count(), 50u);
}

TEST(Churn, NoRatesNoToggles) {
  util::Rng rng(3);
  dynamic::ChurnParams params;
  params.arrival_rate_hz = 0.0;
  params.mean_session_s = 0.0;  // disables departures
  dynamic::ChurnProcess churn(100, params, rng);
  EXPECT_EQ(churn.step(1000.0, rng), 0u);
  EXPECT_EQ(churn.online_count(), 100u);
}

TEST(Churn, ReachesSteadyStateBalance) {
  util::Rng rng(4);
  dynamic::ChurnParams params;
  params.arrival_rate_hz = 1.0 / 60.0;
  params.mean_session_s = 60.0;  // symmetric rates -> ~50% online
  params.initial_online_fraction = 1.0;
  dynamic::ChurnProcess churn(2000, params, rng);
  for (int step = 0; step < 600; ++step) churn.step(1.0, rng);
  EXPECT_NEAR(static_cast<double>(churn.online_count()), 1000.0, 120.0);
}

TEST(Churn, CountMatchesMask) {
  util::Rng rng(5);
  dynamic::ChurnParams params;
  params.initial_online_fraction = 0.7;
  dynamic::ChurnProcess churn(200, params, rng);
  for (int step = 0; step < 50; ++step) {
    churn.step(1.0, rng);
    std::size_t online = 0;
    for (std::size_t j = 0; j < 200; ++j) {
      if (churn.online(j)) ++online;
    }
    EXPECT_EQ(online, churn.online_count());
  }
}

TEST(DynamicSimulation, ChurnKeepsOfflineUsersUnallocated) {
  dynamic::DynamicParams params;
  params.base = small_params();
  params.steps = 30;
  params.resolve_period = 5;
  params.churn_enabled = true;
  params.churn.arrival_rate_hz = 1.0 / 30.0;
  params.churn.mean_session_s = 30.0;
  params.churn.initial_online_fraction = 0.6;
  const auto summary = dynamic::DynamicSimulation(params, 77).run();
  ASSERT_EQ(summary.steps.size(), 30u);
  for (const auto& record : summary.steps) {
    EXPECT_LE(record.online_users, 40u);
    EXPECT_GE(record.rate_mbps, 0.0);
  }
  // Some churn must have happened at these rates.
  std::size_t events = 0;
  for (const auto& record : summary.steps) events += record.churn_events;
  EXPECT_GT(events, 0u);
}

TEST(DynamicSimulation, ChurnMetricsDifferFromStatic) {
  dynamic::DynamicParams with;
  with.base = small_params();
  with.steps = 20;
  with.resolve_period = 5;
  with.churn_enabled = true;
  with.churn.initial_online_fraction = 0.3;
  with.churn.arrival_rate_hz = 0.0;   // nobody new arrives
  with.churn.mean_session_s = 0.0;    // nobody leaves
  dynamic::DynamicParams without = with;
  without.churn_enabled = false;
  const auto a = dynamic::DynamicSimulation(with, 88).run();
  const auto b = dynamic::DynamicSimulation(without, 88).run();
  // With only ~30% of users online there is less interference, so the
  // per-online-user average rate should be at least as high.
  EXPECT_GE(a.mean_rate_mbps, b.mean_rate_mbps * 0.95);
  for (const auto& record : a.steps) {
    EXPECT_LT(record.online_users, 20u);
  }
}

}  // namespace
