// Ablation — propagation-model robustness. The paper claims its results do
// not hinge on the specific wireless model; this bench re-runs the default
// point (N=30, M=200, K=5) under varied path-loss exponents and log-normal
// shadowing and checks that the approach ordering survives.
#include <cstdio>
#include <iostream>

#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const int reps = util::experiment_reps(3);
  const double ip_budget = util::ip_budget_ms(100.0);
  std::printf(
      "Propagation robustness at N=30 M=200 K=5 (%d reps, IDDE-IP %.0f ms)\n\n",
      reps, ip_budget);

  struct Variant {
    const char* label;
    double loss_exponent;
    double shadowing_db;
  };
  const Variant variants[] = {
      {"loss=2.5, no shadowing", 2.5, 0.0},
      {"loss=3.0, no shadowing (paper)", 3.0, 0.0},
      {"loss=3.5, no shadowing", 3.5, 0.0},
      {"loss=3.0, 4 dB shadowing", 3.0, 4.0},
      {"loss=3.0, 8 dB shadowing", 3.0, 8.0},
  };

  const auto approaches = sim::make_paper_approaches(ip_budget);
  util::TextTable rate_table({"variant", "IDDE-IP", "IDDE-G", "SAA", "CDP",
                              "DUP-G"});
  util::TextTable latency_table({"variant", "IDDE-IP", "IDDE-G", "SAA",
                                 "CDP", "DUP-G"});
  for (const Variant& variant : variants) {
    model::InstanceParams params = sim::paper_default_params();
    params.pathloss_exponent = variant.loss_exponent;
    params.shadowing_stddev_db = variant.shadowing_db;
    const model::InstanceBuilder builder(params);

    std::vector<util::RunningStats> rate(approaches.size());
    std::vector<util::RunningStats> latency(approaches.size());
    for (int rep = 0; rep < reps; ++rep) {
      const auto inst =
          builder.build(7100 + static_cast<std::uint64_t>(rep));
      for (std::size_t a = 0; a < approaches.size(); ++a) {
        util::Rng rng(500 + static_cast<std::uint64_t>(rep) * 7 + a);
        const auto record = sim::run_approach(inst, *approaches[a], rng);
        rate[a].add(record.metrics.avg_rate_mbps);
        latency[a].add(record.metrics.avg_latency_ms);
      }
    }
    auto rate_row = rate_table.start_row();
    rate_row.add(std::string(variant.label));
    for (auto& s : rate) rate_row.add(s.mean());
    auto latency_row = latency_table.start_row();
    latency_row.add(std::string(variant.label));
    for (auto& s : latency) latency_row.add(s.mean());
  }
  std::puts("R_avg (MB/s):");
  rate_table.print(std::cout);
  std::puts("\nL_avg (ms):");
  latency_table.print(std::cout);
  std::puts(
      "\nExpected: IDDE-G keeps the best rate and latency under every "
      "variant; absolute rates shift with the propagation constants.");
  return 0;
}
