// Coded Phase 2: greedily add the fragment placement with the highest
// latency-reduction-per-fragment-MB ratio (the coded Eq. 17) until
// nothing feasible improves, plus the resume-greedy repair that re-heals
// a coded sigma after failures.
//
// Both planners are ports of core::GreedyDeliveryPlanner /
// core::RepairPlanner with one structural addition: for k > 1 the gain of
// a fragment can *grow* as other fragments of the same item land (the
// k-th-fastest leg shifts), so stale heap keys are no longer upper bounds
// and the lazy drain can terminate early. After the heap empties the
// planners rescan all feasible candidates and refill the heap, repeating
// until a rescan finds nothing — at k = 1 gains are submodular, the first
// rescan is provably empty, and the final placement set (and every
// committed move before it) is bit-identical to the replication planner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "coding/coded_evaluator.hpp"
#include "coding/coded_profile.hpp"
#include "coding/fragment.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::coding {

struct CodedPlanResult {
  CodedDeliveryProfile delivery;
  std::size_t placements = 0;
  /// Includes the terminating rescan(s) — higher than the replication
  /// planner's count even at k = 1 (the placements are what must match).
  std::size_t gain_evaluations = 0;
  std::size_t rescan_rounds = 0;  ///< refills that found new candidates
};

/// Non-const plan(): the planner owns reusable scratch (candidate heap,
/// one CodedDeliveryEvaluator) — rewound per call, never carried between
/// plans.
class CodedGreedyPlanner {
 public:
  explicit CodedGreedyPlanner(const model::ProblemInstance& instance);

  /// `collaborative` selects full coded Eq. 8 delivery vs the
  /// local-or-cloud semantics of the non-collaborative baselines — the
  /// same flag core::Strategy carries.
  [[nodiscard]] CodedPlanResult plan(const core::AllocationProfile& allocation,
                                     FragmentConfig config,
                                     bool collaborative = true);

 private:
  struct Candidate {
    double ratio;
    std::size_t server;
    std::size_t item;

    bool operator<(const Candidate& other) const {
      return ratio < other.ratio;  // max-heap on ratio
    }
  };

  CodedDeliveryEvaluator& evaluator_for(
      const core::AllocationProfile& allocation, FragmentConfig config,
      bool collaborative);

  const model::ProblemInstance* instance_;
  std::vector<Candidate> heap_;
  std::optional<CodedDeliveryEvaluator> evaluator_;
};

struct CodedRepairResult {
  CodedDeliveryProfile delivery;
  std::size_t lost_placements = 0;    ///< fragments on dead servers / corrupt
  std::size_t repair_placements = 0;  ///< new fragments the repair added
  double recovered_gain_seconds = 0;  ///< total latency the repairs removed
};

/// Resume-greedy repair of a coded sigma: keep every surviving
/// (uncorrupted) fragment, drop the rest, and resume the coded greedy on
/// the surviving servers. Same member-scratch discipline and
/// max_placements budget semantics as core::RepairPlanner; the k > 1
/// refill-rescan only runs while budget remains.
class CodedRepairPlanner {
 public:
  explicit CodedRepairPlanner(const model::ProblemInstance& instance);

  /// True when the fragment (server, item) is unreadable even though its
  /// server is up (silent corruption).
  using ReplicaLost = std::function<bool(std::size_t, std::size_t)>;

  [[nodiscard]] CodedRepairResult replan(
      const core::AllocationProfile& allocation,
      const CodedDeliveryProfile& sigma,
      std::span<const std::uint8_t> server_up,
      const ReplicaLost& replica_lost = {}, bool collaborative = true,
      std::size_t max_placements = std::numeric_limits<std::size_t>::max());

 private:
  struct Candidate {
    double ratio;
    std::size_t server;
    std::size_t item;

    bool operator<(const Candidate& other) const {
      return ratio < other.ratio;  // max-heap on ratio
    }
  };

  const model::ProblemInstance* instance_;
  std::vector<Candidate> heap_;
  std::optional<CodedDeliveryEvaluator> evaluator_;
  core::AllocationProfile effective_;  ///< outage-masked allocation
};

}  // namespace idde::coding
