// Gray-failure subsystem: DegradationPlan schedules (determinism, shape,
// IO), HealthTracker scoring/hysteresis, the health-aware Eq. 8 resolver,
// the hedged DES engine (flow_sim_hedged.cpp) with its exact hedge/loss
// byte accounting, and the serve controller's gray event class with
// checkpoint/restore under an active plan. The zero-cost-when-disabled
// contract — inert plan + inert hedge config replays bit-identically to
// the pre-gray engine — is asserted field by field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/health.hpp"
#include "core/idde_g.hpp"
#include "fault/fault_plan.hpp"
#include "des/flow_sim.hpp"
#include "fault/degradation.hpp"
#include "model/instance_builder.hpp"
#include "serve/controller.hpp"
#include "sim/paper.hpp"
#include "util/json.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

fault::DegradationProfile heavy_profile() {
  fault::DegradationProfile profile;
  profile.horizon_s = 120.0;
  profile.gray_fraction = 0.5;
  profile.peak_multiplier_min = 8.0;
  profile.peak_multiplier_max = 8.0;
  profile.onset_latest_s = 0.5;
  // Plateau-only lottery: the whole episode sits at the peak, so the
  // gray/healthy contrast is maximal and stable over the run.
  profile.ramp_weight = 0.0;
  profile.flap_weight = 0.0;
  profile.plateau_s = 110.0;
  return profile;
}

core::Strategy solve(const model::ProblemInstance& inst, std::uint64_t seed) {
  const core::IddeGOptions options;
  util::Rng rng(seed);
  return core::IddeG(options).solve(inst, rng);
}

// --- DegradationPlan -----------------------------------------------------

TEST(DegradationPlan, PureFunctionOfTopologyProfileAndSeed) {
  const auto inst = model::make_instance(small_params(), 3);
  fault::DegradationProfile profile;
  profile.gray_fraction = 0.6;
  profile.loss_prob_max = 0.1;
  const auto a = fault::DegradationPlan::generate(inst, profile, 41);
  const auto b = fault::DegradationPlan::generate(inst, profile, 41);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.inert());
  const auto c = fault::DegradationPlan::generate(inst, profile, 42);
  EXPECT_NE(a, c);

  const fault::DegradationProfile off;  // gray_fraction = 0
  ASSERT_TRUE(off.inert());
  EXPECT_TRUE(fault::DegradationPlan::generate(inst, off, 41).inert());
}

TEST(DegradationPlan, GeneratedSegmentsAreWellFormed) {
  const auto inst = model::make_instance(small_params(), 4);
  fault::DegradationProfile profile;
  profile.gray_fraction = 0.8;
  profile.loss_prob_max = 0.2;
  const auto plan = fault::DegradationPlan::generate(inst, profile, 99);
  ASSERT_FALSE(plan.inert());

  for (const auto& segments : plan.server_segments()) {
    double prev_end = 0.0;
    for (const auto& s : segments) {
      EXPECT_GE(s.start_s, prev_end);
      EXPECT_GT(s.end_s, s.start_s);
      EXPECT_LE(s.end_s, plan.horizon_s());
      EXPECT_GE(s.latency_multiplier, 1.0);
      EXPECT_LE(s.latency_multiplier, profile.peak_multiplier_max);
      EXPECT_GE(s.loss_prob, 0.0);
      EXPECT_LE(s.loss_prob, profile.loss_prob_max);
      prev_end = s.end_s;
    }
  }
  const auto& changes = plan.change_times();
  EXPECT_TRUE(std::is_sorted(changes.begin(), changes.end()));
  EXPECT_EQ(std::adjacent_find(changes.begin(), changes.end()),
            changes.end());
  // Outside the horizon everything is healthy.
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_EQ(plan.latency_multiplier(i, plan.horizon_s() + 1.0), 1.0);
    EXPECT_EQ(plan.loss_prob(i, plan.horizon_s() + 1.0), 0.0);
  }
}

TEST(DegradationPlan, PointQueriesAreHalfOpen) {
  fault::DegradationPlan plan;
  plan.add_server_segment(2, {1.0, 5.0, 4.0, 0.25});
  plan.add_server_segment(2, {5.0, 9.0, 2.0, 0.0});
  plan.set_loss_seed(7);

  EXPECT_EQ(plan.latency_multiplier(2, 0.5), 1.0);   // before onset
  EXPECT_EQ(plan.latency_multiplier(2, 1.0), 4.0);   // inclusive start
  EXPECT_EQ(plan.latency_multiplier(2, 4.999), 4.0);
  EXPECT_EQ(plan.latency_multiplier(2, 5.0), 2.0);   // exclusive end
  EXPECT_EQ(plan.latency_multiplier(2, 9.0), 1.0);
  EXPECT_EQ(plan.loss_prob(2, 3.0), 0.25);
  EXPECT_EQ(plan.loss_prob(2, 6.0), 0.0);
  // Untouched servers are healthy at every time.
  EXPECT_EQ(plan.latency_multiplier(0, 3.0), 1.0);
  EXPECT_EQ(plan.loss_prob(0, 3.0), 0.0);

  EXPECT_EQ(plan.next_change_after(0.0), 1.0);
  EXPECT_EQ(plan.next_change_after(1.0), 5.0);
  EXPECT_EQ(plan.next_change_after(5.0), 9.0);
  EXPECT_EQ(plan.next_change_after(9.0), fault::kNeverChanges);
}

TEST(DegradationPlan, LossLotteryIsStatelessAndCalibrated) {
  fault::DegradationPlan plan;
  plan.add_server_segment(0, {0.0, 10.0, 2.0, 0.5});
  plan.set_loss_seed(0xabcde);

  std::size_t lost = 0;
  for (std::uint64_t flow = 0; flow < 2000; ++flow) {
    const bool first = plan.leg_lost(0, flow, 0, 1.0);
    EXPECT_EQ(first, plan.leg_lost(0, flow, 0, 1.0));  // stateless replay
    lost += first ? 1 : 0;
  }
  EXPECT_GT(lost, 2000u * 4 / 10);
  EXPECT_LT(lost, 2000u * 6 / 10);
  // Retries re-draw: some flow must differ between attempt 0 and 1.
  bool attempt_matters = false;
  for (std::uint64_t flow = 0; flow < 64 && !attempt_matters; ++flow) {
    attempt_matters = plan.leg_lost(0, flow, 0, 1.0) !=
                      plan.leg_lost(0, flow, 1, 1.0);
  }
  EXPECT_TRUE(attempt_matters);
  // Outside every segment the lottery never fires.
  EXPECT_FALSE(plan.leg_lost(0, 1, 0, 11.0));
}

TEST(DegradationPlan, JsonRoundTripsBitIdentically) {
  const auto inst = model::make_instance(small_params(), 5);
  fault::DegradationProfile profile;
  profile.gray_fraction = 0.7;
  profile.loss_prob_max = 0.15;
  const auto plan = fault::DegradationPlan::generate(inst, profile, 1234);
  ASSERT_FALSE(plan.inert());

  const std::string text = fault::degradation_to_string(plan, 2);
  const auto reloaded = fault::degradation_from_string(inst, text);
  EXPECT_EQ(reloaded, plan);
  EXPECT_EQ(fault::degradation_to_string(reloaded, 2), text);
}

TEST(DegradationPlan, MalformedDocumentsThrowStructuredErrors) {
  const auto inst = model::make_instance(small_params(), 6);
  const char* const bad[] = {
      // Wrong format tag.
      R"({"format":"idde-degradation-plan-v9","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[]})",
      // Server id out of range for the instance.
      R"({"format":"idde-degradation-plan-v1","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[{"server":99,"segments":[)"
      R"({"start_s":0.0,"end_s":1.0,"latency_multiplier":2.0,)"
      R"("loss_prob":0.0}]}]})",
      // Overlapping segments.
      R"({"format":"idde-degradation-plan-v1","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[{"server":0,"segments":[)"
      R"({"start_s":0.0,"end_s":5.0,"latency_multiplier":2.0,)"
      R"("loss_prob":0.0},)"
      R"({"start_s":4.0,"end_s":6.0,"latency_multiplier":2.0,)"
      R"("loss_prob":0.0}]}]})",
      // Segment past the horizon.
      R"({"format":"idde-degradation-plan-v1","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[{"server":0,"segments":[)"
      R"({"start_s":0.0,"end_s":11.0,"latency_multiplier":2.0,)"
      R"("loss_prob":0.0}]}]})",
      // Certain loss is not a valid probability.
      R"({"format":"idde-degradation-plan-v1","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[{"server":0,"segments":[)"
      R"({"start_s":0.0,"end_s":1.0,"latency_multiplier":2.0,)"
      R"("loss_prob":1.0}]}]})",
      // Same server listed twice.
      R"({"format":"idde-degradation-plan-v1","horizon_s":10.0,)"
      R"("loss_seed":"0","servers":[)"
      R"({"server":0,"segments":[{"start_s":0.0,"end_s":1.0,)"
      R"("latency_multiplier":2.0,"loss_prob":0.0}]},)"
      R"({"server":0,"segments":[{"start_s":2.0,"end_s":3.0,)"
      R"("latency_multiplier":2.0,"loss_prob":0.0}]}]})",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)fault::degradation_from_string(inst, text),
                 util::JsonError)
        << text;
  }
}

// --- HealthTracker -------------------------------------------------------

TEST(HealthTracker, FreshTrackerScoresExactlyOne) {
  core::HealthTracker tracker(4, {});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tracker.score(i), 1.0);
    EXPECT_FALSE(tracker.demoted(i));
  }
}

TEST(HealthTracker, DemotionIsHystereticAndSampleGated) {
  core::HealthConfig config;  // demote < 0.6, recover > 0.8, min_samples 3
  core::HealthTracker tracker(2, config);

  // Two 4x-slow legs: score well below the demote mark, but the sample
  // gate holds the latch.
  tracker.record_leg(0, 1.0, 4.0);
  tracker.record_leg(0, 1.0, 4.0);
  EXPECT_LT(tracker.score(0), config.demote_score);
  EXPECT_FALSE(tracker.demoted(0));
  tracker.record_leg(0, 1.0, 4.0);
  EXPECT_TRUE(tracker.demoted(0));

  // Recovery: on-time legs decay the EWMA; the latch only releases above
  // the high-water mark, then stays released.
  std::size_t legs_until_recovered = 0;
  while (tracker.demoted(0)) {
    ASSERT_LT(legs_until_recovered, 100u);
    tracker.record_leg(0, 1.0, 1.0);
    ++legs_until_recovered;
  }
  EXPECT_GT(tracker.score(0), config.recover_score);
  EXPECT_GT(legs_until_recovered, 1u);  // hysteresis: not an instant flip

  // An untouched neighbour was never affected.
  EXPECT_EQ(tracker.score(1), 1.0);
}

TEST(HealthTracker, LossesDepressTheScoreWithoutLatencyEvidence) {
  core::HealthConfig config;
  config.loss_weight = 2.0;
  core::HealthTracker tracker(1, config);
  tracker.record_leg(0, 1.0, 1.0);  // on time
  EXPECT_EQ(tracker.score(0), 1.0);
  tracker.record_loss(0);
  tracker.record_loss(0);
  // loss_frac = 2/3, score = 1 / (1 + 2 * 2/3).
  EXPECT_LT(tracker.score(0), 0.5);
  EXPECT_TRUE(tracker.demoted(0));
}

TEST(HealthTracker, StateRoundTripsThroughRestore) {
  core::HealthTracker tracker(3, {});
  tracker.record_leg(0, 1.0, 5.0);
  tracker.record_leg(0, 1.0, 5.0);
  tracker.record_leg(0, 1.0, 5.0);
  tracker.record_loss(1);

  core::HealthTracker twin(3, {});
  twin.restore_state(tracker.state());
  EXPECT_EQ(twin.state(), tracker.state());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(twin.score(i), tracker.score(i));
    EXPECT_EQ(twin.demoted(i), tracker.demoted(i));
  }
}

// --- resolve_with_health -------------------------------------------------

TEST(HealthResolver, FreshTrackerIsBitIdenticalToFailover) {
  const auto inst = model::make_instance(small_params(), 11);
  const auto strategy = solve(inst, 11);
  const core::HealthTracker fresh(inst.server_count(), {});

  std::vector<std::uint8_t> up(inst.server_count(), 1);
  up[0] = 0;  // also exercise the masked path
  for (std::size_t user = 0; user < inst.user_count(); ++user) {
    const core::ChannelSlot slot = strategy.allocation[user];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    for (std::size_t item = 0; item < inst.data_count(); ++item) {
      const auto hosts = strategy.delivery.hosts(item);
      const double size = inst.data(item).size_mb;
      for (const auto mask :
           {std::span<const std::uint8_t>{}, std::span<const std::uint8_t>(up)}) {
        const auto plain =
            core::resolve_with_failover(inst, hosts, serving, size, mask);
        for (const core::HealthTracker* tracker :
             {static_cast<const core::HealthTracker*>(nullptr), &fresh}) {
          const auto scored = core::resolve_with_health(inst, hosts, serving,
                                                        size, tracker, mask);
          EXPECT_EQ(scored.source, plain.source);
          EXPECT_EQ(scored.tier, plain.tier);
          EXPECT_EQ(scored.seconds, plain.seconds);
        }
      }
    }
  }
}

TEST(HealthResolver, DemotedSourceLosesTheArgmin) {
  const auto inst = model::make_instance(small_params(), 12);
  const auto strategy = solve(inst, 12);

  // Find a request whose fault-free argmin is an edge server with at
  // least one other live replica to fall back to.
  for (std::size_t user = 0; user < inst.user_count(); ++user) {
    const core::ChannelSlot slot = strategy.allocation[user];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    for (std::size_t item = 0; item < inst.data_count(); ++item) {
      const auto hosts = strategy.delivery.hosts(item);
      if (hosts.size() < 2) continue;
      const double size = inst.data(item).size_mb;
      const auto plain =
          core::resolve_with_failover(inst, hosts, serving, size);
      if (plain.source == core::kCloudSource) continue;

      // Crush the winner's health; the weighted argmin must move off it.
      core::HealthTracker tracker(inst.server_count(), {});
      for (int leg = 0; leg < 5; ++leg) {
        tracker.record_leg(plain.source, 1.0, 1e6);
      }
      const auto scored =
          core::resolve_with_health(inst, hosts, serving, size, &tracker);
      EXPECT_NE(scored.source, plain.source);
      // The reported seconds are the chosen source's unweighted latency —
      // the score shapes the choice, never the physics — so steering away
      // from the fastest replica cannot *reduce* the reported latency.
      EXPECT_GE(scored.seconds, plain.seconds);
      return;  // one witness is enough
    }
  }
  FAIL() << "no edge-served request with a fallback replica found";
}

// --- hedged DES engine ---------------------------------------------------

void expect_same_result(const des::FlowSimResult& a,
                        const des::FlowSimResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s) << f;
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s) << f;
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries) << f;
    EXPECT_EQ(a.flows[f].tier, b.flows[f].tier) << f;
    EXPECT_EQ(a.flows[f].hedged, b.flows[f].hedged) << f;
    EXPECT_EQ(a.flows[f].losses, b.flows[f].losses) << f;
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
  EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
  EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.retry_count, b.retry_count);
  EXPECT_EQ(a.tier_counts, b.tier_counts);
  EXPECT_EQ(a.hedge_launches, b.hedge_launches);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedge_wasted_mb, b.hedge_wasted_mb);
  EXPECT_EQ(a.loss_aborts, b.loss_aborts);
}

TEST(HedgedDes, InertGrayLayerReplaysBitIdentically) {
  const auto inst = model::make_instance(small_params(), 21);
  const auto strategy = solve(inst, 21);

  des::FlowSimOptions plain_options;
  plain_options.arrival_window_s = 15.0;
  util::Rng rng_plain(21);
  const auto plain =
      des::FlowLevelSimulator(inst, plain_options).run(strategy, rng_plain);

  // Inert plan attached, default (inert) hedge config: same engine
  // dispatch, same floats.
  const fault::DegradationPlan inert_plan;
  ASSERT_TRUE(inert_plan.inert());
  des::FlowSimOptions gray_options = plain_options;
  gray_options.degradation = &inert_plan;
  util::Rng rng_gray(21);
  const auto gray =
      des::FlowLevelSimulator(inst, gray_options).run(strategy, rng_gray);
  expect_same_result(gray, plain);
  EXPECT_EQ(gray.hedge_launches, 0u);
  EXPECT_EQ(gray.hedge_wasted_mb, 0.0);
}

TEST(HedgedDes, GrayPlanInflatesTheBlindReplay) {
  const auto inst = model::make_instance(small_params(), 22);
  const auto strategy = solve(inst, 22);
  const auto plan =
      fault::DegradationPlan::generate(inst, heavy_profile(), 22);
  ASSERT_FALSE(plan.inert());

  des::FlowSimOptions options;
  options.arrival_window_s = 15.0;
  util::Rng rng_a(22);
  const auto healthy =
      des::FlowLevelSimulator(inst, options).run(strategy, rng_a);

  options.degradation = &plan;  // binary-blind: gray physics, no defences
  util::Rng rng_b(22);
  const auto degraded =
      des::FlowLevelSimulator(inst, options).run(strategy, rng_b);

  EXPECT_GT(degraded.mean_duration_ms, healthy.mean_duration_ms);
  EXPECT_EQ(degraded.hedge_launches, 0u);  // hedging was off
  for (const auto& flow : degraded.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
  }
}

TEST(HedgedDes, HealthAwareHedgingBeatsTheBlindReplayUnderHeavyGray) {
  double blind_total = 0.0;
  double defended_total = 0.0;
  for (std::uint64_t seed = 31; seed <= 33; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto strategy = solve(inst, seed);
    const auto plan =
        fault::DegradationPlan::generate(inst, heavy_profile(), seed);
    ASSERT_FALSE(plan.inert());

    des::FlowSimOptions options;
    options.arrival_window_s = 15.0;
    options.degradation = &plan;
    util::Rng rng_a(seed);
    blind_total += des::FlowLevelSimulator(inst, options)
                       .run(strategy, rng_a)
                       .mean_duration_ms;

    options.hedge.enabled = true;
    options.hedge.health_aware = true;
    util::Rng rng_b(seed);
    defended_total += des::FlowLevelSimulator(inst, options)
                          .run(strategy, rng_b)
                          .mean_duration_ms;
  }
  EXPECT_LT(defended_total, blind_total);
}

TEST(HedgedDes, HedgeAndLossAccountingIsExact) {
  const auto inst = model::make_instance(small_params(), 24);
  const auto strategy = solve(inst, 24);
  // Every server mildly (2x) slow with real loss: gray primaries usually
  // complete *before* their 1.5x-deadline hedges finish, so the loss
  // lottery resolves (a cancelled leg never completes and can never count
  // as lost), while the slowdown still launches plenty of hedge races.
  fault::DegradationProfile profile = heavy_profile();
  profile.gray_fraction = 1.0;
  profile.peak_multiplier_min = 2.0;
  profile.peak_multiplier_max = 2.0;
  profile.loss_prob_max = 0.3;
  const auto plan = fault::DegradationPlan::generate(inst, profile, 24);
  ASSERT_FALSE(plan.inert());

  des::FlowSimOptions options;
  options.arrival_window_s = 15.0;
  options.degradation = &plan;
  options.hedge.enabled = true;
  options.hedge.deadline_factor = 1.5;  // aggressive: force real hedging
  util::Rng rng(24);
  const auto result =
      des::FlowLevelSimulator(inst, options).run(strategy, rng);

  EXPECT_GT(result.hedge_launches, 0u);
  EXPECT_LE(result.hedge_wins, result.hedge_launches);
  std::size_t hedged_flows = 0;
  std::size_t winner_flows = 0;
  std::size_t losses = 0;
  for (const auto& flow : result.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
    hedged_flows += flow.hedged ? 1 : 0;
    winner_flows += flow.hedge_won ? 1 : 0;
    losses += flow.losses;
    if (flow.hedge_won) {
      EXPECT_TRUE(flow.hedged);
    }
  }
  EXPECT_LE(hedged_flows, result.hedge_launches);  // >= 1 launch per flow
  EXPECT_EQ(winner_flows, result.hedge_wins);
  EXPECT_EQ(losses, result.loss_aborts);
  EXPECT_GT(result.loss_aborts, 0u);
  // Race losers and lost legs burn real bytes.
  if (result.hedge_cancelled + result.loss_aborts > 0) {
    EXPECT_GT(result.hedge_wasted_mb, 0.0);
  }
  // Offered == served: the gray engine never sheds.
  EXPECT_EQ(result.qos.offered, result.flows.size());
  EXPECT_EQ(result.qos.admitted, result.flows.size());

  // Same seed, same options: the hedged engine is deterministic.
  util::Rng rng2(24);
  const auto replay =
      des::FlowLevelSimulator(inst, options).run(strategy, rng2);
  expect_same_result(replay, result);
}

TEST(HedgedDes, PureLossPlanForcesRetriesButEveryFlowCompletes) {
  const auto inst = model::make_instance(small_params(), 25);
  const auto strategy = solve(inst, 25);

  // Lossy but not slow: every edge leg plays a 0.5 lottery; retries (and
  // ultimately the cloud) must still serve 100%.
  fault::DegradationPlan plan;
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    plan.add_server_segment(i, {0.0, 300.0, 1.0, 0.5});
  }
  plan.set_loss_seed(25);

  des::FlowSimOptions options;
  options.arrival_window_s = 15.0;
  options.degradation = &plan;
  util::Rng rng(25);
  const auto result =
      des::FlowLevelSimulator(inst, options).run(strategy, rng);

  EXPECT_GT(result.loss_aborts, 0u);
  EXPECT_GT(result.hedge_wasted_mb, 0.0);  // lost legs transfer fully
  for (const auto& flow : result.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
  }
}

TEST(HedgedDes, ComposesWithABinaryFaultPlan) {
  const auto inst = model::make_instance(small_params(), 26);
  const auto strategy = solve(inst, 26);

  fault::FaultProfile faults;
  faults.horizon_s = 45.0;
  faults.server_mtbf_s = 15.0;
  faults.server_mttr_s = 5.0;
  const auto fault_plan = fault::FaultPlan::generate(inst, faults, 26);
  ASSERT_FALSE(fault_plan.inert());
  const auto gray_plan =
      fault::DegradationPlan::generate(inst, heavy_profile(), 26);
  ASSERT_FALSE(gray_plan.inert());

  des::FlowSimOptions options;
  options.arrival_window_s = 15.0;
  options.fault_plan = &fault_plan;
  options.degradation = &gray_plan;
  options.hedge.enabled = true;
  options.hedge.health_aware = true;
  util::Rng rng(26);
  const auto result =
      des::FlowLevelSimulator(inst, options).run(strategy, rng);

  for (const auto& flow : result.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
  }
  util::Rng rng2(26);
  const auto replay =
      des::FlowLevelSimulator(inst, options).run(strategy, rng2);
  expect_same_result(replay, result);
}

// --- serve controller ----------------------------------------------------

serve::ServeConfig gray_serve_config() {
  serve::ServeConfig config;
  config.base = sim::paper_default_params();
  config.base.server_count = 10;
  config.base.user_count = 40;
  config.base.data_count = 3;
  config.tick_seconds = 1.0;
  config.churn.arrival_rate_hz = 1.0 / 20.0;
  config.churn.mean_session_s = 40.0;
  config.churn.initial_online_fraction = 0.9;
  // Gray pressure: most servers degrade early and hold the peak, so the
  // health tracker has unambiguous evidence within a few ticks.
  config.degradation.gray_fraction = 0.9;
  config.degradation.horizon_s = 200.0;
  config.degradation.peak_multiplier_min = 6.0;
  config.degradation.peak_multiplier_max = 6.0;
  config.degradation.onset_latest_s = 2.0;
  config.degradation.ramp_weight = 0.0;
  config.degradation.flap_weight = 0.0;
  config.degradation.plateau_s = 180.0;
  config.health.min_samples = 2;
  return config;
}

TEST(ServeGray, GrayEventsDemoteServersAndStayDeterministic) {
  serve::ServeController a(gray_serve_config(), 7);
  serve::ServeController b(gray_serve_config(), 7);
  std::size_t peak_demoted = 0;
  for (int step = 0; step < 30; ++step) {
    (void)a.tick();
    (void)b.tick();
    ASSERT_EQ(a.trajectory_hash(), b.trajectory_hash()) << "tick " << step;
    peak_demoted = std::max(peak_demoted, a.gray_demoted_count());
  }
  // The plateau plan must have tripped the health latch on someone.
  EXPECT_GT(peak_demoted, 0u);
  EXPECT_GT(a.status().events_total, 0u);
}

TEST(ServeGray, CheckpointResumeIsBitIdenticalUnderActiveGray) {
  for (std::uint64_t seed = 40; seed <= 42; ++seed) {
    constexpr std::size_t kCut = 12;
    constexpr std::size_t kTotal = 24;
    serve::ServeController uninterrupted(gray_serve_config(), seed);
    for (std::size_t step = 0; step < kTotal; ++step) {
      (void)uninterrupted.tick();
    }

    serve::ServeController victim(gray_serve_config(), seed);
    for (std::size_t step = 0; step < kCut; ++step) (void)victim.tick();
    const std::string snapshot = victim.checkpoint();

    serve::ServeController survivor(gray_serve_config(), seed);
    survivor.restore(snapshot);
    EXPECT_EQ(survivor.checkpoint(), snapshot);
    EXPECT_EQ(survivor.gray_demoted_count(), victim.gray_demoted_count());
    for (std::size_t step = kCut; step < kTotal; ++step) {
      (void)survivor.tick();
    }
    EXPECT_EQ(survivor.trajectory_hash(), uninterrupted.trajectory_hash())
        << "seed " << seed;
  }
}

TEST(ServeGray, RestoreRejectsSnapshotsFromADifferentHealthConfig) {
  serve::ServeController a(gray_serve_config(), 3);
  for (int step = 0; step < 5; ++step) (void)a.tick();
  const std::string snapshot = a.checkpoint();

  serve::ServeConfig other = gray_serve_config();
  other.health.demote_score = 0.5;  // guard-hashed: not the same world
  serve::ServeController b(other, 3);
  EXPECT_THROW(b.restore(snapshot), util::JsonError);

  serve::ServeConfig other_gray = gray_serve_config();
  other_gray.degradation.peak_multiplier_max = 7.0;
  serve::ServeController c(other_gray, 3);
  EXPECT_THROW(c.restore(snapshot), util::JsonError);
}

}  // namespace
