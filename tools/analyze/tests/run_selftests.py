#!/usr/bin/env python3
"""Self-tests for idde_analyze: fixture scans against golden output, plus
the suppression, baseline, and error-path contracts.

Run directly (or via ctest as `analyze_selftest`); pass --regen after a
deliberate rule or fixture change to rewrite tests/golden.json, then review
the diff like any other code change.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

TESTS = Path(__file__).resolve().parent
SCRIPT = TESTS.parent / "idde_analyze.py"
FIXTURES = TESTS / "fixtures"
PROJ = FIXTURES / "proj"
CONFIG = FIXTURES / "config.json"
GOLDEN = TESTS / "golden.json"

_failures: list[str] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    status = "ok" if ok else "FAIL"
    print(f"  {status:4} {name}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        _failures.append(name)


def run_cli(*args: str, baseline: str | None = None):
    """Returns (exit_code, parsed_json_or_None, stderr)."""
    cmd = [sys.executable, str(SCRIPT), "--root", str(PROJ),
           "--config", str(CONFIG), "--format", "json", "--jobs", "1"]
    cmd += ["--baseline", baseline] if baseline else ["--no-baseline"]
    cmd += list(args)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    doc = None
    if proc.stdout.strip():
        try:
            doc = json.loads(proc.stdout)
        except json.JSONDecodeError:
            pass
    return proc.returncode, doc, proc.stderr


def scenario_golden(regen: bool) -> None:
    code, doc, err = run_cli()
    check("full-scan runs", doc is not None, err)
    if doc is None:
        return
    if regen:
        GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"  regenerated {GOLDEN}")
        return
    check("full-scan exits 1 (findings present)", code == 1, f"exit={code}")
    golden = json.loads(GOLDEN.read_text())
    if doc != golden:
        got = {(f["rule"], f["file"], f["key"]) for f in doc["findings"]}
        want = {(f["rule"], f["file"], f["key"]) for f in golden["findings"]}
        detail = (f"unexpected={sorted(got - want)} "
                  f"missing={sorted(want - got)}; counts/fields may also "
                  "differ — rerun with --regen and review the diff")
        check("full-scan matches golden.json", False, detail)
    else:
        check("full-scan matches golden.json", True)


def scenario_clean() -> None:
    code, doc, err = run_cli("src/clean.cpp")
    check("clean file exits 0", code == 0, err)
    check("clean file reports clean", bool(doc and doc["clean"]))


def scenario_suppression() -> None:
    code, doc, err = run_cli("src/suppressed.cpp")
    check("suppressed file exits 0", code == 0, err)
    check("suppressed count is 2",
          bool(doc) and doc["suppressed"] == 2,
          f"suppressed={doc and doc['suppressed']}")
    check("suppressed sites are not findings",
          bool(doc) and not doc["findings"])


def scenario_baseline_partial() -> None:
    baseline = str(FIXTURES / "baseline_partial.json")
    code, doc, err = run_cli(baseline=baseline)
    check("partial baseline still exits 1", code == 1, err)
    if not doc:
        return
    check("partial baseline absorbs 2 findings", doc["baselined"] == 2,
          f"baselined={doc['baselined']}")
    idents = {(f["rule"], f["file"], f["key"]) for f in doc["findings"]}
    absorbed = {
        ("unordered-container", "src/bad_determinism.cpp",
         "std::unordered_map"),
        ("lock-cycle", "src/bad_concurrency.cpp",
         "a_mutex->b_mutex->c_mutex->a_mutex"),
    }
    check("baselined findings are gone", not (idents & absorbed))
    check("no stale entries", not doc["stale_baseline"])


def scenario_baseline_full() -> None:
    golden = json.loads(GOLDEN.read_text())
    entries, seen = [], set()
    for f in golden["findings"]:
        ident = (f["rule"], f["file"], f["key"])
        if ident in seen:
            continue
        seen.add(ident)
        entries.append({"rule": f["rule"], "file": f["file"], "key": f["key"],
                        "reason": "selftest: full-coverage baseline"})
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as tmp:
        json.dump({"entries": entries}, tmp)
        path = tmp.name
    try:
        code, doc, err = run_cli(baseline=path)
        check("full baseline exits 0", code == 0, err)
        check("full baseline absorbs everything",
              bool(doc) and doc["clean"] and not doc["findings"])
    finally:
        Path(path).unlink()


def scenario_baseline_stale() -> None:
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as tmp:
        json.dump({"entries": [{
            "rule": "naked-rand", "file": "src/clean.cpp", "key": "rand",
            "reason": "selftest: intentionally stale"}]}, tmp)
        path = tmp.name
    try:
        code, doc, err = run_cli("src/clean.cpp", baseline=path)
        check("stale baseline exits 1", code == 1, err)
        check("stale entry is reported",
              bool(doc) and len(doc["stale_baseline"]) == 1)
    finally:
        Path(path).unlink()


def scenario_baseline_malformed() -> None:
    code, _, err = run_cli(baseline=str(FIXTURES / "baseline_bad.json"))
    check("missing-reason baseline exits 2", code == 2, f"exit={code}")
    check("error names the missing field", "reason" in err, err)


def scenario_rule_selection() -> None:
    code, _, err = run_cli("--rules", "no-such-rule")
    check("unknown rule exits 2", code == 2, f"exit={code}")
    check("error lists the unknown rule", "no-such-rule" in err, err)
    code, doc, _ = run_cli("--rules", "naked-rand", "src/bad_legacy.cpp")
    check("narrowed run finds only the selected rule",
          bool(doc) and {f["rule"] for f in doc["findings"]} == {"naked-rand"})
    check("narrowed run exits 1", code == 1)


def main() -> int:
    regen = "--regen" in sys.argv[1:]
    print("idde_analyze self-tests:")
    scenario_golden(regen)
    if not regen:
        scenario_clean()
        scenario_suppression()
        scenario_baseline_partial()
        scenario_baseline_full()
        scenario_baseline_stale()
        scenario_baseline_malformed()
        scenario_rule_selection()
    if _failures:
        print(f"{len(_failures)} scenario check(s) failed: {_failures}")
        return 1
    print("all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
