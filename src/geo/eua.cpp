#include "geo/eua.hpp"

#include "geo/generators.hpp"
#include "util/assert.hpp"

namespace idde::geo {

EuaScenario generate_eua_scenario(const EuaScenarioParams& params,
                                  util::Rng& rng) {
  IDDE_EXPECTS(params.server_count > 0);
  IDDE_EXPECTS(params.area_side_m > 0.0);
  IDDE_EXPECTS(params.min_coverage_radius_m > 0.0);
  IDDE_EXPECTS(params.max_coverage_radius_m >= params.min_coverage_radius_m);

  EuaScenario scenario;
  scenario.bounds = BoundingBox::square(params.area_side_m);

  util::Rng server_rng = rng.fork(0x5e17);
  scenario.server_positions = generate_jittered_grid(
      params.server_count, scenario.bounds, params.server_jitter_m,
      server_rng);

  util::Rng radius_rng = rng.fork(0x7ad1);
  scenario.coverage_radii_m.reserve(params.server_count);
  for (std::size_t i = 0; i < params.server_count; ++i) {
    scenario.coverage_radii_m.push_back(radius_rng.uniform(
        params.min_coverage_radius_m, params.max_coverage_radius_m));
  }

  util::Rng user_rng = rng.fork(0x05e5);
  const ThomasParams thomas{
      .parent_count = params.server_count,
      .cluster_stddev = params.user_cluster_stddev_m,
      .background_fraction = params.user_background_fraction,
  };
  scenario.user_positions =
      generate_thomas(params.user_count, scenario.bounds, thomas, user_rng,
                      &scenario.server_positions);
  return scenario;
}

EuaScenario subsample_covered(const EuaScenario& full, std::size_t n,
                              std::size_t m, util::Rng& rng) {
  IDDE_EXPECTS(n > 0 && n <= full.server_positions.size());
  IDDE_EXPECTS(m <= full.user_positions.size());

  EuaScenario out;
  out.bounds = full.bounds;

  const auto server_ids = rng.sample_indices(full.server_positions.size(), n);
  out.server_positions.reserve(n);
  out.coverage_radii_m.reserve(n);
  for (const std::size_t i : server_ids) {
    out.server_positions.push_back(full.server_positions[i]);
    out.coverage_radii_m.push_back(full.coverage_radii_m[i]);
  }

  // Split the user pool by coverage under the selected servers.
  std::vector<std::size_t> covered;
  std::vector<std::size_t> uncovered;
  for (std::size_t j = 0; j < full.user_positions.size(); ++j) {
    bool is_covered = false;
    for (std::size_t s = 0; s < n && !is_covered; ++s) {
      is_covered = distance_m(out.server_positions[s], full.user_positions[j]) <=
                   out.coverage_radii_m[s];
    }
    (is_covered ? covered : uncovered).push_back(j);
  }
  rng.shuffle(covered);
  rng.shuffle(uncovered);
  covered.insert(covered.end(), uncovered.begin(), uncovered.end());

  out.user_positions.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    out.user_positions.push_back(full.user_positions[covered[j]]);
  }
  return out;
}

EuaScenario subsample(const EuaScenario& full, std::size_t n, std::size_t m,
                      util::Rng& rng) {
  IDDE_EXPECTS(n > 0 && n <= full.server_positions.size());
  IDDE_EXPECTS(m <= full.user_positions.size());

  EuaScenario out;
  out.bounds = full.bounds;

  const auto server_ids = rng.sample_indices(full.server_positions.size(), n);
  out.server_positions.reserve(n);
  out.coverage_radii_m.reserve(n);
  for (const std::size_t i : server_ids) {
    out.server_positions.push_back(full.server_positions[i]);
    out.coverage_radii_m.push_back(full.coverage_radii_m[i]);
  }

  const auto user_ids = rng.sample_indices(full.user_positions.size(), m);
  out.user_positions.reserve(m);
  for (const std::size_t j : user_ids) {
    out.user_positions.push_back(full.user_positions[j]);
  }
  return out;
}

}  // namespace idde::geo
