// ext_serve — chaos validation of the self-healing online controller.
//
// Three scenarios, all deterministic trajectories of (config, seed); only
// the wall-clock measurements vary between hosts:
//
//   steady      default churn + random server faults. Reports event
//               throughput and the per-event repair wall time (p50/p99 of
//               tick time divided by the tick's event count).
//   fault-free  churn + mobility only. Gate: degraded-time fraction < 5%.
//   flash       mass failure (40% of servers drop at once) under starved
//               repair budgets. Gate: the controller re-converges (the
//               recovery counter fires) within the run.
//
// Emits BENCH_serve.json; the acceptance gates are enforced at exit so CI
// fails loudly, not silently.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/controller.hpp"
#include "sim/paper.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

serve::ServeConfig default_config(std::size_t servers, std::size_t users,
                                  std::size_t items) {
  serve::ServeConfig config;
  config.base = sim::paper_default_params();
  config.base.server_count = servers;
  config.base.user_count = users;
  config.base.data_count = items;
  config.tick_seconds = 1.0;
  config.churn.arrival_rate_hz = 1.0 / 60.0;
  config.churn.mean_session_s = 120.0;
  config.churn.initial_online_fraction = 0.9;
  config.sigma_refresh_period_ticks = 20;
  return config;
}

struct ScenarioResult {
  std::size_t ticks = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double repair_p50_ms = 0.0;
  double repair_p99_ms = 0.0;
  double degraded_fraction = 0.0;
  serve::ServeStatus status;
};

ScenarioResult run_scenario(const serve::ServeConfig& config,
                            std::uint64_t seed, std::size_t ticks) {
  serve::ServeController controller(config, seed);
  ScenarioResult result;
  result.ticks = ticks;
  std::vector<double> per_event_ms;
  per_event_ms.reserve(ticks);
  const Clock::time_point run_start = Clock::now();
  for (std::size_t step = 0; step < ticks; ++step) {
    const Clock::time_point tick_start = Clock::now();
    const serve::TickReport report = controller.tick();
    const double tick_ms = ms_since(tick_start);
    if (report.events > 0) {
      per_event_ms.push_back(tick_ms / static_cast<double>(report.events));
    }
  }
  result.wall_ms = ms_since(run_start);
  result.status = controller.status();
  result.events_per_sec =
      result.wall_ms > 0.0
          ? static_cast<double>(result.status.events_total) /
                (result.wall_ms / 1000.0)
          : 0.0;
  if (!per_event_ms.empty()) {
    result.repair_p50_ms = util::percentile(per_event_ms, 50.0);
    result.repair_p99_ms = util::percentile(per_event_ms, 99.0);
  }
  result.degraded_fraction =
      static_cast<double>(result.status.degraded_ticks) /
      static_cast<double>(result.status.ticks);
  return result;
}

util::Json scenario_json(const char* name, const ScenarioResult& r) {
  util::JsonObject object;
  object["scenario"] = std::string(name);
  object["ticks"] = r.ticks;
  object["wall_ms"] = r.wall_ms;
  object["events_total"] = r.status.events_total;
  object["events_per_sec"] = r.events_per_sec;
  object["repairs_total"] = r.status.repairs_total;
  object["repair_rounds_total"] = r.status.repair_rounds_total;
  object["per_event_repair_p50_ms"] = r.repair_p50_ms;
  object["per_event_repair_p99_ms"] = r.repair_p99_ms;
  object["degraded_fraction"] = r.degraded_fraction;
  object["backlog_peak"] = r.status.backlog_peak;
  object["shed_total"] = r.status.shed_total;
  object["watchdog_strikes"] = r.status.watchdog_strikes;
  object["breaker_trips"] = r.status.breaker_trips;
  object["recovery_ticks"] = r.status.recovery_ticks;
  return object;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t ticks = 300;
  std::size_t seed = 9100;
  double repair_p99_budget_ms = 50.0;
  std::string out = "BENCH_serve.json";
  util::CliParser cli(
      "ext_serve: chaos validation of the online self-healing controller "
      "(steady churn+faults, fault-free degraded fraction, mass-failure "
      "recovery); writes BENCH_serve.json and enforces the gates");
  cli.add_flag("smoke", &smoke, "short run (CI)");
  cli.add_size("ticks", &ticks, "ticks per scenario");
  cli.add_size("seed", &seed, "trajectory seed");
  cli.add_double("p99-budget-ms", &repair_p99_budget_ms,
                 "gate: steady-state per-event repair p99 (ms)");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;
  if (smoke) ticks = 80;

  const std::size_t servers = smoke ? 12 : 20;
  const std::size_t users = smoke ? 60 : 120;
  const std::size_t items = smoke ? 4 : 6;

  // Scenario 1: steady serving under churn + random server faults.
  serve::ServeConfig steady = default_config(servers, users, items);
  steady.faults.horizon_s = static_cast<double>(ticks);
  steady.faults.server_mtbf_s = 150.0;
  steady.faults.server_mttr_s = 10.0;
  const ScenarioResult steady_result = run_scenario(steady, seed, ticks);

  // Scenario 2: fault-free — only churn, mobility and sigma refreshes.
  const serve::ServeConfig fault_free = default_config(servers, users, items);
  const ScenarioResult fault_free_result =
      run_scenario(fault_free, seed + 1, ticks);

  // Scenario 3: flash mass failure under starved budgets.
  serve::ServeConfig flash = default_config(servers, users, items);
  flash.churn_enabled = false;
  flash.flash_failure_tick = ticks / 4;
  flash.flash_failure_fraction = 0.4;
  flash.flash_failure_duration_ticks = 10;
  flash.repair_rounds_per_event = 4;
  flash.repair_placements_per_event = 2;
  const ScenarioResult flash_result = run_scenario(flash, seed + 2, ticks);

  util::TextTable table({"scenario", "events", "events/s", "repair p50 (ms)",
                         "repair p99 (ms)", "degraded %", "trips",
                         "recovery (ticks)"});
  const auto add_row = [&](const char* name, const ScenarioResult& r) {
    table.start_row()
        .add(name)
        .add(static_cast<double>(r.status.events_total))
        .add(r.events_per_sec)
        .add(r.repair_p50_ms)
        .add(r.repair_p99_ms)
        .add(100.0 * r.degraded_fraction)
        .add(static_cast<double>(r.status.breaker_trips))
        .add(static_cast<double>(r.status.recovery_ticks));
  };
  add_row("steady", steady_result);
  add_row("fault-free", fault_free_result);
  add_row("flash", flash_result);
  table.print(std::cout);

  // Acceptance gates.
  int failures = 0;
  if (steady_result.repair_p99_ms > repair_p99_budget_ms) {
    std::fprintf(stderr,
                 "GATE FAIL: steady per-event repair p99 %.2f ms > budget "
                 "%.2f ms\n",
                 steady_result.repair_p99_ms, repair_p99_budget_ms);
    ++failures;
  }
  if (fault_free_result.degraded_fraction >= 0.05) {
    std::fprintf(stderr,
                 "GATE FAIL: fault-free degraded fraction %.3f >= 0.05\n",
                 fault_free_result.degraded_fraction);
    ++failures;
  }
  if (flash_result.status.recovery_ticks == 0) {
    std::fprintf(stderr,
                 "GATE FAIL: no recovery after the flash mass failure\n");
    ++failures;
  }

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("ext_serve");
    doc["ticks"] = ticks;
    doc["seed"] = seed;
    doc["servers"] = servers;
    doc["users"] = users;
    doc["data_items"] = items;
    util::JsonArray scenarios;
    scenarios.push_back(scenario_json("steady", steady_result));
    scenarios.push_back(scenario_json("fault_free", fault_free_result));
    scenarios.push_back(scenario_json("flash", flash_result));
    doc["scenarios"] = std::move(scenarios);
    doc["gates_passed"] = failures == 0;
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("\nwrote %s\n", out.c_str());
  }
  if (failures > 0) {
    std::fprintf(stderr, "ext_serve: %d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("ext_serve: all gates passed\n");
  return 0;
}
