// Coded Eq. 8: delivery latency of a k-of-n request. The resolver picks
// how many fragments to fetch from surviving edge hosts (e) and how many
// to top up from the cloud (k - e); the edge legs run in parallel, so the
// delivery time is
//
//   max( e-th-fastest surviving fragment fetch,
//        cloud transfer of the (k - e)-fragment top-up )
//
// minimised over e in 0..min(k, survivors), with strict `<` so the
// smallest e wins ties (the cloud-leaning order replication uses). At
// k = 1 the only choices are "cheapest surviving replica" vs "whole item
// from the cloud" — exactly core::resolve_with_failover's argmin,
// reproduced bit-identically (same leg costs, same tie-breaks, same
// FallbackTier labels).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_profile.hpp"
#include "core/delivery.hpp"
#include "model/instance.hpp"
#include "net/shortest_path.hpp"

namespace idde::coding {

/// Outcome of the coded resolver for one request.
struct CodedDecision {
  std::size_t edge_fragments = 0;   ///< e: fragments fetched from the edge
  std::size_t cloud_fragments = 0;  ///< k - e, topped up from the cloud
  double seconds = 0.0;             ///< coded Eq. 8 delivery latency
  core::FallbackTier tier = core::FallbackTier::kPrimary;

  /// True when the whole request is served from the cloud.
  [[nodiscard]] bool cloud_only() const noexcept { return edge_fragments == 0; }
};

/// Degraded-mode coded resolver. Non-const resolve(): the resolver owns
/// the leg scratch (sorted surviving fetches) and the selected-host list
/// of the last decision, so the DES/fault hot loops resolve with no
/// allocation per request. One resolver per thread — never shared.
class CodedResolver {
 public:
  explicit CodedResolver(const model::ProblemInstance& instance);

  /// Resolves the request of a user served by `serving` for an item of
  /// `item_size_mb` split into `config.k`-of-n fragments of
  /// `fragment_mb`, hosted on `hosts`. Mirrors
  /// core::resolve_with_failover: `server_up` masks dead servers (empty =
  /// all up), `degraded_costs` replaces the fault-free cost matrix, and
  /// `fault_free_hosts`, when non-empty, is the unfiltered host set the
  /// fault-free reference choice classifies tiers against.
  ///
  /// Tier labelling generalises replication's: kPrimary iff the degraded
  /// choice fetches the same fragment count from the same hosts as the
  /// fault-free reference; kCloud iff faults pushed fragments to the
  /// cloud (e < e_fault_free); kReplica otherwise (same or more edge
  /// fragments, different hosts).
  [[nodiscard]] CodedDecision resolve(
      std::span<const std::size_t> hosts, std::size_t serving,
      double item_size_mb, double fragment_mb, std::size_t k,
      std::span<const std::uint8_t> server_up = {},
      const net::CostMatrix* degraded_costs = nullptr,
      std::span<const std::size_t> fault_free_hosts = {});

  /// Convenience: resolves item `item` of `delivery` for `serving`.
  [[nodiscard]] CodedDecision resolve_item(
      const CodedDeliveryProfile& delivery, std::size_t item,
      std::size_t serving, std::span<const std::uint8_t> server_up = {},
      const net::CostMatrix* degraded_costs = nullptr,
      std::span<const std::size_t> fault_free_hosts = {}) {
    return resolve(delivery.hosts(item), serving,
                   delivery.instance().data(item).size_mb,
                   delivery.item_fragment_mb(item), delivery.config().k,
                   server_up, degraded_costs, fault_free_hosts);
  }

  /// Hosts the last decision fetches from (edge_fragments entries,
  /// fastest leg first). Valid until the next resolve().
  [[nodiscard]] std::span<const std::size_t> selected_hosts() const noexcept {
    return {selected_hosts_.data(), selected_hosts_.size()};
  }

  /// Per-leg fetch seconds of the last decision, parallel to
  /// selected_hosts(). Valid until the next resolve().
  [[nodiscard]] std::span<const double> selected_seconds() const noexcept {
    return {selected_seconds_.data(), selected_seconds_.size()};
  }

  /// Cloud transfer time of topping up `fragments` of `k` fragments.
  /// Fetching all k is the whole item (uses item_size_mb exactly, so
  /// k = 1 reproduces replication's cloud cap bitwise). Exposed for the
  /// DES, which schedules the cloud leg separately from the edge legs.
  [[nodiscard]] double cloud_topup_seconds(std::size_t fragments,
                                           std::size_t k, double item_size_mb,
                                           double fragment_mb) const;

 private:
  struct Leg {
    double seconds;
    std::size_t host;

    bool operator<(const Leg& other) const {
      return seconds != other.seconds ? seconds < other.seconds
                                      : host < other.host;
    }
  };

  /// The kernel: fills `legs` with surviving fetches sorted by
  /// (seconds, host id) and returns the latency-minimal edge fragment
  /// count; `best_seconds` gets the coded Eq. 8 value.
  std::size_t best_edge_count(std::span<const std::size_t> hosts,
                              std::size_t serving, double item_size_mb,
                              double fragment_mb, std::size_t k,
                              std::span<const std::uint8_t> server_up,
                              const net::CostMatrix* costs,
                              std::vector<Leg>& legs, double& best_seconds);

  const model::ProblemInstance* instance_;
  std::vector<Leg> legs_;                    ///< degraded legs scratch
  std::vector<Leg> reference_legs_;          ///< fault-free legs scratch
  std::vector<std::size_t> selected_hosts_;  ///< last decision's sources
  std::vector<double> selected_seconds_;     ///< parallel leg times
  std::vector<std::size_t> set_a_;           ///< tier host-set comparison
  std::vector<std::size_t> set_b_;
};

}  // namespace idde::coding
