// WAN round-trip profiles backing the paper's Fig. 1 motivation experiment:
// "End-to-end network latency test ... collected hourly and averaged over a
// week in March 2022" against an edge server and AWS Singapore / London /
// Frankfurt. We replay a queueing-free diurnal model: base propagation RTT
// per target, a daily congestion wave, and lognormal-ish jitter. Only the
// order-of-magnitude edge << cloud gap matters for the figure.
#pragma once

#include <string>
#include <vector>

#include "util/random.hpp"

namespace idde::net {

struct WanTarget {
  std::string name;
  double base_rtt_ms;      ///< propagation + baseline processing
  double diurnal_swing_ms; ///< peak-hour extra delay
  double jitter_ms;        ///< per-sample noise scale
};

/// The four targets of Fig. 1 with RTTs representative of an Australian
/// vantage point (the authors' institutions).
[[nodiscard]] std::vector<WanTarget> figure1_targets();

/// One simulated RTT sample at `hour_of_week` in [0, 168).
[[nodiscard]] double sample_rtt_ms(const WanTarget& target,
                                   double hour_of_week, util::Rng& rng);

struct WeeklyAverage {
  std::string name;
  double mean_rtt_ms;
  double min_rtt_ms;
  double max_rtt_ms;
};

/// Replays the paper's protocol: hourly samples for one week, averaged.
[[nodiscard]] std::vector<WeeklyAverage> run_figure1_protocol(
    std::uint64_t seed);

}  // namespace idde::net
