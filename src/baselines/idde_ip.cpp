#include "baselines/idde_ip.hpp"

#include "util/env.hpp"

namespace idde::baselines {

IddeIp::IddeIp(double budget_ms)
    : budget_ms_(util::ip_budget_ms(budget_ms)) {}

core::Strategy IddeIp::solve(const model::ProblemInstance& instance,
                             util::Rng& rng) const {
  solver::JointSearchOptions options;
  options.budget_ms = budget_ms_;
  solver::JointSearchResult result =
      solver::joint_search(instance, rng, options);
  return std::move(result.strategy);
}

}  // namespace idde::baselines
