// Concurrency stress suite, designed to run under ThreadSanitizer (the CI
// tsan job runs ctest with halt_on_error=1, so any data race here is a hard
// failure). Covers the three shared-state surfaces of the codebase:
//   - util::ThreadPool (queue / in-flight / stop-flag handling, shutdown,
//     reuse, exception propagation, concurrent parallel_for callers),
//   - core::IddeUGame's parallel dirty-set refresh (field and version
//     counters shared read-only across workers),
//   - util::logging's global level + write serialisation,
//   - obs:: telemetry (striped counters, histogram CAS folds, registry
//     lookups, tracer buffers) hammered concurrently with scrapes.
// Tests may use std::thread directly: tests/ is outside the project-lint
// scope that requires util::ThreadPool elsewhere, and raw threads are the
// point here — they drive the pool from many directions at once.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/game.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace idde;
using core::GameOptions;
using core::GameResult;
using core::IddeUGame;
using core::UpdateRule;
using model::InstanceParams;
using model::ProblemInstance;
using util::ThreadPool;

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

InstanceParams shape(std::size_t n, std::size_t m, std::size_t k = 3) {
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

GameResult solve(const ProblemInstance& inst, UpdateRule rule,
                 bool incremental, std::size_t threads) {
  GameOptions options;
  options.rule = rule;
  options.incremental = incremental;
  options.threads = threads;
  return IddeUGame(inst, options).run();
}

void expect_same_dynamics(const GameResult& expected,
                          const GameResult& actual) {
  EXPECT_EQ(expected.moves, actual.moves);
  EXPECT_EQ(expected.rounds, actual.rounds);
  EXPECT_EQ(expected.converged, actual.converged);
  ASSERT_EQ(expected.allocation.size(), actual.allocation.size());
  for (std::size_t j = 0; j < expected.allocation.size(); ++j) {
    EXPECT_EQ(expected.allocation[j], actual.allocation[j]) << "user " << j;
  }
}

// --- ThreadPool -----------------------------------------------------------

// Many producer threads hammering one pool with tiny tasks while the main
// thread repeatedly drains it: exercises every queue/in-flight transition.
TEST(ThreadPoolStress, ManyProducerChurn) {
  ThreadPool pool(hardware_threads());
  std::atomic<std::size_t> executed{0};
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksPerProducer = 500;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::size_t t = 0; t < kTasksPerProducer; ++t) {
        pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

// Construction/teardown in a tight loop, destroying with work still queued:
// the destructor must drain the queue and join cleanly every time.
TEST(ThreadPoolStress, RepeatedConstructionTeardown) {
  std::atomic<std::size_t> executed{0};
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kTasksPerRound = 32;
  for (std::size_t round = 0; round < kRounds; ++round) {
    ThreadPool pool(4);
    for (std::size_t t = 0; t < kTasksPerRound; ++t) {
      pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: ~ThreadPool is responsible for the drain.
  }
  EXPECT_EQ(executed.load(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolStress, ZeroTasksIsClean) {
  ThreadPool pool(hardware_threads());
  pool.wait_idle();  // nothing in flight: must return immediately
}

// The pool must stay fully usable across drain cycles, including after a
// task threw inside parallel_for.
TEST(ThreadPoolStress, ReuseAfterDrainAndAfterThrow) {
  ThreadPool pool(4);
  std::atomic<std::size_t> hits{0};
  util::parallel_for(pool, 100,
                     [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 100u);

  EXPECT_THROW(
      util::parallel_for(pool, 100,
                         [&](std::size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
      std::runtime_error);

  hits.store(0);
  util::parallel_for(pool, 64, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64u);
  pool.wait_idle();
}

// Two caller threads sharing one pool, each issuing its own parallel_for:
// per-call completion tracking must not cross wires.
TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  ThreadPool pool(hardware_threads());
  std::atomic<std::size_t> total{0};
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kCount = 200;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int repeat = 0; repeat < 5; ++repeat) {
        util::parallel_for(pool, kCount,
                           [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), kCallers * 5 * kCount);
}

// --- IddeUGame parallel dirty-set refresh ---------------------------------

// Several full incremental solves at threads = hardware running in
// parallel caller threads (each with its own pool and field): any write to
// shared field/version state from the fan-out shows up as a TSan race.
TEST(GameStress, ConcurrentIncrementalSolvesAtHardwareThreads) {
  // 150 users keeps the initial all-dirty refresh above the engine's
  // serial-batch cutoff, so the pool fan-out path actually runs.
  const ProblemInstance inst = model::make_instance(shape(10, 150), 7);
  const GameResult reference =
      solve(inst, UpdateRule::kBestImprovement, true, 1);

  constexpr std::size_t kSolvers = 4;
  std::vector<GameResult> results(kSolvers);
  std::vector<std::thread> solvers;
  solvers.reserve(kSolvers);
  for (std::size_t s = 0; s < kSolvers; ++s) {
    solvers.emplace_back([&, s] {
      results[s] = solve(inst, UpdateRule::kBestImprovement, true, 0);
    });
  }
  for (auto& solver : solvers) solver.join();
  for (const GameResult& result : results) {
    expect_same_dynamics(reference, result);
  }
}

// threads=1 vs threads=hardware vs the full-scan oracle: the move sequence
// is bit-identical for every rule (the fan-out is pure scheduling).
TEST(GameStress, ThreadCountDeterminism) {
  constexpr UpdateRule kAllRules[] = {UpdateRule::kBestImprovement,
                                      UpdateRule::kFirstImprovement,
                                      UpdateRule::kAsyncSweep};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(10, 150), seed);
    for (const UpdateRule rule : kAllRules) {
      const GameResult oracle = solve(inst, rule, false, 1);
      const GameResult serial = solve(inst, rule, true, 1);
      const GameResult wide = solve(inst, rule, true, 0);
      expect_same_dynamics(oracle, serial);
      expect_same_dynamics(oracle, wide);
    }
  }
}

// --- logging --------------------------------------------------------------

// Concurrent writers + a thread flipping the global level: log_level() is
// an atomic and log_write serialises on the annotated mutex; TSan checks
// both. Level kOff keeps the loop from spamming test output.
TEST(LoggingStress, ConcurrentWritersAndLevelFlips) {
  const util::LogLevel before = util::log_level();
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        util::log_debug("stress {}", i);  // dropped below the threshold
      }
    });
  }
  std::thread flipper([] {
    for (int i = 0; i < 100; ++i) {
      util::set_log_level(i % 2 == 0 ? util::LogLevel::kOff
                                     : util::LogLevel::kError);
    }
  });
  for (auto& writer : writers) writer.join();
  flipper.join();
  util::set_log_level(before);
}

// --- obs telemetry --------------------------------------------------------

// Writers on every stripe plus a scraper reading mid-flight: the striped
// counter and the histogram's CAS-folded min/max/sum are all relaxed
// atomics — any non-atomic shortcut shows up as a TSan race, and the final
// quiescent totals must still be exact.
TEST(ObsStress, CounterAndHistogramHammerWithConcurrentScrape) {
  obs::Counter counter;
  obs::Histogram histogram;
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kOpsPerWriter = 4000;

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)counter.value();
      const obs::HistogramSnapshot snap = histogram.snapshot();
      // Mid-flight snapshots are relaxed but never torn or impossible.
      EXPECT_LE(snap.count, kWriters * kOpsPerWriter);
      if (snap.count > 0) {
        EXPECT_LE(snap.min, snap.max);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::size_t i = 0; i < kOpsPerWriter; ++i) {
        counter.add(1);
        histogram.record(static_cast<double>(w * kOpsPerWriter + i % 97) +
                         0.5);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter.value(), kWriters * kOpsPerWriter);
  const obs::HistogramSnapshot final_snap = histogram.snapshot();
  EXPECT_EQ(final_snap.count, kWriters * kOpsPerWriter);
  EXPECT_EQ(final_snap.min, 0.5);
}

// Racing registry lookups on overlapping names while another thread
// scrapes and a third resets: the name->metric map is the one mutex-backed
// structure in the write path; handed-out references must stay valid
// through all of it.
TEST(ObsStress, RegistryLookupScrapeResetRace) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kOps = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kOps; ++i) {
        registry.counter(i % 2 == 0 ? "stress.shared" : "stress.other")
            .add(1);
        registry.histogram("stress.hist").record(static_cast<double>(t));
        if (i % 64 == 0) (void)registry.scrape();
        if (t == 0 && i % 512 == 0) registry.reset();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Post-reset totals are unpredictable; liveness + race-freedom (under
  // TSan) are the assertions. One more write proves references survived.
  registry.counter("stress.shared").add(1);
  EXPECT_GE(registry.counter("stress.shared").value(), 1u);
}

// Spans ending on pool workers while the main thread exports: per-thread
// buffers are registered/drained under their own mutexes, and worker
// threads may exit before the export reads their events.
TEST(ObsStress, SpansFromDyingWorkersSurviveConcurrentExport) {
  obs::set_trace_enabled(true);
  obs::reset_all();
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kSpansPerRound = 64;
  for (std::size_t round = 0; round < kRounds; ++round) {
    {
      ThreadPool pool(4);
      for (std::size_t s = 0; s < kSpansPerRound; ++s) {
        pool.submit([] { const obs::ScopedSpan span("stress.worker"); });
      }
      // Export races the workers (and their teardown at scope exit).
      (void)obs::Tracer::global().chrome_trace();
    }
    (void)obs::Tracer::global().rollup_json();
  }
#if IDDE_OBS
  // chrome_trace() snapshots without draining; the rollup aggregate keeps
  // the authoritative total across every round.
  const util::Json rollup = obs::Tracer::global().rollup_json();
  ASSERT_NE(rollup.find("stress.worker"), nullptr);
  EXPECT_EQ(rollup.at("stress.worker").at("count").as_int(),
            static_cast<std::int64_t>(kRounds * kSpansPerRound));
#endif
  obs::set_trace_enabled(false);
  obs::set_enabled(false);
  obs::reset_all();
}

}  // namespace
