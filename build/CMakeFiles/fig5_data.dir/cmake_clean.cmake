file(REMOVE_RECURSE
  "CMakeFiles/fig5_data.dir/bench/fig5_data.cpp.o"
  "CMakeFiles/fig5_data.dir/bench/fig5_data.cpp.o.d"
  "bench/fig5_data"
  "bench/fig5_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
