# Empty dependencies file for idde_dynamic.
# This may be replaced when dependencies are built.
