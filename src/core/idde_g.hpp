// IDDE-G (Algorithm 1): Phase 1 finds a Nash equilibrium of the IDDE-U
// game as the user-allocation profile; Phase 2 runs the ratio-greedy data
// delivery planner on top of it.
#pragma once

#include "core/approach.hpp"
#include "core/game.hpp"
#include "core/greedy_delivery.hpp"

namespace idde::core {

struct IddeGOptions {
  GameOptions game;
  /// Use the lazy-greedy planner (default); false = naive rescans, exposed
  /// for the ablation bench.
  bool lazy_greedy = true;
};

class IddeG final : public Approach {
 public:
  explicit IddeG(IddeGOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "IDDE-G"; }

  [[nodiscard]] Strategy solve(const model::ProblemInstance& instance,
                               util::Rng& rng) const override;

  [[nodiscard]] const IddeGOptions& options() const noexcept {
    return options_;
  }

 private:
  IddeGOptions options_;
};

}  // namespace idde::core
