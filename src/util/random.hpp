// Deterministic, fast pseudo-randomness for the simulator.
//
// Every stochastic component in the library draws from an explicitly seeded
// Xoshiro256** stream so that any experiment is reproducible from a single
// 64-bit seed. std::mt19937 is avoided: its state is large, seeding from a
// single word is biased, and implementations may differ in distribution
// output; all distributions here are implemented in-repo.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace idde::util {

/// SplitMix64: used to expand a single seed word into the Xoshiro state and
/// to derive independent child seeds (seed-sequence style).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1dde0001u) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  /// Raw 256-bit state, for checkpoint/restore of long-running streams.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator for a named sub-stream; `stream_id`
  /// values must differ for streams used together.
  [[nodiscard]] Xoshiro256 fork(std::uint64_t stream_id) const noexcept {
    SplitMix64 mix(state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    Xoshiro256 child(mix.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Complete serialisable state of an Rng: the Xoshiro words plus the
/// Marsaglia spare-normal cache. Restoring this state resumes the stream
/// bit-identically — the contract the serve-layer checkpoints rely on.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool has_spare_normal = false;
  double spare_normal = 0.0;
};

/// Random helpers bound to one generator. All ranges are validated.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1dde0001u) : gen_(seed) {}
  explicit Rng(Xoshiro256 gen) : gen_(gen) {}

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random mantissa bits.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    IDDE_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    IDDE_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    IDDE_EXPECTS(n > 0);
    return static_cast<std::size_t>(bounded(n));
  }

  bool bernoulli(double p) {
    IDDE_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Poisson with mean lambda (>= 0); inversion for small, PTRS-free
  /// normal approximation for large means.
  int poisson(double lambda);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 uniform).
  std::size_t zipf(std::size_t n, double s);

  /// Picks one element uniformly.
  template <typename T>
  const T& pick(std::span<const T> items) {
    IDDE_EXPECTS(!items.empty());
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child RNG.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    return Rng(gen_.fork(stream_id));
  }

  Xoshiro256& generator() noexcept { return gen_; }

  /// Checkpoint/restore of the full stream state (see RngState).
  [[nodiscard]] RngState state() const noexcept {
    return RngState{gen_.state(), has_spare_normal_, spare_normal_};
  }
  void set_state(const RngState& state) noexcept {
    gen_.set_state(state.words);
    has_spare_normal_ = state.has_spare_normal;
    spare_normal_ = state.spare_normal;
  }

 private:
  // Lemire-style unbiased bounded draw.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  Xoshiro256 gen_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace idde::util
