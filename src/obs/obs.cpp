#include "obs/obs.hpp"

#include <atomic>

#include "util/env.hpp"

namespace idde::obs {

namespace {

bool env_flag(const char* name) {
  const std::string value = util::env_or(name, "");
  return !value.empty() && value != "0" && value != "false" &&
         value != "off";
}

struct RuntimeFlags {
  std::atomic<bool> enabled;
  std::atomic<bool> trace;
  RuntimeFlags()
      : enabled(env_flag("IDDE_TELEMETRY") || env_flag("IDDE_TRACE")),
        trace(env_flag("IDDE_TRACE")) {
    // Anchor the trace clock before the first span can end: the first
    // enabled() call happens in a ScopedSpan constructor, ahead of its
    // start timestamp, so touching the tracer here keeps every ts >= 0.
    if (trace.load(std::memory_order_relaxed)) (void)Tracer::global();
  }
};

RuntimeFlags& flags() {
  static RuntimeFlags instance;
  return instance;
}

}  // namespace

bool enabled() noexcept {
  return flags().enabled.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return flags().trace.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  flags().enabled.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  flags().trace.store(on, std::memory_order_relaxed);
  // Trace capture without the metrics/span layer is useless (spans are the
  // only event source), so turning tracing on turns telemetry on too. The
  // tracer is constructed here so its clock origin predates every span.
  if (on) {
    flags().enabled.store(true, std::memory_order_relaxed);
    (void)Tracer::global();
  }
}

util::Json telemetry_json() {
  util::Json scrape = MetricsRegistry::global().scrape();
  util::JsonObject doc = scrape.as_object();
  doc["spans"] = Tracer::global().rollup_json();
  return util::Json(std::move(doc));
}

void reset_all() {
  MetricsRegistry::global().reset();
  Tracer::global().reset();
}

}  // namespace idde::obs
