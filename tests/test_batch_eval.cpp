// Property tests pinning radio::BatchEvaluator to the scalar slot
// evaluators. Two tiers of agreement are enforced:
//
//   - BIT-IDENTITY against InterferenceField::sinr()/benefit(): the batched
//     kernel promises the exact same floating-point results (same ops, same
//     association order), so the comparison is operator==, not EXPECT_NEAR.
//     This is what lets the game swap kernels without its move sequences
//     diverging.
//   - 1e-12 relative agreement against sinr_reference()/benefit_reference():
//     the from-scratch O(M) oracles accumulate in a different order, so only
//     tolerance-level agreement is meaningful there.
//
// The sweep runs 24 seeds of randomized environments and allocations,
// deliberately covering: unallocated users, emptied channels (add/remove
// churn so users_on hits 0), single-coverage users (the inline fast path),
// and candidate SUBSETS of the coverage set (the DUP-G restriction) — the
// last one pins the contract that interference is always accumulated over
// the full coverage set even when candidates are restricted.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "radio/batch_eval.hpp"
#include "radio/interference.hpp"
#include "util/random.hpp"

namespace {

using idde::radio::BatchEvaluator;
using idde::radio::ChannelSlot;
using idde::radio::InterferenceField;
using idde::radio::RadioEnvironment;
using idde::radio::kUnallocated;
using idde::util::Rng;

RadioEnvironment make_env(std::size_t servers, std::size_t users,
                          std::size_t channels, Rng& rng,
                          double coverage_prob) {
  RadioEnvironment env;
  env.server_count = servers;
  env.user_count = users;
  env.channels_per_server = channels;
  env.noise_watts = 1e-13;
  env.gain.resize(servers * users);
  env.power.resize(users);
  env.bandwidth.assign(servers * channels, 200.0);
  for (std::size_t j = 0; j < users; ++j) {
    env.power[j] = rng.uniform(1.0, 5.0);
  }
  for (std::size_t i = 0; i < servers; ++i) {
    for (std::size_t j = 0; j < users; ++j) {
      const double d = rng.uniform(50.0, 250.0);
      env.gain[i * users + j] = std::pow(d, -3.0);
    }
  }
  env.covering_servers.resize(users);
  for (std::size_t j = 0; j < users; ++j) {
    for (std::size_t i = 0; i < servers; ++i) {
      if (rng.bernoulli(coverage_prob)) env.covering_servers[j].push_back(i);
    }
    if (env.covering_servers[j].empty()) {
      env.covering_servers[j].push_back(rng.index(servers));
    }
  }
  env.check();
  return env;
}

/// Random allocation within coverage; allocate_prob < 1 leaves some users
/// unallocated so the no-current-slot paths are exercised.
std::vector<ChannelSlot> random_alloc(const RadioEnvironment& env, Rng& rng,
                                      double allocate_prob) {
  std::vector<ChannelSlot> alloc(env.user_count, kUnallocated);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    if (!rng.bernoulli(allocate_prob)) continue;
    const auto& cov = env.covering_servers[j];
    alloc[j] = ChannelSlot{cov[rng.index(cov.size())],
                           rng.index(env.channels_per_server)};
  }
  return alloc;
}

void add_all(InterferenceField& field, std::span<const ChannelSlot> alloc) {
  for (std::size_t j = 0; j < alloc.size(); ++j) {
    if (alloc[j].allocated()) field.add_user(j, alloc[j]);
  }
}

/// Asserts the two agreement tiers for `user` against `candidates`.
void expect_agreement(const RadioEnvironment& env,
                      const InterferenceField& field, BatchEvaluator& batch,
                      std::span<const ChannelSlot> alloc, std::size_t user,
                      std::span<const std::size_t> candidates) {
  const std::size_t channels = env.channels_per_server;
  const auto benefits = batch.benefits(user, candidates);
  ASSERT_EQ(benefits.size(), candidates.size() * channels);
  for (std::size_t a = 0; a < candidates.size(); ++a) {
    for (std::size_t x = 0; x < channels; ++x) {
      const ChannelSlot slot{candidates[a], x};
      const double batched = benefits[a * channels + x];
      const double scalar = field.benefit(user, slot);
      // Tier 1: bit-identical to the scalar field kernel.
      ASSERT_EQ(batched, scalar)
          << "benefit user=" << user << " server=" << slot.server
          << " channel=" << x;
      // Tier 2: 1e-12 relative vs the from-scratch reference oracle.
      const double reference = benefit_reference(env, alloc, user, slot);
      ASSERT_NEAR(batched / reference, 1.0, 1e-12)
          << "benefit_reference user=" << user << " server=" << slot.server
          << " channel=" << x;
    }
  }
  const auto sinrs = batch.sinrs(user, candidates);
  ASSERT_EQ(sinrs.size(), candidates.size() * channels);
  for (std::size_t a = 0; a < candidates.size(); ++a) {
    for (std::size_t x = 0; x < channels; ++x) {
      const ChannelSlot slot{candidates[a], x};
      const double batched = sinrs[a * channels + x];
      ASSERT_EQ(batched, field.sinr(user, slot))
          << "sinr user=" << user << " server=" << slot.server
          << " channel=" << x;
      const double reference = sinr_reference(env, alloc, user, slot);
      ASSERT_NEAR(batched / reference, 1.0, 1e-12)
          << "sinr_reference user=" << user << " server=" << slot.server
          << " channel=" << x;
    }
  }
}

TEST(BatchEvaluator, MatchesScalarAndReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    const std::size_t servers = 2 + rng.index(6);
    const std::size_t users = 4 + rng.index(24);
    const std::size_t channels = 1 + rng.index(3);
    // Low seeds sweep dense coverage, high seeds sparse — sparse runs are
    // dominated by single-coverage users, i.e. the inline fast path.
    const double coverage = seed <= 12 ? 0.8 : 0.25;
    const RadioEnvironment env = make_env(servers, users, channels, rng,
                                          coverage);
    const std::vector<ChannelSlot> alloc = random_alloc(env, rng, 0.8);
    InterferenceField field(env);
    add_all(field, alloc);
    BatchEvaluator batch(field);
    for (std::size_t j = 0; j < users; ++j) {
      expect_agreement(env, field, batch, alloc, j,
                       env.covering_servers[j]);
    }
  }
}

TEST(BatchEvaluator, CandidateSubsetStillSeesFullCoverageInterference) {
  // DUP-G restricts the candidate servers to a subset of the coverage set,
  // but every covering server still interferes. Evaluating a strict subset
  // must therefore give the exact same per-slot values as the scalar path
  // (which always walks the full coverage set).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(1000 + seed);
    const RadioEnvironment env = make_env(6, 20, 2, rng, 0.9);
    const std::vector<ChannelSlot> alloc = random_alloc(env, rng, 0.9);
    InterferenceField field(env);
    add_all(field, alloc);
    BatchEvaluator batch(field);
    std::size_t subset_users = 0;
    for (std::size_t j = 0; j < env.user_count; ++j) {
      const auto& cov = env.covering_servers[j];
      if (cov.size() < 2) continue;
      // Every other covering server, starting at a seed-dependent offset —
      // ascending, strict subset.
      std::vector<std::size_t> subset;
      for (std::size_t c = rng.index(2); c < cov.size(); c += 2) {
        subset.push_back(cov[c]);
      }
      if (subset.empty() || subset.size() == cov.size()) continue;
      ++subset_users;
      expect_agreement(env, field, batch, alloc, j, subset);
    }
    ASSERT_GT(subset_users, 0u) << "seed " << seed << " exercised no subsets";
  }
}

TEST(BatchEvaluator, EmptiedChannelsMatchFreshField) {
  // Add/remove churn drives users_on back to 0 on some slots; the residue
  // handling (clamped subtraction, exact zeroing on empty) must keep the
  // batched kernel bit-identical to the scalar one on those slots too.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(2000 + seed);
    const RadioEnvironment env = make_env(4, 16, 2, rng, 0.7);
    std::vector<ChannelSlot> alloc = random_alloc(env, rng, 1.0);
    InterferenceField field(env);
    add_all(field, alloc);
    // Remove roughly half the users, emptying channels along the way.
    for (std::size_t j = 0; j < env.user_count; ++j) {
      if (!rng.bernoulli(0.5)) continue;
      field.remove_user(j);
      alloc[j] = kUnallocated;
    }
    BatchEvaluator batch(field);
    for (std::size_t j = 0; j < env.user_count; ++j) {
      expect_agreement(env, field, batch, alloc, j, env.covering_servers[j]);
    }
  }
}

TEST(BatchEvaluator, SingleCoverageFastPathIsExact) {
  // Force |V_j| == 1 for every user: the dispatcher takes the inline
  // zero-cross path, which must still be bit-identical to the scalar calls.
  Rng rng(42);
  RadioEnvironment env = make_env(5, 30, 3, rng, 0.0);
  for (const auto& cov : env.covering_servers) ASSERT_EQ(cov.size(), 1u);
  const std::vector<ChannelSlot> alloc = random_alloc(env, rng, 0.7);
  InterferenceField field(env);
  add_all(field, alloc);
  BatchEvaluator batch(field);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    expect_agreement(env, field, batch, alloc, j, env.covering_servers[j]);
  }
}

}  // namespace
