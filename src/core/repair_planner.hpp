// Post-crash re-healing of the delivery profile (sigma). When servers die
// their replicas disappear and the users they served fall back to the
// cloud; the survivors are left with spare Eq. 6 storage budget and a
// latency field that no longer matches the greedy optimum. RepairPlanner
// rebuilds sigma for the degraded world: it keeps every surviving (and
// uncorrupted) placement, drops the rest, and greedily re-places items on
// the surviving servers by the same latency-reduction-per-MB ratio
// (Eq. 17) the Phase-2 planner uses — the repair is exactly "resume the
// greedy on what is left".
//
// With every server up and no corruption the replan is a provable no-op on
// a greedily saturated sigma: committed gains only shrink as sigma grows
// (submodularity), so no candidate the original run rejected can become
// profitable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

struct RepairResult {
  DeliveryProfile delivery;
  std::size_t lost_placements = 0;    ///< replicas on dead servers / corrupt
  std::size_t repair_placements = 0;  ///< new placements the repair added
  double recovered_gain_seconds = 0;  ///< total latency the repairs removed
};

class RepairPlanner {
 public:
  explicit RepairPlanner(const model::ProblemInstance& instance);

  /// Extra loss predicate: true when the replica (server, item) is
  /// unreadable even though its server is up (silent corruption).
  using ReplicaLost = std::function<bool(std::size_t, std::size_t)>;

  /// Re-heals `sigma` for the world where only `server_up` servers
  /// survive. Users allocated to dead servers are treated as cloud-bound
  /// for the duration of the outage (their slot is gone, not re-auctioned
  /// — channel reallocation is the game's job, not the repair's).
  ///
  /// Non-const: the planner owns reusable scratch (candidate heap,
  /// evaluator, effective-allocation buffer) so per-epoch replans in the
  /// fault loop allocate nothing per move. Scratch is rewound per call;
  /// results are unaffected.
  ///
  /// `max_placements` caps how many *new* placements the greedy may add
  /// (surviving placements are always kept). The online controller uses
  /// it as a per-event work budget; because the lazy greedy pops
  /// candidates in ratio order, the first n placements of a budgeted run
  /// match the first n of an unbudgeted one, so repeated budgeted replans
  /// converge to the unbudgeted fixpoint.
  [[nodiscard]] RepairResult replan(
      const AllocationProfile& allocation, const DeliveryProfile& sigma,
      std::span<const std::uint8_t> server_up,
      const ReplicaLost& replica_lost = {}, bool collaborative = true,
      std::size_t max_placements = std::numeric_limits<std::size_t>::max());

 private:
  struct Candidate {
    double ratio;
    std::size_t server;
    std::size_t item;

    bool operator<(const Candidate& other) const {
      return ratio < other.ratio;  // max-heap on ratio
    }
  };

  const model::ProblemInstance* instance_;
  std::vector<Candidate> heap_;                 ///< push_heap/pop_heap store
  std::optional<DeliveryEvaluator> evaluator_;  ///< built once per instance
  AllocationProfile effective_;                 ///< outage-masked allocation
};

}  // namespace idde::core
