file(REMOVE_RECURSE
  "CMakeFiles/scenario_file.dir/scenario_file.cpp.o"
  "CMakeFiles/scenario_file.dir/scenario_file.cpp.o.d"
  "scenario_file"
  "scenario_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
