#include "net/wan_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace idde::net {

std::vector<WanTarget> figure1_targets() {
  // Base RTTs approximate published AWS inter-region figures from an
  // Australian vantage point; the edge target is a one-hop metro link.
  return {
      WanTarget{"Edge", 2.0, 1.0, 0.6},
      WanTarget{"Singapore", 92.0, 18.0, 8.0},
      WanTarget{"London", 240.0, 30.0, 14.0},
      WanTarget{"Frankfurt", 228.0, 28.0, 13.0},
  };
}

double sample_rtt_ms(const WanTarget& target, double hour_of_week,
                     util::Rng& rng) {
  IDDE_EXPECTS(hour_of_week >= 0.0 && hour_of_week < 168.0);
  const double hour_of_day = std::fmod(hour_of_week, 24.0);
  // Congestion peaks around 20:00 local; a raised cosine keeps it smooth.
  const double phase =
      std::cos((hour_of_day - 20.0) / 24.0 * 2.0 * std::numbers::pi);
  const double diurnal = target.diurnal_swing_ms * 0.5 * (1.0 + phase);
  // Positive-skew jitter: |normal| approximates the long tail of queueing
  // delay without ever dipping below the propagation floor.
  const double jitter = std::abs(rng.normal(0.0, target.jitter_ms));
  return target.base_rtt_ms + diurnal + jitter;
}

std::vector<WeeklyAverage> run_figure1_protocol(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<WeeklyAverage> results;
  for (const WanTarget& target : figure1_targets()) {
    util::RunningStats stats;
    for (int hour = 0; hour < 168; ++hour) {
      stats.add(sample_rtt_ms(target, static_cast<double>(hour), rng));
    }
    results.push_back(WeeklyAverage{target.name, stats.mean(), stats.min(),
                                    stats.max()});
  }
  return results;
}

}  // namespace idde::net
