file(REMOVE_RECURSE
  "CMakeFiles/idde_radio.dir/interference.cpp.o"
  "CMakeFiles/idde_radio.dir/interference.cpp.o.d"
  "CMakeFiles/idde_radio.dir/pathloss.cpp.o"
  "CMakeFiles/idde_radio.dir/pathloss.cpp.o.d"
  "libidde_radio.a"
  "libidde_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
