// Plain-data entities of the IDDE system model (Section 2.1 / Table 1).
#pragma once

#include <cstddef>

#include "geo/point.hpp"

namespace idde::model {

using ServerId = std::size_t;
using UserId = std::size_t;
using DataId = std::size_t;

/// Data item d_k.
struct DataItem {
  double size_mb = 0.0;  ///< s_k
};

/// Edge server v_i with its reserved storage A_i.
struct EdgeServer {
  geo::Point position;
  double coverage_radius_m = 0.0;
  double storage_mb = 0.0;  ///< A_i, reserved by the app vendor
};

/// Mobile user u_j.
struct User {
  geo::Point position;
  double power_watts = 0.0;    ///< p_j
  double max_rate_mbps = 0.0;  ///< R_{j,max}, the Shannon-capacity cap
};

}  // namespace idde::model
