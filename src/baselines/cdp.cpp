#include "baselines/cdp.hpp"

#include <vector>

#include "baselines/allocators.hpp"
#include "baselines/local_placement.hpp"

namespace idde::baselines {

core::Strategy Cdp::solve(const model::ProblemInstance& instance,
                          util::Rng& rng) const {
  // Nearest server by the shared communication model; channels are picked
  // blindly (CDP optimises placement, not interference).
  core::AllocationProfile allocation =
      nearest_allocation(instance, ChannelPolicy::kRandom, &rng);

  // Demand signal: the users actually allocated to each server (the
  // centralized controller knows the association exactly).
  std::vector<std::vector<std::size_t>> allocated_users(
      instance.server_count());
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (allocation[j].allocated()) {
      allocated_users[allocation[j].server].push_back(j);
    }
  }
  const LocalPlacementOptions options{
      .per_mb = false,  // Liu et al. rank by absolute hit value
      .sample_fraction = 1.0,
  };
  core::DeliveryProfile delivery =
      local_demand_placement(instance, allocated_users, options, rng);

  core::Strategy strategy{std::move(allocation), std::move(delivery)};
  // Fog-RAN's delivery plane serves from the local cache or the cloud;
  // there is no inter-cache transfer path in the scheme.
  strategy.collaborative_delivery = false;
  strategy.approach_name = name();
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

}  // namespace idde::baselines
