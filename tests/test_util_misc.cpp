// Tests for format, CSV, tables, CLI, thread pool, env knobs and timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace idde::util;

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(format("a={} b={}", 1, "x"), "a=1 b=x");
}

TEST(Format, NoPlaceholders) { EXPECT_EQ(format("plain"), "plain"); }

TEST(Format, ExtraArgumentsDropped) {
  EXPECT_EQ(format("only {}", 1, 2, 3), "only 1");
}

TEST(Format, MissingArgumentsLeaveBraces) {
  EXPECT_EQ(format("a={} b={}", 7), "a=7 b={}");
}

TEST(Format, FloatingPointUsesG) {
  EXPECT_EQ(format("{}", 2.5), "2.5");
  EXPECT_EQ(format("{}", 0.1), "0.1");
}

TEST(Format, BoolAndChar) {
  EXPECT_EQ(format("{} {}", true, 'z'), "true z");
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Format, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.start_row().add("x").add(1.5);
  csv.start_row().add(std::string_view("y,z")).add(2LL);
  EXPECT_EQ(out.str(), "a,b\nx,1.5\n\"y,z\",2\n");
}

TEST(Table, AlignsColumns) {
  TextTable table({"name", "v"});
  table.start_row().add("long-name").add(1);
  table.start_row().add("s").add(22);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name      | v "), std::string::npos);
  EXPECT_NE(text.find("| long-name | 1 "), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, NumericPrecision) {
  TextTable table({"x"});
  table.start_row().add(3.14159, 3);
  EXPECT_NE(table.to_string().find("3.142"), std::string::npos);
}

TEST(Cli, ParsesAllKinds) {
  int i = 1;
  std::size_t z = 2;
  double d = 3.0;
  std::string s = "def";
  bool flag = false;
  CliParser cli("test");
  cli.add_int("i", &i, "int");
  cli.add_size("z", &z, "size");
  cli.add_double("d", &d, "double");
  cli.add_string("s", &s, "string");
  cli.add_flag("flag", &flag, "flag");
  const char* argv[] = {"prog", "--i=5", "--z", "9", "--d=2.5",
                        "--s", "hello", "--flag"};
  EXPECT_TRUE(cli.parse(8, argv));
  EXPECT_EQ(i, 5);
  EXPECT_EQ(z, 9u);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(flag);
}

TEST(Cli, DefaultsSurviveNoArgs) {
  int i = 7;
  CliParser cli("test");
  cli.add_int("i", &i, "int");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(i, 7);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadValueThrows) {
  int i = 0;
  CliParser cli("test");
  cli.add_int("i", &i, "int");
  const char* argv[] = {"prog", "--i=abc"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  int i = 0;
  CliParser cli("test");
  cli.add_int("i", &i, "int");
  const char* argv[] = {"prog", "--i"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BoolValueForms) {
  bool f = true;
  CliParser cli("test");
  cli.add_flag("f", &f, "flag");
  const char* argv[] = {"prog", "--f=false"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(f);
}

TEST(Cli, UsageListsOptions) {
  int i = 3;
  CliParser cli("my tool");
  cli.add_int("iterations", &i, "how many");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("iterations"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, 50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  parallel_for(pool, 10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(Env, FallbacksWhenUnset) {
  ::unsetenv("IDDE_TEST_VAR");
  EXPECT_EQ(env_or("IDDE_TEST_VAR", "fb"), "fb");
  EXPECT_EQ(env_int_or("IDDE_TEST_VAR", 3), 3);
  EXPECT_DOUBLE_EQ(env_double_or("IDDE_TEST_VAR", 1.5), 1.5);
}

TEST(Env, ReadsValues) {
  ::setenv("IDDE_TEST_VAR", "17", 1);
  EXPECT_EQ(env_int_or("IDDE_TEST_VAR", 3), 17);
  ::setenv("IDDE_TEST_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double_or("IDDE_TEST_VAR", 0.0), 2.25);
  ::setenv("IDDE_TEST_VAR", "garbage", 1);
  EXPECT_EQ(env_int_or("IDDE_TEST_VAR", 3), 3);
  ::unsetenv("IDDE_TEST_VAR");
}

TEST(Env, RepKnobs) {
  ::unsetenv("IDDE_REPS");
  EXPECT_EQ(experiment_reps(10), 10);
  ::setenv("IDDE_REPS", "4", 1);
  EXPECT_EQ(experiment_reps(10), 4);
  ::unsetenv("IDDE_REPS");
  ::unsetenv("IDDE_IP_BUDGET_MS");
  EXPECT_DOUBLE_EQ(ip_budget_ms(200.0), 200.0);
  ::setenv("IDDE_IP_BUDGET_MS", "50", 1);
  EXPECT_DOUBLE_EQ(ip_budget_ms(200.0), 50.0);
  ::unsetenv("IDDE_IP_BUDGET_MS");
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_ms(), 0.0);
}

TEST(Timer, DeadlineZeroOrNegativeNeverExpires) {
  const Deadline d(-1.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 1e9);
}

TEST(Timer, DeadlineExpires) {
  const Deadline d(0.001);
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1.0;
  EXPECT_TRUE(d.expired());
}

TEST(Logging, LevelsParseAndGate) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("???"), LogLevel::kInfo);
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  log_error("this must be suppressed {}", 1);  // must not crash
  set_log_level(original);
}

}  // namespace
