#include "sim/runner.hpp"

#include "baselines/cdp.hpp"
#include "baselines/dup_g.hpp"
#include "baselines/idde_ip.hpp"
#include "baselines/saa.hpp"
#include "core/idde_g.hpp"
#include "core/validation.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace idde::sim {

RunRecord run_approach(const model::ProblemInstance& instance,
                       const core::Approach& approach, util::Rng& rng,
                       bool require_valid,
                       std::optional<core::Strategy>* strategy_out) {
  RunRecord record;
  record.approach = approach.name();
  std::optional<core::Strategy> solved;
  {
    // The span is both the timer (solve_ms is a reported result) and the
    // trace phase; the name string must outlive the span.
    const std::string span_name = "solve." + record.approach;
    const obs::ScopedSpan span(span_name);
    solved.emplace(approach.solve(instance, rng));
    record.solve_ms = span.elapsed_ms();
  }
  const core::Strategy& strategy = *solved;
  record.metrics = core::evaluate(instance, strategy);
  record.game_rounds = strategy.game_rounds;
  record.game_moves = strategy.game_moves;

  const auto problems = core::validate_strategy(instance, strategy);
  record.strategy_valid = problems.empty();
  for (const std::string& problem : problems) {
    util::log_error("{}: invalid strategy: {}", approach.name(), problem);
  }
  if (require_valid) {
    IDDE_ASSERT(record.strategy_valid, "approach produced invalid strategy");
  }
  if (strategy_out != nullptr) strategy_out->emplace(strategy);
  return record;
}

std::vector<core::ApproachPtr> make_paper_approaches(double ip_budget_ms,
                                                     std::size_t game_threads) {
  std::vector<core::ApproachPtr> approaches;
  approaches.push_back(std::make_unique<baselines::IddeIp>(ip_budget_ms));
  core::IddeGOptions idde_g;
  idde_g.game.threads = game_threads;
  approaches.push_back(std::make_unique<core::IddeG>(idde_g));
  approaches.push_back(std::make_unique<baselines::Saa>());
  approaches.push_back(std::make_unique<baselines::Cdp>());
  approaches.push_back(std::make_unique<baselines::DupG>(
      core::UpdateRule::kBestImprovement, game_threads));
  return approaches;
}

}  // namespace idde::sim
