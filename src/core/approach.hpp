// The interface every IDDE solver implements (IDDE-G and the four
// benchmark approaches of Section 4.1). Solvers are stateless with respect
// to instances: `solve` may be called concurrently on different instances.
#pragma once

#include <memory>
#include <string>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::core {

class Approach {
 public:
  virtual ~Approach() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a complete strategy. `rng` seeds any internal randomisation
  /// (tie-breaking, sampling); deterministic given (instance, rng state).
  [[nodiscard]] virtual Strategy solve(const model::ProblemInstance& instance,
                                       util::Rng& rng) const = 0;
};

using ApproachPtr = std::unique_ptr<Approach>;

}  // namespace idde::core
