#include "core/game.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace idde::core {

IddeUGame::IddeUGame(const model::ProblemInstance& instance,
                     GameOptions options)
    : instance_(&instance), options_(options) {
  IDDE_EXPECTS(options.improvement_epsilon >= 0.0);
  IDDE_EXPECTS(options.max_rounds > 0);
}

IddeUGame::BestResponse IddeUGame::best_response(
    const radio::InterferenceField& field, std::size_t user,
    std::size_t* evaluations) const {
  BestResponse best;
  const std::size_t channels = instance_->radio_env().channels_per_server;
  const auto& servers = options_.candidate_servers != nullptr
                            ? (*options_.candidate_servers)[user]
                            : instance_->covering_servers(user);
  for (const std::size_t server : servers) {
    for (std::size_t channel = 0; channel < channels; ++channel) {
      const ChannelSlot slot{server, channel};
      const double benefit = field.benefit(user, slot);
      ++*evaluations;
      if (benefit > best.benefit) {
        best = BestResponse{slot, benefit};
      }
    }
  }
  return best;
}

GameResult IddeUGame::run() {
  return run_from(AllocationProfile(instance_->user_count(), kUnallocated));
}

GameResult IddeUGame::run_from(const AllocationProfile& start) {
  IDDE_EXPECTS(start.size() == instance_->user_count());
  radio::InterferenceField field(instance_->radio_env());
  for (std::size_t j = 0; j < start.size(); ++j) {
    if (start[j].allocated()) field.add_user(j, start[j]);
  }

  GameResult result;
  const std::size_t user_count = instance_->user_count();
  const double eps = options_.improvement_epsilon;
  std::vector<std::size_t> moves_of(user_count, 0);
  const auto movable = [&](std::size_t j) {
    return moves_of[j] < options_.max_moves_per_user;
  };
  const auto record_move = [&](std::size_t j) {
    if (++moves_of[j] == options_.max_moves_per_user) ++result.frozen_users;
  };

  // Benefit of the user's current decision; 0 when unallocated (a user
  // always gains by joining some channel, matching Eq. 12's positivity).
  const auto current_benefit = [&](std::size_t j) {
    const ChannelSlot slot = field.slot_of(j);
    return slot.allocated() ? field.benefit(j, slot) : 0.0;
  };

  while (result.rounds < options_.max_rounds) {
    ++result.rounds;
    bool moved = false;

    switch (options_.rule) {
      case UpdateRule::kBestImprovement: {
        // Every user submits its candidate; the largest gain wins.
        std::size_t winner = ChannelSlot::kNone;
        ChannelSlot winner_slot = kUnallocated;
        double winner_gain = eps;
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          const double gain = candidate.benefit - current_benefit(j);
          if (gain > winner_gain) {
            winner_gain = gain;
            winner = j;
            winner_slot = candidate.slot;
          }
        }
        if (winner != ChannelSlot::kNone) {
          field.move_user(winner, winner_slot);
          record_move(winner);
          ++result.moves;
          moved = true;
        }
        break;
      }
      case UpdateRule::kFirstImprovement: {
        for (std::size_t j = 0; j < user_count && !moved; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          if (candidate.benefit - current_benefit(j) > eps) {
            field.move_user(j, candidate.slot);
            record_move(j);
            ++result.moves;
            moved = true;
          }
        }
        break;
      }
      case UpdateRule::kAsyncSweep: {
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          if (candidate.benefit - current_benefit(j) > eps) {
            field.move_user(j, candidate.slot);
            record_move(j);
            ++result.moves;
            moved = true;
          }
        }
        break;
      }
    }

    if (!moved) {
      result.converged = true;
      break;
    }
  }

  if (!result.converged) {
    util::log_warn("IDDE-U game hit the round cap ({} rounds, {} moves)",
                   result.rounds, result.moves);
  }
  if (result.frozen_users > 0) {
    util::log_debug(
        "IDDE-U game froze {} cycling users after {} moves each",
        result.frozen_users, options_.max_moves_per_user);
  }
  result.allocation.resize(user_count);
  for (std::size_t j = 0; j < user_count; ++j) {
    result.allocation[j] = field.slot_of(j);
  }
  return result;
}

bool is_nash_equilibrium(const model::ProblemInstance& instance,
                         const AllocationProfile& allocation, double epsilon) {
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (allocation[j].allocated()) field.add_user(j, allocation[j]);
  }
  const std::size_t channels = instance.radio_env().channels_per_server;
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    const double current = allocation[j].allocated()
                               ? field.benefit(j, allocation[j])
                               : 0.0;
    for (const std::size_t server : instance.covering_servers(j)) {
      for (std::size_t channel = 0; channel < channels; ++channel) {
        if (field.benefit(j, ChannelSlot{server, channel}) >
            current + epsilon) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace idde::core
