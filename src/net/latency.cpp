#include "net/latency.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::net {

DeliveryLatencyModel::DeliveryLatencyModel(CostMatrix costs,
                                           double cloud_speed_mbps)
    : costs_(std::move(costs)), cloud_speed_mbps_(cloud_speed_mbps) {
  IDDE_EXPECTS(cloud_speed_mbps > 0.0);
}

double DeliveryLatencyModel::best_delivery_seconds(
    std::span<const std::size_t> replica_hosts, std::size_t to,
    double size_mb) const {
  IDDE_EXPECTS(to < costs_.size());
  IDDE_EXPECTS(size_mb >= 0.0);
  double best = cloud_transfer_seconds(size_mb);
  for (const std::size_t host : replica_hosts) {
    best = std::min(best, edge_transfer_seconds(host, to, size_mb));
  }
  return best;
}

}  // namespace idde::net
