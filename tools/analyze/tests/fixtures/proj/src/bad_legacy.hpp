// Fixture: header-scoped legacy violation pinned by tests/golden.json.
#pragma once

using namespace std;  // std-using
