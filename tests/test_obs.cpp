// Telemetry subsystem: metric primitives, registry scrape, tracer/spans,
// the Chrome trace schema, and the end-to-end observation contract (bit-
// identical solver results with telemetry on, off, or compiled out).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/game.hpp"
#include "core/idde_g.hpp"
#include "des/flow_sim.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/sweep.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace idde;

/// Every obs test starts from a clean slate: metrics zeroed, trace buffers
/// dropped, both runtime switches off (whatever the environment says).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::set_enabled(false);
    obs::reset_all();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::set_enabled(false);
    obs::reset_all();
  }
};

model::InstanceParams small_params() {
  model::InstanceParams p;
  p.server_count = 8;
  p.user_count = 30;
  p.data_count = 3;
  return p;
}

/// Structural check of the chrome://tracing / Perfetto trace_event format
/// we emit — the same invariants tools/obs/validate_trace.py enforces.
/// (Unused in IDDE_OBS=0 builds: every call site is behind the gate.)
[[maybe_unused]] void expect_valid_chrome_trace(const util::Json& doc,
                                                std::size_t min_events) {
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  EXPECT_GE(events.size(), min_events);
  double last_ts = -1.0;
  for (const util::Json& event : events) {
    ASSERT_TRUE(event.is_object());
    EXPECT_FALSE(event.at("name").as_string().empty());
    EXPECT_EQ(event.at("cat").as_string(), "idde");
    EXPECT_EQ(event.at("ph").as_string(), "X");  // complete events only
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(ts, last_ts);  // sorted for stable output
    last_ts = ts;
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    EXPECT_EQ(event.at("pid").as_int(), 1);
    EXPECT_GE(event.at("tid").as_int(), 0);
  }
}

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST_F(ObsTest, HistogramExactEndpointsAndCount) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);  // empty
  for (const double v : {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0}) h.record(v);
  EXPECT_EQ(h.count(), 8u);
  // p=0 / p=100 are the exact observed extremes, not bucket midpoints.
  EXPECT_EQ(h.percentile(0.0), 1.0);
  EXPECT_EQ(h.percentile(100.0), 9.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 8u);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 9.0);
  EXPECT_NEAR(snap.sum, 31.0, 1e-12);
  EXPECT_NEAR(snap.mean, 31.0 / 8.0, 1e-12);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, HistogramDropsNaNAndBucketsNegatives) {
  obs::Histogram h;
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.record(-5.0);  // underflow bucket, exact min still tracked
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(0.0), -5.0);
}

TEST_F(ObsTest, SnapshotJsonHasQuantileFields) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const util::Json doc = h.snapshot().to_json();
  for (const char* key :
       {"count", "min", "max", "mean", "p50", "p90", "p99", "p999"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  EXPECT_EQ(doc.at("count").as_int(), 100);
}

// The property the HDR layout promises: every quantile the histogram
// reports lies inside the log-bucket that holds the exact nearest-rank
// sample, and agrees with util::percentile up to bucket quantization plus
// the gap between the two quantile conventions' bracketing samples.
TEST_F(ObsTest, HistogramQuantilesMatchExactStatsWithinBucketBounds) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 5; ++trial) {
    obs::Histogram h;
    std::vector<double> samples;
    const std::size_t n = 500 + 300 * static_cast<std::size_t>(trial);
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of scales: uniform ms-range plus a heavy exponential tail,
      // spanning several octaves of the bucket table.
      const double u = rng.uniform(0.0, 1.0);
      const double v = trial % 2 == 0
                           ? rng.uniform(0.05, 80.0)
                           : -std::log(1.0 - u * 0.9999) * 25.0;
      samples.push_back(v);
      h.record(v);
    }
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
      const double reported = h.percentile(p);
      // Exact nearest-rank order statistic the histogram quantizes.
      const auto rank = std::clamp<std::size_t>(
          static_cast<std::size_t>(
              std::ceil(p / 100.0 * static_cast<double>(n))),
          1, n);
      const double exact = sorted[rank - 1];
      const auto [lo, hi] = obs::Histogram::bucket_range(exact);
      EXPECT_GE(reported, lo) << "p" << p << " trial " << trial;
      EXPECT_LE(reported, hi) << "p" << p << " trial " << trial;
      // Cross-check against the interpolating util::stats quantile: the
      // two conventions bracket each other within one order statistic, so
      // their gap is bounded by the bucket width plus that spacing.
      const double interpolated = util::percentile(samples, p);
      const auto floor_idx = static_cast<std::size_t>(
          p / 100.0 * static_cast<double>(n - 1));
      const std::size_t lo_idx = std::min(rank - 1, floor_idx);
      const std::size_t hi_idx =
          std::max<std::size_t>(rank - 1, std::min(floor_idx + 1, n - 1));
      const double spacing = sorted[hi_idx] - sorted[lo_idx];
      EXPECT_LE(std::abs(reported - interpolated), (hi - lo) + spacing + 1e-9)
          << "p" << p << " trial " << trial;
    }
    EXPECT_EQ(h.percentile(0.0), sorted.front());
    EXPECT_EQ(h.percentile(100.0), sorted.back());
  }
}

TEST_F(ObsTest, RegistryHandsOutStableNamedMetrics) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x.total");
  obs::Counter& b = registry.counter("x.total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  registry.gauge("g").set(5);
  registry.histogram("h").record(2.0);
  const util::Json scrape = registry.scrape();
  EXPECT_EQ(scrape.at("counters").at("x.total").as_int(), 3);
  EXPECT_EQ(scrape.at("gauges").at("g").as_int(), 5);
  EXPECT_EQ(scrape.at("histograms").at("h").at("count").as_int(), 1);
  registry.reset();
  EXPECT_EQ(a.value(), 0u);  // reference survives reset
}

TEST_F(ObsTest, MacrosAreInertWhenRuntimeDisabled) {
  IDDE_OBS_COUNT("obs_test.disabled_total", 5);
  IDDE_OBS_HISTOGRAM("obs_test.disabled_hist", 1.0);
#if IDDE_OBS
  // The names must not even be registered: the scrape stays empty.
  const util::Json scrape = obs::MetricsRegistry::global().scrape();
  EXPECT_EQ(scrape.at("counters").find("obs_test.disabled_total"), nullptr);
  EXPECT_EQ(scrape.at("histograms").find("obs_test.disabled_hist"), nullptr);
#endif
}

TEST_F(ObsTest, MacrosRecordWhenEnabled) {
  obs::set_enabled(true);
  for (int i = 0; i < 3; ++i) IDDE_OBS_COUNT("obs_test.enabled_total", 2);
  IDDE_OBS_GAUGE_SET("obs_test.depth", 9);
  IDDE_OBS_HISTOGRAM("obs_test.value", 4.0);
#if IDDE_OBS
  const util::Json scrape = obs::MetricsRegistry::global().scrape();
  EXPECT_EQ(scrape.at("counters").at("obs_test.enabled_total").as_int(), 6);
  EXPECT_EQ(scrape.at("gauges").at("obs_test.depth").as_int(), 9);
  EXPECT_EQ(scrape.at("histograms").at("obs_test.value").at("count").as_int(),
            1);
#endif
}

TEST_F(ObsTest, ScopedSpanMeasuresRegardlessOfToggles) {
  const obs::ScopedSpan span("obs_test.timer");
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  EXPECT_GE(span.elapsed_ms(), 0.0);
}

TEST_F(ObsTest, SpansFeedRollupAndChromeTrace) {
  obs::set_trace_enabled(true);  // implies enabled()
  EXPECT_TRUE(obs::enabled());
  {
    const obs::ScopedSpan outer("obs_test.outer");
    {
      const obs::ScopedSpan inner("obs_test.inner", "detail-string");
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    }
  }
#if IDDE_OBS
  const util::Json rollup = obs::Tracer::global().rollup_json();
  ASSERT_NE(rollup.find("obs_test.outer"), nullptr);
  ASSERT_NE(rollup.find("obs_test.inner"), nullptr);
  EXPECT_EQ(rollup.at("obs_test.outer").at("count").as_int(), 1);
  // Nesting: the outer phase strictly contains the inner one.
  EXPECT_GE(rollup.at("obs_test.outer").at("total_ms").as_number(),
            rollup.at("obs_test.inner").at("total_ms").as_number());

  const util::Json trace = obs::Tracer::global().chrome_trace();
  expect_valid_chrome_trace(trace, 2);
  bool saw_args = false;
  for (const util::Json& event : trace.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "obs_test.inner") {
      saw_args = event.at("args").at("detail").as_string() == "detail-string";
    }
  }
  EXPECT_TRUE(saw_args);

  const util::TextTable table = obs::Tracer::global().rollup_table();
  (void)table;  // renders without throwing
#endif
}

TEST_F(ObsTest, TracerResetDropsEverything) {
  obs::set_trace_enabled(true);
  { const obs::ScopedSpan span("obs_test.reset_me"); }
  obs::reset_all();
#if IDDE_OBS
  EXPECT_TRUE(obs::Tracer::global().rollup_json().as_object().empty());
  EXPECT_TRUE(
      obs::Tracer::global().chrome_trace().at("traceEvents").as_array().empty());
  // Spans after the reset land in the fresh epoch's buffers.
  { const obs::ScopedSpan span("obs_test.after_reset"); }
  EXPECT_EQ(obs::Tracer::global()
                .chrome_trace()
                .at("traceEvents")
                .as_array()
                .size(),
            1u);
#endif
}

// The observation contract: enabling full telemetry must not perturb the
// solver — identical move sequences, evaluation counts, and allocations.
TEST_F(ObsTest, GameResultsBitIdenticalWithTelemetryOn) {
  const model::ProblemInstance instance =
      model::make_instance(small_params(), 77);

  core::IddeUGame off_game(instance, core::GameOptions{});
  const core::GameResult off = off_game.run();

  obs::set_trace_enabled(true);
  core::IddeUGame on_game(instance, core::GameOptions{});
  const core::GameResult on = on_game.run();

  EXPECT_EQ(on.moves, off.moves);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.benefit_evaluations, off.benefit_evaluations);
  EXPECT_TRUE(on.allocation == off.allocation);
}

// End to end: a sweep cell and a DES replay under full telemetry produce a
// schema-valid trace and a telemetry block with quantiles for the phases
// named in the acceptance criteria.
TEST_F(ObsTest, SweepAndDesProduceTraceAndTelemetryBlock) {
  obs::set_trace_enabled(true);

  std::vector<sim::SweepPoint> points{{"p0", small_params()}};
  std::vector<core::ApproachPtr> approaches;
  approaches.push_back(std::make_unique<core::IddeG>());
  sim::SweepOptions options;
  options.repetitions = 2;
  options.base_seed = 5;
  options.threads = 2;
  const auto results = sim::run_sweep(points, approaches, options);
  ASSERT_EQ(results.size(), 1u);

  const model::ProblemInstance instance =
      model::make_instance(small_params(), 5);
  util::Rng rng(5);
  const core::Strategy strategy = core::IddeG().solve(instance, rng);
  des::FlowSimOptions sim_options;
  sim_options.arrival_window_s = 5.0;
  const des::FlowSimResult replay =
      des::FlowLevelSimulator(instance, sim_options).run(strategy, rng);
  EXPECT_FALSE(replay.flows.empty());

#if IDDE_OBS
  const util::Json telemetry = obs::telemetry_json();
  for (const char* section :
       {"counters", "gauges", "histograms", "spans"}) {
    EXPECT_NE(telemetry.find(section), nullptr) << section;
  }
  // Game rounds, delivery resolution, and flow durations all expose
  // p50/p99/max quantiles.
  for (const char* name :
       {"game.rounds", "delivery.request_latency_ms", "des.flow_duration_ms"}) {
    const util::Json* hist = telemetry.at("histograms").find(name);
    ASSERT_NE(hist, nullptr) << name;
    EXPECT_GT(hist->at("count").as_int(), 0) << name;
    for (const char* q : {"p50", "p99", "max"}) {
      EXPECT_NE(hist->find(q), nullptr) << name << "." << q;
    }
  }
  EXPECT_GT(
      telemetry.at("counters").at("delivery.plans_total").as_int(), 0);
  EXPECT_GT(telemetry.at("counters").at("des.flows_total").as_int(), 0);
  // Eq. 8 tier counters: a fault-free DES replay resolves without the
  // failover path, so tiers come from the crash/fault layers; the greedy
  // planner's request-latency histogram above stands in for resolution.

  // The sweep ran under the pool: worker-thread spans must appear in the
  // trace alongside the main thread's.
  const util::Json trace = obs::Tracer::global().chrome_trace();
  expect_valid_chrome_trace(trace, 4);
  bool saw_cell = false;
  bool saw_solve = false;
  bool saw_des = false;
  for (const util::Json& event : trace.at("traceEvents").as_array()) {
    const std::string& name = event.at("name").as_string();
    saw_cell = saw_cell || name == "sweep.cell";
    saw_solve = saw_solve || name == "solve.IDDE-G";
    saw_des = saw_des || name == "des.run";
  }
  EXPECT_TRUE(saw_cell);
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_des);

  // The trace round-trips through the JSON writer/parser (what the CI
  // artifact step and tools/obs/validate_trace.py consume).
  const util::Json reparsed = util::Json::parse(trace.dump(1));
  expect_valid_chrome_trace(reparsed, 4);
#endif
}

// Eq. 8 tier counters under failover: a single-server crash forces some
// resolutions off the primary tier, and every resolution is counted.
TEST_F(ObsTest, FailoverResolutionCountsTiers) {
  obs::set_enabled(true);
  const model::ProblemInstance instance =
      model::make_instance(small_params(), 9);
  util::Rng rng(9);
  const core::Strategy strategy = core::IddeG().solve(instance, rng);

  std::size_t resolutions = 0;
  std::vector<std::uint8_t> up(instance.server_count(), 1);
  up[0] = 0;
  std::vector<std::size_t> hosts;
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    const core::ChannelSlot slot = strategy.allocation[j];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    for (const std::size_t k : instance.requests().items_of(j)) {
      hosts.clear();
      for (const std::size_t host : strategy.delivery.hosts(k)) {
        if (!strategy.collaborative_delivery && host != serving) continue;
        hosts.push_back(host);
      }
      (void)core::resolve_with_failover(instance, hosts, serving,
                                        instance.data(k).size_mb, up);
      ++resolutions;
    }
  }

#if IDDE_OBS
  const util::Json scrape = obs::MetricsRegistry::global().scrape();
  const auto tier = [&](const char* name) {
    const util::Json* counter = scrape.at("counters").find(name);
    return counter == nullptr ? std::int64_t{0} : counter->as_int();
  };
  EXPECT_EQ(tier("resolve.primary_total") + tier("resolve.replica_total") +
                tier("resolve.cloud_total"),
            static_cast<std::int64_t>(resolutions));
  const util::Json* latency =
      scrape.at("histograms").find("resolve.latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->at("count").as_int(),
            static_cast<std::int64_t>(resolutions));
#endif
}

}  // namespace
