
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/test_baselines.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/test_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/idde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/idde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/idde_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/idde_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/idde_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/idde_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
