// Self-healing online controller (the serving mode of the repo).
//
// The offline pipeline solves one frozen instance; real edge systems do
// not hold still. ServeController keeps the paper's two artefacts — the
// IDDE-U equilibrium allocation and the delivery profile sigma —
// *incrementally repaired* while the world drifts under them: users walk
// (dynamic::RandomWaypointModel), sessions churn (dynamic::ChurnProcess),
// servers crash and recover (fault::FaultPlan). Four pillars:
//
//  1. Per-event repair budgets. Every event grants a bounded amount of
//     deterministic work (best-response rounds, greedy placements). A
//     repair that exhausts its budget leaves a degraded-but-valid profile
//     (a partial best-response run is still a valid allocation; sigma
//     stays feasible) and enqueues a continuation on a bounded backlog
//     with deadline-aware shedding and a qos::RetryBudget on re-enqueues.
//  2. Convergence watchdog. A repair whose move count looks like cycling
//     triggers a potential check (core::potential, Eq. 13); a suspect
//     repair that failed to raise the potential is rolled back and
//     counted as a strike. Enough strikes trip a breaker: the last-known-
//     good profile is restored (sanitised against the live world) and
//     repairs pause for a cooldown, then re-open one probe at a time.
//  3. Checkpoint/restore. checkpoint() serialises the complete mutable
//     state (RNG streams, walks, churn mask, allocation, sigma bits,
//     backlog, watchdog, counters) through the versioned, checksummed
//     envelope in serve/checkpoint.hpp; restore() resumes *bit-
//     identically* — the trajectory hash after restore + k ticks equals
//     the uninterrupted run's hash. Derived state (instance geometry,
//     fault plan, server-up masks) is regenerated, never stored.
//  4. Chaos validation lives in bench/ext_serve (BENCH_serve.json) and
//     tests/test_serve.cpp: kill/restore at arbitrary event boundaries,
//     injected cycling rule (core::UpdateRule::kCycleProbe), mass-failure
//     recovery timing.
//
// Determinism contract: a trajectory is a pure function of
// (ServeConfig, seed). All budgets are counts, never wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/health.hpp"
#include "core/strategy.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/mobility.hpp"
#include "dynamic/world.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance.hpp"
#include "qos/retry_budget.hpp"
#include "radio/pathloss.hpp"
#include "serve/config.hpp"
#include "serve/events.hpp"
#include "util/random.hpp"

namespace idde::serve {

/// What one tick did. All fields are deterministic counts.
struct TickReport {
  std::size_t tick = 0;
  std::size_t events = 0;
  std::size_t repairs = 0;        ///< repair invocations (incl. backlog)
  std::size_t repair_rounds = 0;  ///< solver rounds spent this tick
  std::size_t shed = 0;           ///< backlog tasks shed this tick
  std::size_t backlog = 0;        ///< backlog depth at end of tick
  bool degraded = false;
  bool breaker_open = false;
};

/// Lifetime counters, all checkpointed.
struct ServeStatus {
  std::size_t ticks = 0;
  std::size_t events_total = 0;
  std::size_t repairs_total = 0;
  std::size_t repair_rounds_total = 0;
  std::size_t repair_moves_total = 0;
  std::size_t degraded_ticks = 0;
  std::size_t backlog_peak = 0;
  std::size_t shed_total = 0;
  std::size_t potential_checks = 0;
  std::size_t watchdog_strikes = 0;
  std::size_t breaker_trips = 0;
  std::size_t lkg_restores = 0;
  /// Ticks from the injected flash failure to the first non-degraded
  /// tick; 0 until recovery completes (or when no flash is configured).
  std::size_t recovery_ticks = 0;
};

class ServeController {
 public:
  /// Builds the world from (config, seed) and runs the initial solve.
  ServeController(ServeConfig config, std::uint64_t seed);

  /// Advances one tick: derive events, apply bookkeeping, run budgeted
  /// repairs, drain the backlog, fold the trajectory hash.
  TickReport tick();

  /// Serialises the complete mutable state (see header comment). The
  /// result round-trips through restore() bit-identically.
  [[nodiscard]] std::string checkpoint(int indent = -1) const;

  /// Overwrites this controller's state from a checkpoint produced by a
  /// controller with the same (config, seed) — enforced via a guard hash.
  /// Throws util::JsonError on malformed input, checksum mismatch,
  /// config/seed mismatch, or a semantically invalid snapshot (out-of-
  /// range ids, infeasible sigma). On throw the controller must be
  /// considered unusable (state may be partially overwritten).
  void restore(std::string_view checkpoint_text);

  /// FNV-1a fold of the full trajectory so far: events, allocation,
  /// sigma bits, backlog and breaker state of every tick. Two runs are
  /// bit-identical iff their hashes match at every tick.
  [[nodiscard]] std::uint64_t trajectory_hash() const noexcept {
    return trajectory_hash_;
  }

  [[nodiscard]] const ServeStatus& status() const noexcept { return status_; }
  [[nodiscard]] std::size_t current_tick() const noexcept { return tick_; }
  [[nodiscard]] const core::AllocationProfile& allocation() const noexcept {
    return allocation_;
  }
  [[nodiscard]] const model::ProblemInstance& instance() const noexcept {
    return tracker_.instance();
  }
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool breaker_open() const noexcept { return breaker_open_; }
  [[nodiscard]] std::size_t backlog_size() const noexcept {
    return backlog_.size();
  }
  /// Placement count of the standing sigma (introspection for tests).
  [[nodiscard]] std::size_t sigma_placements() const noexcept {
    return sigma_server_.size();
  }
  /// Servers currently health-demoted — gray, not down (introspection).
  [[nodiscard]] std::size_t gray_demoted_count() const noexcept {
    std::size_t demoted = 0;
    for (const std::uint8_t flag : gray_mask_) demoted += flag;
    return demoted;
  }

 private:
  void derive_events(double t);
  void apply_bookkeeping(const Event& event);
  void dispatch_repairs(const Event& event, TickReport& report);
  bool run_equilibrium_repair(TickReport& report);
  bool run_sigma_repair(TickReport& report);
  void build_candidates();
  void enqueue_repair(RepairKind kind, std::size_t attempts,
                      TickReport& report);
  void drain_backlog(TickReport& report);
  void trip_breaker();
  void restore_lkg();
  void maybe_update_lkg();
  void extract_sigma(const core::DeliveryProfile& delivery);
  [[nodiscard]] core::DeliveryProfile materialize_sigma() const;
  [[nodiscard]] bool user_online(std::size_t user) const;
  void fold_tick_hash();
  [[nodiscard]] std::uint64_t guard_hash() const;
  /// Validates a decoded sigma placement list against the instance
  /// (bounds, duplicates, capacity) — hostile checkpoints must fail
  /// structurally, not trip internal asserts. Throws util::JsonError.
  void validate_sigma(const std::vector<std::size_t>& servers,
                      const std::vector<std::size_t>& items) const;

  ServeConfig config_;
  std::uint64_t seed_;
  model::ProblemInstance base_;
  radio::PathLossModel pathloss_;
  fault::FaultPlan plan_;
  // Gray-failure plane: the degradation schedule is derived state (a pure
  // function of config and seed, regenerated on restore); the tracker and
  // the demotion mask are mutable state and are checkpointed.
  fault::DegradationPlan gray_plan_;
  core::HealthTracker health_;
  dynamic::WorldTracker tracker_;
  util::Rng walk_rng_;
  util::Rng churn_rng_;
  util::Rng solve_rng_;
  dynamic::RandomWaypointModel mobility_;
  dynamic::ChurnProcess churn_;
  qos::RetryBudget retry_;

  std::size_t tick_ = 0;
  core::AllocationProfile allocation_;
  // Sigma as flat placement lists + recorded headroom. The headroom is
  // derived: DeliveryProfile keeps an exact integer-KB ledger, so replay
  // recomputes identical bits in any order. The recorded copy stays in
  // the checkpoint for auditability and is cross-checked on restore.
  std::vector<std::size_t> sigma_server_;
  std::vector<std::size_t> sigma_item_;
  std::vector<double> sigma_free_mb_;
  bool equilibrium_clean_ = true;
  bool sigma_clean_ = true;

  // Last known good (Pillar 2 fallback).
  core::AllocationProfile lkg_allocation_;
  std::vector<std::size_t> lkg_sigma_server_;
  std::vector<std::size_t> lkg_sigma_item_;

  std::deque<RepairTask> backlog_;
  std::size_t strikes_ = 0;
  std::size_t cooldown_left_ = 0;
  bool breaker_open_ = false;
  bool half_open_ = false;

  std::vector<std::uint8_t> up_mask_;
  std::vector<std::uint8_t> prev_up_mask_;
  std::vector<std::uint8_t> gray_mask_;  ///< 1 = currently health-demoted
  std::vector<Event> events_;                        // per-tick scratch
  std::vector<std::vector<std::size_t>> candidates_;  // per-repair scratch

  std::uint64_t trajectory_hash_;
  ServeStatus status_;
};

}  // namespace idde::serve
