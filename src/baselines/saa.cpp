#include "baselines/saa.hpp"

#include <vector>

#include "baselines/allocators.hpp"
#include "baselines/local_placement.hpp"

namespace idde::baselines {

core::Strategy Saa::solve(const model::ProblemInstance& instance,
                          util::Rng& rng) const {
  core::AllocationProfile allocation = random_allocation(instance, rng);

  // Demand signal: the users covered by each server (each server only sees
  // requests arriving from its own coverage area).
  std::vector<std::vector<std::size_t>> covered(instance.server_count());
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    covered[i] = instance.covered_users(i);
  }
  const LocalPlacementOptions options{
      .per_mb = true,
      .sample_fraction = sample_fraction_,
  };
  core::DeliveryProfile delivery =
      local_demand_placement(instance, covered, options, rng);

  core::Strategy strategy{std::move(allocation), std::move(delivery)};
  strategy.approach_name = name();
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

}  // namespace idde::baselines
