#!/usr/bin/env python3
"""Schema-validates a Chrome trace_event JSON emitted by obs::Tracer.

The exporter (src/obs/trace.cpp) promises the subset of the trace_event
format that chrome://tracing and Perfetto accept without warnings:

  {"displayTimeUnit": "ms",
   "traceEvents": [{"name": str, "cat": "idde", "ph": "X",
                    "ts": us >= 0, "dur": us >= 0, "pid": 1, "tid": int,
                    "args": {"detail": str}?}, ...]}

with traceEvents sorted by ts. tests/test_obs.cpp checks the same
invariants in-process; this script is the CI artifact gate (and a handy
sanity check for traces captured by hand).

Usage: validate_trace.py TRACE.json [--min-events N]
Exit status 0 when valid, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from pathlib import Path


def fail(message: str) -> None:
    print(f"validate_trace: {message}", file=sys.stderr)
    sys.exit(1)


def validate_event(index: int, event: object) -> float:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        fail(f"{where} is not an object")
    for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
        if key not in event:
            fail(f"{where} is missing '{key}'")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"{where}.name must be a non-empty string")
    if event["cat"] != "idde":
        fail(f"{where}.cat must be 'idde', got {event['cat']!r}")
    if event["ph"] != "X":
        fail(f"{where}.ph must be 'X' (complete events only)")
    for key in ("ts", "dur"):
        value = event[key]
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            fail(f"{where}.{key} must be a number")
        if value < 0:
            fail(f"{where}.{key} must be >= 0, got {value}")
    if event["pid"] != 1:
        fail(f"{where}.pid must be 1")
    tid = event["tid"]
    if not isinstance(tid, int) or isinstance(tid, bool) or tid < 0:
        fail(f"{where}.tid must be a non-negative integer")
    if "args" in event:
        args = event["args"]
        if not isinstance(args, dict):
            fail(f"{where}.args must be an object")
        if "detail" in args and not isinstance(args["detail"], str):
            fail(f"{where}.args.detail must be a string")
    return float(event["ts"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace JSON path")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless at least this many events are present (default 1)",
    )
    options = parser.parse_args()

    try:
        doc = json.loads(options.trace.read_text())
    except OSError as error:
        fail(f"cannot read {options.trace}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{options.trace} is not valid JSON: {error}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit must be 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents must be an array")
    if len(events) < options.min_events:
        fail(f"expected >= {options.min_events} events, found {len(events)}")

    last_ts = -1.0
    for index, event in enumerate(events):
        ts = validate_event(index, event)
        if ts < last_ts:
            fail(f"traceEvents[{index}].ts out of order ({ts} < {last_ts})")
        last_ts = ts

    names = {event["name"] for event in events}
    print(
        f"validate_trace: {options.trace}: {len(events)} event(s), "
        f"{len(names)} phase(s) — ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
