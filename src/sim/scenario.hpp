// Scenario configuration = InstanceParams (and the optional fault profile)
// + JSON (de)serialisation, so examples and external tooling can describe
// experiments declaratively.
#pragma once

#include <string>

#include "coding/fragment.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance_builder.hpp"
#include "util/json.hpp"

namespace idde::sim {

/// Serialises every tunable of InstanceParams (defaults included).
[[nodiscard]] util::Json params_to_json(const model::InstanceParams& params);

/// Applies the fields present in `json` on top of defaults; unknown keys
/// are ignored, wrong-typed known keys keep their defaults.
[[nodiscard]] model::InstanceParams params_from_json(const util::Json& json);

/// Round-trips through a JSON string.
[[nodiscard]] std::string params_to_string(const model::InstanceParams& params,
                                           int indent = 2);
[[nodiscard]] model::InstanceParams params_from_string(const std::string& text);

/// Serialises a fault profile (same conventions as params_to_json).
[[nodiscard]] util::Json fault_profile_to_json(
    const fault::FaultProfile& profile);

/// Applies fields present in `json` on top of the (inert) defaults.
[[nodiscard]] fault::FaultProfile fault_profile_from_json(
    const util::Json& json);

/// Serialises an erasure-coding config (same conventions as
/// params_to_json).
[[nodiscard]] util::Json fragment_config_to_json(
    const coding::FragmentConfig& config);

/// Applies fields present in `json` on top of the replication default
/// (n = k = 1). Throws util::JsonError when the resulting config is
/// invalid (k < 1 or n < k) — a silently clamped code rate would change
/// every downstream number.
[[nodiscard]] coding::FragmentConfig fragment_config_from_json(
    const util::Json& json);

}  // namespace idde::sim
