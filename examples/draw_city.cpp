// Renders the synthetic EUA city and an IDDE-G allocation as ASCII maps —
// a quick visual check that the spatial substitution looks like a CBD.
#include <cstdio>

#include "core/idde_g.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "util/cli.hpp"
#include "viz/ascii_map.hpp"

int main(int argc, char** argv) {
  using namespace idde;

  std::size_t servers = 30;
  std::size_t users = 120;
  std::size_t seed = 3;
  std::size_t width = 96;
  std::size_t height = 36;
  util::CliParser cli("draw_city: ASCII map of an instance and allocation");
  cli.add_size("servers", &servers, "number of edge servers");
  cli.add_size("users", &users, "number of users");
  cli.add_size("seed", &seed, "instance seed");
  cli.add_size("width", &width, "map width in characters");
  cli.add_size("height", &height, "map height in characters");
  if (!cli.parse(argc, argv)) return 0;

  model::InstanceParams params = sim::paper_default_params();
  params.server_count = servers;
  params.user_count = users;
  const auto instance =
      model::make_instance(params, static_cast<std::uint64_t>(seed));

  viz::MapOptions options;
  options.width_chars = width;
  options.height_chars = height;
  std::puts("Layout (servers, users, coverage):");
  std::fputs(viz::render_map(instance, options).c_str(), stdout);

  util::Rng rng(static_cast<std::uint64_t>(seed));
  const core::Strategy strategy = core::IddeG().solve(instance, rng);
  options.allocation = &strategy.allocation;
  std::puts("\nIDDE-G allocation (user letter = serving server):");
  std::fputs(viz::render_map(instance, options).c_str(), stdout);
  return 0;
}
