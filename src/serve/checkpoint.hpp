// Versioned, checksummed checkpoint envelope + bit-exact scalar codecs.
//
// Restore must be *bit-identical*: after loading a checkpoint the
// controller's trajectory hash must evolve exactly as if the process had
// never stopped. JSON doubles cannot guarantee that (writers round, and
// u64 counters above 2^53 do not survive a double round-trip), so every
// checkpointed double and u64 is encoded as the 16-hex-digit bit pattern
// of its 64-bit representation. The envelope carries a format tag and an
// FNV-1a checksum over the canonical compact dump of the payload; a
// truncated, bit-flipped or re-keyed document fails structurally
// (util::JsonError) instead of restoring a silently wrong world.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace idde::serve {

inline constexpr std::string_view kCheckpointFormat =
    "idde-serve-checkpoint-v1";

/// 64-bit FNV-1a over bytes.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept;
/// Folds one 64-bit word into a running FNV-1a hash (trajectory hashes).
[[nodiscard]] std::uint64_t fnv1a_fold(std::uint64_t hash,
                                       std::uint64_t word) noexcept;
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// 16-hex-digit little-endian-free encoding of a 64-bit word.
[[nodiscard]] std::string u64_to_hex(std::uint64_t value);
/// Inverse of u64_to_hex; throws util::JsonError naming `what` on any
/// malformed input (wrong length, non-hex digit).
[[nodiscard]] std::uint64_t hex_to_u64(std::string_view hex,
                                       std::string_view what);

/// Bit-pattern JSON encoding of a double (hex string, exact round-trip).
[[nodiscard]] util::Json double_to_bits(double value);
[[nodiscard]] double bits_to_double(const util::Json& value,
                                    std::string_view what);

/// Stamps `payload` (an object) with the format tag and its checksum and
/// serialises it. The checksum covers the canonical compact dump of the
/// payload without the checksum field itself.
[[nodiscard]] std::string seal_checkpoint(util::Json payload,
                                          int indent = -1);

/// Parses, verifies the format tag and checksum, and returns the payload
/// (checksum field removed). Throws util::JsonError on malformed JSON, an
/// unknown format, or a checksum mismatch.
[[nodiscard]] util::Json open_checkpoint(std::string_view text);

}  // namespace idde::serve
