#include "model/instance_builder.hpp"

#include <algorithm>

#include "geo/spatial_grid.hpp"
#include "radio/shadowing.hpp"
#include "radio/units.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace idde::model {

InstanceBuilder::InstanceBuilder(InstanceParams params)
    : params_(std::move(params)) {
  // Generator parameters arrive from CLI flags and scenario files, so bad
  // values throw (structured CLI error contract) instead of aborting.
  util::validate(params_.server_count > 0, "params: server_count must be > 0");
  util::validate(params_.data_count > 0, "params: data_count must be > 0");
  util::validate(!params_.data_size_choices_mb.empty(),
                 "params: data_size_choices_mb must be non-empty");
  util::validate(params_.server_count <= params_.eua.server_count,
                 "params: server_count exceeds the EUA scenario pool");
  util::validate(params_.user_count <= params_.eua.user_count,
                 "params: user_count exceeds the EUA scenario pool");
}

ProblemInstance InstanceBuilder::build(std::uint64_t seed) const {
  util::Rng rng(seed);

  // Spatial layout: regenerate the master EUA-like scenario (fixed layout
  // stream so the "city" is the same across repetitions) and sub-sample
  // N servers / M users with the per-repetition stream.
  util::Rng layout_rng(0xe0a0123456789ULL);
  const geo::EuaScenario full =
      geo::generate_eua_scenario(params_.eua, layout_rng);
  util::Rng sample_rng = rng.fork(1);
  const geo::EuaScenario layout = geo::subsample_covered(
      full, params_.server_count, params_.user_count, sample_rng);

  // Servers.
  util::Rng storage_rng = rng.fork(2);
  std::vector<EdgeServer> servers;
  servers.reserve(params_.server_count);
  for (std::size_t i = 0; i < params_.server_count; ++i) {
    servers.push_back(EdgeServer{
        .position = layout.server_positions[i],
        .coverage_radius_m = layout.coverage_radii_m[i],
        .storage_mb =
            storage_rng.uniform(params_.min_storage_mb, params_.max_storage_mb),
    });
  }

  // Users.
  util::Rng user_rng = rng.fork(3);
  std::vector<User> users;
  users.reserve(params_.user_count);
  for (std::size_t j = 0; j < params_.user_count; ++j) {
    users.push_back(User{
        .position = layout.user_positions[j],
        .power_watts =
            user_rng.uniform(params_.min_power_watts, params_.max_power_watts),
        .max_rate_mbps = user_rng.uniform(params_.min_max_rate_mbps,
                                          params_.max_max_rate_mbps),
    });
  }

  // Data catalogue.
  util::Rng data_rng = rng.fork(4);
  std::vector<DataItem> data;
  data.reserve(params_.data_count);
  for (std::size_t k = 0; k < params_.data_count; ++k) {
    data.push_back(
        DataItem{.size_mb = data_rng.pick(params_.data_size_choices_mb)});
  }

  // Requests: Zipf-popular first item plus a geometric tail.
  util::Rng request_rng = rng.fork(5);
  RequestMatrix requests(params_.user_count, params_.data_count);
  for (std::size_t j = 0; j < params_.user_count; ++j) {
    std::size_t wanted = 1;
    while (wanted < params_.max_requests_per_user &&
           request_rng.bernoulli(params_.extra_request_prob)) {
      ++wanted;
    }
    // add_request is idempotent; redraw until `wanted` distinct items or
    // a bounded number of attempts (protects tiny catalogues).
    std::size_t added = 0;
    for (std::size_t attempt = 0; attempt < 16 && added < wanted; ++attempt) {
      const std::size_t item =
          request_rng.zipf(params_.data_count, params_.zipf_exponent);
      if (!requests.requests(j, item)) {
        requests.add_request(j, item);
        ++added;
      }
    }
    IDDE_ENSURES(added >= 1 || params_.data_count == 0);
  }

  // Edge network.
  util::Rng net_rng = rng.fork(6);
  const net::TopologyParams topology{
      .density = params_.density,
      .min_speed_mbps = params_.min_link_speed_mbps,
      .max_speed_mbps = params_.max_link_speed_mbps,
  };
  net::Graph graph =
      net::generate_topology_graph(params_.server_count, topology, net_rng);
  net::DeliveryLatencyModel latency(net::CostMatrix(graph),
                                    params_.cloud_speed_mbps);

  // Radio environment.
  const radio::ShadowedPathLoss pathloss(
      radio::PathLossModel(params_.pathloss_eta, params_.pathloss_exponent),
      params_.shadowing_stddev_db);
  util::Rng shadow_rng = rng.fork(7);
  radio::RadioEnvironment env;
  env.server_count = params_.server_count;
  env.user_count = params_.user_count;
  env.channels_per_server = params_.channels_per_server;
  env.noise_watts = radio::dbm_to_watts(params_.noise_dbm);
  env.gain.resize(params_.server_count * params_.user_count);
  env.power.resize(params_.user_count);
  env.bandwidth.assign(params_.server_count * params_.channels_per_server,
                       params_.channel_bandwidth_mbps);
  for (std::size_t j = 0; j < params_.user_count; ++j) {
    env.power[j] = users[j].power_watts;
  }
  for (std::size_t i = 0; i < params_.server_count; ++i) {
    for (std::size_t j = 0; j < params_.user_count; ++j) {
      env.gain[i * params_.user_count + j] = pathloss.sample_gain(
          geo::distance_m(servers[i].position, users[j].position), shadow_rng);
    }
  }

  // Coverage sets via the spatial grid (radius query per user, using the
  // maximum radius then filtering by each server's own radius).
  const double max_radius = *std::max_element(layout.coverage_radii_m.begin(),
                                              layout.coverage_radii_m.end());
  std::vector<geo::Point> server_positions(params_.server_count);
  for (std::size_t i = 0; i < params_.server_count; ++i) {
    server_positions[i] = servers[i].position;
  }
  const geo::SpatialGrid grid(server_positions, layout.bounds,
                              std::max(50.0, max_radius / 2.0));
  env.covering_servers.resize(params_.user_count);
  for (std::size_t j = 0; j < params_.user_count; ++j) {
    for (const std::size_t i :
         grid.query_radius(users[j].position, max_radius)) {
      if (geo::distance_m(servers[i].position, users[j].position) <=
          servers[i].coverage_radius_m) {
        env.covering_servers[j].push_back(i);
      }
    }
  }

  return ProblemInstance(std::move(servers), std::move(users), std::move(data),
                         std::move(requests), std::move(graph),
                         std::move(latency), std::move(env));
}

ProblemInstance make_instance(const InstanceParams& params,
                              std::uint64_t seed) {
  return InstanceBuilder(params).build(seed);
}

}  // namespace idde::model
