# Empty dependencies file for idde_viz.
# This may be replaced when dependencies are built.
