# Empty dependencies file for idde_sim.
# This may be replaced when dependencies are built.
