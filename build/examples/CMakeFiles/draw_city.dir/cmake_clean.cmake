file(REMOVE_RECURSE
  "CMakeFiles/draw_city.dir/draw_city.cpp.o"
  "CMakeFiles/draw_city.dir/draw_city.cpp.o.d"
  "draw_city"
  "draw_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draw_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
