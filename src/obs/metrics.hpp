// Metric primitives and the process-wide registry.
//
// Design (DESIGN.md §11): the write path is lock-free. A Counter is a row
// of cache-line-padded atomic cells; each thread picks a cell once
// (round-robin at first touch) and increments it with relaxed ordering, so
// concurrent writers never share a line until thread count exceeds the
// stripe count. A Histogram is HDR-style: log2 major buckets split into 16
// linear sub-buckets (≤ ~3% relative error at the midpoint), each bucket a
// relaxed atomic count, plus exact count/sum/min/max maintained by CAS.
// Scrape aggregates cells and buckets with plain relaxed loads — a scrape
// concurrent with writers sees some consistent-enough snapshot, never a
// torn value and never a data race.
//
// The registry itself (name -> metric) is the only shared mutable
// structure and sits behind an annotated util::Mutex. Metric objects are
// node-allocated, so references returned by counter()/gauge()/histogram()
// stay valid for the registry's lifetime — the instrumentation macros cache
// them in function-local statics and never touch the map again.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "obs/config.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"

namespace idde::obs {

namespace detail {
/// Stripe slot of the calling thread: assigned round-robin on first use,
/// constant for the thread's lifetime.
[[nodiscard]] std::size_t thread_stripe() noexcept;
}  // namespace detail

/// Monotonic event count. Lock-free; safe from any thread.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::thread_stripe() % kStripes].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all cells (relaxed; exact once writers are quiescent).
  [[nodiscard]] std::uint64_t value() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Quantile summary of a Histogram at scrape time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  [[nodiscard]] util::Json to_json() const;
};

/// Log-bucketed histogram for non-negative values (durations in ms,
/// set sizes, utilisation ratios). Values below ~5e-4 collapse into one
/// underflow bucket, values above ~1e12 into one overflow bucket; in
/// between the relative quantization error is bounded by the sub-bucket
/// width (1/16 of an octave).
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -10;  ///< smallest resolved octave, 2^-11
  static constexpr int kMaxExp = 40;   ///< largest resolved octave, 2^40
  static constexpr std::size_t kBucketCount =
      2 + static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets;

  /// Records one sample. NaN is dropped; negatives count as underflow.
  void record(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Nearest-rank quantile (p in [0, 100]) over the current buckets:
  /// the midpoint of the bucket holding the ceil(p/100 * count)-th sample,
  /// clamped to the exact observed [min, max]. p = 0 / 100 return the
  /// exact min / max.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  /// Bucket [lower, upper) covering `value` — the quantization error bound
  /// the property tests check histogram quantiles against.
  [[nodiscard]] static std::pair<double, double> bucket_range(
      double value) noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  [[nodiscard]] static double bucket_midpoint(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named metrics, one instance per process (global()), separate instances
/// for isolation in tests. Lookup is mutex-guarded; the returned references
/// are stable until the registry is destroyed (reset() zeroes values but
/// never invalidates them).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name)
      IDDE_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name) IDDE_EXCLUDES(mutex_);
  [[nodiscard]] Histogram& histogram(std::string_view name)
      IDDE_EXCLUDES(mutex_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: snapshot}}.
  /// Key order is deterministic (std::map) for golden-file friendliness.
  [[nodiscard]] util::Json scrape() IDDE_EXCLUDES(mutex_);

  /// Zeroes every registered metric; references handed out stay valid.
  void reset() IDDE_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      IDDE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      IDDE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      IDDE_GUARDED_BY(mutex_);
};

}  // namespace idde::obs
