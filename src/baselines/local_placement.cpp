#include "baselines/local_placement.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace idde::baselines {

core::DeliveryProfile local_demand_placement(
    const model::ProblemInstance& instance,
    std::span<const std::vector<std::size_t>> demand_users,
    const LocalPlacementOptions& options, util::Rng& rng) {
  IDDE_EXPECTS(demand_users.size() == instance.server_count());
  IDDE_EXPECTS(options.sample_fraction > 0.0 &&
               options.sample_fraction <= 1.0);

  core::DeliveryProfile delivery(instance);
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    // Observed demand per item at this server (possibly sub-sampled).
    std::vector<double> demand(instance.data_count(), 0.0);
    for (const std::size_t j : demand_users[i]) {
      if (options.sample_fraction < 1.0 &&
          !rng.bernoulli(options.sample_fraction)) {
        continue;
      }
      for (const std::size_t k : instance.requests().items_of(j)) {
        demand[k] += 1.0;
      }
    }
    // Score = demand * cloud saving (optionally per MB); fill greedily.
    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t k = 0; k < instance.data_count(); ++k) {
      if (demand[k] <= 0.0) continue;
      const double size = instance.data(k).size_mb;
      double score =
          demand[k] * instance.latency().cloud_transfer_seconds(size);
      if (options.per_mb) score /= size;
      scored.emplace_back(score, k);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (const auto& [score, k] : scored) {
      if (delivery.can_place(i, k)) delivery.place(i, k);
    }
  }
  return delivery;
}

}  // namespace idde::baselines
