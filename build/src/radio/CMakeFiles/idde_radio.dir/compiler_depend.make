# Empty compiler generated dependencies file for idde_radio.
# This may be replaced when dependencies are built.
