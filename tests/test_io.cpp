// Serialisation round-trips: instances and strategies survive JSON exactly
// (metrics identical), malformed input is rejected.
#include <gtest/gtest.h>

#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "core/strategy_io.hpp"
#include "core/validation.hpp"
#include "model/instance_builder.hpp"
#include "model/instance_io.hpp"
#include "model/validation.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 8;
  p.user_count = 30;
  p.data_count = 3;
  return p;
}

TEST(InstanceIo, RoundTripPreservesShapes) {
  const auto original = model::make_instance(small_params(), 1);
  const auto copy =
      model::instance_from_string(model::instance_to_string(original));
  EXPECT_EQ(copy.server_count(), original.server_count());
  EXPECT_EQ(copy.user_count(), original.user_count());
  EXPECT_EQ(copy.data_count(), original.data_count());
  EXPECT_EQ(copy.requests().total_requests(),
            original.requests().total_requests());
  EXPECT_EQ(copy.graph().edge_count(), original.graph().edge_count());
  EXPECT_DOUBLE_EQ(copy.total_storage_mb(), original.total_storage_mb());
}

TEST(InstanceIo, RoundTripPreservesRadioAndCoverage) {
  const auto original = model::make_instance(small_params(), 2);
  const auto copy =
      model::instance_from_string(model::instance_to_string(original));
  EXPECT_EQ(copy.radio_env().gain, original.radio_env().gain);
  EXPECT_EQ(copy.radio_env().bandwidth, original.radio_env().bandwidth);
  EXPECT_DOUBLE_EQ(copy.radio_env().noise_watts,
                   original.radio_env().noise_watts);
  for (std::size_t j = 0; j < original.user_count(); ++j) {
    EXPECT_EQ(copy.covering_servers(j), original.covering_servers(j));
  }
  EXPECT_TRUE(model::validate_instance(copy).empty());
}

TEST(InstanceIo, RoundTripPreservesLatencyModel) {
  const auto original = model::make_instance(small_params(), 3);
  const auto copy =
      model::instance_from_string(model::instance_to_string(original));
  for (std::size_t a = 0; a < original.server_count(); ++a) {
    for (std::size_t b = 0; b < original.server_count(); ++b) {
      EXPECT_NEAR(copy.latency().edge_transfer_seconds(a, b, 60.0),
                  original.latency().edge_transfer_seconds(a, b, 60.0),
                  1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(copy.latency().cloud_speed_mbps(),
                   original.latency().cloud_speed_mbps());
}

TEST(InstanceIo, SolverMetricsIdenticalAfterRoundTrip) {
  const auto original = model::make_instance(small_params(), 4);
  const auto copy =
      model::instance_from_string(model::instance_to_string(original));
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const auto sa = core::IddeG().solve(original, rng_a);
  const auto sb = core::IddeG().solve(copy, rng_b);
  const auto ma = core::evaluate(original, sa);
  const auto mb = core::evaluate(copy, sb);
  EXPECT_DOUBLE_EQ(ma.avg_rate_mbps, mb.avg_rate_mbps);
  EXPECT_DOUBLE_EQ(ma.avg_latency_ms, mb.avg_latency_ms);
}

TEST(InstanceIo, RejectsWrongFormatTag) {
  EXPECT_THROW(
      (void)model::instance_from_string(R"({"format":"something-else"})"),
      util::JsonError);
}

TEST(InstanceIo, MalformedJsonThrows) {
  EXPECT_THROW((void)model::instance_from_string("{not json"),
               util::JsonError);
}

TEST(StrategyIo, RoundTripPreservesEverything) {
  const auto inst = model::make_instance(small_params(), 5);
  util::Rng rng(5);
  const auto original = core::IddeG().solve(inst, rng);
  const auto copy =
      core::strategy_from_string(inst, core::strategy_to_string(original));
  EXPECT_EQ(copy.allocation, original.allocation);
  EXPECT_EQ(copy.approach_name, original.approach_name);
  EXPECT_EQ(copy.collaborative_delivery, original.collaborative_delivery);
  EXPECT_EQ(copy.placements, original.placements);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    ASSERT_EQ(copy.delivery.hosts(k).size(),
              original.delivery.hosts(k).size());
    for (std::size_t h = 0; h < copy.delivery.hosts(k).size(); ++h) {
      EXPECT_EQ(copy.delivery.hosts(k)[h], original.delivery.hosts(k)[h]);
    }
  }
  const auto ma = core::evaluate(inst, original);
  const auto mb = core::evaluate(inst, copy);
  EXPECT_DOUBLE_EQ(ma.avg_rate_mbps, mb.avg_rate_mbps);
  EXPECT_DOUBLE_EQ(ma.avg_latency_ms, mb.avg_latency_ms);
}

TEST(StrategyIo, NonCollaborativeFlagSurvives) {
  const auto inst = model::make_instance(small_params(), 6);
  util::Rng rng(6);
  core::Strategy s = core::IddeG().solve(inst, rng);
  s.collaborative_delivery = false;
  const auto copy =
      core::strategy_from_string(inst, core::strategy_to_string(s));
  EXPECT_FALSE(copy.collaborative_delivery);
}

TEST(StrategyIo, UnallocatedUsersSerialiseAsNull) {
  const auto inst = model::make_instance(small_params(), 7);
  core::Strategy s{core::AllocationProfile(inst.user_count(),
                                           core::kUnallocated),
                   core::DeliveryProfile(inst)};
  const std::string text = core::strategy_to_string(s);
  const auto copy = core::strategy_from_string(inst, text);
  for (const auto& slot : copy.allocation) {
    EXPECT_FALSE(slot.allocated());
  }
}

TEST(StrategyIo, OverCapacityPlacementThrows) {
  const auto inst = model::make_instance(small_params(), 8);
  // Hand-craft a strategy that stores item 0 on server 0 twice.
  const std::string bogus = R"({
    "format": "idde-strategy-v1",
    "approach": "hand",
    "collaborative_delivery": true,
    "allocation": [)" +
      [&] {
        std::string nulls;
        for (std::size_t j = 0; j < inst.user_count(); ++j) {
          if (j != 0) nulls += ",";
          nulls += "null";
        }
        return nulls;
      }() +
      R"(],
    "placements": [{"server":0,"item":0},{"server":0,"item":0}]
  })";
  EXPECT_THROW((void)core::strategy_from_string(inst, bogus),
               util::JsonError);
}

}  // namespace
