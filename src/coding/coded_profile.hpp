// CodedDeliveryProfile: the erasure-coded generalization of the paper's
// delivery profile sigma (Definition 2). Instead of whole-item 0/1
// replication, each (server, item) flag means "server i holds one of the
// n distinct fragments of d_k"; the Eq. 6 storage constraint charges the
// fragment's exact KB and the host count per item is capped at n. At
// k = 1 the fragment is the whole item and the profile replays
// core::DeliveryProfile bit-identically (same feasibility decisions, same
// integer-KB ledger).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "coding/fragment.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::coding {

class CodedDeliveryProfile {
 public:
  CodedDeliveryProfile(const model::ProblemInstance& instance,
                       FragmentConfig config);

  [[nodiscard]] const FragmentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const model::ProblemInstance& instance() const noexcept {
    return *instance_;
  }

  /// True iff server i holds a fragment of d_k.
  [[nodiscard]] bool placed(std::size_t server, std::size_t item) const {
    return flags_[server * data_count_ + item];
  }

  /// Whether placing a fragment of d_k on v_i respects the fragment-size
  /// Eq. 6 headroom, is not a duplicate, and keeps the item within its n
  /// distinct fragments.
  [[nodiscard]] bool can_place(std::size_t server, std::size_t item) const;

  /// Places one fragment. Aborts if infeasible — callers must check.
  void place(std::size_t server, std::size_t item);

  /// Removes a fragment, returning its KB to the server's headroom.
  /// Aborts if the placement does not exist — callers must check.
  void remove(std::size_t server, std::size_t item);

  /// Remaining headroom on v_i (MB / exact KB) — a pure function of the
  /// current placement set, as in core::DeliveryProfile.
  [[nodiscard]] double free_mb(std::size_t server) const {
    return static_cast<double>(free_kb_[server]) / 1024.0;
  }
  [[nodiscard]] std::int64_t free_kb(std::size_t server) const {
    return free_kb_[server];
  }

  /// Servers holding a fragment of d_k (ascending ids).
  [[nodiscard]] std::span<const std::size_t> hosts(std::size_t item) const {
    return {hosts_flat_.data() + item * free_kb_.size(), host_count_[item]};
  }
  [[nodiscard]] std::size_t fragment_count(std::size_t item) const {
    return host_count_[item];
  }

  /// Per-item fragment sizes (quantized at construction).
  [[nodiscard]] std::int64_t item_fragment_kb(std::size_t item) const {
    return frag_kb_[item];
  }
  [[nodiscard]] double item_fragment_mb(std::size_t item) const {
    return frag_mb_[item];
  }

  [[nodiscard]] std::size_t placement_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return free_kb_.size();
  }
  [[nodiscard]] std::size_t data_count() const noexcept { return data_count_; }

  /// Rebuilds a profile from a placement list; headroom is recomputed
  /// (the integer-KB ledger is replay-order-independent). Placements must
  /// be feasible and duplicate-free (checked via place()).
  [[nodiscard]] static CodedDeliveryProfile restore(
      const model::ProblemInstance& instance, FragmentConfig config,
      std::span<const std::pair<std::size_t, std::size_t>> placements);

 private:
  const model::ProblemInstance* instance_;
  FragmentConfig config_;
  std::size_t data_count_;
  std::vector<bool> flags_;            // N x K
  std::vector<std::int64_t> free_kb_;  // per server, exact KB ledger
  std::vector<std::int64_t> frag_kb_;  // per item
  std::vector<double> frag_mb_;        // per item
  /// Host lists as a flat K x N arena (same shift-insert discipline as
  /// core::DeliveryProfile — no allocation per committed placement).
  std::vector<std::size_t> hosts_flat_;  // K x N
  std::vector<std::size_t> host_count_;  // per item
  std::size_t count_ = 0;
};

/// A complete coded IDDE strategy: the game's allocation plus the coded
/// delivery plane.
struct CodedStrategy {
  CodedStrategy(core::AllocationProfile alloc, CodedDeliveryProfile del)
      : allocation(std::move(alloc)), delivery(std::move(del)) {}

  core::AllocationProfile allocation;
  CodedDeliveryProfile delivery;
  /// Same semantics as core::Strategy — when false, only the user's own
  /// server may serve fragments (local-or-cloud delivery).
  bool collaborative_delivery = true;
  std::string approach_name;
  std::size_t placements = 0;
};

}  // namespace idde::coding
