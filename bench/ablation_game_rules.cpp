// Ablation (google-benchmark): the three winner rules of the IDDE-U game
// (DESIGN.md §6). kBestImprovement is Algorithm 1's one-winner-per-round
// rule; kAsyncSweep converges in far fewer rounds at the same equilibrium
// quality (see ablation counters: rounds, moves, R_avg).
#include <benchmark/benchmark.h>

#include "core/game.hpp"
#include "core/metrics.hpp"
#include "model/instance_builder.hpp"

namespace {

using namespace idde;

void run_rule(benchmark::State& state, core::UpdateRule rule) {
  model::InstanceParams p;
  p.server_count = static_cast<std::size_t>(state.range(0));
  p.user_count = static_cast<std::size_t>(state.range(1));
  p.data_count = 5;
  const auto inst = model::make_instance(p, 99);
  core::GameOptions options;
  options.rule = rule;
  options.max_rounds = p.user_count * 200;
  core::GameResult last;
  for (auto _ : state) {
    core::IddeUGame game(inst, options);
    last = game.run();
    benchmark::DoNotOptimize(last.moves);
  }
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["moves"] = static_cast<double>(last.moves);
  state.counters["benefit_evals"] =
      static_cast<double>(last.benefit_evaluations);
  state.counters["R_avg"] = core::average_data_rate_mbps(inst, last.allocation);
}

void BM_RuleBestImprovement(benchmark::State& state) {
  run_rule(state, core::UpdateRule::kBestImprovement);
}
void BM_RuleFirstImprovement(benchmark::State& state) {
  run_rule(state, core::UpdateRule::kFirstImprovement);
}
void BM_RuleAsyncSweep(benchmark::State& state) {
  run_rule(state, core::UpdateRule::kAsyncSweep);
}

void RuleArgs(benchmark::internal::Benchmark* bench) {
  bench->Args({30, 100})->Args({30, 200})->Args({50, 200});
}

BENCHMARK(BM_RuleBestImprovement)->Apply(RuleArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuleFirstImprovement)->Apply(RuleArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuleAsyncSweep)->Apply(RuleArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
