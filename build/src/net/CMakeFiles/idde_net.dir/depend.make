# Empty dependencies file for idde_net.
# This may be replaced when dependencies are built.
