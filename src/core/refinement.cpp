#include "core/refinement.hpp"

#include <limits>

#include "core/delivery.hpp"
#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "util/assert.hpp"

namespace idde::core {

namespace {

/// Latency user j would experience for all of its requests if served by
/// `server` under `delivery` (cloud-capped, Eq. 8).
double user_latency_seconds(const model::ProblemInstance& instance,
                            const DeliveryProfile& delivery, std::size_t user,
                            std::size_t server) {
  double total = 0.0;
  for (const std::size_t k : instance.requests().items_of(user)) {
    const double size = instance.data(k).size_mb;
    double best = instance.latency().cloud_transfer_seconds(size);
    for (const std::size_t host : delivery.hosts(k)) {
      best = std::min(best,
                      instance.latency().edge_transfer_seconds(host, server,
                                                               size));
    }
    total += best;
  }
  return total;
}

}  // namespace

Strategy IddeGPlus::solve(const model::ProblemInstance& instance,
                          util::Rng& rng) const {
  IDDE_EXPECTS(options_.epsilon_fraction >= 0.0);

  // Base run: plain IDDE-G.
  IddeGOptions base_options;
  base_options.game = options_.game;
  Strategy strategy = IddeG(base_options).solve(instance, rng);
  strategy.approach_name = name();

  const std::size_t channels = instance.radio_env().channels_per_server;
  GreedyDeliveryPlanner planner(instance);

  // One field for every round: clear() zeroes the accumulators exactly (no
  // subtraction residue), so clearing and re-adding is bit-identical to
  // constructing a fresh field — without reallocating the O(N*X*M)
  // received-power matrix each round.
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t round = 0; round < options_.refinement_rounds; ++round) {
    // Re-point nearly-indifferent users toward their data.
    field.clear();
    for (std::size_t j = 0; j < strategy.allocation.size(); ++j) {
      if (strategy.allocation[j].allocated()) {
        field.add_user(j, strategy.allocation[j]);
      }
    }
    bool any_moved = false;
    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      if (!strategy.allocation[j].allocated()) continue;
      const double current_benefit = field.benefit(j, strategy.allocation[j]);
      const double benefit_floor =
          current_benefit * (1.0 - options_.epsilon_fraction);
      const double current_latency = user_latency_seconds(
          instance, strategy.delivery, j, strategy.allocation[j].server);

      ChannelSlot best_slot = strategy.allocation[j];
      double best_latency = current_latency;
      double best_benefit = current_benefit;
      for (const std::size_t i : instance.covering_servers(j)) {
        const double latency =
            user_latency_seconds(instance, strategy.delivery, j, i);
        if (latency >= best_latency - 1e-12) continue;
        for (std::size_t x = 0; x < channels; ++x) {
          const ChannelSlot slot{i, x};
          const double benefit = field.benefit(j, slot);
          if (benefit >= benefit_floor) {
            best_slot = slot;
            best_latency = latency;
            best_benefit = benefit;
            break;  // any admissible channel on this (closer) server works
          }
        }
      }
      if (!(best_slot == strategy.allocation[j])) {
        field.move_user(j, best_slot);
        strategy.allocation[j] = best_slot;
        any_moved = true;
        (void)best_benefit;
      }
    }
    if (!any_moved) break;

    // Re-run Phase 2 on the adjusted allocation.
    GreedyDeliveryResult replan = planner.plan(strategy.allocation);
    strategy.delivery = std::move(replan.delivery);
    strategy.placements = replan.placements;
  }
  return strategy;
}

}  // namespace idde::core
