// Fixed-size worker pool used by the experiment harness to run independent
// repetitions concurrently. Tasks are type-erased; parallel_for blocks the
// caller and rethrows the first task exception.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idde::util {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; it may run on any worker at any later point.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool; blocks until complete.
/// The first exception thrown by any body is rethrown on the caller.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace idde::util
