#!/usr/bin/env python3
"""Kill-and-restore soak for the online serving controller.

Drives the `idde_tool serve` CLI end to end — the same binary an operator
would run — and enforces the crash-consistency and watchdog-hygiene
contracts of DESIGN.md section 15:

  1. Bit-identical resume. For each seed, an uninterrupted chaos run
     (churn + mobility + random server faults) and a split run — kill at
     a mid-run tick boundary, restore the snapshot in a fresh process —
     must report the same trajectory hash and the same lifetime counters.
  2. Zero watchdog leaks. The honest repair rule must finish with zero
     watchdog strikes and zero breaker trips (a strike under honest
     dynamics is a watchdog false positive), and the steady-state backlog
     must be fully drained at the end of the run.
  3. Measured flash recovery. A mass-failure run (--flash-tick) must
     report recovery_ticks > 0, and killing/restoring *inside* the
     degraded window must still resume bit-identically — the snapshot
     carries backlog, breaker, and degraded-sigma state, not just the
     happy path.

Run locally:  python3 tools/serve/ci_soak.py --tool build/tools/idde_tool
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Counters that must agree between the uninterrupted and the resumed run;
# all are checkpointed lifetime totals, so any drift means the restored
# controller diverged from the original trajectory.
COMPARED_FIELDS = (
    "ticks", "events_total", "repairs_total", "repair_rounds_total",
    "degraded_ticks", "shed_total", "watchdog_strikes", "breaker_trips",
    "trajectory_hash",
)


def run_serve(tool: str, workdir: Path, tag: str, *args: str) -> dict:
    out = workdir / f"{tag}.json"
    cmd = [tool, "serve", *args, "--out", str(out)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(cmd)} exited {proc.returncode}\n{proc.stderr}")
    return json.loads(out.read_text())


def check(ok: bool, what: str) -> None:
    print(f"  {'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        raise SystemExit(f"serve-soak gate failed: {what}")


def split_matches_full(tool: str, workdir: Path, label: str, seed: int,
                       ticks: int, cut: int, *extra: str) -> dict:
    base = ["--seed", str(seed), *extra]
    full = run_serve(tool, workdir, f"{label}-full-{seed}",
                     "--ticks", str(ticks), *base)
    snap = workdir / f"{label}-snap-{seed}.json"
    run_serve(tool, workdir, f"{label}-victim-{seed}",
              "--ticks", str(cut), "--checkpoint", str(snap), *base)
    resumed = run_serve(tool, workdir, f"{label}-resumed-{seed}",
                        "--ticks", str(ticks - cut), "--restore", str(snap),
                        *base)
    drift = [f for f in COMPARED_FIELDS if full[f] != resumed[f]]
    check(not drift,
          f"{label} seed {seed}: split run (cut at {cut}/{ticks}) "
          f"bit-identical to uninterrupted"
          + (f" — drift in {drift}" if drift else ""))
    return full


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tool", default="build/tools/idde_tool")
    parser.add_argument("--seeds", type=int, default=6,
                        help="chaos seeds to soak (default 6)")
    parser.add_argument("--ticks", type=int, default=48)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="serve-soak-") as tmp:
        workdir = Path(tmp)
        print(f"serve-soak: {args.seeds} chaos seeds x {args.ticks} ticks")
        for seed in range(1, args.seeds + 1):
            cut = 7 + (seed * 5) % (args.ticks - 14)
            full = split_matches_full(args.tool, workdir, "chaos", seed,
                                      args.ticks, cut)
            check(full["watchdog_strikes"] == 0 and
                  full["breaker_trips"] == 0,
                  f"chaos seed {seed}: zero watchdog strikes/trips "
                  f"(got {full['watchdog_strikes']}/{full['breaker_trips']})")
            check(full["backlog"] == 0,
                  f"chaos seed {seed}: backlog drained at end of run")

        # Mass failure at tick 10; the cut lands inside the repair window
        # so the snapshot carries degraded state.
        flash = split_matches_full(args.tool, workdir, "flash", 1, 40, 12,
                                   "--flash-tick", "10")
        check(flash["recovery_ticks"] > 0,
              f"flash: recovery measured ({flash['recovery_ticks']} tick(s))")

    print("serve-soak: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
