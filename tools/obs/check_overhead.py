#!/usr/bin/env python3
"""Gates the telemetry layer's disabled-path overhead using perf_game runs.

Input: two sets of BENCH_game.json files from the same machine —
`--baseline` from an IDDE_OBS=0 build (instrumentation compiled out
entirely) and `--candidate` from the default build with telemetry compiled
in but runtime-disabled. The gate enforces two contracts from DESIGN.md
§11:

  1. Observation purity: per engine config, benefit_evaluations / moves /
     rounds are bit-identical across every run of both builds — the
     instrumentation may not perturb the solver.
  2. Overhead: the candidate's median total solve_ms is within
     --tolerance (default 3%) of the baseline's median. Medians over
     interleaved runs absorb most CI wall-clock noise; pass several files
     per side.

Usage:
  check_overhead.py --baseline off1.json off2.json ... \
                    --candidate on1.json on2.json ... [--tolerance 0.03]
Exit status 0 on pass, 1 with a diagnostic on violation.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def load_runs(paths: list[Path]) -> list[dict]:
    runs = []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"check_overhead: cannot load {path}: {error}",
                  file=sys.stderr)
            sys.exit(1)
        if doc.get("bench") != "perf_game" or "configs" not in doc:
            print(f"check_overhead: {path} is not a perf_game report",
                  file=sys.stderr)
            sys.exit(1)
        runs.append(doc)
    return runs


def counts_by_config(run: dict) -> dict[str, tuple[int, int, int]]:
    return {
        config["name"]: (
            config["benefit_evaluations"],
            config["moves"],
            config["rounds"],
        )
        for config in run["configs"]
    }


def total_solve_ms(run: dict) -> float:
    return sum(config["solve_ms"] for config in run["configs"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", nargs="+", type=Path, required=True,
                        help="perf_game JSON files from the IDDE_OBS=0 build")
    parser.add_argument("--candidate", nargs="+", type=Path, required=True,
                        help="perf_game JSON files from the default build "
                             "(telemetry compiled in, runtime-disabled)")
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="allowed relative median slowdown (default 0.03)")
    options = parser.parse_args()

    baseline = load_runs(options.baseline)
    candidate = load_runs(options.candidate)

    # Contract 1: solver dynamics are bit-identical everywhere.
    reference = counts_by_config(baseline[0])
    for side, runs in (("baseline", baseline), ("candidate", candidate)):
        for run, path in zip(runs, options.baseline if side == "baseline"
                             else options.candidate):
            counts = counts_by_config(run)
            if counts != reference:
                print(
                    f"check_overhead: {side} run {path} diverged from the "
                    f"reference dynamics:\n  reference: {reference}\n  "
                    f"got:       {counts}",
                    file=sys.stderr,
                )
                return 1

    base_ms = statistics.median(total_solve_ms(run) for run in baseline)
    cand_ms = statistics.median(total_solve_ms(run) for run in candidate)
    if base_ms <= 0.0:
        print("check_overhead: baseline median is non-positive",
              file=sys.stderr)
        return 1
    overhead = cand_ms / base_ms - 1.0
    verdict = "ok" if overhead <= options.tolerance else "FAIL"
    print(
        f"check_overhead: baseline median {base_ms:.2f} ms over "
        f"{len(baseline)} run(s), candidate median {cand_ms:.2f} ms over "
        f"{len(candidate)} run(s): {overhead:+.2%} "
        f"(tolerance +{options.tolerance:.0%}) — {verdict}"
    )
    if overhead > options.tolerance:
        print(
            "check_overhead: the runtime-disabled telemetry path exceeded "
            "the overhead budget; every instrumentation hit must stay one "
            "relaxed load + branch (see src/obs/obs.hpp)",
            file=sys.stderr,
        )
        return 1
    print(f"check_overhead: dynamics bit-identical across "
          f"{len(baseline) + len(candidate)} run(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
