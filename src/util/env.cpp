#include "util/env.hpp"

#include <charconv>
#include <cstdlib>

namespace idde::util {

std::string env_or(std::string_view name, std::string fallback) {
  const char* value = std::getenv(std::string(name).c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

std::int64_t env_int_or(std::string_view name, std::int64_t fallback) {
  const std::string raw = env_or(name, "");
  if (raw.empty()) return fallback;
  std::int64_t out = fallback;
  const auto result = std::from_chars(raw.data(), raw.data() + raw.size(), out);
  if (result.ec != std::errc{}) return fallback;
  return out;
}

double env_double_or(std::string_view name, double fallback) {
  const std::string raw = env_or(name, "");
  if (raw.empty()) return fallback;
  double out = fallback;
  const auto result = std::from_chars(raw.data(), raw.data() + raw.size(), out);
  if (result.ec != std::errc{}) return fallback;
  return out;
}

int experiment_reps(int fallback) {
  return static_cast<int>(env_int_or("IDDE_REPS", fallback));
}

double ip_budget_ms(double fallback) {
  return env_double_or("IDDE_IP_BUDGET_MS", fallback);
}

std::size_t game_threads(std::size_t fallback) {
  const std::int64_t value =
      env_int_or("IDDE_GAME_THREADS", static_cast<std::int64_t>(fallback));
  return value < 0 ? fallback : static_cast<std::size_t>(value);
}

}  // namespace idde::util
