#include "util/random.hpp"

#include <cmath>
#include <numeric>

namespace idde::util {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Rejection sampling on the top bits; bias-free for any bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = gen_();
    if (r >= threshold) return r % bound;
  }
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double lambda) {
  IDDE_EXPECTS(lambda > 0.0);
  // uniform() < 1 guarantees log argument > 0.
  return -std::log(1.0 - uniform()) / lambda;
}

int Rng::poisson(double lambda) {
  IDDE_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double product = uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at large means.
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  IDDE_EXPECTS(n > 0);
  IDDE_EXPECTS(s >= 0.0);
  if (n == 1) return 0;
  if (s == 0.0) return index(n);
  // CDF inversion over explicitly normalised weights. n is small (data
  // catalogue sizes), so the O(n) scan is fine and exact.
  double norm = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    norm += 1.0 / std::pow(static_cast<double>(rank), s);
  }
  const double target = uniform() * norm;
  double cumulative = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    cumulative += 1.0 / std::pow(static_cast<double>(rank), s);
    if (cumulative >= target) return rank - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  IDDE_EXPECTS(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher–Yates: the first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace idde::util
