// Phase-2 tests: delivery profile bookkeeping, the incremental evaluator,
// submodularity, lazy vs naive greedy equivalence, and the approximation
// quality against the exhaustive oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "core/metrics.hpp"
#include "core/fairness.hpp"
#include "core/idde_g.hpp"
#include "core/refinement.hpp"
#include "core/validation.hpp"
#include "model/instance_builder.hpp"
#include "solver/exhaustive.hpp"

namespace {

using namespace idde;
using core::AllocationProfile;
using core::DeliveryEvaluator;
using core::DeliveryProfile;
using core::GreedyDeliveryPlanner;
using core::IddeUGame;
using model::InstanceParams;
using model::ProblemInstance;

InstanceParams tiny_params(std::size_t n = 6, std::size_t m = 18,
                           std::size_t k = 3) {
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

AllocationProfile equilibrium(const ProblemInstance& inst) {
  return IddeUGame(inst).run().allocation;
}

TEST(DeliveryProfile, PlacementBookkeeping) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 1);
  DeliveryProfile delivery(inst);
  EXPECT_EQ(delivery.placement_count(), 0u);
  EXPECT_FALSE(delivery.placed(0, 0));
  ASSERT_TRUE(delivery.can_place(0, 0));
  const double before = delivery.free_mb(0);
  delivery.place(0, 0);
  EXPECT_TRUE(delivery.placed(0, 0));
  EXPECT_FALSE(delivery.can_place(0, 0));  // duplicate rejected
  EXPECT_DOUBLE_EQ(delivery.free_mb(0), before - inst.data(0).size_mb);
  EXPECT_EQ(delivery.placement_count(), 1u);
  ASSERT_EQ(delivery.hosts(0).size(), 1u);
  EXPECT_EQ(delivery.hosts(0)[0], 0u);
}

TEST(DeliveryProfile, HostsStaySorted) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 2);
  DeliveryProfile delivery(inst);
  for (const std::size_t i : {3u, 0u, 2u}) {
    if (delivery.can_place(i, 1)) delivery.place(i, 1);
  }
  const auto hosts = delivery.hosts(1);
  EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
}

TEST(DeliveryProfile, StorageConstraintEnforced) {
  InstanceParams p = tiny_params();
  p.min_storage_mb = 40.0;
  p.max_storage_mb = 70.0;   // at most two 30 MB items, one 60 MB item
  p.data_size_choices_mb = {60.0};
  const ProblemInstance inst = model::make_instance(p, 3);
  DeliveryProfile delivery(inst);
  ASSERT_TRUE(delivery.can_place(0, 0));
  delivery.place(0, 0);
  // A second 60 MB item cannot fit (storage <= 70 MB).
  for (std::size_t k = 1; k < inst.data_count(); ++k) {
    EXPECT_FALSE(delivery.can_place(0, k));
  }
}

TEST(DeliveryEvaluator, EmptySigmaIsAllCloud) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 4);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator evaluator(inst, alloc);
  double expected = 0.0;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    for (const std::size_t k : inst.requests().items_of(j)) {
      expected += inst.latency().cloud_transfer_seconds(inst.data(k).size_mb);
    }
  }
  EXPECT_NEAR(evaluator.total_latency_seconds(), expected, 1e-9);
  EXPECT_EQ(evaluator.request_count(), inst.requests().total_requests());
}

TEST(DeliveryEvaluator, EmptySigmaPinsEveryRequestToCloudLatency) {
  // Pins the Eq. 8 fallback documented at delivery.hpp's constructor: with
  // an empty sigma EVERY request individually sits at exactly the cloud
  // latency — not just the total (which could mask compensating errors).
  const ProblemInstance inst = model::make_instance(tiny_params(), 4);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator evaluator(inst, alloc);
  std::size_t id = 0;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    for (const std::size_t k : inst.requests().items_of(j)) {
      const double size = inst.data(k).size_mb;
      const double cloud = inst.latency().cloud_transfer_seconds(size);
      EXPECT_DOUBLE_EQ(evaluator.request_latency_seconds(id), cloud)
          << "request " << id;
      if (alloc[j].allocated()) {
        // Eq. 8's min over an empty replica set is the cloud term itself.
        EXPECT_DOUBLE_EQ(
            inst.latency().best_delivery_seconds({}, alloc[j].server, size),
            cloud);
      }
      ++id;
    }
  }
  EXPECT_EQ(id, evaluator.request_count());
}

TEST(DeliveryEvaluator, CommitRealisesPredictedGain) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 5);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator evaluator(inst, alloc);
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      const double predicted = evaluator.gain_seconds(i, k);
      const double before = evaluator.total_latency_seconds();
      const double realised = evaluator.commit(i, k);
      EXPECT_NEAR(predicted, realised, 1e-9);
      EXPECT_NEAR(evaluator.total_latency_seconds(), before - realised, 1e-9);
    }
  }
}

TEST(DeliveryEvaluator, GainsAreSubmodular) {
  // Monotone non-increasing marginal gains: committing any placement never
  // increases the gain of another candidate.
  const ProblemInstance inst = model::make_instance(tiny_params(), 6);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator evaluator(inst, alloc);
  std::vector<double> before;
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      before.push_back(evaluator.gain_seconds(i, k));
    }
  }
  evaluator.commit(0, 0);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      EXPECT_LE(evaluator.gain_seconds(i, k), before[idx] + 1e-9);
      ++idx;
    }
  }
}

TEST(DeliveryEvaluator, NonCollaborativeOnlyLocalReplicasHelp) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 7);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator evaluator(inst, alloc, /*collaborative=*/false);
  // Find a (server, item) pair with no allocated requester on that server:
  // its gain must be exactly zero under local-or-cloud semantics.
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      bool has_local_requester = false;
      for (const std::size_t j : inst.requests().users_of(k)) {
        if (alloc[j].allocated() && alloc[j].server == i) {
          has_local_requester = true;
          break;
        }
      }
      if (!has_local_requester) {
        EXPECT_EQ(evaluator.gain_seconds(i, k), 0.0);
      } else {
        EXPECT_GT(evaluator.gain_seconds(i, k), 0.0);
      }
    }
  }
}

TEST(DeliveryEvaluator, CollaborativeGainsDominateLocalOnly) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 8);
  const AllocationProfile alloc = equilibrium(inst);
  DeliveryEvaluator collab(inst, alloc, true);
  DeliveryEvaluator local(inst, alloc, false);
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      EXPECT_GE(collab.gain_seconds(i, k), local.gain_seconds(i, k) - 1e-9);
    }
  }
}

TEST(GreedyDelivery, LazyAndNaiveProduceSameLatency) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const ProblemInstance inst = model::make_instance(tiny_params(8, 30, 4),
                                                      seed);
    const AllocationProfile alloc = equilibrium(inst);
    GreedyDeliveryPlanner planner(inst);
    const auto lazy = planner.plan(alloc);
    const auto naive = planner.plan_naive(alloc);
    const double lazy_latency =
        core::total_latency_seconds(inst, alloc, lazy.delivery);
    const double naive_latency =
        core::total_latency_seconds(inst, alloc, naive.delivery);
    // Both are valid greedy executions; ties in the ratio can be broken
    // differently, so compare achieved latency, not placements.
    EXPECT_NEAR(lazy_latency, naive_latency, 1e-6) << "seed " << seed;
  }
}

TEST(GreedyDelivery, LazyEvaluatesFarFewerCandidates) {
  const ProblemInstance inst = model::make_instance(tiny_params(12, 60, 6), 16);
  const AllocationProfile alloc = equilibrium(inst);
  GreedyDeliveryPlanner planner(inst);
  const auto lazy = planner.plan(alloc);
  const auto naive = planner.plan_naive(alloc);
  EXPECT_LT(lazy.gain_evaluations, naive.gain_evaluations / 2);
}

// The planner owns reusable scratch (candidate heap, evaluator) that is
// rewound per call — reusing one planner across allocations must give the
// exact plan a fresh planner gives, in the exact order (the heap pops the
// same sequence whether the backing vector is new or recycled).
TEST(GreedyDelivery, ReusedPlannerMatchesFreshPlanner) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const ProblemInstance inst = model::make_instance(tiny_params(8, 30, 4),
                                                      seed);
    const AllocationProfile alloc = equilibrium(inst);
    GreedyDeliveryPlanner planner(inst);
    const auto first = planner.plan(alloc);
    const auto again = planner.plan(alloc);  // warm scratch, same input
    const auto fresh = GreedyDeliveryPlanner(inst).plan(alloc);
    for (const auto* other : {&again, &fresh}) {
      EXPECT_EQ(first.gain_evaluations, other->gain_evaluations)
          << "seed " << seed;
      EXPECT_EQ(first.delivery.placement_count(),
                other->delivery.placement_count())
          << "seed " << seed;
      for (std::size_t k = 0; k < inst.data_count(); ++k) {
        for (std::size_t i = 0; i < inst.server_count(); ++i) {
          EXPECT_EQ(first.delivery.placed(i, k), other->delivery.placed(i, k))
              << "seed " << seed << " server " << i << " item " << k;
        }
      }
    }
  }
}

TEST(GreedyDelivery, RespectsStorage) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 17);
  const AllocationProfile alloc = equilibrium(inst);
  const auto result = GreedyDeliveryPlanner(inst).plan(alloc);
  std::vector<double> used(inst.server_count(), 0.0);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : result.delivery.hosts(k)) {
      used[i] += inst.data(k).size_mb;
    }
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_LE(used[i], inst.server(i).storage_mb + 1e-9);
  }
}

TEST(GreedyDelivery, NeverWorseThanCloudOnly) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 18);
  const AllocationProfile alloc = equilibrium(inst);
  const auto result = GreedyDeliveryPlanner(inst).plan(alloc);
  DeliveryEvaluator cloud_only(inst, alloc);
  EXPECT_LT(core::total_latency_seconds(inst, alloc, result.delivery),
            cloud_only.total_latency_seconds());
}

TEST(GreedyDelivery, UnallocatedUsersGetCloudLatency) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 19);
  const AllocationProfile none(inst.user_count(), core::kUnallocated);
  const auto result = GreedyDeliveryPlanner(inst).plan(none);
  // With nobody allocated there is no gain anywhere: greedy places nothing.
  EXPECT_EQ(result.placements, 0u);
}

TEST(GreedyDelivery, ApproximationAgainstOptimalOracle) {
  // Theorems 6/7 guarantee a constant-factor approximation of the optimal
  // latency *reduction*; on small instances greedy is nearly optimal.
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    InstanceParams p = tiny_params(4, 12, 3);  // N*K = 12 decisions
    p.min_storage_mb = 60.0;
    p.max_storage_mb = 120.0;
    const ProblemInstance inst = model::make_instance(p, seed);
    const AllocationProfile alloc = equilibrium(inst);
    const auto greedy = GreedyDeliveryPlanner(inst).plan(alloc);
    const DeliveryProfile optimal = solver::optimal_delivery(inst, alloc);

    DeliveryEvaluator base(inst, alloc);
    const double cloud = base.total_latency_seconds();
    const double greedy_latency =
        core::total_latency_seconds(inst, alloc, greedy.delivery);
    const double optimal_latency =
        core::total_latency_seconds(inst, alloc, optimal);
    const double greedy_reduction = cloud - greedy_latency;
    const double optimal_reduction = cloud - optimal_latency;
    ASSERT_GE(optimal_reduction, greedy_reduction - 1e-9);
    // The paper's bound is (e-1)/2e ~ 0.316; greedy is far better in
    // practice — require at least 80% of the optimal reduction.
    EXPECT_GE(greedy_reduction, 0.8 * optimal_reduction) << "seed " << seed;
  }
}

TEST(Validation, AcceptsGreedyStrategy) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 27);
  const AllocationProfile alloc = equilibrium(inst);
  const auto greedy = GreedyDeliveryPlanner(inst).plan(alloc);
  core::Strategy strategy{alloc, greedy.delivery};
  EXPECT_TRUE(core::validate_strategy(inst, strategy).empty());
}

TEST(Validation, RejectsOutOfCoverageAllocation) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 28);
  AllocationProfile alloc(inst.user_count(), core::kUnallocated);
  // Find a user and a server that does NOT cover it.
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto& covering = inst.covering_servers(j);
    for (std::size_t i = 0; i < inst.server_count(); ++i) {
      if (!std::binary_search(covering.begin(), covering.end(), i)) {
        alloc[j] = core::ChannelSlot{i, 0};
        core::Strategy s{alloc, DeliveryProfile(inst)};
        EXPECT_FALSE(core::validate_strategy(inst, s).empty());
        return;
      }
    }
  }
  GTEST_SKIP() << "every server covers every user in this draw";
}

TEST(Validation, RejectsBadChannel) {
  const ProblemInstance inst = model::make_instance(tiny_params(), 29);
  AllocationProfile alloc(inst.user_count(), core::kUnallocated);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!inst.covering_servers(j).empty()) {
      alloc[j] = core::ChannelSlot{inst.covering_servers(j)[0],
                                   inst.radio_env().channels_per_server};
      break;
    }
  }
  core::Strategy s{alloc, DeliveryProfile(inst)};
  EXPECT_FALSE(core::validate_strategy(inst, s).empty());
}

}  // namespace

namespace {

using namespace idde;

TEST(Fairness, JainIndexBasics) {
  EXPECT_EQ(core::jain_index({}), 0.0);
  const std::vector<double> even{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(core::jain_index(even), 1.0, 1e-12);
  const std::vector<double> one_hog{10.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(core::jain_index(one_hog), 0.25, 1e-12);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(core::jain_index(zeros), 0.0);
}

TEST(Fairness, ReportOnEquilibrium) {
  const auto inst =
      model::make_instance(tiny_params(10, 50, 3), 91);
  const auto alloc = core::IddeUGame(inst).run().allocation;
  const auto report = core::fairness_report(inst, alloc);
  EXPECT_GT(report.jain, 0.3);
  EXPECT_LE(report.jain, 1.0 + 1e-12);
  EXPECT_GE(report.p10_rate_mbps, report.min_rate_mbps);
  EXPECT_LE(report.starved_users, inst.user_count());
}

TEST(Refinement, NeverInvalidAndBoundedRateLoss) {
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    const auto inst = model::make_instance(tiny_params(10, 50, 4), seed);
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const auto base = core::IddeG().solve(inst, rng_a);
    core::RefinementOptions options;
    options.epsilon_fraction = 0.1;
    const auto refined = core::IddeGPlus(options).solve(inst, rng_b);
    EXPECT_TRUE(core::validate_strategy(inst, refined).empty());
    const auto mb = core::evaluate(inst, base);
    const auto mr = core::evaluate(inst, refined);
    // Latency must never get worse; the rate loss stays bounded (the
    // per-user epsilon bound does not translate 1:1 to the average, so
    // allow a loose 2x margin).
    EXPECT_LE(mr.avg_latency_ms, mb.avg_latency_ms + 1e-6);
    EXPECT_GE(mr.avg_rate_mbps, mb.avg_rate_mbps * (1.0 - 0.2));
  }
}

TEST(Refinement, EpsilonZeroOnlyTakesFreeMoves) {
  const auto inst = model::make_instance(tiny_params(10, 50, 4), 55);
  util::Rng rng_a(55);
  util::Rng rng_b(55);
  const auto base = core::IddeG().solve(inst, rng_a);
  core::RefinementOptions options;
  options.epsilon_fraction = 0.0;
  const auto refined = core::IddeGPlus(options).solve(inst, rng_b);
  const auto mb = core::evaluate(inst, base);
  const auto mr = core::evaluate(inst, refined);
  EXPECT_GE(mr.avg_rate_mbps, mb.avg_rate_mbps * (1.0 - 1e-9));
  EXPECT_LE(mr.avg_latency_ms, mb.avg_latency_ms + 1e-9);
}

TEST(Refinement, NameAndDiagnostics) {
  const auto inst = model::make_instance(tiny_params(), 56);
  util::Rng rng(56);
  const auto s = core::IddeGPlus().solve(inst, rng);
  EXPECT_EQ(s.approach_name, "IDDE-G+");
  EXPECT_TRUE(s.collaborative_delivery);
}

}  // namespace
