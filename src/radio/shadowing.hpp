// Log-normal shadowing on top of the log-distance path loss. The paper
// notes the SINR "can be calculated based on other wireless communication
// models ... without impacting the IDDE problem fundamentally"; this is the
// standard first refinement (large-scale fading from obstructions), and
// bench/ablation_propagation checks that the paper's conclusions are
// robust to it.
#pragma once

#include <cmath>

#include "radio/pathloss.hpp"
#include "util/random.hpp"

namespace idde::radio {

class ShadowedPathLoss {
 public:
  /// `sigma_db` is the shadowing standard deviation in dB (urban macro
  /// cells: 4-8 dB). sigma_db = 0 reduces to the deterministic model.
  ShadowedPathLoss(PathLossModel base, double sigma_db)
      : base_(base), sigma_db_(sigma_db) {
    IDDE_EXPECTS(sigma_db >= 0.0);
  }

  /// Draws one link's gain: deterministic path loss times a log-normal
  /// shadowing factor. Each (server, user) pair should draw exactly once
  /// (shadowing is a property of the static environment, not of time).
  [[nodiscard]] double sample_gain(double distance_m, util::Rng& rng) const {
    const double gain = base_.gain(distance_m);
    if (sigma_db_ == 0.0) return gain;
    const double shadow_db = rng.normal(0.0, sigma_db_);
    return gain * std::pow(10.0, shadow_db / 10.0);
  }

  [[nodiscard]] const PathLossModel& base() const noexcept { return base_; }
  [[nodiscard]] double sigma_db() const noexcept { return sigma_db_; }

 private:
  PathLossModel base_;
  double sigma_db_;
};

}  // namespace idde::radio
