// Batched SoA evaluation of SINR (Eq. 2) and game benefit (Eq. 12) for
// every candidate (server, channel) slot of one user in a single pass.
//
// The scalar InterferenceField API prices one slot per call: for candidate
// (i, x) it walks the user's coverage set V_j and reads one entry of each
// (o, x) received-power row — a strided, pointer-chasing access pattern
// repeated |V_j| * X times per best-response. The best-response is the
// solver's dominant kernel (~85k evaluations per Set-2 solve even on the
// incremental path), so BatchEvaluator restructures the same arithmetic
// for throughput:
//
//   - the cross-cell accumulation runs interferer-major: each received-power
//     row (contiguous in the field) is loaded once and scattered into C*X
//     per-candidate accumulators held in a channel-major scratch row, so the
//     inner loop is a pure gather-add over ascending columns of one row;
//   - per-user constants (p_j, the g_{i,j} gather, the user's current slot)
//     are hoisted out of the sweep entirely;
//   - the final rate-limiting division runs over the scratch rows with no
//     per-slot branches beyond the own-slot correction.
//
// Exactness contract: for every slot the floating-point operations and
// their association order are IDENTICAL to the scalar
// InterferenceField::sinr()/benefit() calls — term accumulation follows the
// same ascending-server order, the own-contribution and emptied-channel
// special cases reproduce in_cell_power_excluding_watts()/
// cross_cell_interference_watts() exactly — so results are bit-identical, not
// merely close. The game's move sequences therefore cannot diverge between
// the batched and scalar paths (tests/test_batch_eval.cpp pins this).
//
// Thread compatibility: an evaluator owns mutable scratch, so one instance
// must not be shared between threads. It reads the field strictly through
// the read-only contract (interference.hpp): create one evaluator per
// worker and never mutate the field while any evaluator is in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "radio/interference.hpp"
#include "util/assert.hpp"

namespace idde::radio {

class BatchEvaluator {
 public:
  /// The field (and its environment) must outlive the evaluator.
  explicit BatchEvaluator(const InterferenceField& field);

  /// Eq. 12 benefit of `user` at every candidate slot (servers[a], x),
  /// laid out candidate-major: result[a * X + x]. `servers` must be an
  /// ascending subset of the user's coverage set (the full set in the
  /// plain game; a restriction under GameOptions::candidate_servers).
  /// Interference is always accumulated over the full coverage set, like
  /// the scalar path. The returned span aliases internal scratch and is
  /// valid until the next call on this evaluator.
  ///
  /// Inline dispatch: a user covered by exactly one server has an empty
  /// cross-cell sum by construction (the only interferer is the candidate
  /// itself, which Eq. 2/12 skip), so the sweep collapses to the in-cell
  /// terms with cross == 0 — the same bits the scalar path produces, at a
  /// fraction of the setup cost. Everyone else takes the SoA sweep.
  [[nodiscard]] std::span<const double> benefits(
      std::size_t user, std::span<const std::size_t> servers) {
    IDDE_EXPECTS(user < field_->env().user_count);
    const unsigned cls = coverage_size_[user];
    if (cls == 1 && servers.size() == 1) {
      return single_server<false>(user, servers.front());
    }
    if (cls == 2 && servers.size() == 2) {
      return pair_servers<false>(user, servers[0], servers[1]);
    }
    return benefits_batched(user, servers);
  }

  /// Eq. 2 SINR at every candidate slot; same layout and lifetime rules.
  [[nodiscard]] std::span<const double> sinrs(
      std::size_t user, std::span<const std::size_t> servers) {
    IDDE_EXPECTS(user < field_->env().user_count);
    const unsigned cls = coverage_size_[user];
    if (cls == 1 && servers.size() == 1) {
      return single_server<true>(user, servers.front());
    }
    if (cls == 2 && servers.size() == 2) {
      return pair_servers<true>(user, servers[0], servers[1]);
    }
    return sinrs_batched(user, servers);
  }

  [[nodiscard]] const InterferenceField& field() const noexcept {
    return *field_;
  }

 private:
  /// The zero-cross fast path: benefits (WithNoise = false) or SINRs
  /// (true) of a single-coverage user's lone candidate server. A template
  /// rather than a bool parameter so each instantiation is branch-free in
  /// its channel loop; defined inline below so the call collapses into
  /// the best-response loop.
  template <bool WithNoise>
  [[nodiscard]] std::span<const double> single_server(std::size_t user,
                                                      std::size_t server);

  /// Fast path for |V_j| == 2 evaluated over the full pair: each candidate
  /// has exactly one interferer (the other server), so the cross sum is a
  /// single received-row read with the own-contribution correction applied
  /// directly — no scratch accumulators, no gather setup. Bit-identical to
  /// the scalar calls (single-term sums associate trivially). Inline below.
  template <bool WithNoise>
  [[nodiscard]] std::span<const double> pair_servers(std::size_t user,
                                                     std::size_t s0,
                                                     std::size_t s1);

  /// General SoA sweeps (batch_eval.cpp).
  [[nodiscard]] std::span<const double> benefits_batched(
      std::size_t user, std::span<const std::size_t> servers);
  [[nodiscard]] std::span<const double> sinrs_batched(
      std::size_t user, std::span<const std::size_t> servers);

  /// Fills cross_ with F_{i,x,j} (own contribution excluded, unclamped)
  /// for every candidate, channel-major: cross_[x * C + a].
  void accumulate_cross(std::size_t user,
                        std::span<const std::size_t> servers);

  const InterferenceField* field_;
  std::vector<double> cross_;  ///< C*X cross-cell accumulators (x-major)
  std::vector<double> gain_;   ///< g_{servers[a], j} gathered per call
  std::vector<double> out_;    ///< C*X results (candidate-major)
  /// min(|V_j|, 3) — precomputed so the fast-path dispatch above costs
  /// one byte load instead of chasing the coverage vector-of-vectors.
  std::vector<std::uint8_t> coverage_size_;
};

template <bool WithNoise>
inline std::span<const double> BatchEvaluator::single_server(
    std::size_t user, std::size_t server) {
  const RadioEnvironment& env = field_->env();
  const std::size_t channels = env.channels_per_server;
  const ChannelSlot current = field_->allocation_[user];
  const double p = env.power[user];
  const double g = env.gain_at(server, user);
  const double signal = g * p;
  const double noise = WithNoise ? env.noise_watts : 0.0;
  const double* const power_sum = field_->power_sum_.data() + server * channels;
  double* const out = out_.data();
  // Branch-free main sweep (all channels priced as off-slot); when the
  // user sits on this server their own channel is then re-priced with the
  // in_cell_power_excluding_watts() special cases. Overwriting the one slot
  // keeps every final value's expression tree identical to the scalar
  // call — the cross sum is empty (o == server is skipped), so adding it
  // is exact. The X == 3 case (the paper's channel count) is unrolled to
  // straight-line code: three independent divisions pipeline, and the
  // loop bookkeeping disappears.
  const auto price = [&](double excl) {
    const double in_cell = WithNoise ? g * excl : g * (excl + p);
    return signal / (in_cell + noise);
  };
  if (channels == 3) {
    out[0] = price(power_sum[0]);
    out[1] = price(power_sum[1]);
    out[2] = price(power_sum[2]);
  } else {
    for (std::size_t x = 0; x < channels; ++x) out[x] = price(power_sum[x]);
  }
  if (current.allocated() && current.server == server) {
    const std::size_t cx = current.channel;
    const double excl =
        field_->users_on_[server * channels + cx] == 1
            ? 0.0
            : std::max(power_sum[cx] - p, 0.0);
    out[cx] = price(excl);
  }
  return {out, channels};
}

template <bool WithNoise>
inline std::span<const double> BatchEvaluator::pair_servers(std::size_t user,
                                                            std::size_t s0,
                                                            std::size_t s1) {
  const RadioEnvironment& env = field_->env();
  const std::size_t channels = env.channels_per_server;
  const std::size_t n = env.server_count;
  const ChannelSlot current = field_->allocation_[user];
  const double p = env.power[user];
  const double noise = WithNoise ? env.noise_watts : 0.0;
  const double* const power_sum = field_->power_sum_.data();
  const double* const received = field_->received_.data();
  const std::size_t* const users_on = field_->users_on_.data();
  double* const out = out_.data();
  const std::size_t cand[2] = {s0, s1};
  for (std::size_t a = 0; a < 2; ++a) {
    const std::size_t c = cand[a];      // candidate (receiving) server
    const std::size_t o = cand[1 - a];  // the only cross-cell interferer
    const double g = env.gain_at(c, user);
    const double signal = g * p;
    const bool on_cand = current.allocated() && current.server == c;
    const bool on_other = current.allocated() && current.server == o;
    for (std::size_t x = 0; x < channels; ++x) {
      const std::size_t cx = c * channels + x;
      const std::size_t ox = o * channels + x;
      // Single-term cross sum: the interferer row read at column c, with
      // the scalar path's own-contribution special cases (exact zero when
      // the user is alone on the interfering slot, else subtract g_c p).
      double cross_raw = received[ox * n + c];
      if (on_other && current.channel == x) {
        cross_raw = users_on[ox] == 1 ? 0.0 : cross_raw - g * p;
      }
      const double cross = std::max(cross_raw, 0.0);
      // in_cell_power_excluding_watts(), inlined with the same special cases.
      double excl = power_sum[cx];
      if (on_cand && current.channel == x) {
        excl = users_on[cx] == 1 ? 0.0 : std::max(power_sum[cx] - p, 0.0);
      }
      // Benefit (Eq. 12): signal / (g(excl+p) + cross); adding the 0.0
      // noise term is exact because the denominator is positive. SINR
      // (Eq. 2): signal / (g excl + cross + w), same association order.
      const double in_cell = WithNoise ? g * excl : g * (excl + p);
      out[a * channels + x] = signal / (in_cell + cross + noise);
    }
  }
  return {out, 2 * channels};
}

}  // namespace idde::radio
