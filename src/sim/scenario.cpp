#include "sim/scenario.hpp"

namespace idde::sim {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json params_to_json(const model::InstanceParams& p) {
  JsonObject eua{
      {"server_count", Json(p.eua.server_count)},
      {"user_count", Json(p.eua.user_count)},
      {"area_side_m", Json(p.eua.area_side_m)},
      {"min_coverage_radius_m", Json(p.eua.min_coverage_radius_m)},
      {"max_coverage_radius_m", Json(p.eua.max_coverage_radius_m)},
      {"server_jitter_m", Json(p.eua.server_jitter_m)},
      {"user_cluster_stddev_m", Json(p.eua.user_cluster_stddev_m)},
      {"user_background_fraction", Json(p.eua.user_background_fraction)},
  };
  JsonArray sizes;
  for (const double s : p.data_size_choices_mb) sizes.emplace_back(s);
  return Json(JsonObject{
      {"server_count", Json(p.server_count)},
      {"user_count", Json(p.user_count)},
      {"data_count", Json(p.data_count)},
      {"density", Json(p.density)},
      {"channels_per_server", Json(p.channels_per_server)},
      {"channel_bandwidth_mbps", Json(p.channel_bandwidth_mbps)},
      {"noise_dbm", Json(p.noise_dbm)},
      {"min_power_watts", Json(p.min_power_watts)},
      {"max_power_watts", Json(p.max_power_watts)},
      {"pathloss_eta", Json(p.pathloss_eta)},
      {"pathloss_exponent", Json(p.pathloss_exponent)},
      {"shadowing_stddev_db", Json(p.shadowing_stddev_db)},
      {"min_max_rate_mbps", Json(p.min_max_rate_mbps)},
      {"max_max_rate_mbps", Json(p.max_max_rate_mbps)},
      {"data_size_choices_mb", Json(std::move(sizes))},
      {"min_storage_mb", Json(p.min_storage_mb)},
      {"max_storage_mb", Json(p.max_storage_mb)},
      {"min_link_speed_mbps", Json(p.min_link_speed_mbps)},
      {"max_link_speed_mbps", Json(p.max_link_speed_mbps)},
      {"cloud_speed_mbps", Json(p.cloud_speed_mbps)},
      {"zipf_exponent", Json(p.zipf_exponent)},
      {"extra_request_prob", Json(p.extra_request_prob)},
      {"max_requests_per_user", Json(p.max_requests_per_user)},
      {"eua", Json(std::move(eua))},
  });
}

model::InstanceParams params_from_json(const Json& json) {
  model::InstanceParams p;
  const auto size = [&](std::string_view key, std::size_t fallback) {
    return static_cast<std::size_t>(
        json.int_or(key, static_cast<std::int64_t>(fallback)));
  };
  p.server_count = size("server_count", p.server_count);
  p.user_count = size("user_count", p.user_count);
  p.data_count = size("data_count", p.data_count);
  p.density = json.number_or("density", p.density);
  p.channels_per_server =
      size("channels_per_server", p.channels_per_server);
  p.channel_bandwidth_mbps =
      json.number_or("channel_bandwidth_mbps", p.channel_bandwidth_mbps);
  p.noise_dbm = json.number_or("noise_dbm", p.noise_dbm);
  p.min_power_watts = json.number_or("min_power_watts", p.min_power_watts);
  p.max_power_watts = json.number_or("max_power_watts", p.max_power_watts);
  p.pathloss_eta = json.number_or("pathloss_eta", p.pathloss_eta);
  p.pathloss_exponent =
      json.number_or("pathloss_exponent", p.pathloss_exponent);
  p.shadowing_stddev_db =
      json.number_or("shadowing_stddev_db", p.shadowing_stddev_db);
  p.min_max_rate_mbps =
      json.number_or("min_max_rate_mbps", p.min_max_rate_mbps);
  p.max_max_rate_mbps =
      json.number_or("max_max_rate_mbps", p.max_max_rate_mbps);
  if (const Json* sizes = json.find("data_size_choices_mb");
      sizes != nullptr && sizes->is_array() && !sizes->as_array().empty()) {
    p.data_size_choices_mb.clear();
    for (const Json& s : sizes->as_array()) {
      if (s.is_number()) p.data_size_choices_mb.push_back(s.as_number());
    }
  }
  p.min_storage_mb = json.number_or("min_storage_mb", p.min_storage_mb);
  p.max_storage_mb = json.number_or("max_storage_mb", p.max_storage_mb);
  p.min_link_speed_mbps =
      json.number_or("min_link_speed_mbps", p.min_link_speed_mbps);
  p.max_link_speed_mbps =
      json.number_or("max_link_speed_mbps", p.max_link_speed_mbps);
  p.cloud_speed_mbps = json.number_or("cloud_speed_mbps", p.cloud_speed_mbps);
  p.zipf_exponent = json.number_or("zipf_exponent", p.zipf_exponent);
  p.extra_request_prob =
      json.number_or("extra_request_prob", p.extra_request_prob);
  p.max_requests_per_user =
      size("max_requests_per_user", p.max_requests_per_user);
  if (const Json* eua = json.find("eua"); eua != nullptr && eua->is_object()) {
    p.eua.server_count = static_cast<std::size_t>(eua->int_or(
        "server_count", static_cast<std::int64_t>(p.eua.server_count)));
    p.eua.user_count = static_cast<std::size_t>(eua->int_or(
        "user_count", static_cast<std::int64_t>(p.eua.user_count)));
    p.eua.area_side_m = eua->number_or("area_side_m", p.eua.area_side_m);
    p.eua.min_coverage_radius_m =
        eua->number_or("min_coverage_radius_m", p.eua.min_coverage_radius_m);
    p.eua.max_coverage_radius_m =
        eua->number_or("max_coverage_radius_m", p.eua.max_coverage_radius_m);
    p.eua.server_jitter_m =
        eua->number_or("server_jitter_m", p.eua.server_jitter_m);
    p.eua.user_cluster_stddev_m =
        eua->number_or("user_cluster_stddev_m", p.eua.user_cluster_stddev_m);
    p.eua.user_background_fraction = eua->number_or(
        "user_background_fraction", p.eua.user_background_fraction);
  }
  return p;
}

std::string params_to_string(const model::InstanceParams& params, int indent) {
  return params_to_json(params).dump(indent);
}

model::InstanceParams params_from_string(const std::string& text) {
  return params_from_json(util::Json::parse(text));
}

Json fault_profile_to_json(const fault::FaultProfile& profile) {
  return Json(JsonObject{
      {"horizon_s", Json(profile.horizon_s)},
      {"server_mtbf_s", Json(profile.server_mtbf_s)},
      {"server_mttr_s", Json(profile.server_mttr_s)},
      {"link_mtbf_s", Json(profile.link_mtbf_s)},
      {"link_mttr_s", Json(profile.link_mttr_s)},
      {"cloud_mtbf_s", Json(profile.cloud_mtbf_s)},
      {"cloud_mttr_s", Json(profile.cloud_mttr_s)},
      {"replica_corruption_prob", Json(profile.replica_corruption_prob)},
  });
}

fault::FaultProfile fault_profile_from_json(const Json& json) {
  fault::FaultProfile profile;
  profile.horizon_s = json.number_or("horizon_s", profile.horizon_s);
  profile.server_mtbf_s =
      json.number_or("server_mtbf_s", profile.server_mtbf_s);
  profile.server_mttr_s =
      json.number_or("server_mttr_s", profile.server_mttr_s);
  profile.link_mtbf_s = json.number_or("link_mtbf_s", profile.link_mtbf_s);
  profile.link_mttr_s = json.number_or("link_mttr_s", profile.link_mttr_s);
  profile.cloud_mtbf_s = json.number_or("cloud_mtbf_s", profile.cloud_mtbf_s);
  profile.cloud_mttr_s = json.number_or("cloud_mttr_s", profile.cloud_mttr_s);
  profile.replica_corruption_prob = json.number_or(
      "replica_corruption_prob", profile.replica_corruption_prob);
  return profile;
}

Json fragment_config_to_json(const coding::FragmentConfig& config) {
  return Json(JsonObject{
      {"n", Json(config.n)},
      {"k", Json(config.k)},
  });
}

coding::FragmentConfig fragment_config_from_json(const Json& json) {
  coding::FragmentConfig config;
  config.n = static_cast<std::size_t>(
      json.int_or("n", static_cast<std::int64_t>(config.n)));
  config.k = static_cast<std::size_t>(
      json.int_or("k", static_cast<std::int64_t>(config.k)));
  if (config.k < 1 || !config.valid()) {
    throw util::JsonError("fragment config requires 1 <= k <= n, got n=" +
                          std::to_string(config.n) +
                          " k=" + std::to_string(config.k));
  }
  return config;
}

}  // namespace idde::sim
