file(REMOVE_RECURSE
  "CMakeFiles/idde_viz.dir/ascii_map.cpp.o"
  "CMakeFiles/idde_viz.dir/ascii_map.cpp.o.d"
  "libidde_viz.a"
  "libidde_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
