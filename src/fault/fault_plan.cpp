#include "fault/fault_plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::fault {

namespace {

// Fixed stream-id bases so every entity draws from an independent child of
// the master seed regardless of generation order.
constexpr std::uint64_t kServerStream = 0x10000;
constexpr std::uint64_t kLinkStream = 0x20000000;
constexpr std::uint64_t kCloudStream = 0x3c10ad;
constexpr std::uint64_t kCorruptionStream = 0x4c0de;

/// Alternating renewal process clipped to [0, horizon).
std::vector<Interval> draw_downtime(util::Rng rng, double mtbf_s,
                                    double mttr_s, double horizon_s) {
  std::vector<Interval> intervals;
  double t = rng.exponential(1.0 / mtbf_s);
  while (t < horizon_s) {
    const double repair = rng.exponential(1.0 / mttr_s);
    intervals.push_back(Interval{t, std::min(t + repair, horizon_s)});
    t += repair + rng.exponential(1.0 / mtbf_s);
  }
  return intervals;
}

/// True when `t` lies inside one of the sorted, disjoint intervals.
bool down_at(const std::vector<Interval>& intervals, double t) {
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t,
      [](double value, const Interval& iv) { return value < iv.start_s; });
  if (it == intervals.begin()) return false;
  return t < std::prev(it)->end_s;
}

}  // namespace

FaultPlan FaultPlan::generate(const model::ProblemInstance& instance,
                              const FaultProfile& profile,
                              std::uint64_t seed) {
  IDDE_EXPECTS(profile.horizon_s > 0.0);
  IDDE_EXPECTS(profile.server_mtbf_s <= 0.0 || profile.server_mttr_s > 0.0);
  IDDE_EXPECTS(profile.link_mtbf_s <= 0.0 || profile.link_mttr_s > 0.0);
  IDDE_EXPECTS(profile.cloud_mtbf_s <= 0.0 || profile.cloud_mttr_s > 0.0);
  IDDE_EXPECTS(profile.replica_corruption_prob >= 0.0 &&
               profile.replica_corruption_prob <= 1.0);

  FaultPlan plan;
  plan.horizon_s_ = profile.horizon_s;
  const util::Rng master(seed);

  if (profile.server_mtbf_s > 0.0) {
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      const auto intervals =
          draw_downtime(master.fork(kServerStream + i), profile.server_mtbf_s,
                        profile.server_mttr_s, profile.horizon_s);
      for (const Interval& iv : intervals) plan.add_server_downtime(i, iv);
    }
  }

  if (profile.link_mtbf_s > 0.0) {
    // Deduplicated undirected link set, ordered by (min, max) id so the
    // per-link stream index is a pure function of the topology.
    std::map<LinkKey, bool> links;
    const net::Graph& graph = instance.graph();
    for (std::size_t a = 0; a < graph.node_count(); ++a) {
      for (const net::Neighbor& nb : graph.neighbors(a)) {
        if (a < nb.node) links.emplace(LinkKey{a, nb.node}, true);
      }
    }
    std::size_t l = 0;
    for (const auto& [key, unused] : links) {
      (void)unused;
      const auto intervals =
          draw_downtime(master.fork(kLinkStream + l), profile.link_mtbf_s,
                        profile.link_mttr_s, profile.horizon_s);
      for (const Interval& iv : intervals) {
        plan.add_link_downtime(key.first, key.second, iv);
      }
      ++l;
    }
  }

  if (profile.cloud_mtbf_s > 0.0) {
    const auto intervals =
        draw_downtime(master.fork(kCloudStream), profile.cloud_mtbf_s,
                      profile.cloud_mttr_s, profile.horizon_s);
    for (const Interval& iv : intervals) plan.add_cloud_downtime(iv);
  }

  if (profile.replica_corruption_prob > 0.0) {
    util::Rng corruption = master.fork(kCorruptionStream);
    plan.set_replica_corruption(profile.replica_corruption_prob,
                                corruption.generator()());
  }
  return plan;
}

void FaultPlan::append_interval(std::vector<Interval>& intervals,
                                Interval interval) {
  IDDE_EXPECTS(interval.start_s >= 0.0 &&
               interval.end_s > interval.start_s);
  IDDE_EXPECTS(intervals.empty() ||
               interval.start_s >= intervals.back().end_s);
  intervals.push_back(interval);
}

void FaultPlan::record_edge_change(const Interval& interval) {
  for (const double t : {interval.start_s, interval.end_s}) {
    const auto it =
        std::lower_bound(edge_changes_.begin(), edge_changes_.end(), t);
    if (it == edge_changes_.end() || *it != t) edge_changes_.insert(it, t);
  }
  horizon_s_ = std::max(horizon_s_, interval.end_s);
}

void FaultPlan::add_server_downtime(std::size_t server, Interval interval) {
  if (server >= server_down_.size()) server_down_.resize(server + 1);
  append_interval(server_down_[server], interval);
  record_edge_change(interval);
}

void FaultPlan::add_link_downtime(std::size_t a, std::size_t b,
                                  Interval interval) {
  IDDE_EXPECTS(a != b);
  append_interval(link_down_[LinkKey{std::min(a, b), std::max(a, b)}],
                  interval);
  record_edge_change(interval);
}

void FaultPlan::add_cloud_downtime(Interval interval) {
  append_interval(cloud_down_, interval);
  horizon_s_ = std::max(horizon_s_, interval.end_s);
}

void FaultPlan::set_replica_corruption(double probability,
                                       std::uint64_t seed) {
  IDDE_EXPECTS(probability >= 0.0 && probability <= 1.0);
  corruption_prob_ = probability;
  corruption_seed_ = seed;
}

void FaultPlan::set_horizon(double horizon_s) {
  IDDE_EXPECTS(horizon_s >= horizon_s_);
  horizon_s_ = horizon_s;
}

bool FaultPlan::inert() const noexcept {
  if (corruption_prob_ > 0.0 || !cloud_down_.empty() || !link_down_.empty()) {
    return false;
  }
  for (const auto& intervals : server_down_) {
    if (!intervals.empty()) return false;
  }
  return true;
}

bool FaultPlan::server_up(std::size_t server, double t) const {
  if (server >= server_down_.size()) return true;
  return !down_at(server_down_[server], t);
}

void FaultPlan::server_up_mask(std::size_t server_count, double t,
                               std::vector<std::uint8_t>& mask) const {
  mask.resize(server_count);
  for (std::size_t i = 0; i < server_count; ++i) {
    mask[i] = server_up(i, t) ? 1 : 0;
  }
}

bool FaultPlan::link_up(std::size_t a, std::size_t b, double t) const {
  const auto it = link_down_.find(LinkKey{std::min(a, b), std::max(a, b)});
  if (it == link_down_.end()) return true;
  return !down_at(it->second, t);
}

bool FaultPlan::cloud_stalled(double t) const {
  return down_at(cloud_down_, t);
}

bool FaultPlan::replica_corrupted(std::size_t server,
                                  std::size_t item) const {
  if (corruption_prob_ <= 0.0) return false;
  // Stateless per-pair hash: order- and thread-independent by design.
  util::SplitMix64 mix(corruption_seed_ ^
                       (0x100000001b3ULL * (server + 1) + item));
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  return u < corruption_prob_;
}

double FaultPlan::cloud_completion(double start_s, double duration_s) const {
  IDDE_EXPECTS(start_s >= 0.0 && duration_s >= 0.0);
  double t = start_s;
  double remaining = duration_s;
  for (const Interval& iv : cloud_down_) {
    if (iv.end_s <= t) continue;
    if (iv.start_s > t) {
      const double run = iv.start_s - t;
      if (remaining <= run) return t + remaining;
      remaining -= run;
    }
    t = std::max(t, iv.end_s);
  }
  return t + remaining;
}

double FaultPlan::next_edge_change_after(double t) const {
  const auto it =
      std::upper_bound(edge_changes_.begin(), edge_changes_.end(), t);
  return it == edge_changes_.end() ? kNeverChanges : *it;
}

std::vector<double> FaultPlan::epoch_starts() const {
  std::vector<double> starts;
  starts.reserve(edge_changes_.size() + 1);
  starts.push_back(0.0);
  for (const double t : edge_changes_) {
    // edge_changes_ is sorted unique, so only a leading 0.0 can collide
    // with the implicit epoch start at the origin.
    if (t > 0.0) starts.push_back(t);
  }
  return starts;
}

std::size_t FaultPlan::epoch_index_at(double t) const {
  IDDE_EXPECTS(t >= 0.0);
  // Count edge changes in (0, t]: each strictly positive boundary at or
  // before `t` pushes us one epoch further along epoch_starts().
  const auto begin = std::upper_bound(edge_changes_.begin(),
                                      edge_changes_.end(), 0.0);
  const auto it = std::upper_bound(begin, edge_changes_.end(), t);
  return static_cast<std::size_t>(it - begin);
}

bool FaultPlan::availability_changed_between(double from, double to) const {
  if (to < from) return false;
  const auto it =
      std::upper_bound(edge_changes_.begin(), edge_changes_.end(), from);
  return it != edge_changes_.end() && *it <= to;
}

}  // namespace idde::fault
