#include "coding/coded_resolver.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::coding {

namespace {

/// Same per-request telemetry the replication resolver emits — the coded
/// resolver is the same semantic event (one Eq. 8 resolution).
void note_resolution(const CodedDecision& decision) {
  switch (decision.tier) {
    case core::FallbackTier::kPrimary:
      IDDE_OBS_COUNT("resolve.primary_total", 1);
      break;
    case core::FallbackTier::kReplica:
      IDDE_OBS_COUNT("resolve.replica_total", 1);
      break;
    case core::FallbackTier::kCloud:
      IDDE_OBS_COUNT("resolve.cloud_total", 1);
      break;
  }
  IDDE_OBS_HISTOGRAM("resolve.latency_ms", decision.seconds * 1e3);
}

}  // namespace

CodedResolver::CodedResolver(const model::ProblemInstance& instance)
    : instance_(&instance) {
  legs_.reserve(instance.server_count());
  reference_legs_.reserve(instance.server_count());
  selected_hosts_.reserve(instance.server_count());
  selected_seconds_.reserve(instance.server_count());
  set_a_.reserve(instance.server_count());
  set_b_.reserve(instance.server_count());
}

double CodedResolver::cloud_topup_seconds(std::size_t fragments, std::size_t k,
                                          double item_size_mb,
                                          double fragment_mb) const {
  if (fragments == 0) return 0.0;
  // All k fragments == the whole item: use its exact size so the k = 1
  // cloud fallback is bitwise the replication one.
  const double mb =
      fragments == k ? item_size_mb
                     : fragment_mb * static_cast<double>(fragments);
  return instance_->latency().cloud_transfer_seconds(mb);
}

std::size_t CodedResolver::best_edge_count(
    std::span<const std::size_t> hosts, std::size_t serving,
    double item_size_mb, double fragment_mb, std::size_t k,
    std::span<const std::uint8_t> server_up, const net::CostMatrix* costs,
    std::vector<Leg>& legs, double& best_seconds) {
  const auto& latency = instance_->latency();
  legs.clear();
  for (const std::size_t host : hosts) {
    if (!server_up.empty() && !server_up[host]) continue;
    const double cost = costs != nullptr
                            ? costs->cost(host, serving)
                            : latency.costs().cost(host, serving);
    // `legs` is always member scratch (legs_ / reference_legs_) reserved to
    // server_count in the ctor, and hosts.size() <= server_count.
    legs.push_back(Leg{cost * fragment_mb, host});  // lint: alloc-ok(reserved member scratch)
  }
  // (seconds, host id) order: the e cheapest legs are a deterministic
  // prefix, and at k = 1 legs[0] is exactly argmin_source's pick.
  std::sort(legs.begin(), legs.end());

  std::size_t best_e = 0;
  best_seconds = cloud_topup_seconds(k, k, item_size_mb, fragment_mb);
  const std::size_t max_e = std::min(legs.size(), k);
  for (std::size_t e = 1; e <= max_e; ++e) {
    const double total =
        std::max(legs[e - 1].seconds,
                 cloud_topup_seconds(k - e, k, item_size_mb, fragment_mb));
    if (total < best_seconds) {  // strict: smallest e (most cloud) on ties
      best_seconds = total;
      best_e = e;
    }
  }
  return best_e;
}

CodedDecision CodedResolver::resolve(std::span<const std::size_t> hosts,
                                     std::size_t serving, double item_size_mb,
                                     double fragment_mb, std::size_t k,
                                     std::span<const std::uint8_t> server_up,
                                     const net::CostMatrix* degraded_costs,
                                     std::span<const std::size_t>
                                         fault_free_hosts) {
  IDDE_EXPECTS(k >= 1);
  const std::span<const std::size_t> reference =
      fault_free_hosts.empty() ? hosts : fault_free_hosts;
  selected_hosts_.clear();
  selected_seconds_.clear();

  CodedDecision decision;
  const bool serving_dead = serving != core::ChannelSlot::kNone &&
                            !server_up.empty() && !server_up[serving];
  if (serving == core::ChannelSlot::kNone || serving_dead) {
    // Cloud-only user or dead serving server: no edge leg can be relayed,
    // so all k fragments (= the whole item) come from the cloud.
    decision.edge_fragments = 0;
    decision.cloud_fragments = k;
    decision.seconds = instance_->latency().cloud_transfer_seconds(item_size_mb);
    double reference_seconds = 0.0;
    const std::size_t reference_e =
        serving == core::ChannelSlot::kNone
            ? 0
            : best_edge_count(reference, serving, item_size_mb, fragment_mb, k,
                              {}, nullptr, reference_legs_, reference_seconds);
    decision.tier = reference_e == 0 ? core::FallbackTier::kPrimary
                                     : core::FallbackTier::kCloud;
    note_resolution(decision);
    return decision;
  }

  double reference_seconds = 0.0;
  const std::size_t reference_e =
      best_edge_count(reference, serving, item_size_mb, fragment_mb, k, {},
                      nullptr, reference_legs_, reference_seconds);
  const std::size_t e =
      best_edge_count(hosts, serving, item_size_mb, fragment_mb, k, server_up,
                      degraded_costs, legs_, decision.seconds);
  decision.edge_fragments = e;
  decision.cloud_fragments = k - e;
  for (std::size_t leg = 0; leg < e; ++leg) {
    selected_hosts_.push_back(legs_[leg].host);
    selected_seconds_.push_back(legs_[leg].seconds);
  }

  if (e < reference_e) {
    // Faults pushed fragments the fault-free plan served from the edge
    // onto the cloud — the coded analogue of replication's kCloud.
    decision.tier = core::FallbackTier::kCloud;
  } else if (e == reference_e) {
    // Same fragment count: kPrimary iff the same hosts serve it. The two
    // leg lists are sorted under different cost metrics, so compare as
    // host-id sets.
    set_a_.assign(selected_hosts_.begin(), selected_hosts_.end());
    set_b_.clear();
    for (std::size_t leg = 0; leg < reference_e; ++leg) {
      set_b_.push_back(reference_legs_[leg].host);
    }
    std::sort(set_a_.begin(), set_a_.end());
    std::sort(set_b_.begin(), set_b_.end());
    decision.tier = set_a_ == set_b_ ? core::FallbackTier::kPrimary
                                     : core::FallbackTier::kReplica;
  } else {
    decision.tier = core::FallbackTier::kReplica;
  }
  note_resolution(decision);
  return decision;
}

}  // namespace idde::coding
