"""Concurrency pack: lock-order reconstruction and atomic justification.

The lock-acquisition graph is rebuilt from two textual sources:

  declarations   `util::Mutex a IDDE_ACQUIRED_BEFORE(b);` (or the
                 symmetric IDDE_ACQUIRED_AFTER) on mutex members — each
                 declares a directed must-acquire-first edge a -> b;
  acquisitions   `util::MutexLock lock(expr);` sites, tracked through a
                 brace-depth scope walk: a MutexLock constructed while an
                 earlier one in the same function is still in scope is a
                 nested acquisition of (outer, inner).

Rules:
  lock-order   every observed nested acquisition (outer, inner) must be
               covered by a declared edge outer -> inner. Undeclared
               nesting is exactly the hazard the ROADMAP gates sharded/
               nested locking work behind: two call paths that nest the
               same capabilities in opposite orders deadlock only under
               load, never in review.
  lock-cycle   the declared edge graph must be acyclic — a cycle means the
               declared order itself permits a deadlock.
  atomic-order std::atomic members/locals outside src/util//src/obs/ must
               carry a `memory-order: ...` justification comment (on the
               line or up to 3 lines above) saying why the chosen ordering
               is sufficient. Relaxed tallies are fine — silently relaxed
               synchronisation is not.

Mutex identity is the trailing identifier of the acquisition expression
(`buffer->mutex` -> `mutex`, `stats_mutex` -> `stats_mutex`): a textual
heuristic, deliberately — same-named members of different classes share a
node, so the graph is conservative about cycles at the cost of occasionally
needing an `// lint: allow(lock-order)` on a genuinely independent pair.
"""

from __future__ import annotations

import re

from ..config import Config
from ..findings import Finding
from ..source import SourceFile

RULES = {
    "lock-order": (
        "nested lock acquisition with no declared IDDE_ACQUIRED_BEFORE "
        "edge; declare the order on the mutex member or restructure to "
        "avoid holding both"),
    "lock-cycle": (
        "declared IDDE_ACQUIRED_BEFORE/AFTER edges form a cycle — the "
        "declared lock order permits deadlock"),
    "atomic-order": (
        "std::atomic outside src/util//src/obs/ without a "
        "`memory-order: ...` justification comment"),
}

# `util::Mutex name ... IDDE_ACQUIRED_BEFORE(args);` — [^;{}] keeps the
# match inside one member declaration.
EDGE_DECL = re.compile(
    r"\bMutex\s+(?P<name>\w+)\b[^;{}]*?"
    r"IDDE_ACQUIRED_(?P<dir>BEFORE|AFTER)\s*\((?P<args>[^)]*)\)")
LOCK_SITE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*(?P<expr>[^(){};]+?)\s*[)}]")
ATOMIC = re.compile(r"\bstd::atomic\s*<[^;]*?>\s*(?P<name>\w+)?")
TRAILING_IDENT = re.compile(r"(\w+)\s*$")


def mutex_name(expr: str) -> str:
    """Normalises an acquisition expression to its trailing identifier."""
    match = TRAILING_IDENT.search(expr.strip())
    return match.group(1) if match else expr.strip()


def scan(sf: SourceFile, cfg: Config):
    findings: list[Finding] = []
    suppressed = 0
    edges: list[tuple[str, str, str, int]] = []   # (from, to, file, line)
    nested: list[tuple[str, str, str, int]] = []  # (outer, inner, file, line)

    for match in EDGE_DECL.finditer(sf.code):
        line = sf.line_of(match.start())
        name = match.group("name")
        for arg in match.group("args").split(","):
            if not arg.strip():
                continue
            other = mutex_name(arg)
            if match.group("dir") == "BEFORE":
                edges.append((name, other, sf.rel, line))
            else:
                edges.append((other, name, sf.rel, line))

    # Scope walk: replay brace depth over the stripped text, retiring each
    # MutexLock when the block it was declared in closes.
    sites = sorted(
        (m.start(), mutex_name(m.group("expr")))
        for m in LOCK_SITE.finditer(sf.code))
    if sites:
        active: list[tuple[str, int]] = []  # (mutex, decl depth)
        depth = 0
        site_index = 0
        for pos, ch in enumerate(sf.code):
            while site_index < len(sites) and sites[site_index][0] == pos:
                inner = sites[site_index][1]
                line = sf.line_of(pos)
                for outer, _ in active:
                    if sf.allowed(line, "lock-order"):
                        suppressed += 1
                    else:
                        nested.append((outer, inner, sf.rel, line))
                active.append((inner, depth))
                site_index += 1
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while active and active[-1][1] > depth:
                    active.pop()

    atomic_ok = cfg.in_scope(sf.rel, cfg.atomic_exempt)
    if not atomic_ok:
        for match in ATOMIC.finditer(sf.code):
            line = sf.line_of(match.start())
            if sf.tag_nearby(line, "memory-order:"):
                continue
            if sf.allowed(line, "atomic-order"):
                suppressed += 1
                continue
            name = match.group("name") or "atomic"
            findings.append(Finding(
                sf.rel, line, "atomic-order", f"atomic:{name}",
                f"std::atomic `{name}` outside src/util//src/obs/ without a "
                "`memory-order: ...` justification comment explaining why "
                "its ordering is sufficient"))

    return findings, {
        "lock_edges": edges,
        "lock_nested": nested,
        "suppressed": suppressed,
    }


def global_scan(reports, cfg: Config) -> list[Finding]:
    del cfg
    findings: list[Finding] = []
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for report in reports:
        for src, dst, rel, line in report.facts.get("lock_edges", ()):
            edges.setdefault((src, dst), (rel, line))

    seen_nested: set[tuple[str, str, str]] = set()
    for report in reports:
        for outer, inner, rel, line in report.facts.get("lock_nested", ()):
            key = f"{outer}->{inner}"
            if (rel, outer, inner) in seen_nested:
                continue
            seen_nested.add((rel, outer, inner))
            if outer == inner:
                findings.append(Finding(
                    rel, line, "lock-order", key,
                    f"`{inner}` acquired while already held on this path — "
                    "self-deadlock (or two instances whose order is "
                    "undeclared)"))
            elif (outer, inner) not in edges:
                findings.append(Finding(
                    rel, line, "lock-order", key,
                    f"nested acquisition of `{inner}` while holding "
                    f"`{outer}` with no declared IDDE_ACQUIRED_BEFORE edge "
                    f"`{outer}` -> `{inner}`"))

    # Cycle check over declared edges (DFS, deterministic order).
    graph: dict[str, list[str]] = {}
    for src, dst in sorted(edges):
        graph.setdefault(src, []).append(dst)
    state: dict[str, int] = {}  # 1 = on stack, 2 = done
    stack: list[str] = []

    def visit(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for succ in graph.get(node, ()):
            if state.get(succ) == 1:
                cycle = stack[stack.index(succ):] + [succ]
                rel, line = edges[(node, succ)]
                findings.append(Finding(
                    rel, line, "lock-cycle", "->".join(cycle),
                    "declared lock-order edges form a cycle: "
                    + " -> ".join(cycle)))
            elif succ not in state:
                visit(succ)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if node not in state:
            visit(node)
    return findings
