#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "core/delivery.hpp"
#include "core/metrics.hpp"
#include "core/repair_planner.hpp"
#include "util/assert.hpp"

namespace idde::fault {

FaultInjector::FaultInjector(const model::ProblemInstance& instance,
                             const FaultPlan& plan)
    : plan_(&plan), starts_(plan.epoch_starts()) {

  const net::Graph& base = instance.graph();
  const std::size_t n = instance.server_count();
  std::size_t base_edges = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (const net::Neighbor& nb : base.neighbors(a)) {
      if (a < nb.node) ++base_edges;
    }
  }

  epochs_.reserve(starts_.size());
  for (std::size_t e = 0; e < starts_.size(); ++e) {
    const double start = starts_[e];
    const double end =
        e + 1 < starts_.size() ? starts_[e + 1] : kNeverChanges;
    // Sample availability just inside the epoch: intervals are half-open,
    // so the state at `start` itself is the epoch's state throughout.
    std::vector<std::uint8_t> up(n, 1);
    bool all_servers_up = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!plan.server_up(i, start)) {
        up[i] = 0;
        all_servers_up = false;
      }
    }
    std::vector<net::Edge> edges;
    for (std::size_t a = 0; a < n; ++a) {
      for (const net::Neighbor& nb : base.neighbors(a)) {
        if (a >= nb.node) continue;
        if (up[a] && up[nb.node] && plan.link_up(a, nb.node, start)) {
          edges.push_back(net::Edge{a, nb.node, nb.weight});
        }
      }
    }
    const bool all_up = all_servers_up && edges.size() == base_edges;
    net::Graph graph(n, edges);
    net::CostMatrix costs(graph);
    epochs_.push_back(AvailabilitySnapshot{start, end, std::move(up), all_up,
                                           std::move(graph),
                                           std::move(costs)});
  }
}

std::size_t FaultInjector::epoch_index(double t) const {
  // Delegates to the plan's shared epoch timeline (satellite: injector and
  // serve controller must agree on boundaries by construction).
  return plan_->epoch_index_at(t);
}

ResilienceReport evaluate_resilience(const model::ProblemInstance& instance,
                                     const core::Strategy& strategy,
                                     const FaultPlan& plan,
                                     RepairPolicy policy) {
  ResilienceReport report;
  report.fault_free_latency_ms = core::average_latency_ms(
      instance, strategy.allocation, strategy.delivery,
      strategy.collaborative_delivery);
  if (plan.inert()) {
    // Zero-cost-when-disabled contract: identical numbers, no injector.
    report.degraded_latency_ms = report.fault_free_latency_ms;
    report.availability = 1.0;
    report.tier_fraction = {1.0, 0.0, 0.0};
    report.epochs = 1;
    return report;
  }

  const double horizon = plan.horizon_s();
  IDDE_EXPECTS(horizon > 0.0);
  const bool corruption = plan.replica_corruption_prob() > 0.0;
  const core::RepairPlanner::ReplicaLost replica_lost =
      corruption ? core::RepairPlanner::ReplicaLost(
                       [&plan](std::size_t i, std::size_t k) {
                         return plan.replica_corrupted(i, k);
                       })
                 : core::RepairPlanner::ReplicaLost{};
  core::RepairPlanner repairer(instance);
  const auto& requests = instance.requests();
  const std::size_t request_count = requests.total_requests();
  IDDE_EXPECTS(request_count > 0);

  double weighted_seconds = 0.0;
  std::array<double, 3> tier_weight{};
  std::vector<std::size_t> degraded_hosts;
  std::vector<std::size_t> reference_hosts;

  const FaultInjector injector(instance, plan);
  for (std::size_t e = 0; e < injector.epoch_count(); ++e) {
    const AvailabilitySnapshot& snap = injector.epoch(e);
    const double weight = std::min(snap.end_s, horizon) - snap.start_s;
    if (weight <= 0.0) continue;
    ++report.epochs;

    const core::DeliveryProfile* sigma = &strategy.delivery;
    core::RepairResult healed{core::DeliveryProfile(instance), 0, 0, 0.0};
    const bool repair_active =
        policy == RepairPolicy::kGreedy && (!snap.all_up || corruption);
    if (repair_active) {
      healed = repairer.replan(strategy.allocation, strategy.delivery,
                               snap.server_up, replica_lost,
                               strategy.collaborative_delivery);
      report.lost_placements += healed.lost_placements;
      report.repair_placements += healed.repair_placements;
      sigma = &healed.delivery;
    }

    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      const core::ChannelSlot slot = strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t k : requests.items_of(j)) {
        degraded_hosts.clear();
        for (const std::size_t host : sigma->hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          // Corrupt replicas are unreadable even on a live server; a
          // repaired sigma already dropped them (replica_lost above).
          if (!repair_active && corruption && plan.replica_corrupted(host, k)) {
            continue;
          }
          degraded_hosts.push_back(host);
        }
        // The tier reference is always the *original* sigma in the
        // fault-free world, even when a repair swapped replicas in.
        reference_hosts.clear();
        for (const std::size_t host : strategy.delivery.hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          reference_hosts.push_back(host);
        }
        const core::FailoverDecision decision = core::resolve_with_failover(
            instance, degraded_hosts, serving, instance.data(k).size_mb,
            snap.server_up, &snap.costs, reference_hosts);
        weighted_seconds += weight * decision.seconds;
        tier_weight[static_cast<std::size_t>(decision.tier)] += weight;
      }
    }
  }

  const double total_mass = horizon * static_cast<double>(request_count);
  report.degraded_latency_ms = weighted_seconds / total_mass * 1e3;
  for (std::size_t t = 0; t < tier_weight.size(); ++t) {
    report.tier_fraction[t] = tier_weight[t] / total_mass;
  }
  report.availability = report.tier_fraction[0];
  return report;
}

}  // namespace idde::fault
