#include "coding/coded_evaluator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::coding {

CodedDeliveryEvaluator::CodedDeliveryEvaluator(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation, FragmentConfig config,
    bool collaborative)
    : instance_(&instance),
      config_(config),
      collaborative_(collaborative),
      data_count_(instance.data_count()) {
  IDDE_EXPECTS(config.valid());
  const auto& requests = instance.requests();
  std::vector<std::size_t> item_degree(instance.data_count(), 0);
  std::size_t total_requests = 0;
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : requests.items_of(j)) {
      ++item_degree[k];
      ++total_requests;
    }
  }
  request_user_.reserve(total_requests);
  request_item_.reserve(total_requests);
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : requests.items_of(j)) {
      request_user_.push_back(j);
      request_item_.push_back(k);
    }
  }
  item_req_offset_.assign(instance.data_count() + 1, 0);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    item_req_offset_[k + 1] = item_req_offset_[k] + item_degree[k];
  }
  item_req_ids_.resize(total_requests);
  std::vector<std::size_t> cursor(item_req_offset_.begin(),
                                  item_req_offset_.end() - 1);
  for (std::size_t id = 0; id < total_requests; ++id) {
    item_req_ids_[cursor[request_item_[id]]++] = id;
  }
  serving_server_.resize(instance.user_count());
  request_serving_.resize(total_requests);
  request_latency_.resize(total_requests);
  hosts_flat_.assign(instance.data_count() * instance.server_count(), 0);
  host_count_.assign(instance.data_count(), 0);
  frag_mb_.reserve(instance.data_count());
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    frag_mb_.push_back(fragment_size_mb(instance.data(k).size_mb, config.k));
  }
  legs_.reserve(instance.server_count() + 1);
  reset(allocation, collaborative);
}

void CodedDeliveryEvaluator::reset(const core::AllocationProfile& allocation,
                                   bool collaborative) {
  IDDE_EXPECTS(allocation.size() == instance_->user_count());
  collaborative_ = collaborative;
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    serving_server_[j] = allocation[j].allocated() ? allocation[j].server
                                                   : core::ChannelSlot::kNone;
  }
  std::fill(host_count_.begin(), host_count_.end(), 0);
  total_latency_ = 0.0;
  for (std::size_t id = 0; id < request_user_.size(); ++id) {
    request_serving_[id] = serving_server_[request_user_[id]];
    const double cloud = instance_->latency().cloud_transfer_seconds(
        instance_->data(request_item_[id]).size_mb);
    request_latency_[id] = cloud;
    total_latency_ += cloud;
  }
}

double CodedDeliveryEvaluator::request_seconds(std::size_t id,
                                               std::size_t extra_host) const {
  const std::size_t serving = request_serving_[id];
  const std::size_t item = request_item_[id];
  const auto& latency = instance_->latency();
  const double item_mb = instance_->data(item).size_mb;
  const double frag_mb = frag_mb_[item];
  const std::size_t k = config_.k;

  legs_.clear();
  const std::size_t* const seg =
      hosts_flat_.data() + item * instance_->server_count();
  for (std::size_t h = 0; h < host_count_[item]; ++h) {
    const std::size_t host = seg[h];
    if (!collaborative_ && host != serving) continue;
    legs_.push_back(latency.edge_transfer_seconds(host, serving, frag_mb));
  }
  if (extra_host != kNoExtra &&
      (collaborative_ || extra_host == serving)) {
    legs_.push_back(latency.edge_transfer_seconds(extra_host, serving, frag_mb));
  }
  std::sort(legs_.begin(), legs_.end());

  // Coded Eq. 8: e edge legs in parallel, k - e fragments topped up from
  // the cloud (all k == the whole item, so e = 0 is the replication cloud
  // cap bitwise). Strict `<` keeps the smallest e on ties.
  double best = latency.cloud_transfer_seconds(item_mb);
  const std::size_t max_e = std::min(legs_.size(), k);
  for (std::size_t e = 1; e <= max_e; ++e) {
    const double topup =
        e == k ? 0.0
               : latency.cloud_transfer_seconds(
                     frag_mb * static_cast<double>(k - e));
    const double total = std::max(legs_[e - 1], topup);
    if (total < best) best = total;
  }
  return best;
}

double CodedDeliveryEvaluator::gain_seconds(std::size_t server,
                                            std::size_t item) const {
  IDDE_EXPECTS(server < instance_->server_count());
  IDDE_EXPECTS(item < data_count_);
  double gain = 0.0;
  for (std::size_t r = item_req_offset_[item]; r < item_req_offset_[item + 1];
       ++r) {
    const std::size_t id = item_req_ids_[r];
    if (request_serving_[id] == core::ChannelSlot::kNone) continue;
    const double candidate = request_seconds(id, server);
    if (candidate < request_latency_[id]) {
      gain += request_latency_[id] - candidate;
    }
  }
  return gain;
}

double CodedDeliveryEvaluator::commit(std::size_t server, std::size_t item) {
  IDDE_EXPECTS(server < instance_->server_count());
  IDDE_EXPECTS(item < data_count_);
  double gain = 0.0;
  for (std::size_t r = item_req_offset_[item]; r < item_req_offset_[item + 1];
       ++r) {
    const std::size_t id = item_req_ids_[r];
    if (request_serving_[id] == core::ChannelSlot::kNone) continue;
    const double candidate = request_seconds(id, server);
    if (candidate < request_latency_[id]) {
      gain += request_latency_[id] - candidate;
      request_latency_[id] = candidate;
    }
  }
  // Record the host after scoring so request_seconds saw "hosts + extra"
  // exactly once per request. Shift-insert keeps ids ascending.
  std::size_t* const seg =
      hosts_flat_.data() + item * instance_->server_count();
  std::size_t pos = host_count_[item];
  while (pos > 0 && seg[pos - 1] > server) {
    seg[pos] = seg[pos - 1];
    --pos;
  }
  seg[pos] = server;
  ++host_count_[item];
  total_latency_ -= gain;
  return gain;
}

double CodedDeliveryEvaluator::average_latency_seconds() const {
  if (request_user_.empty()) return 0.0;
  return total_latency_ / static_cast<double>(request_user_.size());
}

double coded_total_latency_seconds(const model::ProblemInstance& instance,
                                   const core::AllocationProfile& allocation,
                                   const CodedDeliveryProfile& delivery,
                                   bool collaborative) {
  CodedDeliveryEvaluator evaluator(instance, allocation, delivery.config(),
                                   collaborative);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : delivery.hosts(k)) {
      evaluator.commit(i, k);
    }
  }
  return evaluator.total_latency_seconds();
}

}  // namespace idde::coding
