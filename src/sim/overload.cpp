#include "sim/overload.hpp"

namespace idde::sim {

des::FlowSimResult run_overload_cell(const model::ProblemInstance& instance,
                                     const core::Strategy& strategy,
                                     const OverloadCell& cell) {
  des::FlowSimOptions options = cell.des;
  options.qos = &cell.qos;
  fault::FaultPlan plan;  // inert by default
  if (!cell.fault.inert()) {
    plan = fault::FaultPlan::generate(instance, cell.fault, cell.seed ^ 0x4a17);
    options.fault_plan = &plan;
  } else {
    options.fault_plan = nullptr;
  }
  util::Rng rng(cell.seed ^ 0x10adULL);
  return des::FlowLevelSimulator(instance, options).run(strategy, rng);
}

util::Json qos_stats_to_json(const des::QosStats& stats) {
  util::JsonObject json;
  json["offered"] = stats.offered;
  json["admitted"] = stats.admitted;
  json["shed"] = stats.shed;
  json["rejected"] = stats.rejected;
  json["deadline_misses"] = stats.deadline_misses;
  json["goodput_flows"] = stats.goodput_flows;
  json["goodput_rps"] = stats.goodput_rps;
  json["offered_rps"] = stats.offered_rps;
  json["retries_denied"] = stats.retries_denied;
  json["breaker_opens"] = stats.breaker_opens;
  json["mean_queue_wait_ms"] = stats.mean_queue_wait_ms;
  util::JsonArray p50;
  util::JsonArray p99;
  for (std::size_t t = 0; t < core::kFallbackTiers; ++t) {
    p50.emplace_back(stats.tier_p50_ms[t]);
    p99.emplace_back(stats.tier_p99_ms[t]);
  }
  json["tier_p50_ms"] = std::move(p50);
  json["tier_p99_ms"] = std::move(p99);
  return util::Json(std::move(json));
}

qos::QosConfig overload_qos_config(double load_multiplier,
                                   qos::SheddingPolicy policy,
                                   double retry_ratio) {
  qos::QosConfig config;
  config.arrivals.process = qos::ArrivalProcess::kPoisson;
  config.arrivals.load_multiplier = load_multiplier;
  config.arrivals.window_s = 10.0;
  config.admission.policy = policy;
  config.admission.service_slots = 2;
  config.admission.queue_capacity = 16;
  config.admission.deadline_s = 2.0;
  config.admission.local_service_s_per_mb = 0.02;
  config.retry_budget.ratio = retry_ratio;
  config.retry_budget.burst = 16.0;
  return config;
}

qos::QosConfig chaos_qos_config(double load_multiplier,
                                qos::SheddingPolicy policy,
                                double retry_ratio) {
  qos::QosConfig config = overload_qos_config(load_multiplier, policy,
                                              retry_ratio);
  // A small burst so tight budgets actually deny under chaos (the bucket
  // starts full; a 16-token burst would absorb a whole small soak run).
  config.retry_budget.burst = 2.0;
  config.breaker.enabled = true;
  config.breaker.window = 16;
  config.breaker.min_samples = 6;
  config.breaker.failure_threshold = 0.5;
  config.breaker.open_duration_s = 2.0;
  config.breaker.half_open_probes = 2;
  return config;
}

fault::FaultProfile chaos_fault_profile() {
  fault::FaultProfile profile;
  profile.horizon_s = 12.0;
  profile.server_mtbf_s = 15.0;
  profile.server_mttr_s = 3.0;
  profile.link_mtbf_s = 12.0;
  profile.link_mttr_s = 2.0;
  profile.cloud_mtbf_s = 30.0;
  profile.cloud_mttr_s = 1.0;
  // High enough that corrupt replicas reliably trip breakers in the soak
  // (corruption is the failure class the oracle resolver cannot see).
  profile.replica_corruption_prob = 0.1;
  return profile;
}

}  // namespace idde::sim
