# Empty dependencies file for fig6_density.
# This may be replaced when dependencies are built.
