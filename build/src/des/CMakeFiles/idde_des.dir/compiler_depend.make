# Empty compiler generated dependencies file for idde_des.
# This may be replaced when dependencies are built.
