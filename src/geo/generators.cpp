#include "geo/generators.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace idde::geo {

std::vector<Point> generate_uniform(std::size_t count,
                                    const BoundingBox& bounds,
                                    util::Rng& rng) {
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(Point{rng.uniform(bounds.min.x, bounds.max.x),
                           rng.uniform(bounds.min.y, bounds.max.y)});
  }
  return points;
}

std::vector<Point> generate_jittered_grid(std::size_t count,
                                          const BoundingBox& bounds,
                                          double jitter, util::Rng& rng) {
  IDDE_EXPECTS(jitter >= 0.0);
  std::vector<Point> points;
  points.reserve(count);
  if (count == 0) return points;
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  const std::size_t rows = (count + cols - 1) / cols;
  const double dx = bounds.width() / static_cast<double>(cols);
  const double dy = bounds.height() / static_cast<double>(rows);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    Point p{bounds.min.x + (static_cast<double>(c) + 0.5) * dx +
                rng.uniform(-jitter, jitter),
            bounds.min.y + (static_cast<double>(r) + 0.5) * dy +
                rng.uniform(-jitter, jitter)};
    points.push_back(bounds.clamp(p));
  }
  return points;
}

std::vector<Point> generate_thomas(std::size_t count,
                                   const BoundingBox& bounds,
                                   const ThomasParams& params, util::Rng& rng,
                                   const std::vector<Point>* centers) {
  IDDE_EXPECTS(params.background_fraction >= 0.0 &&
               params.background_fraction <= 1.0);
  IDDE_EXPECTS(params.cluster_stddev >= 0.0);
  std::vector<Point> parents;
  if (centers != nullptr && !centers->empty()) {
    parents = *centers;
  } else {
    IDDE_EXPECTS(params.parent_count > 0);
    parents = generate_uniform(params.parent_count, bounds, rng);
  }
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.bernoulli(params.background_fraction)) {
      points.push_back(Point{rng.uniform(bounds.min.x, bounds.max.x),
                             rng.uniform(bounds.min.y, bounds.max.y)});
      continue;
    }
    const Point& parent = parents[rng.index(parents.size())];
    const Point p{parent.x + rng.normal(0.0, params.cluster_stddev),
                  parent.y + rng.normal(0.0, params.cluster_stddev)};
    points.push_back(bounds.clamp(p));
  }
  return points;
}

}  // namespace idde::geo
