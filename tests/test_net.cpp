// Graph, topology generation, shortest paths, delivery latency, WAN model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/graph.hpp"
#include "net/graph_gen.hpp"
#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/wan_profile.hpp"

namespace {

using namespace idde::net;
using idde::util::Rng;

TEST(Graph, BasicAdjacency) {
  const Graph g(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].node, 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 1.0);
}

TEST(Graph, ConnectivityDetection) {
  EXPECT_TRUE(Graph(1, {}).is_connected());
  EXPECT_TRUE(Graph(0, {}).is_connected());
  EXPECT_FALSE(Graph(2, {}).is_connected());
  EXPECT_TRUE(Graph(3, {{0, 1, 1}, {1, 2, 1}}).is_connected());
  EXPECT_FALSE(Graph(4, {{0, 1, 1}, {2, 3, 1}}).is_connected());
}

TEST(Dijkstra, LinearChain) {
  const Graph g(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}});
  const auto d = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 7.0);
}

TEST(Dijkstra, PrefersCheaperDetour) {
  // Direct 0-2 costs 10, detour through 1 costs 3.
  const Graph g(3, {{0, 2, 10.0}, {0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_DOUBLE_EQ(dijkstra(g, 0)[2], 3.0);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  const Graph g(3, {{0, 1, 1.0}});
  EXPECT_EQ(dijkstra(g, 0)[2], kUnreachable);
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  const Graph g(2, {{0, 1, 5.0}, {0, 1, 2.0}});
  EXPECT_DOUBLE_EQ(dijkstra(g, 0)[1], 2.0);
}

TEST(CostMatrix, MatchesFloydWarshallOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.index(20);
    TopologyParams params{.density = 1.0 + rng.uniform() * 2.0,
                          .min_speed_mbps = 2000,
                          .max_speed_mbps = 6000};
    const Graph g = generate_topology_graph(n, params, rng);
    const CostMatrix matrix(g);
    const auto reference = floyd_warshall(g);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(matrix.cost(i, j), reference[i * n + j], 1e-12);
      }
    }
  }
}

// The blocked sweep visits intermediates tile-by-tile, so a shortest path's
// terms can associate differently than in the naive k-loop — last-ulp
// differences are expected, exact equality is not. Tolerance covers both
// operand orders; unreachable pairs must agree exactly (both infinite).
TEST(FloydWarshallBlocked, MatchesNaiveWithinTolerance) {
  Rng rng(37);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 5 + rng.index(60);
    TopologyParams params{.density = 1.0 + rng.uniform() * 2.0,
                          .min_speed_mbps = 2000,
                          .max_speed_mbps = 6000};
    const Graph g = generate_topology_graph(n, params, rng);
    const auto naive = floyd_warshall(g);
    // Block sizes straddling n exercise full tiles, ragged edge tiles, and
    // the single-tile degenerate case.
    for (const std::size_t block : {std::size_t{4}, std::size_t{16},
                                    std::size_t{64}}) {
      const auto blocked = floyd_warshall_blocked(g, block);
      ASSERT_EQ(blocked.size(), naive.size());
      for (std::size_t idx = 0; idx < naive.size(); ++idx) {
        if (naive[idx] == kUnreachable) {
          EXPECT_EQ(blocked[idx], kUnreachable) << "idx " << idx;
        } else {
          EXPECT_NEAR(blocked[idx], naive[idx],
                      1e-9 * std::max(1.0, naive[idx]))
              << "n " << n << " block " << block << " idx " << idx;
        }
      }
    }
  }
}

TEST(CostMatrix, SymmetricAndZeroDiagonal) {
  Rng rng(32);
  const Graph g = generate_topology_graph(15, {}, rng);
  const CostMatrix m(g);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(m.cost(i, i), 0.0);
    for (std::size_t j = 0; j < 15; ++j) {
      EXPECT_DOUBLE_EQ(m.cost(i, j), m.cost(j, i));
    }
  }
}

TEST(TopologyGen, AlwaysConnected) {
  Rng rng(33);
  for (const std::size_t n : {1u, 2u, 5u, 20u, 50u}) {
    for (const double density : {0.0, 0.5, 1.0, 3.0}) {
      TopologyParams params{.density = density};
      const Graph g = generate_topology_graph(n, params, rng);
      EXPECT_TRUE(g.is_connected()) << "n=" << n << " density=" << density;
    }
  }
}

TEST(TopologyGen, LinkCountFollowsDensity) {
  Rng rng(34);
  const std::size_t n = 30;
  for (const double density : {1.0, 2.0, 3.0}) {
    TopologyParams params{.density = density};
    const Graph g = generate_topology_graph(n, params, rng);
    EXPECT_EQ(g.edge_count(),
              static_cast<std::size_t>(std::llround(density * n)));
  }
}

TEST(TopologyGen, LinkCountCappedAtCompleteGraph) {
  Rng rng(35);
  TopologyParams params{.density = 100.0};
  const Graph g = generate_topology_graph(5, params, rng);
  EXPECT_EQ(g.edge_count(), 10u);  // C(5,2)
}

TEST(TopologyGen, WeightsWithinSpeedRange) {
  Rng rng(36);
  TopologyParams params{
      .density = 2.0, .min_speed_mbps = 2000, .max_speed_mbps = 6000};
  const auto edges = generate_topology(40, params, rng);
  for (const Edge& e : edges) {
    EXPECT_GE(e.weight, 1.0 / 6000.0);
    EXPECT_LE(e.weight, 1.0 / 2000.0);
  }
}

TEST(DeliveryLatency, CloudAndEdgeTransfers) {
  const Graph g(3, {{0, 1, 1.0 / 4000.0}, {1, 2, 1.0 / 4000.0}});
  DeliveryLatencyModel model(CostMatrix(g), 600.0);
  EXPECT_DOUBLE_EQ(model.cloud_transfer_seconds(60.0), 0.1);
  EXPECT_DOUBLE_EQ(model.edge_transfer_seconds(0, 0, 60.0), 0.0);
  EXPECT_NEAR(model.edge_transfer_seconds(0, 1, 60.0), 0.015, 1e-12);
  EXPECT_NEAR(model.edge_transfer_seconds(0, 2, 60.0), 0.030, 1e-12);
}

TEST(DeliveryLatency, BestDeliveryTakesMinIncludingCloud) {
  const Graph g(2, {{0, 1, 1.0 / 2000.0}});
  DeliveryLatencyModel model(CostMatrix(g), 600.0);
  const std::vector<std::size_t> hosts{0};
  // 30 MB: edge hop 15 ms, cloud 50 ms -> edge wins.
  EXPECT_NEAR(model.best_delivery_seconds(hosts, 1, 30.0), 0.015, 1e-12);
  // No hosts -> cloud.
  EXPECT_NEAR(model.best_delivery_seconds({}, 1, 30.0), 0.05, 1e-12);
  // Local host -> zero.
  EXPECT_DOUBLE_EQ(model.best_delivery_seconds(hosts, 0, 30.0), 0.0);
}

TEST(DeliveryLatency, CloudCapsDisconnectedTransfers) {
  const Graph g(2, {});  // no links: edge transfer impossible
  DeliveryLatencyModel model(CostMatrix(g), 600.0);
  const std::vector<std::size_t> hosts{0};
  EXPECT_NEAR(model.best_delivery_seconds(hosts, 1, 30.0), 0.05, 1e-12);
}

TEST(WanProfile, TargetsMatchFigure1) {
  const auto targets = figure1_targets();
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].name, "Edge");
  EXPECT_EQ(targets[1].name, "Singapore");
  EXPECT_EQ(targets[2].name, "London");
  EXPECT_EQ(targets[3].name, "Frankfurt");
}

TEST(WanProfile, SamplesAboveBaseRtt) {
  Rng rng(37);
  for (const WanTarget& t : figure1_targets()) {
    for (int h = 0; h < 168; h += 7) {
      EXPECT_GE(sample_rtt_ms(t, h, rng), t.base_rtt_ms);
    }
  }
}

TEST(WanProfile, WeeklyAveragesPreserveEdgeCloudGap) {
  const auto averages = run_figure1_protocol(1234);
  ASSERT_EQ(averages.size(), 4u);
  const double edge = averages[0].mean_rtt_ms;
  for (std::size_t i = 1; i < averages.size(); ++i) {
    // The motivational claim of Fig. 1: cloud RTT is >> edge RTT.
    EXPECT_GT(averages[i].mean_rtt_ms, 10.0 * edge);
    EXPECT_LE(averages[i].min_rtt_ms, averages[i].mean_rtt_ms);
    EXPECT_GE(averages[i].max_rtt_ms, averages[i].mean_rtt_ms);
  }
  EXPECT_LT(edge, 10.0);
}

TEST(WanProfile, DeterministicBySeed) {
  const auto a = run_figure1_protocol(99);
  const auto b = run_figure1_protocol(99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_rtt_ms, b[i].mean_rtt_ms);
  }
}

}  // namespace

namespace {

using namespace idde::net;
using idde::util::Rng;

TEST(ShortestRoute, ChainEndpointsAndHops) {
  const Graph g(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}});
  const Route route = shortest_route(g, 0, 3);
  EXPECT_DOUBLE_EQ(route.cost, 7.0);
  ASSERT_EQ(route.nodes.size(), 4u);
  EXPECT_EQ(route.nodes.front(), 0u);
  EXPECT_EQ(route.nodes.back(), 3u);
  EXPECT_EQ(route.hops(), 3u);
}

TEST(ShortestRoute, SelfRouteIsTrivial) {
  const Graph g(2, {{0, 1, 1.0}});
  const Route route = shortest_route(g, 1, 1);
  EXPECT_DOUBLE_EQ(route.cost, 0.0);
  ASSERT_EQ(route.nodes.size(), 1u);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(ShortestRoute, UnreachableIsEmpty) {
  const Graph g(3, {{0, 1, 1.0}});
  const Route route = shortest_route(g, 0, 2);
  EXPECT_EQ(route.cost, kUnreachable);
  EXPECT_TRUE(route.nodes.empty());
}

TEST(ShortestRoute, CostMatchesCostMatrixOnRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = generate_topology_graph(12, {.density = 1.5}, rng);
    const CostMatrix matrix(g);
    for (std::size_t a = 0; a < 12; ++a) {
      for (std::size_t b = 0; b < 12; ++b) {
        const Route route = shortest_route(g, a, b);
        EXPECT_NEAR(route.cost, matrix.cost(a, b), 1e-12);
        // The node sequence must be a real path with the claimed cost.
        if (!route.nodes.empty()) {
          double walked = 0.0;
          for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
            double best_edge = kUnreachable;
            for (const Neighbor& nb : g.neighbors(route.nodes[s])) {
              if (nb.node == route.nodes[s + 1]) {
                best_edge = std::min(best_edge, nb.weight);
              }
            }
            ASSERT_NE(best_edge, kUnreachable);
            walked += best_edge;
          }
          EXPECT_NEAR(walked, route.cost, 1e-12);
        }
      }
    }
  }
}

}  // namespace
