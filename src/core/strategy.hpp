// The two halves of an IDDE strategy (Definitions 1 and 2):
//  - AllocationProfile alpha: one ChannelSlot per user,
//  - DeliveryProfile sigma: the set of (server, item) replica placements,
//    tracked together with per-server storage headroom.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/instance.hpp"
#include "radio/interference.hpp"

namespace idde::core {

using radio::ChannelSlot;
using radio::kUnallocated;

/// alpha = {alpha_1 .. alpha_M}; alpha_j = kUnallocated encodes (0,0).
using AllocationProfile = std::vector<ChannelSlot>;

/// sigma = {sigma_{i,k}} with the storage constraint (Eq. 6) enforced at
/// every mutation. The cloud's implicit replicas (Eq. 7) are not stored.
class DeliveryProfile {
 public:
  explicit DeliveryProfile(const model::ProblemInstance& instance);

  /// True iff sigma_{i,k} = 1.
  [[nodiscard]] bool placed(std::size_t server, std::size_t item) const {
    return flags_[server * data_count_ + item];
  }

  /// Whether placing d_k on v_i would respect Eq. (6) (and is not a
  /// duplicate placement).
  [[nodiscard]] bool can_place(std::size_t server, std::size_t item) const;

  /// Sets sigma_{i,k} = 1. Aborts if infeasible — callers must check.
  void place(std::size_t server, std::size_t item);

  /// Remaining reserved space on v_i (MB).
  [[nodiscard]] double free_mb(std::size_t server) const {
    return free_mb_[server];
  }

  /// Servers currently hosting d_k (ascending ids).
  [[nodiscard]] std::span<const std::size_t> hosts(std::size_t item) const {
    return {hosts_flat_.data() + item * free_mb_.size(), host_count_[item]};
  }

  [[nodiscard]] std::size_t placement_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return free_mb_.size();
  }
  [[nodiscard]] std::size_t data_count() const noexcept { return data_count_; }

  /// Checkpoint/restore: rebuilds a profile from a placement list plus the
  /// exact per-server headroom of a prior run. place() accumulates
  /// free_mb by repeated subtraction, so replaying placements in a
  /// different order can perturb the low bits and flip a later can_place()
  /// — restoring the recorded headroom verbatim keeps resumed runs
  /// bit-identical to uninterrupted ones. `free_mb` must have one entry
  /// per server; placements must be feasible and duplicate-free (checked).
  [[nodiscard]] static DeliveryProfile restore(
      const model::ProblemInstance& instance,
      std::span<const std::pair<std::size_t, std::size_t>> placements,
      std::span<const double> free_mb);

 private:
  const model::ProblemInstance* instance_;
  std::size_t data_count_;
  std::vector<bool> flags_;      // N x K
  std::vector<double> free_mb_;  // per server
  /// Host lists as a flat K x N arena: item k's hosts occupy
  /// hosts_flat_[k*N .. k*N + host_count_[k]), ascending. An item can have
  /// at most N hosts, so the segments never overflow and place() is a
  /// shift-insert with no allocation — the planners call it once per
  /// committed placement inside their hot loops.
  std::vector<std::size_t> hosts_flat_;   // K x N
  std::vector<std::size_t> host_count_;   // per item
  std::size_t count_ = 0;
};

/// A complete IDDE strategy plus solver diagnostics.
struct Strategy {
  Strategy(AllocationProfile alloc, DeliveryProfile del)
      : allocation(std::move(alloc)), delivery(std::move(del)) {}

  AllocationProfile allocation;
  DeliveryProfile delivery;
  /// Whether the scheme implements edge-server collaboration at delivery
  /// time. Approaches whose delivery plane cannot fetch from neighbouring
  /// edge servers (CDP, DUP-G — see Section 4.1/5 of the paper) serve a
  /// request from the user's own server or the cloud only; Eq. 8's full
  /// min applies when true.
  bool collaborative_delivery = true;
  // Diagnostics, filled by the producing approach.
  std::string approach_name;
  std::size_t game_rounds = 0;    ///< Phase-1 best-response rounds
  std::size_t game_moves = 0;     ///< applied allocation updates
  bool game_converged = true;     ///< false if the round cap was hit
  std::size_t placements = 0;     ///< Phase-2 placements taken
};

}  // namespace idde::core
