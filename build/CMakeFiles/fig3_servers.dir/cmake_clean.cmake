file(REMOVE_RECURSE
  "CMakeFiles/fig3_servers.dir/bench/fig3_servers.cpp.o"
  "CMakeFiles/fig3_servers.dir/bench/fig3_servers.cpp.o.d"
  "bench/fig3_servers"
  "bench/fig3_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
