
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delivery.cpp" "src/core/CMakeFiles/idde_core.dir/delivery.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/delivery.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "src/core/CMakeFiles/idde_core.dir/fairness.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/fairness.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/idde_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/game.cpp.o.d"
  "/root/repo/src/core/greedy_delivery.cpp" "src/core/CMakeFiles/idde_core.dir/greedy_delivery.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/greedy_delivery.cpp.o.d"
  "/root/repo/src/core/idde_g.cpp" "src/core/CMakeFiles/idde_core.dir/idde_g.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/idde_g.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/idde_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/potential.cpp" "src/core/CMakeFiles/idde_core.dir/potential.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/potential.cpp.o.d"
  "/root/repo/src/core/refinement.cpp" "src/core/CMakeFiles/idde_core.dir/refinement.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/refinement.cpp.o.d"
  "/root/repo/src/core/strategy_io.cpp" "src/core/CMakeFiles/idde_core.dir/strategy_io.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/strategy_io.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/idde_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/idde_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/idde_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/idde_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/idde_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
