file(REMOVE_RECURSE
  "CMakeFiles/fig4_users.dir/bench/fig4_users.cpp.o"
  "CMakeFiles/fig4_users.dir/bench/fig4_users.cpp.o.d"
  "bench/fig4_users"
  "bench/fig4_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
