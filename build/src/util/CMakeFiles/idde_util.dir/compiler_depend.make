# Empty compiler generated dependencies file for idde_util.
# This may be replaced when dependencies are built.
