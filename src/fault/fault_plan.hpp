// Deterministic fault schedules for the edge graph.
//
// The paper's delivery model (Eq. 8/9) assumes a fault-free system: every
// replica named by sigma is reachable and the cloud leg never stalls. A
// FaultPlan is a pre-drawn, seed-reproducible schedule of the failures real
// edge storage systems live with: per-server crash/recover intervals,
// per-link down/up intervals, cloud brown-out intervals, and a per-replica
// corruption lottery. The plan is *data*, not behaviour — the analytic
// failover resolver (core/delivery), the repair planner
// (core/repair_planner) and the flow-level DES (des/flow_sim) all consume
// the same plan, so every layer degrades the same world.
//
// Determinism contract: a plan is a pure function of
// (instance topology, FaultProfile, seed). Every stream is forked from the
// master seed by a fixed stream id and corruption is a stateless hash, so
// generation order, thread count and query order cannot change the
// schedule. An inert profile (all rates zero) generates an inert plan, and
// every consumer short-circuits on `inert()` — the fault layer is
// guaranteed zero-cost when disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::fault {

/// Failure-process parameters. All processes are alternating renewal
/// processes: up-times ~ Exp(1/mtbf), down-times ~ Exp(1/mttr). A rate of
/// zero (the default) disables that failure class entirely.
struct FaultProfile {
  /// Length of the modelled window; faults are only scheduled in
  /// [0, horizon_s) and everything is up again afterwards.
  double horizon_s = 60.0;
  double server_mtbf_s = 0.0;  ///< 0 = servers never crash
  double server_mttr_s = 5.0;
  double link_mtbf_s = 0.0;  ///< 0 = links never fail
  double link_mttr_s = 5.0;
  double cloud_mtbf_s = 0.0;  ///< 0 = no cloud brown-outs
  double cloud_mttr_s = 2.0;
  /// Probability that a given (server, item) replica is corrupt (silently
  /// unreadable) for the whole window.
  double replica_corruption_prob = 0.0;

  /// True when no failure class is enabled — the all-zero profile.
  [[nodiscard]] bool inert() const noexcept {
    return server_mtbf_s <= 0.0 && link_mtbf_s <= 0.0 &&
           cloud_mtbf_s <= 0.0 && replica_corruption_prob <= 0.0;
  }
};

/// Half-open downtime interval [start_s, end_s).
struct Interval {
  double start_s = 0.0;
  double end_s = 0.0;
  friend bool operator==(const Interval&, const Interval&) = default;
};

class FaultPlan {
 public:
  using LinkKey = std::pair<std::size_t, std::size_t>;  ///< (min, max) ids

  /// Default plan: nothing ever fails.
  FaultPlan() = default;

  /// Draws a plan for `instance`'s topology from `profile`. Deterministic
  /// in (topology, profile, seed); see the header comment.
  [[nodiscard]] static FaultPlan generate(
      const model::ProblemInstance& instance, const FaultProfile& profile,
      std::uint64_t seed);

  // Manual construction (tests and targeted what-if studies). Intervals
  // must be added in increasing, non-overlapping order per entity.
  void add_server_downtime(std::size_t server, Interval interval);
  void add_link_downtime(std::size_t a, std::size_t b, Interval interval);
  void add_cloud_downtime(Interval interval);
  void set_replica_corruption(double probability, std::uint64_t seed);
  void set_horizon(double horizon_s);

  /// True when the plan schedules nothing — consumers take their
  /// fault-free fast path (bit-identical to a plan-less run).
  [[nodiscard]] bool inert() const noexcept;

  [[nodiscard]] double horizon_s() const noexcept { return horizon_s_; }

  // Point queries. Entities without scheduled downtime are always up.
  [[nodiscard]] bool server_up(std::size_t server, double t) const;
  /// Fills `mask` (resized to `server_count`) with 1/0 per server at time
  /// `t` — the degraded-world input of core::resolve_with_failover and
  /// core::RepairPlanner. Allocation-free once `mask` has capacity.
  void server_up_mask(std::size_t server_count, double t,
                      std::vector<std::uint8_t>& mask) const;
  [[nodiscard]] bool link_up(std::size_t a, std::size_t b, double t) const;
  [[nodiscard]] bool cloud_stalled(double t) const;
  [[nodiscard]] bool replica_corrupted(std::size_t server,
                                       std::size_t item) const;

  /// Completion time of an uncontended cloud transfer of `duration_s`
  /// started at `start_s`: the transfer stalls (rate 0) inside brown-out
  /// intervals and resumes afterwards.
  [[nodiscard]] double cloud_completion(double start_s,
                                        double duration_s) const;

  /// Sorted unique times at which *edge* availability (a server or a link)
  /// changes. Cloud brown-outs are excluded: they never alter the edge
  /// graph, only the cloud leg's timing.
  [[nodiscard]] const std::vector<double>& edge_change_times() const noexcept {
    return edge_changes_;
  }
  /// First edge-availability change strictly after `t` (+inf when none).
  [[nodiscard]] double next_edge_change_after(double t) const;

  // Epoch view of the edge-availability timeline. An epoch is a maximal
  // half-open interval over which the degraded edge graph is constant;
  // epoch e spans [epoch_starts()[e], epoch_starts()[e+1]) (the last one
  // is unbounded). This is the single source of epoch boundaries —
  // FaultInjector snapshots and ServeController tick gating both consume
  // it, so they can never disagree about where an epoch begins.
  /// [0.0] followed by every strictly positive edge-change time.
  [[nodiscard]] std::vector<double> epoch_starts() const;
  /// Index of the epoch containing `t` (t >= 0).
  [[nodiscard]] std::size_t epoch_index_at(double t) const;
  /// True when an edge-availability boundary lies in (from, to] — i.e.
  /// the degraded graph at `to` may differ from the one at `from`.
  [[nodiscard]] bool availability_changed_between(double from,
                                                 double to) const;

  // Introspection for tests and reporting.
  [[nodiscard]] const std::vector<std::vector<Interval>>& server_downtime()
      const noexcept {
    return server_down_;
  }
  [[nodiscard]] const std::map<LinkKey, std::vector<Interval>>& link_downtime()
      const noexcept {
    return link_down_;
  }
  [[nodiscard]] const std::vector<Interval>& cloud_downtime() const noexcept {
    return cloud_down_;
  }
  [[nodiscard]] double replica_corruption_prob() const noexcept {
    return corruption_prob_;
  }

 private:
  static void append_interval(std::vector<Interval>& intervals,
                              Interval interval);
  void record_edge_change(const Interval& interval);

  double horizon_s_ = 0.0;
  std::vector<std::vector<Interval>> server_down_;  // index = server id
  std::map<LinkKey, std::vector<Interval>> link_down_;
  std::vector<Interval> cloud_down_;
  std::vector<double> edge_changes_;  // sorted unique boundaries
  double corruption_prob_ = 0.0;
  std::uint64_t corruption_seed_ = 0;
};

inline constexpr double kNeverChanges = std::numeric_limits<double>::infinity();

}  // namespace idde::fault
