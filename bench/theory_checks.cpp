// Empirical checks of the paper's theory (Section 3), printed as tables:
//
//  Theorem 3  (potential game)     — fraction of best-response moves that
//                                    increase the Eq. 13 potential. The
//                                    proof assumes homogeneous gains; on
//                                    generic instances a small fraction of
//                                    moves may decrease it (EXPERIMENTS.md
//                                    discusses this known deviation).
//  Theorem 4  (finite convergence) — observed moves per user vs the cap.
//  Theorem 5  (POA)                — equilibrium R_avg over optimal R_avg
//                                    on brute-forceable micro instances;
//                                    must lie in [R_min/R_max, 1].
//  Theorems 6/7 (greedy quality)   — greedy latency reduction over optimal
//                                    reduction; must exceed (e-1)/2e and is
//                                    near 1 in practice.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/delivery.hpp"
#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "core/metrics.hpp"
#include "core/potential.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "solver/exhaustive.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

model::InstanceParams sized(std::size_t n, std::size_t m, std::size_t k) {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

void check_potential_and_convergence(int seeds) {
  std::printf("Theorems 3 & 4 — potential trajectory and move counts\n");
  util::TextTable table({"instance", "moves/user", "cap/user",
                         "potential-increasing moves", "converged"});
  for (const auto& [n, m] : {std::pair<std::size_t, std::size_t>{10, 40},
                             {20, 100}, {30, 200}}) {
    util::RunningStats moves_per_user;
    util::RunningStats increase_fraction;
    bool all_converged = true;
    for (int seed = 0; seed < seeds; ++seed) {
      const auto inst = model::make_instance(
          sized(n, m, 5), 31000 + static_cast<std::uint64_t>(seed));
      // Replay round by round to watch the potential.
      core::AllocationProfile profile(inst.user_count(), core::kUnallocated);
      double last = core::potential(inst, profile);
      std::size_t moves = 0;
      std::size_t increases = 0;
      core::GameOptions options;
      options.max_rounds = 1;
      for (std::size_t step = 0; step < 32 * m; ++step) {
        const auto result =
            core::IddeUGame(inst, options).run_from(profile);
        if (result.moves == 0) break;
        const double next = core::potential(inst, result.allocation);
        ++moves;
        if (next > last - 1e-12) ++increases;
        last = next;
        profile = result.allocation;
        if (step + 1 == 32 * m) all_converged = false;
      }
      moves_per_user.add(static_cast<double>(moves) /
                         static_cast<double>(m));
      increase_fraction.add(moves == 0 ? 1.0
                                       : static_cast<double>(increases) /
                                             static_cast<double>(moves));
    }
    table.start_row()
        .add(util::format("N={} M={}", n, m))
        .add(moves_per_user.mean())
        .add(32)
        .add(util::format("{}%", util::fixed(100.0 * increase_fraction.mean(), 1)))
        .add(all_converged ? "yes" : "NO");
  }
  table.print(std::cout);
}

void check_poa(int seeds) {
  std::printf("\nTheorem 5 — Price of Anarchy on micro instances\n");
  util::TextTable table(
      {"seed", "equilibrium R_avg", "optimal R_avg", "rho", "lower bound"});
  util::RunningStats rho_stats;
  for (int seed = 0; seed < seeds; ++seed) {
    const auto inst = model::make_instance(
        sized(3, 5, 2), 32000 + static_cast<std::uint64_t>(seed));
    const auto equilibrium = core::IddeUGame(inst).run();
    const double eq_rate =
        core::average_data_rate_mbps(inst, equilibrium.allocation);
    const double opt_rate =
        core::average_data_rate_mbps(inst, solver::optimal_allocation(inst));
    const double rho = opt_rate == 0.0 ? 1.0 : eq_rate / opt_rate;
    // Theorem 5's lower bound: R_min/R_max over the user population.
    double r_min = 1e300;
    double r_max = 0.0;
    for (const auto& user : inst.users()) {
      r_min = std::min(r_min, user.max_rate_mbps);
      r_max = std::max(r_max, user.max_rate_mbps);
    }
    rho_stats.add(rho);
    table.start_row()
        .add(seed)
        .add(eq_rate)
        .add(opt_rate)
        .add(rho)
        .add(r_min / r_max);
  }
  table.print(std::cout);
  std::printf("mean rho = %.3f (must be within [lower bound, 1])\n",
              rho_stats.mean());
}

void check_greedy_ratio(int seeds) {
  std::printf("\nTheorems 6/7 — greedy delivery vs optimal\n");
  const double paper_bound = (std::exp(1.0) - 1.0) / (2.0 * std::exp(1.0));
  util::TextTable table({"seed", "greedy reduction (s)",
                         "optimal reduction (s)", "ratio", "paper bound"});
  util::RunningStats ratio_stats;
  for (int seed = 0; seed < seeds; ++seed) {
    model::InstanceParams p = sized(4, 12, 3);
    p.min_storage_mb = 60.0;
    p.max_storage_mb = 120.0;
    const auto inst =
        model::make_instance(p, 33000 + static_cast<std::uint64_t>(seed));
    const auto allocation = core::IddeUGame(inst).run().allocation;
    const auto greedy = core::GreedyDeliveryPlanner(inst).plan(allocation);
    const auto optimal = solver::optimal_delivery(inst, allocation);
    core::DeliveryEvaluator base(inst, allocation);
    const double cloud = base.total_latency_seconds();
    const double greedy_reduction =
        cloud - core::total_latency_seconds(inst, allocation, greedy.delivery);
    const double optimal_reduction =
        cloud - core::total_latency_seconds(inst, allocation, optimal);
    const double ratio =
        optimal_reduction == 0.0 ? 1.0 : greedy_reduction / optimal_reduction;
    ratio_stats.add(ratio);
    table.start_row()
        .add(seed)
        .add(greedy_reduction, 4)
        .add(optimal_reduction, 4)
        .add(ratio, 4)
        .add(paper_bound, 4);
  }
  table.print(std::cout);
  std::printf("mean ratio = %.4f (paper guarantees >= %.4f)\n",
              ratio_stats.mean(), paper_bound);
}

}  // namespace

int main() {
  // The round-by-round replay intentionally runs one-round games; silence
  // the (expected) per-round "round cap" warnings.
  idde::util::set_log_level(idde::util::LogLevel::kError);
  const int seeds = static_cast<int>(idde::util::env_int_or("IDDE_SEEDS", 6));
  check_potential_and_convergence(seeds);
  check_poa(seeds);
  check_greedy_ratio(seeds);
  return 0;
}
