// Synthetic stand-in for the EUA dataset (github.com/swinedge/eua-dataset).
//
// The paper extracts 125 edge servers and 816 users from EUA's Melbourne CBD
// records and sub-samples (N, M) per experiment. The dataset is not bundled
// here, so we regenerate a layout with the same consumed statistics:
//  - 125 server sites on a jittered grid over a 2.0 x 2.0 km square
//    (EUA's servers are real base-station sites: regular with local noise),
//  - coverage radii U[100, 200] m (matching EUA-based studies, e.g. the
//    authors' prior work),
//  - 816 users from a Thomas cluster process around server sites plus a
//    uniform background, so coverage multiplicity spans 0..~6 like the CBD
//    extraction.
// See DESIGN.md §5 for the substitution argument.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/bbox.hpp"
#include "geo/point.hpp"
#include "util/random.hpp"

namespace idde::geo {

struct EuaScenarioParams {
  std::size_t server_count = 125;
  std::size_t user_count = 816;
  double area_side_m = 2000.0;
  double min_coverage_radius_m = 100.0;
  double max_coverage_radius_m = 200.0;
  double server_jitter_m = 60.0;
  double user_cluster_stddev_m = 80.0;
  double user_background_fraction = 0.25;
};

struct EuaScenario {
  BoundingBox bounds;
  std::vector<Point> server_positions;
  std::vector<double> coverage_radii_m;  ///< parallel to server_positions
  std::vector<Point> user_positions;
};

/// Generates the full 125-server / 816-user layout deterministically from
/// `rng`. Experiments then sub-sample servers and users out of it, the same
/// way the paper sub-samples the EUA extraction.
[[nodiscard]] EuaScenario generate_eua_scenario(const EuaScenarioParams& params,
                                                util::Rng& rng);

/// Sub-samples `n` servers and `m` users (without replacement) from a full
/// scenario; preserves pairing of positions and radii.
[[nodiscard]] EuaScenario subsample(const EuaScenario& full, std::size_t n,
                                    std::size_t m, util::Rng& rng);

/// Like subsample, but draws users covered by at least one *selected*
/// server first, falling back to uncovered users only when the covered
/// pool is exhausted. This mirrors the paper's EUA extraction, where the
/// experiment users are the ones inside the sampled servers' coverage
/// (Fig. 4(a)'s ~R_max plateau at M=50 requires near-total coverage).
[[nodiscard]] EuaScenario subsample_covered(const EuaScenario& full,
                                            std::size_t n, std::size_t m,
                                            util::Rng& rng);

}  // namespace idde::geo
