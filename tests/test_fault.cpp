// Fault layer: plan generation contracts, injector epoch algebra, the
// degraded-mode failover resolver, repair planning, and the analytic
// resilience metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/delivery.hpp"
#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "core/repair_planner.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

struct Solved {
  model::ProblemInstance instance;
  core::Strategy strategy;
};

Solved solved_instance(std::uint64_t seed) {
  model::ProblemInstance instance = model::make_instance(small_params(), seed);
  util::Rng rng(seed);
  core::Strategy strategy = core::IddeG().solve(instance, rng);
  return Solved{std::move(instance), std::move(strategy)};
}

fault::FaultProfile lively_profile() {
  fault::FaultProfile profile;
  profile.horizon_s = 60.0;
  profile.server_mtbf_s = 20.0;
  profile.server_mttr_s = 5.0;
  profile.link_mtbf_s = 15.0;
  profile.link_mttr_s = 4.0;
  profile.cloud_mtbf_s = 40.0;
  profile.cloud_mttr_s = 3.0;
  profile.replica_corruption_prob = 0.05;
  return profile;
}

TEST(FaultPlan, DefaultAndInertProfileAreInert) {
  const fault::FaultPlan empty;
  EXPECT_TRUE(empty.inert());
  EXPECT_TRUE(fault::FaultProfile{}.inert());

  const auto inst = model::make_instance(small_params(), 1);
  const auto plan =
      fault::FaultPlan::generate(inst, fault::FaultProfile{}, 99);
  EXPECT_TRUE(plan.inert());
  EXPECT_TRUE(plan.edge_change_times().empty());
  EXPECT_TRUE(plan.server_up(0, 0.0));
  EXPECT_TRUE(plan.link_up(0, 1, 5.0));
  EXPECT_FALSE(plan.cloud_stalled(1.0));
  EXPECT_FALSE(plan.replica_corrupted(3, 2));
}

TEST(FaultPlan, GeneratedIntervalsAreWellFormed) {
  const auto inst = model::make_instance(small_params(), 2);
  const auto profile = lively_profile();
  const auto plan = fault::FaultPlan::generate(inst, profile, 7);
  EXPECT_FALSE(plan.inert());

  const auto check = [&](const std::vector<fault::Interval>& intervals) {
    double last_end = 0.0;
    for (const fault::Interval& iv : intervals) {
      EXPECT_GE(iv.start_s, last_end);
      EXPECT_GT(iv.end_s, iv.start_s);
      EXPECT_LE(iv.end_s, profile.horizon_s);
      last_end = iv.end_s;
    }
  };
  for (const auto& intervals : plan.server_downtime()) check(intervals);
  for (const auto& [key, intervals] : plan.link_downtime()) {
    EXPECT_LT(key.first, key.second);
    check(intervals);
  }
  check(plan.cloud_downtime());

  const auto& changes = plan.edge_change_times();
  EXPECT_TRUE(std::is_sorted(changes.begin(), changes.end()));
  EXPECT_TRUE(std::adjacent_find(changes.begin(), changes.end()) ==
              changes.end());
  // Queries agree with the raw intervals.
  for (const auto& intervals : plan.server_downtime()) {
    for (const fault::Interval& iv : intervals) {
      const std::size_t i = static_cast<std::size_t>(
          &intervals - plan.server_downtime().data());
      EXPECT_FALSE(plan.server_up(i, iv.start_s));
      EXPECT_FALSE(plan.server_up(i, (iv.start_s + iv.end_s) / 2));
      EXPECT_TRUE(plan.server_up(i, iv.end_s));  // half-open
    }
  }
}

TEST(FaultPlan, DeterministicInSeedAndSensitiveToIt) {
  const auto inst = model::make_instance(small_params(), 3);
  const auto profile = lively_profile();
  const auto a = fault::FaultPlan::generate(inst, profile, 11);
  const auto b = fault::FaultPlan::generate(inst, profile, 11);
  const auto c = fault::FaultPlan::generate(inst, profile, 12);
  EXPECT_EQ(a.server_downtime(), b.server_downtime());
  EXPECT_EQ(a.link_downtime(), b.link_downtime());
  EXPECT_EQ(a.cloud_downtime(), b.cloud_downtime());
  EXPECT_EQ(a.edge_change_times(), b.edge_change_times());
  EXPECT_NE(a.server_downtime(), c.server_downtime());
  // Corruption is a stateless hash: query order cannot matter.
  EXPECT_EQ(a.replica_corrupted(4, 2), b.replica_corrupted(4, 2));
}

TEST(FaultPlan, CorruptionRateIsCalibrated) {
  const auto inst = model::make_instance(small_params(), 4);
  fault::FaultProfile profile;
  profile.replica_corruption_prob = 0.2;
  const auto plan = fault::FaultPlan::generate(inst, profile, 5);
  std::size_t corrupt = 0;
  const std::size_t trials = 20000;
  for (std::size_t s = 0; s < 200; ++s) {
    for (std::size_t k = 0; k < 100; ++k) {
      if (plan.replica_corrupted(s, k)) ++corrupt;
    }
  }
  const double rate = static_cast<double>(corrupt) / trials;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultPlan, CloudCompletionStallsThroughBrownouts) {
  fault::FaultPlan plan;
  plan.add_cloud_downtime({2.0, 5.0});
  plan.add_cloud_downtime({10.0, 11.0});
  EXPECT_TRUE(plan.cloud_stalled(3.0));
  EXPECT_FALSE(plan.cloud_stalled(5.0));
  // Transfer fits before the first brown-out: unaffected.
  EXPECT_DOUBLE_EQ(plan.cloud_completion(0.0, 1.5), 1.5);
  // Transfer hits the brown-out: stalls for its full 3 s.
  EXPECT_DOUBLE_EQ(plan.cloud_completion(1.0, 2.0), 6.0);
  // Transfer starting inside a brown-out waits for its end.
  EXPECT_DOUBLE_EQ(plan.cloud_completion(3.0, 1.0), 6.0);
  // Long transfer crosses both brown-outs.
  EXPECT_DOUBLE_EQ(plan.cloud_completion(0.0, 8.0), 12.0);
  // An inert plan never stalls.
  const fault::FaultPlan inert;
  EXPECT_DOUBLE_EQ(inert.cloud_completion(4.0, 2.5), 6.5);
}

TEST(FaultPlan, EdgeChangeTimesAndNextChange) {
  fault::FaultPlan plan;
  plan.add_server_downtime(2, {3.0, 7.0});
  plan.add_link_downtime(0, 1, {5.0, 9.0});
  const std::vector<double> expected{3.0, 5.0, 7.0, 9.0};
  EXPECT_EQ(plan.edge_change_times(), expected);
  EXPECT_DOUBLE_EQ(plan.next_edge_change_after(0.0), 3.0);
  EXPECT_DOUBLE_EQ(plan.next_edge_change_after(3.0), 5.0);
  EXPECT_DOUBLE_EQ(plan.next_edge_change_after(9.0), fault::kNeverChanges);
  // Cloud brown-outs never alter the edge graph.
  plan.add_cloud_downtime({1.0, 2.0});
  EXPECT_EQ(plan.edge_change_times(), expected);
}

TEST(FaultInjector, EpochsAreContiguousAndAgreeWithPlan) {
  const auto inst = model::make_instance(small_params(), 6);
  const auto plan = fault::FaultPlan::generate(inst, lively_profile(), 21);
  const fault::FaultInjector injector(inst, plan);
  ASSERT_GE(injector.epoch_count(), 1u);
  EXPECT_DOUBLE_EQ(injector.epoch(0).start_s, 0.0);
  for (std::size_t e = 0; e < injector.epoch_count(); ++e) {
    const auto& snap = injector.epoch(e);
    EXPECT_LT(snap.start_s, snap.end_s);
    if (e + 1 < injector.epoch_count()) {
      EXPECT_DOUBLE_EQ(snap.end_s, injector.epoch(e + 1).start_s);
    } else {
      EXPECT_EQ(snap.end_s, fault::kNeverChanges);
    }
    // The mask equals the plan's point queries anywhere in the epoch.
    const double mid = snap.end_s == fault::kNeverChanges
                           ? snap.start_s + 1.0
                           : (snap.start_s + snap.end_s) / 2;
    for (std::size_t i = 0; i < inst.server_count(); ++i) {
      EXPECT_EQ(snap.server_up[i] != 0, plan.server_up(i, mid));
    }
    EXPECT_EQ(injector.epoch_index(mid), e);
    EXPECT_EQ(injector.epoch_index(snap.start_s), e);
  }
  // The final epoch (past the horizon) has everything up again.
  const auto& last = injector.epoch(injector.epoch_count() - 1);
  EXPECT_TRUE(last.all_up);
  EXPECT_EQ(last.graph.edge_count(), inst.graph().edge_count());
}

// The plan's shared epoch view (epoch_starts / epoch_index_at /
// availability_changed_between) is the single source of truth the
// injector and serve::ServeController both slice on — it must agree with
// the injector's materialised epochs everywhere.
TEST(FaultInjector, PlanEpochViewMatchesInjectorSlicing) {
  const auto inst = model::make_instance(small_params(), 6);
  const auto plan = fault::FaultPlan::generate(inst, lively_profile(), 21);
  const fault::FaultInjector injector(inst, plan);

  const std::vector<double> starts = plan.epoch_starts();
  ASSERT_EQ(starts.size(), injector.epoch_count());
  for (std::size_t e = 0; e < starts.size(); ++e) {
    EXPECT_DOUBLE_EQ(starts[e], injector.epoch(e).start_s);
  }

  // Dense time sweep: the plan-side index always equals the injector's.
  for (double t = 0.0; t < plan.horizon_s() + 5.0; t += 0.25) {
    EXPECT_EQ(plan.epoch_index_at(t), injector.epoch_index(t)) << "t=" << t;
  }

  // availability_changed_between brackets exactly the epoch boundaries:
  // true iff some change time falls in (from, to].
  std::vector<std::uint8_t> before;
  std::vector<std::uint8_t> after;
  const double step = 0.5;
  for (double t = step; t < plan.horizon_s() + 5.0; t += step) {
    const bool changed_index =
        plan.epoch_index_at(t - step) != plan.epoch_index_at(t);
    EXPECT_EQ(plan.availability_changed_between(t - step, t), changed_index);
    if (!plan.availability_changed_between(t - step, t)) {
      // An unchanged interval really has a constant mask.
      plan.server_up_mask(inst.server_count(), t - step, before);
      plan.server_up_mask(inst.server_count(), t, after);
      EXPECT_EQ(before, after);
    }
  }
  EXPECT_FALSE(plan.availability_changed_between(1.0, 0.5));  // to < from
}

TEST(Failover, AllUpReproducesEq8AndPrimaryTier) {
  const auto s = solved_instance(7);
  const auto& inst = s.instance;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto slot = s.strategy.allocation[j];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    for (const std::size_t k : inst.requests().items_of(j)) {
      const double size = inst.data(k).size_mb;
      const auto decision = core::resolve_with_failover(
          inst, s.strategy.delivery.hosts(k), serving, size);
      EXPECT_EQ(decision.tier, core::FallbackTier::kPrimary);
      const double expected =
          slot.allocated()
              ? inst.latency().best_delivery_seconds(
                    s.strategy.delivery.hosts(k), serving, size)
              : inst.latency().cloud_transfer_seconds(size);
      EXPECT_DOUBLE_EQ(decision.seconds, expected);
    }
  }
}

TEST(Failover, DeadPrimaryFallsThroughTheTiers) {
  const auto s = solved_instance(8);
  const auto& inst = s.instance;
  // Find a request whose fault-free source is an edge replica.
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto slot = s.strategy.allocation[j];
    if (!slot.allocated()) continue;
    for (const std::size_t k : inst.requests().items_of(j)) {
      const double size = inst.data(k).size_mb;
      const auto hosts = s.strategy.delivery.hosts(k);
      const auto fault_free =
          core::resolve_with_failover(inst, hosts, slot.server, size);
      if (fault_free.source == core::kCloudSource) continue;

      // Kill the fault-free source: the request must still resolve, at a
      // strictly-worse-or-equal latency, on a non-primary tier.
      std::vector<std::uint8_t> up(inst.server_count(), 1);
      up[fault_free.source] = 0;
      const auto degraded =
          core::resolve_with_failover(inst, hosts, slot.server, size, up);
      if (slot.server == fault_free.source) {
        // The user's own server died: cloud-direct.
        EXPECT_EQ(degraded.source, core::kCloudSource);
        EXPECT_EQ(degraded.tier, core::FallbackTier::kCloud);
      } else {
        EXPECT_NE(degraded.source, fault_free.source);
        EXPECT_NE(degraded.tier, core::FallbackTier::kPrimary);
        EXPECT_GE(degraded.seconds, fault_free.seconds - 1e-12);
      }

      // Kill every server: only the cloud remains.
      std::vector<std::uint8_t> none(inst.server_count(), 0);
      const auto cloud_only =
          core::resolve_with_failover(inst, hosts, slot.server, size, none);
      EXPECT_EQ(cloud_only.source, core::kCloudSource);
      EXPECT_DOUBLE_EQ(cloud_only.seconds,
                       inst.latency().cloud_transfer_seconds(size));
      return;
    }
  }
  GTEST_SKIP() << "no edge-served request in this draw";
}

TEST(Failover, PreFilteredHostsClassifyAgainstReference) {
  const auto s = solved_instance(9);
  const auto& inst = s.instance;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto slot = s.strategy.allocation[j];
    if (!slot.allocated()) continue;
    for (const std::size_t k : inst.requests().items_of(j)) {
      const double size = inst.data(k).size_mb;
      const auto hosts = s.strategy.delivery.hosts(k);
      const auto fault_free =
          core::resolve_with_failover(inst, hosts, slot.server, size);
      if (fault_free.source == core::kCloudSource) continue;
      // Drop the primary from the degraded set (a corrupt replica) while
      // passing the full set as the tier reference: the fallback must not
      // be relabelled kPrimary.
      std::vector<std::size_t> filtered;
      for (const std::size_t host : hosts) {
        if (host != fault_free.source) filtered.push_back(host);
      }
      const auto degraded = core::resolve_with_failover(
          inst, filtered, slot.server, size, {}, nullptr, hosts);
      EXPECT_NE(degraded.tier, core::FallbackTier::kPrimary);
      return;
    }
  }
  GTEST_SKIP() << "no edge-served request in this draw";
}

TEST(RepairPlanner, AllUpReplanIsANoOpOnGreedySigma) {
  const auto inst = model::make_instance(small_params(), 10);
  util::Rng rng(10);
  const auto strategy = core::IddeG().solve(inst, rng);
  const std::vector<std::uint8_t> up(inst.server_count(), 1);
  const auto result = core::RepairPlanner(inst).replan(
      strategy.allocation, strategy.delivery, up);
  // Submodularity: a saturated greedy sigma admits no further profitable
  // placement, and nothing was lost — the replan reproduces sigma.
  EXPECT_EQ(result.lost_placements, 0u);
  EXPECT_EQ(result.repair_placements, 0u);
  EXPECT_EQ(result.delivery.placement_count(),
            strategy.delivery.placement_count());
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      EXPECT_TRUE(result.delivery.placed(i, k));
    }
  }
}

// replan() rewinds member scratch (heap, evaluator, effective allocation)
// per call; a warm planner must reproduce a fresh planner's repair exactly,
// including across different outage masks on the same instance.
TEST(RepairPlanner, ReusedPlannerMatchesFreshPlanner) {
  const auto inst = model::make_instance(small_params(), 12);
  util::Rng rng(12);
  const auto strategy = core::IddeG().solve(inst, rng);
  core::RepairPlanner warm(inst);
  for (std::size_t dead = 0; dead < inst.server_count(); ++dead) {
    std::vector<std::uint8_t> up(inst.server_count(), 1);
    up[dead] = 0;
    const auto reused =
        warm.replan(strategy.allocation, strategy.delivery, up);
    const auto fresh = core::RepairPlanner(inst).replan(
        strategy.allocation, strategy.delivery, up);
    EXPECT_EQ(reused.lost_placements, fresh.lost_placements) << dead;
    EXPECT_EQ(reused.repair_placements, fresh.repair_placements) << dead;
    EXPECT_DOUBLE_EQ(reused.recovered_gain_seconds,
                     fresh.recovered_gain_seconds)
        << dead;
    EXPECT_EQ(reused.delivery.placement_count(),
              fresh.delivery.placement_count())
        << dead;
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      for (std::size_t i = 0; i < inst.server_count(); ++i) {
        EXPECT_EQ(reused.delivery.placed(i, k), fresh.delivery.placed(i, k))
            << "dead " << dead << " server " << i << " item " << k;
      }
    }
  }
}

TEST(RepairPlanner, CrashLosesAndRepairsUnderStorageBudget) {
  const auto inst = model::make_instance(small_params(), 11);
  util::Rng rng(11);
  const auto strategy = core::IddeG().solve(inst, rng);
  // Crash the server hosting the most replicas.
  std::vector<std::size_t> load(inst.server_count(), 0);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) ++load[i];
  }
  const std::size_t dead = static_cast<std::size_t>(
      std::max_element(load.begin(), load.end()) - load.begin());
  ASSERT_GT(load[dead], 0u);
  std::vector<std::uint8_t> up(inst.server_count(), 1);
  up[dead] = 0;
  const auto result = core::RepairPlanner(inst).replan(
      strategy.allocation, strategy.delivery, up);
  EXPECT_EQ(result.lost_placements, load[dead]);
  // Nothing lands on the dead server, and Eq. 6 holds on the survivors.
  std::vector<double> used(inst.server_count(), 0.0);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : result.delivery.hosts(k)) {
      EXPECT_NE(i, dead);
      used[i] += inst.data(k).size_mb;
    }
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_LE(used[i], inst.server(i).storage_mb + 1e-9);
  }
  // The healed sigma serves (weakly) better than the pruned survivor set.
  core::DeliveryProfile pruned(inst);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      if (i != dead) pruned.place(i, k);
    }
  }
  EXPECT_LE(
      core::total_latency_seconds(inst, strategy.allocation, result.delivery),
      core::total_latency_seconds(inst, strategy.allocation, pruned) + 1e-9);
}

TEST(Resilience, InertPlanReproducesFaultFreeMetricsExactly) {
  const auto s = solved_instance(12);
  const fault::FaultPlan inert;
  const auto report = fault::evaluate_resilience(s.instance, s.strategy,
                                                 inert);
  const double fault_free = core::average_latency_ms(
      s.instance, s.strategy.allocation, s.strategy.delivery,
      s.strategy.collaborative_delivery);
  EXPECT_EQ(report.fault_free_latency_ms, fault_free);
  EXPECT_EQ(report.degraded_latency_ms, fault_free);
  EXPECT_EQ(report.availability, 1.0);
  EXPECT_EQ(report.tier_fraction[0], 1.0);
  EXPECT_EQ(report.lost_placements, 0u);
}

TEST(Resilience, DegradationOrderingAcrossPolicies) {
  const auto s = solved_instance(13);
  const auto plan =
      fault::FaultPlan::generate(s.instance, lively_profile(), 31);
  const auto none = fault::evaluate_resilience(s.instance, s.strategy, plan,
                                               fault::RepairPolicy::kNone);
  const auto greedy = fault::evaluate_resilience(
      s.instance, s.strategy, plan, fault::RepairPolicy::kGreedy);
  // Faults only hurt; repair only helps (it strictly extends the pruned
  // survivor set greedily).
  EXPECT_GE(none.degraded_latency_ms, none.fault_free_latency_ms - 1e-9);
  EXPECT_LE(greedy.degraded_latency_ms, none.degraded_latency_ms + 1e-9);
  EXPECT_GE(none.availability, 0.0);
  EXPECT_LE(none.availability, 1.0);
  const double mass = none.tier_fraction[0] + none.tier_fraction[1] +
                      none.tier_fraction[2];
  EXPECT_NEAR(mass, 1.0, 1e-9);
  EXPECT_GT(none.epochs, 1u);
  EXPECT_GT(greedy.repair_placements + greedy.lost_placements, 0u);
}

TEST(Resilience, SingleServerCrashNeverAbortsARun) {
  const auto s = solved_instance(14);
  const auto& inst = s.instance;
  for (std::size_t dead = 0; dead < inst.server_count(); ++dead) {
    std::vector<std::uint8_t> up(inst.server_count(), 1);
    up[dead] = 0;
    for (std::size_t j = 0; j < inst.user_count(); ++j) {
      const auto slot = s.strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t k : inst.requests().items_of(j)) {
        const auto decision = core::resolve_with_failover(
            inst, s.strategy.delivery.hosts(k), serving,
            inst.data(k).size_mb, up);
        EXPECT_GE(decision.seconds, 0.0);
        EXPECT_LT(decision.seconds, fault::kNeverChanges);
      }
    }
  }
}

TEST(FaultDes, FaultyReplayServesEveryRequestFinitely) {
  const auto s = solved_instance(15);
  const auto plan =
      fault::FaultPlan::generate(s.instance, lively_profile(), 41);
  ASSERT_FALSE(plan.inert());
  des::FlowSimOptions options;
  options.arrival_window_s = 30.0;  // overlap the fault horizon
  options.fault_plan = &plan;
  des::FlowLevelSimulator sim(s.instance, options);
  util::Rng rng(15);
  const auto result = sim.run(s.strategy, rng);
  EXPECT_EQ(result.flows.size(), s.instance.requests().total_requests());
  std::size_t tier_total = 0;
  for (const auto& flow : result.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
    EXPECT_LT(flow.duration_s(), 1e6);
  }
  for (const std::size_t count : result.tier_counts) tier_total += count;
  EXPECT_EQ(tier_total, result.flows.size());
  EXPECT_LE(result.availability, 1.0);
  // The degraded tail can only be at or beyond the fault-free tail.
  des::FlowSimOptions clean = options;
  clean.fault_plan = nullptr;
  util::Rng rng_clean(15);
  const auto baseline =
      des::FlowLevelSimulator(s.instance, clean).run(s.strategy, rng_clean);
  EXPECT_GE(result.p99_duration_ms, baseline.p99_duration_ms - 1e-9);
}

TEST(FaultDes, CloudBrownoutStallsTheCloudLeg) {
  const auto s = solved_instance(16);
  // Empty sigma: every request takes the cloud leg (delivery.hpp pins the
  // cloud-start default), so the brown-out must delay all of them.
  const core::Strategy strategy(s.strategy.allocation,
                                core::DeliveryProfile(s.instance));
  // Manual plan: one long brown-out covering every arrival.
  fault::FaultPlan plan;
  plan.add_cloud_downtime({0.0, 5.0});
  ASSERT_FALSE(plan.inert());
  des::FlowSimOptions options;
  options.fault_plan = &plan;
  des::FlowLevelSimulator sim(s.instance, options);
  util::Rng rng(16);
  const auto result = sim.run(strategy, rng);
  bool saw_cloud = false;
  for (const auto& flow : result.flows) {
    if (!flow.from_cloud) continue;
    saw_cloud = true;
    // Arrivals are at t=0, inside the brown-out: the cloud leg waits out
    // the stall before transferring.
    EXPECT_GE(flow.completion_s, 5.0);
  }
  ASSERT_TRUE(saw_cloud);
}

}  // namespace
