// ext_resilience — how much of IDDE-G's L_avg advantage survives faults?
//
// Sweeps failure severity x repair policy over the paper's five
// approaches at the Section 4.2 default size. Per (profile, approach,
// repetition): solve fault-free, draw a seeded FaultPlan, then score the
// strategy three ways — analytic resilience without repair (ride out the
// outage on surviving replicas + cloud), analytic resilience with greedy
// re-healing (core::RepairPlanner per epoch), and a flow-level DES replay
// through the same plan (retries, backoff, brown-out stalls). Also proves
// the "no single point of failure" property: every request still resolves
// (finitely) under every possible single-server crash.
//
// Emits BENCH_resilience.json (availability + degraded L_avg per approach
// and policy) for cross-PR tracking; --smoke runs the 1-rep moderate
// profile only (CI).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "core/delivery.hpp"
#include "core/metrics.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

/// Acceptance property: a crash of any single server never aborts a run —
/// every request still resolves via some fallback tier, finitely.
std::size_t check_single_server_crashes(const model::ProblemInstance& instance,
                                        const core::Strategy& strategy) {
  std::size_t fallback_requests = 0;
  std::vector<std::size_t> hosts;
  for (std::size_t dead = 0; dead < instance.server_count(); ++dead) {
    std::vector<std::uint8_t> up(instance.server_count(), 1);
    up[dead] = 0;
    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      const core::ChannelSlot slot = strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t k : instance.requests().items_of(j)) {
        hosts.clear();
        for (const std::size_t host : strategy.delivery.hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          hosts.push_back(host);
        }
        const core::FailoverDecision decision = core::resolve_with_failover(
            instance, hosts, serving, instance.data(k).size_mb, up);
        IDDE_ASSERT(decision.seconds >= 0.0 &&
                        decision.seconds < fault::kNeverChanges,
                    "request failed to resolve under a single-server crash");
        if (decision.tier != core::FallbackTier::kPrimary) {
          ++fallback_requests;
        }
      }
    }
  }
  return fallback_requests;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t reps = 3;
  std::size_t base_seed = 7300;
  std::string out = "BENCH_resilience.json";
  util::CliParser cli(
      "ext_resilience: failure-rate x repair-policy sweep — availability "
      "and degraded L_avg per approach under seeded fault plans");
  cli.add_flag("smoke", &smoke, "1-rep moderate profile only (CI)");
  cli.add_size("reps", &reps, "seeded instances per profile");
  cli.add_size("seed", &base_seed, "first instance seed");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  bool telemetry = false;
  std::string trace_out;
  cli.add_flag("telemetry", &telemetry,
               "enable runtime telemetry (adds a telemetry block to --out)");
  cli.add_string("trace-out", &trace_out,
                 "write a chrome://tracing JSON here (implies --telemetry)");
  if (!cli.parse(argc, argv)) return 0;
  if (smoke) reps = 1;
  if (telemetry) obs::set_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  const model::InstanceParams params = sim::paper_default_params();
  const model::InstanceBuilder builder(params);
  const auto approaches = sim::make_paper_approaches(100.0);
  const auto profiles = bench::make_severity_profiles(smoke);

  std::printf("ext_resilience: N=%zu M=%zu K=%zu, %zu rep(s)\n\n",
              params.server_count, params.user_count, params.data_count,
              reps);

  util::JsonArray json_profiles;
  std::size_t crash_fallbacks = 0;
  for (const bench::SeverityProfile& profile : profiles) {
    util::TextTable table({"approach", "fault-free L_avg (ms)",
                           "degraded (no repair)", "degraded (greedy repair)",
                           "availability", "DES p99 (ms)", "retries"});
    util::JsonArray json_approaches;
    for (const auto& approach : approaches) {
      util::RunningStats fault_free_ms, none_ms, greedy_ms, avail, des_p99,
          retries;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = base_seed + rep;
        const model::ProblemInstance instance = builder.build(seed);
        util::Rng rng(seed ^ 0x5e111e5ULL);
        const core::Strategy strategy = approach->solve(instance, rng);
        const fault::FaultPlan plan =
            fault::FaultPlan::generate(instance, profile.fault, seed ^ 0x4a17);

        const fault::ResilienceReport none = fault::evaluate_resilience(
            instance, strategy, plan, fault::RepairPolicy::kNone);
        const fault::ResilienceReport greedy = fault::evaluate_resilience(
            instance, strategy, plan, fault::RepairPolicy::kGreedy);
        fault_free_ms.add(none.fault_free_latency_ms);
        none_ms.add(none.degraded_latency_ms);
        greedy_ms.add(greedy.degraded_latency_ms);
        avail.add(none.availability);

        des::FlowSimOptions options;
        options.arrival_window_s = 10.0;
        options.fault_plan = &plan;
        const des::FlowSimResult replay =
            des::FlowLevelSimulator(instance, options).run(strategy, rng);
        des_p99.add(replay.p99_duration_ms);
        retries.add(static_cast<double>(replay.retry_count));

        if (approach->name() == "IDDE-G") {
          crash_fallbacks += check_single_server_crashes(instance, strategy);
        }
      }
      table.start_row()
          .add(approach->name())
          .add(fault_free_ms.mean())
          .add(none_ms.mean())
          .add(greedy_ms.mean())
          .add(avail.mean())
          .add(des_p99.mean())
          .add(retries.mean());
      util::JsonObject entry;
      entry["name"] = approach->name();
      entry["fault_free_latency_ms"] = fault_free_ms.mean();
      entry["degraded_latency_ms_no_repair"] = none_ms.mean();
      entry["degraded_latency_ms_greedy_repair"] = greedy_ms.mean();
      entry["availability"] = avail.mean();
      entry["des_p99_ms"] = des_p99.mean();
      entry["des_retries"] = retries.mean();
      json_approaches.emplace_back(std::move(entry));
    }
    std::printf("profile %s (server %g/%g, link %g/%g, cloud %g/%g, "
                "corruption %g):\n",
                profile.name, profile.fault.server_mtbf_s,
                profile.fault.server_mttr_s, profile.fault.link_mtbf_s,
                profile.fault.link_mttr_s, profile.fault.cloud_mtbf_s,
                profile.fault.cloud_mttr_s,
                profile.fault.replica_corruption_prob);
    table.print(std::cout);
    std::puts("");
    util::JsonObject json_profile;
    json_profile["name"] = std::string(profile.name);
    json_profile["horizon_s"] = profile.fault.horizon_s;
    json_profile["server_mtbf_s"] = profile.fault.server_mtbf_s;
    json_profile["approaches"] = std::move(json_approaches);
    json_profiles.emplace_back(std::move(json_profile));
  }

  std::printf(
      "single-server-crash sweep: every request resolved under every "
      "1-server crash (%zu request-resolutions fell back)\n",
      crash_fallbacks);

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("ext_resilience");
    util::JsonObject shape;
    shape["servers"] = params.server_count;
    shape["users"] = params.user_count;
    shape["data"] = params.data_count;
    shape["reps"] = reps;
    shape["base_seed"] = base_seed;
    doc["instance"] = std::move(shape);
    doc["profiles"] = std::move(json_profiles);
    doc["single_crash_fallback_resolutions"] = crash_fallbacks;
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::global().write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
}
