// DUP-G — after Xia et al., "Data, user and power allocations for caching
// in multi-access edge computing" (TPDS'22), adapted as in Section 4.1:
// a game-theoretical approach that maximises users' data rates but ignores
// edge-server collaboration. Concretely:
//  1. each server caches the data most demanded within its own coverage
//     (no coordination, heavy duplication),
//  2. users play the allocation game, but — because DUP-G couples the user
//     to the cache serving it — each user's candidates are restricted to
//     covering servers that hold at least one of its requested items
//     (falling back to all covering servers when none do).
// Evaluation still applies the full collaborative latency model (Eq. 8).
#pragma once

#include "core/approach.hpp"
#include "core/game.hpp"

namespace idde::baselines {

class DupG final : public core::Approach {
 public:
  /// `game_threads` is forwarded to GameOptions::threads for the step-2
  /// allocation game (1 = serial, 0 = hardware concurrency).
  explicit DupG(core::UpdateRule rule = core::UpdateRule::kBestImprovement,
                std::size_t game_threads = 1)
      : rule_(rule), game_threads_(game_threads) {}

  [[nodiscard]] std::string name() const override { return "DUP-G"; }

  [[nodiscard]] core::Strategy solve(const model::ProblemInstance& instance,
                                     util::Rng& rng) const override;

 private:
  core::UpdateRule rule_;
  std::size_t game_threads_;
};

}  // namespace idde::baselines
