# Empty dependencies file for idde_solver.
# This may be replaced when dependencies are built.
