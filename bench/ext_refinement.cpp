// Extension bench — the IDDE-G+ joint-refinement frontier: how much extra
// latency the epsilon-bounded reallocation buys, and what it costs in rate
// and fairness, across epsilon values.
#include <cstdio>
#include <iostream>

#include "core/fairness.hpp"
#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "core/refinement.hpp"
#include "sim/paper.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const int reps = util::experiment_reps(5);
  std::printf(
      "IDDE-G+ refinement frontier at N=30 M=200 K=5 (%d reps)\n\n", reps);

  const model::InstanceParams params = sim::paper_default_params();
  const model::InstanceBuilder builder(params);

  util::TextTable table({"variant", "R_avg (MB/s)", "L_avg (ms)",
                         "Jain index", "starved users"});
  const auto run = [&](const core::Approach& approach, std::string label) {
    util::RunningStats rate, latency, jain, starved;
    for (int rep = 0; rep < reps; ++rep) {
      const auto inst = builder.build(7300 + static_cast<std::uint64_t>(rep));
      util::Rng rng(1234 + static_cast<std::uint64_t>(rep));
      const auto strategy = approach.solve(inst, rng);
      const auto metrics = core::evaluate(inst, strategy);
      const auto fairness = core::fairness_report(inst, strategy.allocation);
      rate.add(metrics.avg_rate_mbps);
      latency.add(metrics.avg_latency_ms);
      jain.add(fairness.jain);
      starved.add(static_cast<double>(fairness.starved_users));
    }
    table.start_row()
        .add(std::move(label))
        .add(rate.mean())
        .add(latency.mean())
        .add(jain.mean(), 3)
        .add(starved.mean(), 1);
  };

  run(core::IddeG(), "IDDE-G (baseline)");
  for (const double eps : {0.0, 0.02, 0.05, 0.10, 0.25}) {
    core::RefinementOptions options;
    options.epsilon_fraction = eps;
    run(core::IddeGPlus(options),
        util::format("IDDE-G+ eps={}", util::fixed(eps, 2)));
  }
  table.print(std::cout);
  std::puts(
      "\nMeasured finding (a negative result worth keeping): the refinement "
      "moves latency by well under 1% even at eps=0.25. Phase 2's greedy "
      "placement already follows the equilibrium allocation closely enough "
      "that re-pointing users at their data has almost nothing left to "
      "collect — evidence that the paper's decoupled two-phase design "
      "loses very little against joint optimisation on these instances.");
  return 0;
}
