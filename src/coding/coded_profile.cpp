#include "coding/coded_profile.hpp"

#include "util/assert.hpp"

namespace idde::coding {

CodedDeliveryProfile::CodedDeliveryProfile(
    const model::ProblemInstance& instance, FragmentConfig config)
    : instance_(&instance),
      config_(config),
      data_count_(instance.data_count()),
      flags_(instance.server_count() * instance.data_count(), false),
      hosts_flat_(instance.data_count() * instance.server_count(), 0),
      host_count_(instance.data_count(), 0) {
  IDDE_EXPECTS(config.valid());
  free_kb_.reserve(instance.server_count());
  for (const model::EdgeServer& s : instance.servers()) {
    free_kb_.push_back(core::mb_to_kb(s.storage_mb));
  }
  frag_kb_.reserve(instance.data_count());
  frag_mb_.reserve(instance.data_count());
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    const double size_mb = instance.data(k).size_mb;
    frag_kb_.push_back(fragment_size_kb(size_mb, config.k));
    frag_mb_.push_back(fragment_size_mb(size_mb, config.k));
  }
}

bool CodedDeliveryProfile::can_place(std::size_t server,
                                     std::size_t item) const {
  IDDE_EXPECTS(server < free_kb_.size());
  IDDE_EXPECTS(item < data_count_);
  if (placed(server, item)) return false;
  if (host_count_[item] >= config_.n) return false;
  return frag_kb_[item] <= free_kb_[server];
}

void CodedDeliveryProfile::place(std::size_t server, std::size_t item) {
  IDDE_ASSERT(can_place(server, item), "infeasible fragment placement");
  flags_[server * data_count_ + item] = true;
  free_kb_[server] -= frag_kb_[item];
  std::size_t* const seg = hosts_flat_.data() + item * free_kb_.size();
  std::size_t pos = host_count_[item];
  while (pos > 0 && seg[pos - 1] > server) {
    seg[pos] = seg[pos - 1];
    --pos;
  }
  seg[pos] = server;
  ++host_count_[item];
  ++count_;
}

void CodedDeliveryProfile::remove(std::size_t server, std::size_t item) {
  IDDE_EXPECTS(server < free_kb_.size());
  IDDE_EXPECTS(item < data_count_);
  IDDE_ASSERT(placed(server, item), "removing absent fragment");
  flags_[server * data_count_ + item] = false;
  free_kb_[server] += frag_kb_[item];
  std::size_t* const seg = hosts_flat_.data() + item * free_kb_.size();
  std::size_t pos = 0;
  while (seg[pos] != server) ++pos;
  for (std::size_t tail = pos + 1; tail < host_count_[item]; ++tail) {
    seg[tail - 1] = seg[tail];
  }
  --host_count_[item];
  --count_;
}

CodedDeliveryProfile CodedDeliveryProfile::restore(
    const model::ProblemInstance& instance, FragmentConfig config,
    std::span<const std::pair<std::size_t, std::size_t>> placements) {
  CodedDeliveryProfile profile(instance, config);
  for (const auto& [server, item] : placements) {
    profile.place(server, item);
  }
  return profile;
}

}  // namespace idde::coding
