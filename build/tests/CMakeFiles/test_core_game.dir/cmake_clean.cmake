file(REMOVE_RECURSE
  "CMakeFiles/test_core_game.dir/test_core_game.cpp.o"
  "CMakeFiles/test_core_game.dir/test_core_game.cpp.o.d"
  "test_core_game"
  "test_core_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
