#include "core/health.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::core {

HealthTracker::HealthTracker(std::size_t server_count,
                             const HealthConfig& config)
    : config_(config), state_(server_count) {
  IDDE_EXPECTS(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0);
  IDDE_EXPECTS(config.demote_score > 0.0 && config.demote_score <= 1.0);
  IDDE_EXPECTS(config.recover_score >= config.demote_score &&
               config.recover_score <= 1.0);
  IDDE_EXPECTS(config.loss_weight >= 0.0);
}

void HealthTracker::record_leg(std::size_t server, double expected_s,
                               double observed_s) {
  IDDE_EXPECTS(server < state_.size());
  IDDE_EXPECTS(expected_s > 0.0 && observed_s >= 0.0);
  ServerHealth& h = state_[server];
  const double ratio = observed_s / expected_s;
  // The first observation seeds the EWMA directly so a server's score
  // reflects evidence, not the optimistic prior, from leg one.
  h.ewma_inflation = h.legs == 0
                         ? ratio
                         : h.ewma_inflation +
                               config_.ewma_alpha * (ratio - h.ewma_inflation);
  ++h.legs;
  refresh_demotion(server);
}

void HealthTracker::record_loss(std::size_t server) {
  IDDE_EXPECTS(server < state_.size());
  ++state_[server].losses;
  refresh_demotion(server);
}

double HealthTracker::score(std::size_t server) const {
  IDDE_EXPECTS(server < state_.size());
  const ServerHealth& h = state_[server];
  const std::uint64_t samples = h.legs + h.losses;
  if (samples == 0) return 1.0;
  const double loss_frac =
      static_cast<double>(h.losses) / static_cast<double>(samples);
  // A faster-than-expected server is still just healthy (score capped at
  // 1), never super-healthy — the score demotes, it cannot promote.
  const double inflation = std::max(h.ewma_inflation, 1.0);
  return 1.0 / (inflation + config_.loss_weight * loss_frac);
}

void HealthTracker::refresh_demotion(std::size_t server) {
  ServerHealth& h = state_[server];
  if (h.legs + h.losses < config_.min_samples) return;
  const double s = score(server);
  if (!h.demoted && s < config_.demote_score) {
    h.demoted = true;
    IDDE_OBS_COUNT("health.demotions_total", 1);
  } else if (h.demoted && s > config_.recover_score) {
    h.demoted = false;
    IDDE_OBS_COUNT("health.recoveries_total", 1);
  }
}

void HealthTracker::restore_state(std::vector<ServerHealth> state) {
  IDDE_EXPECTS(state.size() == state_.size());
  state_ = std::move(state);
}

namespace {

/// Health-weighted Eq. 8 argmin: scan order, cloud cap and tie-breaks
/// match delivery.cpp's argmin_source exactly; only the comparison key is
/// divided by the host score. Division by the fresh-tracker score of 1.0
/// is bit-exact, so no-evidence runs reproduce the unweighted argmin.
std::size_t argmin_source_weighted(const model::ProblemInstance& instance,
                                   std::span<const std::size_t> hosts,
                                   std::size_t serving, double size_mb,
                                   std::span<const std::uint8_t> server_up,
                                   const net::CostMatrix* costs,
                                   const HealthTracker* health,
                                   double& best_raw_seconds) {
  const auto& latency = instance.latency();
  std::size_t source = kCloudSource;
  best_raw_seconds = latency.cloud_transfer_seconds(size_mb);
  double best_weighted = best_raw_seconds;  // cloud leg is never weighted
  for (const std::size_t host : hosts) {
    if (!server_up.empty() && !server_up[host]) continue;
    const double cost =
        costs != nullptr ? costs->cost(host, serving)
                         : latency.costs().cost(host, serving);
    const double seconds = cost * size_mb;
    const double weighted =
        health != nullptr ? seconds / health->score(host) : seconds;
    if (weighted < best_weighted) {
      best_weighted = weighted;
      best_raw_seconds = seconds;
      source = host;
    }
  }
  return source;
}

void note_resolution(const FailoverDecision& decision) {
  switch (decision.tier) {
    case FallbackTier::kPrimary:
      IDDE_OBS_COUNT("resolve.primary_total", 1);
      break;
    case FallbackTier::kReplica:
      IDDE_OBS_COUNT("resolve.replica_total", 1);
      break;
    case FallbackTier::kCloud:
      IDDE_OBS_COUNT("resolve.cloud_total", 1);
      break;
  }
  IDDE_OBS_HISTOGRAM("resolve.latency_ms", decision.seconds * 1e3);
}

}  // namespace

FailoverDecision resolve_with_health(
    const model::ProblemInstance& instance, std::span<const std::size_t> hosts,
    std::size_t serving, double size_mb, const HealthTracker* health,
    std::span<const std::uint8_t> server_up,
    const net::CostMatrix* degraded_costs,
    std::span<const std::size_t> fault_free_hosts) {
  const std::span<const std::size_t> reference =
      fault_free_hosts.empty() ? hosts : fault_free_hosts;
  FailoverDecision decision;
  const bool serving_dead = serving != ChannelSlot::kNone &&
                            !server_up.empty() && !server_up[serving];
  if (serving == ChannelSlot::kNone || serving_dead) {
    // Same cloud-direct short-circuit as resolve_with_failover: health
    // cannot resurrect a dead or channel-less path.
    decision.source = kCloudSource;
    decision.seconds = instance.latency().cloud_transfer_seconds(size_mb);
    double fault_free = 0.0;
    const std::size_t fault_free_source =
        serving == ChannelSlot::kNone
            ? kCloudSource
            : argmin_source_weighted(instance, reference, serving, size_mb, {},
                                     nullptr, nullptr, fault_free);
    decision.tier = fault_free_source == kCloudSource ? FallbackTier::kPrimary
                                                      : FallbackTier::kCloud;
    note_resolution(decision);
    return decision;
  }

  // Tier reference stays the fault-free, health-blind argmin: a request
  // steered off its primary by a bad health score is reported as kReplica
  // (a health fallback), not relabelled kPrimary.
  double fault_free_seconds = 0.0;
  const std::size_t fault_free_source =
      argmin_source_weighted(instance, reference, serving, size_mb, {}, nullptr,
                             nullptr, fault_free_seconds);
  decision.source =
      argmin_source_weighted(instance, hosts, serving, size_mb, server_up,
                             degraded_costs, health, decision.seconds);
  if (decision.source == fault_free_source) {
    decision.tier = FallbackTier::kPrimary;
  } else if (decision.source == kCloudSource) {
    decision.tier = FallbackTier::kCloud;
  } else {
    decision.tier = FallbackTier::kReplica;
  }
  note_resolution(decision);
  return decision;
}

}  // namespace idde::core
