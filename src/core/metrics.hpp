// The paper's three evaluation metrics (Section 4.4): R_avg, L_avg and the
// computation time (measured by the harness, not here).
#pragma once

#include <vector>

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

/// Per-user actual data rates R_j (Eq. 4): Shannon rate at the allocated
/// channel, capped at R_{j,max}; 0 for unallocated users. MB/s.
[[nodiscard]] std::vector<double> user_rates(
    const model::ProblemInstance& instance,
    const AllocationProfile& allocation);

/// R_avg (Eq. 5): mean over all M users (unallocated count as 0). MB/s.
[[nodiscard]] double average_data_rate_mbps(const model::ProblemInstance& instance,
                                       const AllocationProfile& allocation);

/// L_avg (Eq. 9) in milliseconds (the paper reports ms). `collaborative`
/// selects full Eq. 8 delivery vs the local-or-cloud semantics of the
/// non-collaborative baselines.
[[nodiscard]] double average_latency_ms(const model::ProblemInstance& instance,
                                        const AllocationProfile& allocation,
                                        const DeliveryProfile& delivery,
                                        bool collaborative = true);

/// Metric bundle for one solved strategy.
struct StrategyMetrics {
  double avg_rate_mbps = 0.0;
  double avg_latency_ms = 0.0;
  std::size_t allocated_users = 0;
  std::size_t placements = 0;
};

[[nodiscard]] StrategyMetrics evaluate(const model::ProblemInstance& instance,
                                       const Strategy& strategy);

}  // namespace idde::core
