file(REMOVE_RECURSE
  "CMakeFiles/ablation_sinr.dir/bench/ablation_sinr.cpp.o"
  "CMakeFiles/ablation_sinr.dir/bench/ablation_sinr.cpp.o.d"
  "bench/ablation_sinr"
  "bench/ablation_sinr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sinr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
