// Strategy-level feasibility checks: Eq. (1) (allocation only within
// coverage), channel-range validity, and Eq. (6) (storage constraint,
// re-verified from scratch rather than trusting DeliveryProfile's running
// bookkeeping).
#pragma once

#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

[[nodiscard]] std::vector<std::string> validate_strategy(
    const model::ProblemInstance& instance, const Strategy& strategy);

}  // namespace idde::core
