#include "core/fairness.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "util/stats.hpp"

namespace idde::core {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport fairness_report(const model::ProblemInstance& instance,
                               const AllocationProfile& allocation) {
  const auto rates = user_rates(instance, allocation);
  FairnessReport report;
  if (rates.empty()) return report;
  report.jain = jain_index(rates);
  report.p10_rate_mbps = util::percentile(rates, 10.0);
  report.min_rate_mbps = *std::min_element(rates.begin(), rates.end());
  report.starved_users = static_cast<std::size_t>(
      std::count(rates.begin(), rates.end(), 0.0));
  return report;
}

}  // namespace idde::core
