// Coded strategy (de)serialisation: the allocation profile, the (n, k)
// code shape and the fragment placements. Same hostile-input contract as
// core::strategy_io — every malformed document throws util::JsonError,
// never aborts or loads silently wrong.
#pragma once

#include <string>

#include "coding/coded_profile.hpp"
#include "model/instance.hpp"
#include "util/json.hpp"

namespace idde::coding {

[[nodiscard]] util::Json coded_strategy_to_json(const CodedStrategy& strategy);

/// Rebuilds a coded strategy against `instance`. Throws util::JsonError
/// on malformed input, an invalid (n, k) shape (needs 1 <= k <= n), and
/// placements that are duplicates, exceed the item's n fragments, or
/// violate the fragment-size storage constraint (checked via can_place).
[[nodiscard]] CodedStrategy coded_strategy_from_json(
    const model::ProblemInstance& instance, const util::Json& json);

[[nodiscard]] std::string coded_strategy_to_string(
    const CodedStrategy& strategy, int indent = -1);
[[nodiscard]] CodedStrategy coded_strategy_from_string(
    const model::ProblemInstance& instance, const std::string& text);

}  // namespace idde::coding
