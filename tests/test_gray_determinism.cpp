// Gray determinism contract (mirrors test_fault_determinism.cpp): with an
// active DegradationPlan and hedged, health-aware delivery, the full
// pipeline — solve, draw the plan, replay through the hedged DES — must be
// bit-identical across solver thread counts and across the batched SoA
// engine toggle. The gray layer (plan generation, loss lottery, health
// scores, hedge races) is single-threaded and seed-pure on top of an
// engine that already guarantees an identical equilibrium. Runs under TSan
// in CI next to the fault determinism suite.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/idde_g.hpp"
#include "des/flow_sim.hpp"
#include "fault/degradation.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

fault::DegradationProfile lively_profile() {
  fault::DegradationProfile profile;
  profile.horizon_s = 60.0;
  profile.gray_fraction = 0.6;
  profile.peak_multiplier_min = 3.0;
  profile.peak_multiplier_max = 8.0;
  profile.loss_prob_max = 0.1;
  profile.onset_latest_s = 5.0;
  return profile;
}

core::Strategy solve_variant(const model::ProblemInstance& inst,
                             std::size_t threads, bool batched,
                             std::uint64_t seed) {
  core::IddeGOptions options;
  options.game.threads = threads;
  options.game.batched = batched;
  util::Rng rng(seed);
  return core::IddeG(options).solve(inst, rng);
}

void expect_same_result(const des::FlowSimResult& a,
                        const des::FlowSimResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s) << f;
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s) << f;
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries) << f;
    EXPECT_EQ(a.flows[f].tier, b.flows[f].tier) << f;
    EXPECT_EQ(a.flows[f].hedged, b.flows[f].hedged) << f;
    EXPECT_EQ(a.flows[f].hedge_won, b.flows[f].hedge_won) << f;
    EXPECT_EQ(a.flows[f].losses, b.flows[f].losses) << f;
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
  EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
  EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.retry_count, b.retry_count);
  EXPECT_EQ(a.tier_counts, b.tier_counts);
  EXPECT_EQ(a.hedge_launches, b.hedge_launches);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedge_cancelled, b.hedge_cancelled);
  EXPECT_EQ(a.loss_aborts, b.loss_aborts);
  EXPECT_EQ(a.hedge_wasted_mb, b.hedge_wasted_mb);
}

TEST(GrayDeterminism, PlanIsBitIdenticalForSameSeed) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto a =
        fault::DegradationPlan::generate(inst, lively_profile(), seed * 883);
    const auto b =
        fault::DegradationPlan::generate(inst, lively_profile(), seed * 883);
    EXPECT_EQ(a, b);
    const auto c = fault::DegradationPlan::generate(inst, lively_profile(),
                                                    seed * 883 + 1);
    EXPECT_NE(a, c);
  }
}

// The hedged replay under an active gray plan must not depend on how the
// equilibrium was computed: 1 solver thread vs hardware threads, scalar vs
// batched slot evaluation — four variants, one result.
TEST(GrayDeterminism, HedgedPipelineIdenticalAcrossSolverVariants) {
  for (std::uint64_t seed = 50; seed <= 52; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto plan =
        fault::DegradationPlan::generate(inst, lively_profile(), seed ^ 0x6a);
    ASSERT_FALSE(plan.inert());

    des::FlowSimOptions options;
    options.arrival_window_s = 15.0;
    options.degradation = &plan;
    options.hedge.enabled = true;
    options.hedge.health_aware = true;
    // Aggressive deadline so the run exercises real hedge races, not just
    // the health-aware resolver.
    options.hedge.deadline_factor = 2.0;

    const auto replay = [&](const core::Strategy& strategy) {
      util::Rng rng(seed);
      return des::FlowLevelSimulator(inst, options).run(strategy, rng);
    };

    const auto reference = replay(solve_variant(inst, 1, false, seed));
    expect_same_result(replay(solve_variant(inst, 0, false, seed)),
                       reference);
    expect_same_result(replay(solve_variant(inst, 1, true, seed)),
                       reference);
    expect_same_result(replay(solve_variant(inst, 0, true, seed)),
                       reference);
  }
}

}  // namespace
