// Canonical definitions of the paper's experiment sets (Table 2) and the
// Section 4.2 default parameters. Every bench binary pulls its sweep from
// here so the figures stay consistent with one source of truth.
#pragma once

#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace idde::sim {

/// Section 4.2 defaults: N=30, M=200, K=5, density=1.0 on the 125-server /
/// 816-user EUA-like layout.
[[nodiscard]] model::InstanceParams paper_default_params();

/// Set #1: N = 20..50 step 5 (M=200, K=5, density=1.0). Figures 3(a,b).
[[nodiscard]] std::vector<SweepPoint> paper_set1();
/// Set #2: M = 50..350 step 50 (N=30, K=5, density=1.0). Figures 4(a,b).
[[nodiscard]] std::vector<SweepPoint> paper_set2();
/// Set #3: K = 2..8 step 1 (N=30, M=200, density=1.0). Figures 5(a,b).
[[nodiscard]] std::vector<SweepPoint> paper_set3();
/// Set #4: density = 1.0..3.0 step 0.4 (N=30, M=200, K=5). Figures 6(a,b).
[[nodiscard]] std::vector<SweepPoint> paper_set4();

struct PaperSet {
  std::string name;      ///< "Set #1"
  std::string x_label;   ///< "N"
  std::string figure;    ///< "Fig. 3"
  std::vector<SweepPoint> points;
};

/// All four sets (for Fig. 7's computation-time panel).
[[nodiscard]] std::vector<PaperSet> paper_sets();

/// Renders Table 2 (the parameter grid) for bench preambles.
[[nodiscard]] std::string table2_text();

}  // namespace idde::sim
