// Fixture: deliberate legacy-rule violations pinned by tests/golden.json.
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex raw_mutex;  // naked-sync

int helper() {
  assert(1 + 1 == 2);  // naked-assert
  static_assert(sizeof(int) >= 2);  // exempt on its own line
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // naked-sleep
  const auto t0 = std::chrono::steady_clock::now();  // naked-timing
  (void)t0;
  return rand();  // naked-rand
}

}  // namespace fixture
