#!/usr/bin/env bash
# clang-tidy driver for the idde tree.
#
# Usage: tools/lint/run_clang_tidy.sh [-p BUILD_DIR] [--strict] [FILE...]
#
#   -p BUILD_DIR   compile-database directory (default: ./build; configured
#                  with CMAKE_EXPORT_COMPILE_COMMANDS=ON, which the
#                  top-level CMakeLists sets unconditionally)
#   --strict       fail (exit 2) when clang-tidy is not installed; without
#                  it a missing tool prints a notice and exits 0 so the
#                  CMake `lint` target stays usable on gcc-only machines
#   FILE...        restrict the run to the given sources (default: every
#                  first-party .cpp under src/ bench/ tools/ examples/)
#
# Findings go to stdout and, when IDDE_TIDY_LOG is set, to that file too
# (the CI job uploads it as an artifact on failure). Exit 1 on findings,
# 2 when clang-tidy itself fails (crash, missing header, bad compile
# database) without emitting a matchable diagnostic.
set -u -o pipefail

cd "$(dirname "$0")/../.."

build_dir=build
strict=0
files=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -p) build_dir="$2"; shift 2 ;;
    --strict) strict=1; shift ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) files+=("$1"); shift ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18; do
    if command -v "$candidate" >/dev/null 2>&1; then tidy="$candidate"; break; fi
  done
fi
if [[ -z "$tidy" ]]; then
  if [[ "$strict" -eq 1 ]]; then
    echo "run_clang_tidy: clang-tidy not found (strict mode)" >&2
    exit 2
  fi
  echo "run_clang_tidy: clang-tidy not installed; skipping (use --strict to fail)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile database at $build_dir/compile_commands.json" >&2
  echo "  configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

if [[ ${#files[@]} -eq 0 ]]; then
  # Tests are deliberately out of scope: gtest macros trip bugprone-* and
  # the suites are not shipped code. They still build under -Werror.
  mapfile -t files < <(find src bench tools examples -name '*.cpp' | sort)
fi

log="${IDDE_TIDY_LOG:-}"
jobs="$(nproc 2>/dev/null || echo 4)"
echo "run_clang_tidy: $tidy, ${#files[@]} files, $jobs jobs"

hits="/tmp/idde_tidy_hits.$$"
xargs_status_file="/tmp/idde_tidy_status.$$"
trap 'rm -f "$hits" "$xargs_status_file"' EXIT

# xargs fan-out: clang-tidy is single-threaded per TU. stderr is folded
# into the checked stream (crashes and compile-database errors land there),
# and the xargs stage's exit status is written to a file so the tee/grep
# stages cannot mask a clang-tidy failure that prints no diagnostic.
{
  printf '%s\n' "${files[@]}" \
    | xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet 2>&1
  echo "$?" > "$xargs_status_file"
} \
  | { if [[ -n "$log" ]]; then tee "$log"; else cat; fi; } \
  | grep -E "warning:|error:" > "$hits" || true
xargs_status="$(cat "$xargs_status_file" 2>/dev/null || echo 1)"

status=0
if [[ -s "$hits" ]]; then
  echo "run_clang_tidy: findings:"
  cat "$hits"
  status=1
fi
if [[ "$xargs_status" -ne 0 ]]; then
  echo "run_clang_tidy: clang-tidy failed (xargs exit $xargs_status)" >&2
  if [[ "$status" -eq 0 ]]; then status=2; fi
fi
if [[ "$status" -eq 0 ]]; then
  echo "run_clang_tidy: clean"
fi
exit "$status"
