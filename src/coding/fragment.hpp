// MDS fragment arithmetic for erasure-coded placement (DESIGN.md §16).
//
// An (n, k) code splits each item into equal-size fragments so that *any*
// k of the n distinct fragments reconstruct it. Placement stores at most
// one fragment per (server, item) — fragments on distinct servers are
// distinct by construction — and delivery collects the k cheapest
// surviving fragments, topping up from the cloud when fewer than k edge
// fragments are reachable. k = 1 is a repetition code: fragments are
// whole-item copies and every coded code path reduces bit-identically to
// the replication stack (core::DeliveryProfile / resolve_with_failover).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/strategy.hpp"

namespace idde::coding {

/// The (n, k) shape of the code. n bounds how many distinct fragments of
/// one item exist (and hence how many servers may host it); k is the
/// reconstruction threshold. Replication is exactly {n, 1}.
struct FragmentConfig {
  std::size_t n = 1;  ///< distinct fragments available for placement
  std::size_t k = 1;  ///< fragments needed to reconstruct the item

  [[nodiscard]] bool valid() const noexcept { return k >= 1 && n >= k; }
  /// True when fragments are whole-item copies (the replication regime).
  [[nodiscard]] bool replication() const noexcept { return k == 1; }

  friend bool operator==(const FragmentConfig&,
                         const FragmentConfig&) = default;
};

/// Eq. 6 storage cost of one fragment, exact KB. Rounded *up* so k
/// fragments never account for less than the whole item (the
/// storage-conservative convention); equals the whole item's KB at k = 1.
[[nodiscard]] inline std::int64_t fragment_size_kb(double item_size_mb,
                                                   std::size_t k) {
  const std::int64_t item_kb = core::mb_to_kb(item_size_mb);
  const auto divisor = static_cast<std::int64_t>(k);
  return (item_kb + divisor - 1) / divisor;
}

/// Transfer size of one fragment (Eq. 8 latency math), MB. Exact at
/// k = 1 (x / 1.0 == x bitwise), so coded latencies replay replication's.
[[nodiscard]] inline double fragment_size_mb(double item_size_mb,
                                             std::size_t k) {
  return item_size_mb / static_cast<double>(k);
}

}  // namespace idde::coding
