#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"

namespace idde::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serialises whole log lines onto stderr so concurrent workers cannot
// interleave fragments. stderr itself is the guarded resource; it is not a
// C++ object we can annotate, so the capability only orders the writes.
Mutex g_write_mutex;

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_write(LogLevel level, std::string_view message) {
  const MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[idde %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail

}  // namespace idde::util
