// Seeded mutation fuzzing of the IO layer (ISSUE PR 5, satellite a).
//
// A valid instance / strategy document is serialised, then thousands of
// seed-deterministic mutants (byte flips, splices, truncations, token and
// number rewrites) are fed back through the full load path. The contract
// under test: every mutant either round-trips or throws util::JsonError —
// no aborts (the IDDE_ASSERT paths were converted to structured errors),
// no out-of-bounds indexing, no float-cast UB, no leaks (the test runs
// under ASan/UBSan in the chaos-soak CI job).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "coding/coded_io.hpp"
#include "coding/coded_planner.hpp"
#include "core/idde_g.hpp"
#include "core/strategy_io.hpp"
#include "fault/degradation.hpp"
#include "model/instance_builder.hpp"
#include "model/instance_io.hpp"
#include "serve/controller.hpp"
#include "sim/paper.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

using namespace idde;

model::InstanceParams tiny_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 5;
  p.user_count = 12;
  p.data_count = 3;
  return p;
}

/// One seed-deterministic mutation of `text`. Mixes byte-level damage with
/// grammar-aware rewrites (numbers, brackets, quotes) so both the parser
/// and the semantic validation layer get exercised.
std::string mutate(const std::string& text, util::Rng& rng) {
  std::string out = text;
  const std::size_t edits = 1 + rng.index(4);
  for (std::size_t e = 0; e < edits && !out.empty(); ++e) {
    const std::size_t pos = rng.index(out.size());
    switch (rng.index(8)) {
      case 0:  // flip one byte to a random printable char
        out[pos] = static_cast<char>(' ' + rng.index(95));
        break;
      case 1:  // delete a short span
        out.erase(pos, 1 + rng.index(8));
        break;
      case 2:  // duplicate a short span
        out.insert(pos, out.substr(pos, 1 + rng.index(8)));
        break;
      case 3:  // truncate
        out.resize(pos);
        break;
      case 4:  // insert a structural char
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   "[]{},:\"-"[rng.index(8)]);
        break;
      case 5: {  // splice in a hostile number
        static const char* kNumbers[] = {"-1",      "1e999", "999999999999",
                                         "-0.0",    "1e309", "NaN",
                                         "3.5e300", "0"};
        out.insert(pos, kNumbers[rng.index(8)]);
        break;
      }
      case 6: {  // nesting bomb fragment
        out.insert(pos, std::string(1 + rng.index(200), '['));
        break;
      }
      default:  // digit tweak: turn a digit into another digit
        out[pos] = static_cast<char>('0' + rng.index(10));
        break;
    }
  }
  return out;
}

/// Runs one mutant through `load`; anything other than success or a
/// JsonError is a contract violation.
template <typename LoadFn>
void expect_structured(const std::string& mutant, LoadFn&& load) {
  try {
    load(mutant);
  } catch (const util::JsonError&) {
    // expected: structured, typed, recoverable
  }
  // Any other exception type escapes and fails the test; an abort or
  // sanitizer report kills the process.
}

TEST(IoFuzz, InstanceRoundTripSurvivesIntact) {
  const auto instance = model::make_instance(tiny_params(), 7);
  const std::string text = model::instance_to_string(instance, 2);
  const auto back = model::instance_from_string(text);
  EXPECT_EQ(model::instance_to_string(back, 2), text);
}

TEST(IoFuzz, MutatedInstanceNeverCrashes) {
  const auto instance = model::make_instance(tiny_params(), 7);
  const std::string text = model::instance_to_string(instance, -1);
  util::Rng rng(0xf022ULL);
  for (int i = 0; i < 3000; ++i) {
    expect_structured(mutate(text, rng), [](const std::string& s) {
      (void)model::instance_from_string(s);
    });
  }
}

TEST(IoFuzz, MutatedStrategyNeverCrashes) {
  const auto instance = model::make_instance(tiny_params(), 8);
  util::Rng solve_rng(8);
  const auto strategy = core::IddeG().solve(instance, solve_rng);
  const std::string text = core::strategy_to_string(strategy, -1);
  // Intact round trip first.
  const auto back = core::strategy_from_string(instance, text);
  EXPECT_EQ(core::strategy_to_string(back, -1), text);

  util::Rng rng(0xf023ULL);
  for (int i = 0; i < 3000; ++i) {
    expect_structured(mutate(text, rng), [&](const std::string& s) {
      (void)core::strategy_from_string(instance, s);
    });
  }
}

TEST(IoFuzz, CrossDocumentConfusionIsStructured) {
  // Feeding a strategy document to the instance loader (and vice versa)
  // must fail on the format tag, not on a downstream assert.
  const auto instance = model::make_instance(tiny_params(), 9);
  util::Rng solve_rng(9);
  const auto strategy = core::IddeG().solve(instance, solve_rng);
  const std::string instance_text = model::instance_to_string(instance, -1);
  const std::string strategy_text = core::strategy_to_string(strategy, -1);
  EXPECT_THROW((void)model::instance_from_string(strategy_text),
               util::JsonError);
  EXPECT_THROW((void)core::strategy_from_string(instance, instance_text),
               util::JsonError);
  EXPECT_THROW((void)model::instance_from_string("{}"), util::JsonError);
  EXPECT_THROW((void)model::instance_from_string(""), util::JsonError);
  EXPECT_THROW((void)core::strategy_from_string(instance, "[1,2,3]"),
               util::JsonError);
}

TEST(IoFuzz, HostileDocumentsAreRejectedStructurally) {
  const auto instance = model::make_instance(tiny_params(), 10);
  const std::vector<std::string> hostile = {
      // out-of-range and negative indices
      R"({"format":"idde-strategy-v1","allocation":[],"placements":[{"server":-1,"item":0}]})",
      R"({"format":"idde-strategy-v1","allocation":[],"placements":[{"server":1e300,"item":0}]})",
      // wrong shapes
      R"({"format":"idde-instance-v1","servers":[],"users":[],"data":[],"requests":[[0]],"edges":[],"cloud_speed_mbps":1,"radio":{"channels_per_server":1,"noise_watts":0,"bandwidth_mbps":[],"gain":[]}})",
      // duplicate keys
      R"({"format":"idde-instance-v1","format":"idde-instance-v1"})",
      // nesting bomb
      std::string(50000, '[') + std::string(50000, ']'),
  };
  for (const auto& text : hostile) {
    EXPECT_THROW((void)model::instance_from_string(text), util::JsonError);
    EXPECT_THROW((void)core::strategy_from_string(instance, text),
                 util::JsonError);
  }
}

coding::CodedStrategy tiny_coded_strategy(
    const model::ProblemInstance& instance, std::uint64_t seed) {
  util::Rng solve_rng(seed);
  const auto strategy = core::IddeG().solve(instance, solve_rng);
  coding::CodedGreedyPlanner planner(instance);
  auto plan = planner.plan(strategy.allocation, {4, 2});
  coding::CodedStrategy coded(strategy.allocation, std::move(plan.delivery));
  coded.approach_name = "fuzz";
  coded.placements = plan.placements;
  return coded;
}

// Coded checkpoints carry the (n, k) shape plus fragment placements whose
// feasibility depends on both — a mutant that silently loads with a wrong
// k would corrupt every latency downstream. Same contract as the other
// loaders: round-trip or util::JsonError.
TEST(IoFuzz, MutatedCodedStrategyNeverCrashes) {
  const auto instance = model::make_instance(tiny_params(), 11);
  const auto coded = tiny_coded_strategy(instance, 11);
  const std::string text = coding::coded_strategy_to_string(coded, -1);
  // Intact round trip first.
  const auto back = coding::coded_strategy_from_string(instance, text);
  EXPECT_EQ(coding::coded_strategy_to_string(back, -1), text);

  util::Rng rng(0xf025ULL);
  for (int i = 0; i < 3000; ++i) {
    expect_structured(mutate(text, rng), [&](const std::string& s) {
      (void)coding::coded_strategy_from_string(instance, s);
    });
  }
}

TEST(IoFuzz, TruncatedCodedStrategyIsRejectedAtEveryLength) {
  const auto instance = model::make_instance(tiny_params(), 12);
  const auto coded = tiny_coded_strategy(instance, 12);
  const std::string text = coding::coded_strategy_to_string(coded, -1);
  // Every strict prefix breaks the JSON grammar or loses a required
  // field; all must throw the structured error.
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(
        (void)coding::coded_strategy_from_string(instance, text.substr(0, len)),
        util::JsonError)
        << "prefix length " << len;
  }
}

fault::DegradationPlan tiny_degradation_plan(
    const model::ProblemInstance& instance, std::uint64_t seed) {
  fault::DegradationProfile profile;
  profile.gray_fraction = 0.8;
  profile.loss_prob_max = 0.2;
  auto plan = fault::DegradationPlan::generate(instance, profile, seed);
  // The fuzz corpus must exercise the segment validation paths, so the
  // draw may not come up empty.
  IDDE_EXPECTS(!plan.inert());
  return plan;
}

TEST(IoFuzz, MutatedDegradationPlanNeverCrashes) {
  const auto instance = model::make_instance(tiny_params(), 13);
  const auto plan = tiny_degradation_plan(instance, 13);
  const std::string text = fault::degradation_to_string(plan, -1);
  // Intact round trip first.
  const auto back = fault::degradation_from_string(instance, text);
  EXPECT_EQ(back, plan);
  EXPECT_EQ(fault::degradation_to_string(back, -1), text);

  util::Rng rng(0xf026ULL);
  for (int i = 0; i < 3000; ++i) {
    expect_structured(mutate(text, rng), [&](const std::string& s) {
      (void)fault::degradation_from_string(instance, s);
    });
  }
}

TEST(IoFuzz, TruncatedDegradationPlanIsRejectedAtEveryLength) {
  const auto instance = model::make_instance(tiny_params(), 14);
  const auto plan = tiny_degradation_plan(instance, 14);
  const std::string text = fault::degradation_to_string(plan, -1);
  // Every strict prefix breaks the JSON grammar or loses a required
  // field; all must throw the structured error.
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(
        (void)fault::degradation_from_string(instance, text.substr(0, len)),
        util::JsonError)
        << "prefix length " << len;
  }
}

serve::ServeConfig tiny_serve_config() {
  serve::ServeConfig config;
  config.base = sim::paper_default_params();
  config.base.server_count = 5;
  config.base.user_count = 14;
  config.base.data_count = 3;
  config.churn.arrival_rate_hz = 1.0 / 25.0;
  config.churn.mean_session_s = 40.0;
  config.churn.initial_online_fraction = 0.9;
  config.faults.horizon_s = 100.0;
  config.faults.server_mtbf_s = 60.0;
  config.faults.server_mttr_s = 6.0;
  config.sigma_refresh_period_ticks = 5;
  return config;
}

// The serve checkpoint is the highest-stakes document in the repo: a
// restored controller resumes a live trajectory, so a mutant that slips
// past validation corrupts serving state instead of a report. Contract:
// every mutant either restores (benign edit — e.g. whitespace) or throws
// util::JsonError; never an abort, OOB index, or sanitizer report. Each
// mutant gets a fresh controller because a failed restore leaves the
// victim documented-unusable.
TEST(IoFuzz, MutatedServeCheckpointNeverCrashes) {
  serve::ServeController source(tiny_serve_config(), 5);
  for (int step = 0; step < 9; ++step) (void)source.tick();
  const std::string text = source.checkpoint();

  // Intact round trip first.
  {
    serve::ServeController back(tiny_serve_config(), 5);
    back.restore(text);
    EXPECT_EQ(back.checkpoint(), text);
  }

  util::Rng rng(0xf024ULL);
  for (int i = 0; i < 600; ++i) {
    serve::ServeController victim(tiny_serve_config(), 5);
    expect_structured(mutate(text, rng), [&](const std::string& s) {
      victim.restore(s);
    });
  }
}

TEST(IoFuzz, TruncatedServeCheckpointIsRejectedAtEveryLength) {
  serve::ServeController source(tiny_serve_config(), 6);
  for (int step = 0; step < 7; ++step) (void)source.tick();
  const std::string text = source.checkpoint();

  // Every strict prefix breaks either the JSON grammar or the checksum
  // envelope; all must throw the structured error.
  for (std::size_t len = 0; len < text.size();
       len += 1 + len / 16) {  // dense near 0, sparse later
    serve::ServeController victim(tiny_serve_config(), 6);
    EXPECT_THROW(victim.restore(text.substr(0, len)), util::JsonError)
        << "prefix length " << len;
  }
}

}  // namespace
