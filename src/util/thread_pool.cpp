#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace idde::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  IDDE_EXPECTS(task != nullptr);
  {
    const std::scoped_lock lock(mutex_);
    IDDE_ASSERT(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> next{0};
  // One task per worker, each draining a shared index counter: cheap for
  // both many-tiny and few-large iteration bodies.
  const std::size_t lanes = std::min(pool.size(), count);
  std::atomic<std::size_t> lanes_done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        try {
          body(i);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (lanes_done.fetch_add(1) + 1 == lanes) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return lanes_done.load() == lanes; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace idde::util
