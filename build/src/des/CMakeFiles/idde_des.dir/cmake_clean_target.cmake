file(REMOVE_RECURSE
  "libidde_des.a"
)
