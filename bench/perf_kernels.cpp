// perf_kernels — microbenchmark for the three hot kernels this layer owns:
//
//   eval      scalar per-slot InterferenceField::benefit() vs the batched
//             SoA sweep (radio::BatchEvaluator) over every user's candidate
//             slots, in evaluations/second. The two paths are required to
//             be bit-identical per slot; the run aborts on any mismatch.
//   matrix    latency-matrix (APSP) builds: the production n-Dijkstra
//             CostMatrix, naive Floyd–Warshall, and the cache-blocked
//             Floyd–Warshall, on the instance graph and on a larger dense
//             synthetic graph where blocking pays.
//   planner   heap allocations per GreedyDeliveryPlanner::plan() and
//             RepairPlanner::replan(), counted by a TU-local operator
//             new override. The first plan builds the planner's reusable
//             scratch; warm plans must stay at the small per-plan constant
//             (the returned DeliveryProfile), i.e. allocation-free per move.
//
// --smoke turns the report into a gate for CI: batched speedup below
// --min-speedup, a warm plan allocating more than --max-warm-allocs, or a
// blocked-vs-naive APSP mismatch fail the run. Results go to stdout and to
// --out (default BENCH_kernels.json) for cross-PR tracking.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "core/repair_planner.hpp"
#include "model/instance_builder.hpp"
#include "net/shortest_path.hpp"
#include "obs/obs.hpp"
#include "radio/batch_eval.hpp"
#include "sim/paper.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

// memory-order: seq_cst counters toggled/read only on the bench main
// thread between single-threaded kernel calls; no ordering is derived.
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

}  // namespace

// TU-local replacement of the global allocator: counts allocations while
// the planner section has the flag up, otherwise plain malloc/free.
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace idde;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Counts heap allocations performed by `body`.
template <typename Body>
std::size_t count_allocs(Body&& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  body();
  g_count_allocs.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// Random connected dense graph for the blocked-APSP comparison: a ring
/// (connectivity) plus `extra_per_node` random chords. Deterministic.
net::Graph dense_graph(std::size_t nodes, std::size_t extra_per_node,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> weight(0.01, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, nodes - 1);
  std::vector<net::Edge> edges;
  edges.reserve(nodes * (1 + extra_per_node));
  for (std::size_t i = 0; i < nodes; ++i) {
    edges.push_back(net::Edge{i, (i + 1) % nodes, weight(rng)});
    for (std::size_t e = 0; e < extra_per_node; ++e) {
      const std::size_t j = pick(rng);
      if (j != i) edges.push_back(net::Edge{i, j, weight(rng)});
    }
  }
  return net::Graph(nodes, edges);
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isinf(a[i]) && std::isinf(b[i])) continue;
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t servers = 30;
  std::size_t users = 350;
  std::size_t data = 5;
  std::size_t seed = 1;
  std::size_t eval_reps = 500;
  std::size_t matrix_reps = 5;
  std::size_t dense_nodes = 256;
  double min_speedup = 1.5;
  std::size_t max_warm_allocs = 32;
  bool smoke = false;
  std::string out = "BENCH_kernels.json";
  util::CliParser cli(
      "perf_kernels: batched-vs-scalar slot evaluation, latency-matrix "
      "builds, and planner allocation counts");
  cli.add_size("servers", &servers, "edge servers N");
  cli.add_size("users", &users, "users M (Set #2 tops out at 350)");
  cli.add_size("data", &data, "data items K");
  cli.add_size("seed", &seed, "instance seed");
  cli.add_size("eval-reps", &eval_reps, "full-population sweeps per timing");
  cli.add_size("matrix-reps", &matrix_reps, "APSP builds per timing");
  cli.add_size("dense-nodes", &dense_nodes, "synthetic dense graph size");
  cli.add_double("min-speedup", &min_speedup,
                 "--smoke gate: required batched/scalar evals-per-sec ratio");
  cli.add_size("max-warm-allocs", &max_warm_allocs,
               "--smoke gate: allocation budget of a warm plan()");
  cli.add_flag("smoke", &smoke, "fast run + enforce regression gates");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;
  if (smoke) {
    // Enough sweeps for a stable ratio (a 10-sweep timing is ~0.1 ms and
    // jitters past the gate), still well under a second end to end.
    eval_reps = std::min<std::size_t>(eval_reps, 100);
    matrix_reps = std::min<std::size_t>(matrix_reps, 2);
    dense_nodes = std::min<std::size_t>(dense_nodes, 192);
  }

  model::InstanceParams params = sim::paper_default_params();
  params.server_count = servers;
  params.user_count = users;
  params.data_count = data;
  const model::ProblemInstance instance = model::make_instance(params, seed);

  std::printf("perf_kernels: N=%zu M=%zu K=%zu seed=%zu%s\n\n", servers, users,
              data, seed, smoke ? " (smoke)" : "");

  // ---- eval: scalar vs batched best-response pricing -------------------
  // Occupancy from a real equilibrium so the interference terms look like
  // what the solver's inner loop actually reads.
  core::IddeUGame game(instance);
  const core::GameResult equilibrium = game.run();
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t j = 0; j < users; ++j) {
    if (equilibrium.allocation[j].allocated()) {
      field.add_user(j, equilibrium.allocation[j]);
    }
  }
  const std::size_t channels = instance.radio_env().channels_per_server;

  // Bit-identity first: every slot of every user, exact equality.
  {
    radio::BatchEvaluator batch(field);
    for (std::size_t j = 0; j < users; ++j) {
      const auto& covering = instance.covering_servers(j);
      const auto priced = batch.benefits(j, covering);
      for (std::size_t a = 0; a < covering.size(); ++a) {
        for (std::size_t x = 0; x < channels; ++x) {
          const double scalar =
              field.benefit(j, radio::ChannelSlot{covering[a], x});
          IDDE_ASSERT(priced[a * channels + x] == scalar,
                      "batched benefit diverged from the scalar oracle");
        }
      }
    }
  }

  // The two kernels are timed in INTERLEAVED chunks rather than two long
  // back-to-back windows: on shared/thermally-drifting machines the CPU
  // frequency can move between windows and pollute the ratio by tens of
  // percent; alternating spreads any drift evenly over both kernels.
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  std::size_t sweep_evals = 0;
  double checksum_scalar = 0.0;
  double checksum_batched = 0.0;
  {
    radio::BatchEvaluator batch(field);
    const std::size_t chunk = std::max<std::size_t>(1, eval_reps / 10);
    for (std::size_t done = 0; done < eval_reps; done += chunk) {
      const std::size_t reps = std::min(chunk, eval_reps - done);
      const auto scalar_start = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t j = 0; j < users; ++j) {
          for (const std::size_t i : instance.covering_servers(j)) {
            for (std::size_t x = 0; x < channels; ++x) {
              checksum_scalar += field.benefit(j, radio::ChannelSlot{i, x});
              if (done == 0 && rep == 0) ++sweep_evals;
            }
          }
        }
      }
      scalar_ms += ms_since(scalar_start);
      const auto batched_start = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t j = 0; j < users; ++j) {
          const auto priced = batch.benefits(j, instance.covering_servers(j));
          for (const double b : priced) checksum_batched += b;
        }
      }
      batched_ms += ms_since(batched_start);
    }
  }
  IDDE_ASSERT(checksum_scalar == checksum_batched,
              "batched sweep checksum diverged from the scalar sweep");
  const double total_evals =
      static_cast<double>(sweep_evals) * static_cast<double>(eval_reps);
  const double scalar_eps = total_evals / (scalar_ms * 1e-3);
  const double batched_eps = total_evals / (batched_ms * 1e-3);
  const double eval_speedup = batched_eps / scalar_eps;
  std::printf("  eval    scalar  %12.0f evals/s   (%.2f ms / %zu sweeps)\n",
              scalar_eps, scalar_ms, eval_reps);
  std::printf("  eval    batched %12.0f evals/s   (%.2f ms / %zu sweeps)\n",
              batched_eps, batched_ms, eval_reps);
  std::printf("  eval    speedup %.2fx, bit-identical on %zu slots\n\n",
              eval_speedup, sweep_evals);
  IDDE_OBS_COUNT("perf.eval_slots_checked", sweep_evals);

  // ---- matrix: latency-matrix (APSP) builds ----------------------------
  const auto time_build = [&](const net::Graph& graph, auto&& build) {
    double total = 0.0;
    for (std::size_t rep = 0; rep < matrix_reps; ++rep) {
      const auto start = Clock::now();
      build(graph);
      total += ms_since(start);
    }
    return total / static_cast<double>(matrix_reps);
  };
  const auto build_dijkstra = [](const net::Graph& g) {
    const net::CostMatrix matrix(g);
    IDDE_ASSERT(matrix.size() == g.node_count(), "bad matrix");
  };
  const auto build_floyd = [](const net::Graph& g) {
    const auto dist = net::floyd_warshall(g);
    IDDE_ASSERT(dist.size() == g.node_count() * g.node_count(), "bad matrix");
  };
  const auto build_blocked = [](const net::Graph& g) {
    const auto dist = net::floyd_warshall_blocked(g);
    IDDE_ASSERT(dist.size() == g.node_count() * g.node_count(), "bad matrix");
  };

  const net::Graph& inst_graph = instance.graph();
  const double inst_dijkstra_ms = time_build(inst_graph, build_dijkstra);
  const double inst_floyd_ms = time_build(inst_graph, build_floyd);
  const double inst_blocked_ms = time_build(inst_graph, build_blocked);

  const net::Graph dense = dense_graph(dense_nodes, 8, seed);
  const double dense_dijkstra_ms = time_build(dense, build_dijkstra);
  const double dense_floyd_ms = time_build(dense, build_floyd);
  const double dense_blocked_ms = time_build(dense, build_blocked);

  // Blocking re-associates path sums, so equality is to tolerance (the
  // bit-exact production path is the Dijkstra build).
  const double apsp_diff = max_abs_diff(
      net::floyd_warshall(dense), net::floyd_warshall_blocked(dense));
  std::printf("  matrix  instance n=%-4zu dijkstra %7.3f ms  floyd %7.3f ms  "
              "blocked %7.3f ms\n",
              inst_graph.node_count(), inst_dijkstra_ms, inst_floyd_ms,
              inst_blocked_ms);
  std::printf("  matrix  dense    n=%-4zu dijkstra %7.3f ms  floyd %7.3f ms  "
              "blocked %7.3f ms\n",
              dense_nodes, dense_dijkstra_ms, dense_floyd_ms, dense_blocked_ms);
  std::printf("  matrix  blocked-vs-naive max |diff| %.3g\n\n", apsp_diff);

  // ---- planner: allocations per plan -----------------------------------
  core::GreedyDeliveryPlanner planner(instance);
  core::RepairPlanner repairer(instance);
  const std::size_t plan_allocs_cold =
      count_allocs([&] { (void)planner.plan(equilibrium.allocation); });
  std::size_t plan_allocs_warm = 0;
  core::DeliveryProfile sigma(instance);
  {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    auto result = planner.plan(equilibrium.allocation);
    g_count_allocs.store(false, std::memory_order_relaxed);
    plan_allocs_warm = g_alloc_count.load(std::memory_order_relaxed);
    sigma = std::move(result.delivery);
  }
  const std::vector<std::uint8_t> all_up(servers, 1);
  (void)repairer.replan(equilibrium.allocation, sigma, all_up);  // warm up
  const std::size_t repair_allocs_warm = count_allocs(
      [&] { (void)repairer.replan(equilibrium.allocation, sigma, all_up); });
  std::printf("  planner plan() allocations: cold %zu, warm %zu\n",
              plan_allocs_cold, plan_allocs_warm);
  std::printf("  planner replan() allocations: warm %zu\n\n",
              repair_allocs_warm);
  IDDE_OBS_COUNT("perf.plan_allocs_warm", plan_allocs_warm);
  IDDE_OBS_COUNT("perf.replan_allocs_warm", repair_allocs_warm);

  // ---- gates / output ---------------------------------------------------
  bool failed = false;
  if (smoke) {
    if (eval_speedup < min_speedup) {
      std::fprintf(stderr,
                   "GATE: batched eval speedup %.2fx below required %.2fx\n",
                   eval_speedup, min_speedup);
      failed = true;
    }
    if (plan_allocs_warm > max_warm_allocs) {
      std::fprintf(stderr,
                   "GATE: warm plan() made %zu allocations (budget %zu)\n",
                   plan_allocs_warm, max_warm_allocs);
      failed = true;
    }
    if (repair_allocs_warm > max_warm_allocs) {
      std::fprintf(stderr,
                   "GATE: warm replan() made %zu allocations (budget %zu)\n",
                   repair_allocs_warm, max_warm_allocs);
      failed = true;
    }
    if (!(apsp_diff < 1e-9)) {
      std::fprintf(stderr, "GATE: blocked APSP diverged (max |diff| %.3g)\n",
                   apsp_diff);
      failed = true;
    }
  }

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("perf_kernels");
    util::JsonObject shape;
    shape["servers"] = servers;
    shape["users"] = users;
    shape["data"] = data;
    shape["seed"] = seed;
    shape["smoke"] = smoke;
    doc["instance"] = std::move(shape);
    util::JsonObject eval;
    eval["slots_per_sweep"] = sweep_evals;
    eval["sweeps"] = eval_reps;
    eval["scalar_evals_per_sec"] = scalar_eps;
    eval["batched_evals_per_sec"] = batched_eps;
    eval["speedup"] = eval_speedup;
    doc["eval"] = std::move(eval);
    util::JsonObject matrix;
    matrix["instance_nodes"] = inst_graph.node_count();
    matrix["instance_dijkstra_ms"] = inst_dijkstra_ms;
    matrix["instance_floyd_ms"] = inst_floyd_ms;
    matrix["instance_floyd_blocked_ms"] = inst_blocked_ms;
    matrix["dense_nodes"] = dense_nodes;
    matrix["dense_dijkstra_ms"] = dense_dijkstra_ms;
    matrix["dense_floyd_ms"] = dense_floyd_ms;
    matrix["dense_floyd_blocked_ms"] = dense_blocked_ms;
    matrix["blocked_max_abs_diff"] = apsp_diff;
    doc["matrix"] = std::move(matrix);
    util::JsonObject alloc;
    alloc["plan_cold"] = plan_allocs_cold;
    alloc["plan_warm"] = plan_allocs_warm;
    alloc["replan_warm"] = repair_allocs_warm;
    doc["planner_allocs"] = std::move(alloc);
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  return failed ? 1 : 0;
}
