// Wall-clock timing. The paper's Fig. 7 reports per-approach computation
// time; every solver run is wrapped in a Stopwatch by the harness.
#pragma once

#include <chrono>

namespace idde::util {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  Clock::time_point start_;
};

/// Deadline helper for anytime solvers (the IDDE-IP time cap).
class Deadline {
 public:
  /// budget_ms <= 0 means "no deadline".
  explicit Deadline(double budget_ms)
      : has_deadline_(budget_ms > 0.0),
        end_(Stopwatch::Clock::now() +
             std::chrono::duration_cast<Stopwatch::Clock::duration>(
                 std::chrono::duration<double, std::milli>(
                     budget_ms > 0.0 ? budget_ms : 0.0))) {}

  [[nodiscard]] bool expired() const noexcept {
    return has_deadline_ && Stopwatch::Clock::now() >= end_;
  }

  [[nodiscard]] double remaining_ms() const noexcept {
    if (!has_deadline_) return 1e18;
    return std::chrono::duration<double, std::milli>(
               end_ - Stopwatch::Clock::now())
        .count();
  }

 private:
  bool has_deadline_;
  Stopwatch::Clock::time_point end_;
};

}  // namespace idde::util
