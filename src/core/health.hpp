// HealthTracker: online per-server health scores from observed deliveries.
//
// The binary fault layer (src/fault) can only say "up" or "down"; a gray
// server — slow, lossy, metastable — reports up while quietly inflating
// every leg routed through it. The tracker turns observed leg completions
// into a health score in (0, 1] per server:
//
//   inflation_i  = EWMA of (observed_seconds / expected_seconds)   (>= 0)
//   loss_frac_i  = losses_i / (legs_i + losses_i)
//   score_i      = 1 / (max(inflation_i, 1) + loss_weight * loss_frac_i)
//
// A healthy server (every leg on time, no losses) scores exactly 1.0; a 4×
// slow server converges to 0.25. Demotion is hysteretic: a server drops to
// "demoted" when its score falls below `demote_score` (after `min_samples`
// legs) and is only readmitted above `recover_score`, so a score hovering
// at the threshold cannot flap the routing decision every leg.
//
// resolve_with_health() is the health-aware Eq. 8: identical scan order to
// resolve_with_failover, but each edge candidate's seconds are divided by
// its score — a gray server must beat healthy alternatives by its own
// slowdown factor to win. With a fresh tracker every score is exactly 1.0
// and the weighted argmin reduces to the plain one bit-identically (same
// comparisons, same ties) — the zero-cost-when-disabled contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/delivery.hpp"
#include "model/instance.hpp"
#include "net/shortest_path.hpp"

namespace idde::core {

struct HealthConfig {
  /// EWMA smoothing factor for the latency-inflation ratio in (0, 1].
  double ewma_alpha = 0.3;
  /// Demote below this score (hysteresis low-water mark).
  double demote_score = 0.6;
  /// Readmit above this score (high-water mark; >= demote_score).
  double recover_score = 0.8;
  /// Weight of the loss fraction in the score denominator.
  double loss_weight = 1.0;
  /// Observations required before a server may be demoted.
  std::size_t min_samples = 3;
};

/// Serialisable per-server state (checkpointed by the serve layer).
struct ServerHealth {
  double ewma_inflation = 1.0;  ///< EWMA of observed/expected leg seconds
  std::uint64_t legs = 0;       ///< completed (non-lost) legs observed
  std::uint64_t losses = 0;     ///< lost/failed legs observed
  bool demoted = false;         ///< hysteretic demotion latch
  friend bool operator==(const ServerHealth&, const ServerHealth&) = default;
};

class HealthTracker {
 public:
  HealthTracker() = default;
  HealthTracker(std::size_t server_count, const HealthConfig& config);

  /// Feeds one completed leg from `server`: `expected_s` is the modelled
  /// uncontended transfer time, `observed_s` what actually happened.
  void record_leg(std::size_t server, double expected_s, double observed_s);
  /// Feeds one lost/failed leg from `server`.
  void record_loss(std::size_t server);

  /// Health score in (0, 1]; exactly 1.0 until evidence arrives.
  [[nodiscard]] double score(std::size_t server) const;
  /// Hysteretic demotion latch (see header comment).
  [[nodiscard]] bool demoted(std::size_t server) const {
    return state_[server].demoted;
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return state_.size();
  }
  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

  /// Checkpoint/restore of the full tracker state (serve layer).
  [[nodiscard]] const std::vector<ServerHealth>& state() const noexcept {
    return state_;
  }
  void restore_state(std::vector<ServerHealth> state);

 private:
  void refresh_demotion(std::size_t server);

  HealthConfig config_;
  std::vector<ServerHealth> state_;
};

/// Health-aware degraded Eq. 8: same contract and scan order as
/// resolve_with_failover, but edge candidates are priced at
/// seconds / score(host), so gray servers are demoted before they are
/// formally down. The returned `seconds` is the UNWEIGHTED latency of the
/// chosen source (the score shapes the choice, not the physics). With a
/// null or fresh tracker the decision is bit-identical to
/// resolve_with_failover.
[[nodiscard]] FailoverDecision resolve_with_health(
    const model::ProblemInstance& instance, std::span<const std::size_t> hosts,
    std::size_t serving, double size_mb, const HealthTracker* health,
    std::span<const std::uint8_t> server_up = {},
    const net::CostMatrix* degraded_costs = nullptr,
    std::span<const std::size_t> fault_free_hosts = {});

}  // namespace idde::core
