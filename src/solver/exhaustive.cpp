#include "solver/exhaustive.hpp"

#include <vector>

#include "core/metrics.hpp"
#include "util/assert.hpp"

namespace idde::solver {

using core::AllocationProfile;
using core::ChannelSlot;
using core::DeliveryProfile;

AllocationProfile optimal_allocation(const model::ProblemInstance& instance) {
  const std::size_t m = instance.user_count();
  const std::size_t channels = instance.radio_env().channels_per_server;

  // Candidate list per user: unallocated + every covering (server, channel).
  std::vector<std::vector<ChannelSlot>> candidates(m);
  double combinations = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    candidates[j].push_back(core::kUnallocated);
    for (const std::size_t i : instance.covering_servers(j)) {
      for (std::size_t x = 0; x < channels; ++x) {
        candidates[j].push_back(ChannelSlot{i, x});
      }
    }
    combinations *= static_cast<double>(candidates[j].size());
  }
  IDDE_ASSERT(combinations <= static_cast<double>(1 << 22),
              "instance too large for exhaustive allocation");

  AllocationProfile current(m, core::kUnallocated);
  AllocationProfile best = current;
  double best_rate = core::average_data_rate_mbps(instance, best);

  // Odometer enumeration.
  std::vector<std::size_t> cursor(m, 0);
  for (;;) {
    for (std::size_t j = 0; j < m; ++j) current[j] = candidates[j][cursor[j]];
    const double rate = core::average_data_rate_mbps(instance, current);
    if (rate > best_rate) {
      best_rate = rate;
      best = current;
    }
    std::size_t j = 0;
    while (j < m && ++cursor[j] == candidates[j].size()) {
      cursor[j] = 0;
      ++j;
    }
    if (j == m) break;
  }
  return best;
}

namespace {

struct PlacementSearch {
  const model::ProblemInstance& instance;
  const AllocationProfile& allocation;
  std::vector<std::pair<std::size_t, std::size_t>> decisions;  // (i, k)
  DeliveryProfile best;
  double best_latency;

  void recurse(DeliveryProfile& current, core::DeliveryEvaluator& evaluator,
               std::size_t depth) {
    if (evaluator.total_latency_seconds() < best_latency) {
      best_latency = evaluator.total_latency_seconds();
      best = current;
    }
    if (depth == decisions.size()) return;
    const auto [i, k] = decisions[depth];

    // Branch 1: take the placement (when feasible).
    if (current.can_place(i, k)) {
      // Copy evaluator state by re-deriving: commits are not undoable, so
      // clone. Instances here are tiny by contract.
      core::DeliveryEvaluator taken = evaluator;
      DeliveryProfile taken_profile = current;
      taken.commit(i, k);
      taken_profile.place(i, k);
      recurse(taken_profile, taken, depth + 1);
    }
    // Branch 2: skip it.
    recurse(current, evaluator, depth + 1);
  }
};

}  // namespace

DeliveryProfile optimal_delivery(const model::ProblemInstance& instance,
                                 const AllocationProfile& allocation) {
  const std::size_t decisions = instance.server_count() *
                                instance.data_count();
  IDDE_ASSERT(decisions <= 24, "instance too large for exhaustive delivery");

  PlacementSearch search{
      .instance = instance,
      .allocation = allocation,
      .decisions = {},
      .best = DeliveryProfile(instance),
      .best_latency = 0.0,
  };
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    for (std::size_t k = 0; k < instance.data_count(); ++k) {
      search.decisions.emplace_back(i, k);
    }
  }
  DeliveryProfile root(instance);
  core::DeliveryEvaluator evaluator(instance, allocation);
  search.best_latency = evaluator.total_latency_seconds() + 1.0;
  search.recurse(root, evaluator, 0);
  return search.best;
}

}  // namespace idde::solver
