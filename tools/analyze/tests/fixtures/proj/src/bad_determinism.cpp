// Fixture: deliberate determinism violations pinned by tests/golden.json.
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.hpp"

namespace fixture {

struct Widget {};

std::unordered_map<int, int> table;  // unordered-container
std::map<Widget*, int> by_ptr;       // pointer-key-order
std::map<int, int> fine_map;         // ordered: no finding

double reduce_all(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());  // par-stl
}

double sum2 = 0.0;

void accumulate(util::ThreadPool& pool, std::vector<double>& out) {
  double total = 0.0;
  util::parallel_for(pool, out.size(), [&](std::size_t i) {
    total += out[i];  // par-float-accum: declared outside the body
  });
  util::parallel_for(pool, out.size(), [&](std::size_t i) {
    double local = 0.0;
    local += out[i];  // thread-private: no finding
    out[i] = local;
  });
  util::parallel_for(pool, out.size(), [&](std::size_t i) {
    // ordered-reduction: fixture runs single-threaded, order is fixed
    sum2 += out[i];
  });
  (void)total;
}

}  // namespace fixture
