# Empty dependencies file for idde_core.
# This may be replaced when dependencies are built.
