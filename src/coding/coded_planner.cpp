#include "coding/coded_planner.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::coding {

namespace {

constexpr double kMinGain = 1e-12;  // "no feasible improving decision"

}  // namespace

CodedGreedyPlanner::CodedGreedyPlanner(const model::ProblemInstance& instance)
    : instance_(&instance) {}

CodedDeliveryEvaluator& CodedGreedyPlanner::evaluator_for(
    const core::AllocationProfile& allocation, FragmentConfig config,
    bool collaborative) {
  if (evaluator_.has_value() && evaluator_->config() == config) {
    evaluator_->reset(allocation, collaborative);
  } else {
    evaluator_.emplace(*instance_, allocation, config, collaborative);
  }
  return *evaluator_;
}

CodedPlanResult CodedGreedyPlanner::plan(
    const core::AllocationProfile& allocation, FragmentConfig config,
    bool collaborative) {
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(config.valid());
  IDDE_OBS_SPAN("coding.plan");
  CodedPlanResult result{CodedDeliveryProfile(instance, config), 0, 0, 0};
  CodedDeliveryEvaluator& evaluator =
      evaluator_for(allocation, config, collaborative);

  heap_.clear();
  heap_.reserve(instance.server_count() * instance.data_count());
  // Refill-rescan outer loop (see header). The first fill is the rescan
  // of the empty heap; each later rescan re-scores every feasible
  // candidate because k > 1 gains may have grown since they were dropped.
  for (;;) {
    bool refilled = false;
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      for (std::size_t k = 0; k < instance.data_count(); ++k) {
        if (!result.delivery.can_place(i, k)) continue;
        const double gain = evaluator.gain_seconds(i, k);
        ++result.gain_evaluations;
        if (gain > kMinGain) {
          heap_.push_back(Candidate{
              gain / result.delivery.item_fragment_mb(k), i, k});
          std::push_heap(heap_.begin(), heap_.end());
          refilled = true;
        }
      }
    }
    if (!refilled) break;
    ++result.rescan_rounds;

    while (!heap_.empty()) {
      const Candidate top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      // Storage only shrinks and the n-cap only tightens, so a
      // now-infeasible candidate never returns.
      if (!result.delivery.can_place(top.server, top.item)) continue;
      const double gain = evaluator.gain_seconds(top.server, top.item);
      ++result.gain_evaluations;
      const double ratio = gain / result.delivery.item_fragment_mb(top.item);
      if (gain <= kMinGain) continue;  // decayed to nothing, drop
      if (!heap_.empty() && ratio < heap_.front().ratio) {
        heap_.push_back(Candidate{ratio, top.server, top.item});
        std::push_heap(heap_.begin(), heap_.end());
        continue;
      }
      evaluator.commit(top.server, top.item);
      result.delivery.place(top.server, top.item);
      ++result.placements;
    }
  }

  IDDE_OBS_COUNT("coding.plans_total", 1);
  IDDE_OBS_COUNT("coding.candidates_scanned_total", result.gain_evaluations);
  IDDE_OBS_COUNT("coding.placements_total", result.placements);
  return result;
}

CodedRepairPlanner::CodedRepairPlanner(const model::ProblemInstance& instance)
    : instance_(&instance) {}

CodedRepairResult CodedRepairPlanner::replan(
    const core::AllocationProfile& allocation,
    const CodedDeliveryProfile& sigma, std::span<const std::uint8_t> server_up,
    const ReplicaLost& replica_lost, bool collaborative,
    std::size_t max_placements) {
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  IDDE_EXPECTS(server_up.empty() ||
               server_up.size() == instance.server_count());

  IDDE_OBS_SPAN("coding.replan");
  std::size_t candidates_scanned = 0;

  const auto up = [&](std::size_t server) {
    return server_up.empty() || server_up[server] != 0;
  };
  const auto lost = [&](std::size_t server, std::size_t item) {
    return replica_lost && replica_lost(server, item);
  };

  // Users on dead servers have no radio channel for the outage — same
  // masking core::RepairPlanner applies.
  effective_.assign(allocation.begin(), allocation.end());
  for (core::ChannelSlot& slot : effective_) {
    if (slot.allocated() && !up(slot.server)) slot = core::kUnallocated;
  }

  CodedRepairResult result{CodedDeliveryProfile(instance, sigma.config()), 0,
                           0, 0.0};
  if (evaluator_.has_value() && evaluator_->config() == sigma.config()) {
    evaluator_->reset(effective_, collaborative);
  } else {
    evaluator_.emplace(instance, effective_, sigma.config(), collaborative);
  }
  CodedDeliveryEvaluator& evaluator = *evaluator_;

  // Keep what survived; count what did not.
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : sigma.hosts(k)) {
      if (!up(i) || lost(i, k)) {
        ++result.lost_placements;
        continue;
      }
      evaluator.commit(i, k);
      result.delivery.place(i, k);
    }
  }

  heap_.clear();
  heap_.reserve(instance.server_count() * instance.data_count());
  while (result.repair_placements < max_placements) {
    bool refilled = false;
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      if (!up(i)) continue;
      for (std::size_t k = 0; k < instance.data_count(); ++k) {
        if (lost(i, k) || !result.delivery.can_place(i, k)) continue;
        const double gain = evaluator.gain_seconds(i, k);
        ++candidates_scanned;
        if (gain > kMinGain) {
          heap_.push_back(Candidate{
              gain / result.delivery.item_fragment_mb(k), i, k});
          std::push_heap(heap_.begin(), heap_.end());
          refilled = true;
        }
      }
    }
    if (!refilled) break;

    while (!heap_.empty() && result.repair_placements < max_placements) {
      const Candidate top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      if (!result.delivery.can_place(top.server, top.item)) continue;
      const double gain = evaluator.gain_seconds(top.server, top.item);
      ++candidates_scanned;
      if (gain <= kMinGain) continue;
      const double ratio = gain / result.delivery.item_fragment_mb(top.item);
      if (!heap_.empty() && ratio < heap_.front().ratio) {
        heap_.push_back(Candidate{ratio, top.server, top.item});
        std::push_heap(heap_.begin(), heap_.end());
        continue;
      }
      evaluator.commit(top.server, top.item);
      result.delivery.place(top.server, top.item);
      ++result.repair_placements;
      result.recovered_gain_seconds += gain;
    }
    heap_.clear();  // budget may have cut the drain short — rescan fresh
  }

  IDDE_OBS_COUNT("coding.replans_total", 1);
  IDDE_OBS_COUNT("coding.repair_candidates_scanned_total", candidates_scanned);
  IDDE_OBS_COUNT("coding.repair_placements_total", result.repair_placements);
  IDDE_OBS_COUNT("coding.lost_placements_total", result.lost_placements);
  return result;
}

}  // namespace idde::coding
