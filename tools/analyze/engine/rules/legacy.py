"""Project-contract rules ported from tools/lint/check_project.py.

Same semantics and scopes as the retired script; the scanner upgrades
(whole-file stripping, raw-string handling) apply uniformly.
"""

from __future__ import annotations

import re

from ..config import HEADER_SUFFIXES, Config
from ..findings import Finding
from ..source import SourceFile

RULES = {
    "naked-sync": (
        "raw std synchronisation primitive outside src/util/; use "
        "util::Mutex/MutexLock/CondVar or util::ThreadPool so "
        "-Wthread-safety covers it"),
    "naked-rand": (
        "rand()/srand() breaks seeded reproducibility; use util::Rng"),
    "naked-assert": (
        "use IDDE_ASSERT/IDDE_EXPECTS/IDDE_ENSURES (active in Release), "
        "not assert()"),
    "std-using": "`using namespace std` is banned in headers",
    "naked-sleep": (
        "wall-clock sleep outside src/util//src/des/ breaks seeded "
        "determinism; advance simulated time or wrap it in util/"),
    "naked-timing": (
        "raw clock timing outside src/util//src/obs/; use obs::ScopedSpan "
        "so the measurement feeds the phase rollup and traces"),
    "unbounded-queue": (
        "raw std::deque/std::queue in src/qos//src/des/ without a "
        "documented bound; add a `capacity-bound: ...` comment or bound it"),
    "hot-path-alloc": (
        "heap allocation in a hot-tagged kernel file; hoist into member "
        "scratch or mark the cold-path site with "
        "`// lint: alloc-ok(<reason>)`"),
}

SYNC = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|thread|jthread|lock_guard|scoped_lock|"
    r"unique_lock|shared_lock)\b")
RAND = re.compile(r"(?<![\w:])s?rand\s*\(")
ASSERT = re.compile(r"(?<![\w:.])assert\s*\(")
USING_STD = re.compile(r"\busing\s+namespace\s+std\b")
SLEEP = re.compile(r"\bstd::this_thread::sleep_(for|until)\b")
TIMING = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
# std::priority_queue (the DES event heap, bounded by the arrival schedule)
# is deliberately not matched.
QUEUE = re.compile(r"\bstd::(deque|queue)\s*<")
NEW_EXPR = re.compile(r"(?<![\w:.])new\b")
MAKE_PTR = re.compile(r"\bmake_(unique|shared)\b")
PUSH_BACK = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:\.\w+|->\w+|\[\w*\])*)\s*\.\s*"
    r"(?:push_back|emplace_back)\s*\(")
ALLOC_OK = re.compile(r"//\s*lint:\s*alloc-ok\([^)]+\)")


def scan(sf: SourceFile, cfg: Config):
    findings: list[Finding] = []
    suppressed = 0
    is_header = sf.rel.endswith(HEADER_SUFFIXES)
    sync_ok = cfg.in_scope(sf.rel, cfg.sync_exempt)
    sleep_ok = cfg.in_scope(sf.rel, cfg.sleep_exempt)
    timing_ok = cfg.in_scope(sf.rel, cfg.timing_exempt)
    queue_scoped = cfg.in_scope(sf.rel, cfg.queue_scoped)
    hot = sf.rel in cfg.hot_path_files

    for lineno, code in enumerate(sf.code_lines, 1):
        raw = sf.raw_lines[lineno - 1]

        def report(rule: str, key: str, message: str | None = None) -> None:
            nonlocal suppressed
            if sf.allowed(lineno, rule):
                suppressed += 1
                return
            findings.append(Finding(sf.rel, lineno, rule, key,
                                    message or RULES[rule]))

        if not sync_ok:
            for match in SYNC.finditer(code):
                report("naked-sync", f"std::{match.group(1)}")
        if RAND.search(code):
            report("naked-rand", "rand")
        if ASSERT.search(code) and "static_assert" not in code:
            report("naked-assert", "assert")
        if is_header and USING_STD.search(code):
            report("std-using", "using-namespace-std")
        if not sleep_ok and SLEEP.search(code):
            report("naked-sleep", "sleep")
        if not timing_ok:
            for match in TIMING.finditer(code):
                report("naked-timing", match.group(1))
        if queue_scoped and QUEUE.search(code):
            # A `capacity-bound: ...` note on the line or within the three
            # lines above documents how growth is limited.
            if not sf.tag_nearby(lineno, "capacity-bound:"):
                report("unbounded-queue", f"std::{QUEUE.search(code).group(1)}")
        if hot and not ALLOC_OK.search(raw):
            if NEW_EXPR.search(code) or MAKE_PTR.search(code):
                report("hot-path-alloc", "alloc")
            for match in PUSH_BACK.finditer(code):
                # Reserved containers (any `<receiver>.reserve(` in the
                # file) amortise to zero per-move allocations; everything
                # else must justify itself.
                recv = match.group("recv")
                if re.search(re.escape(recv) + r"\s*\.\s*reserve\s*\(",
                             sf.code):
                    continue
                report(
                    "hot-path-alloc", f"push_back:{recv}",
                    f"push_back on `{recv}` with no `.reserve(` in this "
                    "hot-tagged kernel file; reserve the container or mark "
                    "the site with `// lint: alloc-ok(<reason>)`")
    return findings, {"suppressed": suppressed}
