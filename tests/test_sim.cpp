// Simulation harness: runner, sweeps, report tables/CSV, paper sets.
#include <gtest/gtest.h>

#include <sstream>

#include "core/idde_g.hpp"
#include "fault/fault_plan.hpp"
#include "sim/paper.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/format.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p;
  p.server_count = 8;
  p.user_count = 30;
  p.data_count = 3;
  return p;
}

TEST(Runner, RecordsMetricsAndTime) {
  const auto inst = model::make_instance(small_params(), 1);
  core::IddeG approach;
  util::Rng rng(1);
  const sim::RunRecord record =
      sim::run_approach(inst, approach, rng, /*require_valid=*/true);
  EXPECT_EQ(record.approach, "IDDE-G");
  EXPECT_GT(record.metrics.avg_rate_mbps, 0.0);
  EXPECT_GT(record.metrics.avg_latency_ms, 0.0);
  EXPECT_GE(record.solve_ms, 0.0);
  EXPECT_TRUE(record.strategy_valid);
  EXPECT_GT(record.game_moves, 0u);
}

TEST(Sweep, ShapesAndDeterminism) {
  std::vector<sim::SweepPoint> points;
  for (const std::size_t n : {6u, 8u}) {
    model::InstanceParams p = small_params();
    p.server_count = n;
    points.push_back({util::format("N={}", n), p});
  }
  std::vector<core::ApproachPtr> approaches;
  approaches.push_back(std::make_unique<core::IddeG>());

  sim::SweepOptions options;
  options.repetitions = 3;
  options.base_seed = 7;
  options.threads = 2;
  const auto a = sim::run_sweep(points, approaches, options);
  const auto b = sim::run_sweep(points, approaches, options);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(a[0].cells.size(), 1u);
  EXPECT_EQ(a[0].label, "N=6");
  EXPECT_EQ(a[0].cells[0].rate_mbps.n, 3u);
  // Metrics are deterministic given (point, rep) seeds; solve_ms is not.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cells[0].rate_mbps.mean,
                     b[i].cells[0].rate_mbps.mean);
    EXPECT_DOUBLE_EQ(a[i].cells[0].latency_ms.mean,
                     b[i].cells[0].latency_ms.mean);
  }
}

TEST(Sweep, FaultProfilePopulatesResilienceEstimates) {
  std::vector<sim::SweepPoint> points{{"p0", small_params()}};
  std::vector<core::ApproachPtr> approaches;
  approaches.push_back(std::make_unique<core::IddeG>());

  sim::SweepOptions options;
  options.repetitions = 2;
  options.base_seed = 11;
  // Without a profile the resilience estimates stay empty (n == 0).
  const auto plain = sim::run_sweep(points, approaches, options);
  EXPECT_EQ(plain[0].cells[0].degraded_latency_ms.n, 0u);
  EXPECT_EQ(plain[0].cells[0].availability.n, 0u);

  fault::FaultProfile profile;
  profile.horizon_s = 30.0;
  profile.server_mtbf_s = 10.0;
  profile.server_mttr_s = 5.0;
  options.fault_profile = &profile;
  options.repair_policy = fault::RepairPolicy::kGreedy;
  const auto faulty = sim::run_sweep(points, approaches, options);
  const auto& cell = faulty[0].cells[0];
  EXPECT_EQ(cell.degraded_latency_ms.n, 2u);
  EXPECT_EQ(cell.availability.n, 2u);
  EXPECT_GE(cell.degraded_latency_ms.mean, cell.latency_ms.mean - 1e-9);
  EXPECT_GT(cell.availability.mean, 0.0);
  EXPECT_LE(cell.availability.mean, 1.0);
  // Fault evaluation must not perturb the fault-free metrics.
  EXPECT_DOUBLE_EQ(cell.rate_mbps.mean, plain[0].cells[0].rate_mbps.mean);
  EXPECT_DOUBLE_EQ(cell.latency_ms.mean, plain[0].cells[0].latency_ms.mean);
}

TEST(Scenario, FaultProfileJsonRoundTrip) {
  fault::FaultProfile profile;
  profile.horizon_s = 42.0;
  profile.server_mtbf_s = 7.0;
  profile.server_mttr_s = 2.5;
  profile.link_mtbf_s = 9.0;
  profile.cloud_mtbf_s = 13.0;
  profile.replica_corruption_prob = 0.125;
  const auto round =
      sim::fault_profile_from_json(sim::fault_profile_to_json(profile));
  EXPECT_DOUBLE_EQ(round.horizon_s, profile.horizon_s);
  EXPECT_DOUBLE_EQ(round.server_mtbf_s, profile.server_mtbf_s);
  EXPECT_DOUBLE_EQ(round.server_mttr_s, profile.server_mttr_s);
  EXPECT_DOUBLE_EQ(round.link_mtbf_s, profile.link_mtbf_s);
  EXPECT_DOUBLE_EQ(round.link_mttr_s, profile.link_mttr_s);
  EXPECT_DOUBLE_EQ(round.cloud_mtbf_s, profile.cloud_mtbf_s);
  EXPECT_DOUBLE_EQ(round.cloud_mttr_s, profile.cloud_mttr_s);
  EXPECT_DOUBLE_EQ(round.replica_corruption_prob,
                   profile.replica_corruption_prob);
  // An empty object yields the inert defaults.
  EXPECT_TRUE(sim::fault_profile_from_json(util::Json(util::JsonObject{}))
                  .inert());
}

TEST(Sweep, ProgressCallbackFiresPerPoint) {
  std::vector<sim::SweepPoint> points{{"p0", small_params()},
                                      {"p1", small_params()}};
  std::vector<core::ApproachPtr> approaches;
  approaches.push_back(std::make_unique<core::IddeG>());
  sim::SweepOptions options;
  options.repetitions = 1;
  int fired = 0;
  options.on_point = [&fired](const sim::PointResult&) { ++fired; };
  (void)sim::run_sweep(points, approaches, options);
  EXPECT_EQ(fired, 2);
}

TEST(Report, SeriesTableLayout) {
  sim::PointResult p0{"N=20",
                      {{"A", {100, 1, 3}, {10, 1, 3}, {1, 0, 3}},
                       {"B", {90, 1, 3}, {20, 1, 3}, {2, 0, 3}}}};
  sim::PointResult p1{"N=25",
                      {{"A", {110, 1, 3}, {9, 1, 3}, {1, 0, 3}},
                       {"B", {95, 1, 3}, {18, 1, 3}, {2, 0, 3}}}};
  const std::vector<sim::PointResult> results{p0, p1};
  const auto table = sim::series_table(results, sim::Metric::kRate, "N");
  const std::string text = table.to_string();
  EXPECT_NE(text.find("N=20"), std::string::npos);
  EXPECT_NE(text.find("100.00"), std::string::npos);
  EXPECT_NE(text.find("| A"), std::string::npos);
  const auto lat = sim::series_table(results, sim::Metric::kLatency, "N");
  EXPECT_NE(lat.to_string().find("18.00"), std::string::npos);
}

TEST(Report, CsvLongFormat) {
  sim::PointResult p0{"x",
                      {{"A", {1, 0.5, 3}, {2, 0.5, 3}, {3, 0.5, 3}}}};
  std::ostringstream out;
  sim::write_csv(out, {p0}, "param");
  const std::string text = out.str();
  EXPECT_NE(text.find("param,approach,metric,mean,ci95,n"),
            std::string::npos);
  EXPECT_NE(text.find("x,A,rate_mbps,1,0.5,3"), std::string::npos);
  EXPECT_NE(text.find("x,A,latency_ms,2,0.5,3"), std::string::npos);
  EXPECT_NE(text.find("x,A,solve_ms,3,0.5,3"), std::string::npos);
}

TEST(Report, AdvantagesComputeRelativeGains)
{
  sim::PointResult p0{"x",
                      {{"ours", {120, 0, 3}, {5, 0, 3}, {1, 0, 3}},
                       {"other", {100, 0, 3}, {20, 0, 3}, {1, 0, 3}}}};
  const auto advantages = sim::advantages_of({p0}, "ours");
  ASSERT_EQ(advantages.size(), 1u);
  EXPECT_EQ(advantages[0].versus, "other");
  EXPECT_NEAR(advantages[0].rate_gain_pct, 20.0, 1e-9);
  EXPECT_NEAR(advantages[0].latency_reduction_pct, 75.0, 1e-9);
}

TEST(PaperSets, MatchTable2) {
  const auto set1 = sim::paper_set1();
  ASSERT_EQ(set1.size(), 7u);
  EXPECT_EQ(set1.front().label, "N=20");
  EXPECT_EQ(set1.back().label, "N=50");
  EXPECT_EQ(set1.front().params.user_count, 200u);
  EXPECT_EQ(set1.front().params.data_count, 5u);

  const auto set2 = sim::paper_set2();
  ASSERT_EQ(set2.size(), 7u);
  EXPECT_EQ(set2.front().params.user_count, 50u);
  EXPECT_EQ(set2.back().params.user_count, 350u);
  EXPECT_EQ(set2.front().params.server_count, 30u);

  const auto set3 = sim::paper_set3();
  ASSERT_EQ(set3.size(), 7u);
  EXPECT_EQ(set3.front().params.data_count, 2u);
  EXPECT_EQ(set3.back().params.data_count, 8u);

  const auto set4 = sim::paper_set4();
  ASSERT_EQ(set4.size(), 6u);
  EXPECT_DOUBLE_EQ(set4.front().params.density, 1.0);
  EXPECT_DOUBLE_EQ(set4.back().params.density, 3.0);

  EXPECT_EQ(sim::paper_sets().size(), 4u);
}

TEST(PaperSets, Table2TextContainsGrid) {
  const std::string text = sim::table2_text();
  EXPECT_NE(text.find("Set #1"), std::string::npos);
  EXPECT_NE(text.find("20,...,50"), std::string::npos);
  EXPECT_NE(text.find("1.0,...,3.0"), std::string::npos);
}

TEST(PaperSets, DefaultsFollowSection42) {
  const auto p = sim::paper_default_params();
  EXPECT_EQ(p.server_count, 30u);
  EXPECT_EQ(p.user_count, 200u);
  EXPECT_EQ(p.data_count, 5u);
  EXPECT_DOUBLE_EQ(p.density, 1.0);
  EXPECT_EQ(p.channels_per_server, 3u);
  EXPECT_DOUBLE_EQ(p.channel_bandwidth_mbps, 200.0);
  EXPECT_DOUBLE_EQ(p.noise_dbm, -174.0);
  EXPECT_DOUBLE_EQ(p.cloud_speed_mbps, 600.0);
  EXPECT_DOUBLE_EQ(p.min_link_speed_mbps, 2000.0);
  EXPECT_DOUBLE_EQ(p.max_link_speed_mbps, 6000.0);
  EXPECT_EQ(p.eua.server_count, 125u);
  EXPECT_EQ(p.eua.user_count, 816u);
}

}  // namespace
