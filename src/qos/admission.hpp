// Per-server bounded admission queue.
//
// One AdmissionQueue guards each serving server in the overload-aware DES:
// requests that cannot take a service slot immediately wait here in FIFO
// order, and the configured SheddingPolicy decides what happens when the
// waiting room is full (or a deadline is already unmeetable). The queue is
// plain deterministic data — all timing decisions (estimates, deadlines)
// are made by the engine and passed in; the queue only enforces capacity
// and order.
#pragma once

#include <cstddef>
#include <vector>

#include "qos/config.hpp"

namespace idde::qos {

/// One waiting request. `retry` marks re-queued attempts (already counted
/// admitted) — they are never shed, only forced to the cloud by the engine.
struct QueueEntry {
  std::size_t record = 0;   ///< FlowRecord index in the engine
  double enqueue_s = 0.0;
  bool retry = false;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config)
      : policy_(config.policy), capacity_(config.queue_capacity) {}

  /// True when a fresh arrival may NOT enter: the waiting room is at
  /// capacity under a bounded policy. kNone is unbounded by design (its
  /// growth is the congestion-collapse failure mode under study;
  /// capacity-bound: total offered arrivals of the run, which is finite).
  [[nodiscard]] bool full() const noexcept {
    return policy_ != SheddingPolicy::kNone && size() >= capacity_;
  }

  void push(QueueEntry entry) { entries_.push_back(entry); }

  [[nodiscard]] bool empty() const noexcept { return head_ == entries_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return entries_.size() - head_;
  }

  [[nodiscard]] const QueueEntry& front() const { return entries_[head_]; }

  QueueEntry pop_front() {
    const QueueEntry entry = entries_[head_++];
    // Reclaim the dead prefix once it dominates the buffer.
    if (head_ > 64 && head_ * 2 > entries_.size()) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return entry;
  }

  [[nodiscard]] SheddingPolicy policy() const noexcept { return policy_; }

 private:
  SheddingPolicy policy_;
  std::size_t capacity_;
  // FIFO as vector + head index (no raw std::deque; see the
  // unbounded-queue lint rule). capacity-bound: `capacity_` entries under
  // the shedding policies; total offered arrivals under kNone.
  std::vector<QueueEntry> entries_;
  std::size_t head_ = 0;
};

}  // namespace idde::qos
