// Typed exceptions for model-layer input validation.
//
// The PR 5 structured CLI error contract requires that malformed *input*
// (files, generator parameters, environment shapes) surfaces as a typed
// exception the idde_tool top-level handler can turn into one structured
// stderr line and a nonzero exit — never an abort. IDDE_ASSERT remains the
// right tool for *internal* invariants (a corrupted profile mid-solve is a
// bug, not bad input); ValidationError is for data handed to us from
// outside the process.
#pragma once

#include <stdexcept>
#include <string>

namespace idde::util {

/// Inconsistent or out-of-range input data (shape mismatches, negative
/// physical quantities, unsorted index sets). Carries a human-readable
/// description of the first violation found.
class ValidationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws ValidationError with `message` when `condition` is false.
inline void validate(bool condition, const std::string& message) {
  if (!condition) throw ValidationError(message);
}

}  // namespace idde::util
