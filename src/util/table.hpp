// Aligned plain-text tables: the bench binaries print the paper's figures as
// series tables (one row per sweep point, one column per approach).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace idde::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Appends mixed cells with default numeric formatting.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable& table) : table_(table) {}
    RowBuilder& add(std::string value);
    RowBuilder& add(double value, int precision = 2);
    RowBuilder& add(long long value);
    RowBuilder& add(int value) { return add(static_cast<long long>(value)); }
    RowBuilder& add(std::size_t value) {
      return add(static_cast<long long>(value));
    }
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TextTable& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder start_row() { return RowBuilder(*this); }

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace idde::util
