// Post-crash re-healing of the delivery profile (sigma). When servers die
// their replicas disappear and the users they served fall back to the
// cloud; the survivors are left with spare Eq. 6 storage budget and a
// latency field that no longer matches the greedy optimum. RepairPlanner
// rebuilds sigma for the degraded world: it keeps every surviving (and
// uncorrupted) placement, drops the rest, and greedily re-places items on
// the surviving servers by the same latency-reduction-per-MB ratio
// (Eq. 17) the Phase-2 planner uses — the repair is exactly "resume the
// greedy on what is left".
//
// With every server up and no corruption the replan is a provable no-op on
// a greedily saturated sigma: committed gains only shrink as sigma grows
// (submodularity), so no candidate the original run rejected can become
// profitable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

struct RepairResult {
  DeliveryProfile delivery;
  std::size_t lost_placements = 0;    ///< replicas on dead servers / corrupt
  std::size_t repair_placements = 0;  ///< new placements the repair added
  double recovered_gain_seconds = 0;  ///< total latency the repairs removed
};

class RepairPlanner {
 public:
  explicit RepairPlanner(const model::ProblemInstance& instance);

  /// Extra loss predicate: true when the replica (server, item) is
  /// unreadable even though its server is up (silent corruption).
  using ReplicaLost = std::function<bool(std::size_t, std::size_t)>;

  /// Re-heals `sigma` for the world where only `server_up` servers
  /// survive. Users allocated to dead servers are treated as cloud-bound
  /// for the duration of the outage (their slot is gone, not re-auctioned
  /// — channel reallocation is the game's job, not the repair's).
  [[nodiscard]] RepairResult replan(const AllocationProfile& allocation,
                                    const DeliveryProfile& sigma,
                                    std::span<const std::uint8_t> server_up,
                                    const ReplicaLost& replica_lost = {},
                                    bool collaborative = true) const;

 private:
  const model::ProblemInstance* instance_;
};

}  // namespace idde::core
