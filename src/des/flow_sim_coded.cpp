// The coded DES engine: flow-level replay of a k-of-n coded strategy.
//
// Every request resolves through the coded Eq. 8 resolver against the
// epoch it starts in: e parallel fragment flows from the selected edge
// hosts plus one uncontended cloud leg for the k - e top-up fragments.
// The request completes when its last leg lands (max over legs). An epoch
// change that kills *any* routed leg aborts the whole attempt — partial
// fragment sets cannot reconstruct the item — and the attempt retries
// with the same capped exponential backoff / forced-cloud machinery as
// run_with_faults, re-resolving all k fragments from scratch.
//
// QoS composition (options_.qos non-inert): open-loop arrivals,
// deadline-aware shedding of fresh arrivals (optimistic fault-free coded
// estimate), the global retry-budget bucket, and per-server circuit
// breakers masked into fragment resolution. Slot-based admission queues
// are not modelled for coded flows (service_slots must be 0): a coded
// attempt spans several servers at once, so a single-server slot gate has
// no faithful coded meaning.
//
// k = 1 contract: with a non-inert fault plan and no QoS, every rng draw,
// event time, tie-break and float matches run_with_faults on the
// equivalent replication strategy — the records, aggregates and metrics
// are bit-identical.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "coding/coded_resolver.hpp"
#include "des/flow_sim.hpp"
#include "des/fluid.hpp"
#include "fault/injector.hpp"
#include "net/shortest_path.hpp"
#include "obs/obs.hpp"
#include "qos/arrivals.hpp"
#include "qos/breaker.hpp"
#include "qos/retry_budget.hpp"
#include "util/assert.hpp"

namespace idde::des {

namespace {

using detail::ActiveFlow;
using detail::assign_max_min_rates;

}  // namespace

FlowSimResult FlowLevelSimulator::run_coded(
    const coding::CodedStrategy& strategy, util::Rng& rng) const {
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(strategy.allocation.size() == instance.user_count());
  IDDE_OBS_SPAN("des.run_coded");
  // The coded engine does not model gray degradation or hedged legs yet;
  // reject the combination instead of silently ignoring the plan.
  IDDE_EXPECTS(options_.degradation == nullptr ||
               options_.degradation->inert());
  IDDE_EXPECTS(options_.hedge.inert());
  const std::size_t frag_k = strategy.delivery.config().k;

  const qos::QosConfig* qos_cfg = options_.qos;
  const bool qos_active = qos_cfg != nullptr && !qos_cfg->inert();
  // See header comment: single-server admission slots have no faithful
  // coded meaning, so a coded run must not configure them.
  IDDE_EXPECTS(!qos_active || qos_cfg->admission.service_slots == 0);
  const bool deadline_aware =
      qos_active &&
      qos_cfg->admission.policy == qos::SheddingPolicy::kDeadlineAware &&
      qos_cfg->admission.deadline_s > 0.0;
  const bool breakers_active = qos_active && !qos_cfg->breaker.inert();

  const fault::FaultPlan inert_plan;  // default-constructed = inert
  const fault::FaultPlan& plan =
      options_.fault_plan != nullptr ? *options_.fault_plan : inert_plan;
  const bool faults = !plan.inert();
  std::optional<fault::FaultInjector> injector;
  if (faults) injector.emplace(instance, plan);
  const bool corruption = faults && plan.replica_corruption_prob() > 0.0;

  FlowSimResult result;
  // Records in the same user-major order (and with the same rng draws) as
  // the replication engines, so arrival times match exactly at k = 1.
  if (!qos_active || qos_cfg->arrivals.inert()) {
    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      for (const std::size_t k : instance.requests().items_of(j)) {
        FlowRecord record;
        record.user = j;
        record.item = k;
        record.arrival_s = options_.arrival_window_s > 0.0
                               ? rng.uniform(0.0, options_.arrival_window_s)
                               : 0.0;
        result.flows.push_back(record);
      }
    }
  } else {
    for (const qos::Arrival& arrival :
         qos::generate_arrivals(instance, qos_cfg->arrivals, rng)) {
      FlowRecord record;
      record.user = arrival.user;
      record.item = arrival.item;
      record.arrival_s = arrival.time_s;
      result.flows.push_back(record);
    }
  }
  const std::size_t records = result.flows.size();

  coding::CodedResolver resolver(instance);
  const auto serving_of = [&](std::size_t r) {
    const core::ChannelSlot slot = strategy.allocation[result.flows[r].user];
    return slot.allocated() ? slot.server : core::ChannelSlot::kNone;
  };

  // Optimistic coded service estimate for deadline-aware shedding: the
  // fault-free coded Eq. 8 value — a lower bound on any real completion.
  std::vector<double> estimate_s;
  if (deadline_aware) {
    estimate_s.assign(records, 0.0);
    std::vector<std::size_t> ff_hosts;
    for (std::size_t r = 0; r < records; ++r) {
      const std::size_t item = result.flows[r].item;
      const std::size_t serving = serving_of(r);
      ff_hosts.clear();
      for (const std::size_t host : strategy.delivery.hosts(item)) {
        if (!strategy.collaborative_delivery && host != serving) continue;
        ff_hosts.push_back(host);
      }
      estimate_s[r] =
          resolver
              .resolve(ff_hosts, serving, instance.data(item).size_mb,
                       strategy.delivery.item_fragment_mb(item), frag_k)
              .seconds;
    }
  }
  const auto unmeetable = [&](std::size_t r, double now) {
    return deadline_aware &&
           now + estimate_s[r] >
               result.flows[r].arrival_s + qos_cfg->admission.deadline_s;
  };

  // Per-record coded attempt state.
  std::vector<std::size_t> legs_left(records, 0);
  std::vector<double> cloud_done_s(records, 0.0);
  /// Edge sources of the in-flight attempt (breaker bookkeeping). Outer
  /// vector sized once; inner capacity stabilises after the first attempt.
  std::vector<std::vector<std::size_t>> attempt_sources(records);
  std::vector<std::uint8_t> started(records, 0);

  std::vector<qos::CircuitBreaker> breakers;
  if (breakers_active) {
    breakers.assign(instance.server_count(),
                    qos::CircuitBreaker(qos_cfg->breaker));
  }
  std::optional<qos::RetryBudget> budget;
  if (qos_active) budget.emplace(qos_cfg->retry_budget);

  // Min-heap on (time, record) — the exact run_with_faults event order.
  struct Attempt {
    double time;
    std::size_t record;
  };
  struct AttemptLater {
    bool operator()(const Attempt& x, const Attempt& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.record > y.record;
    }
  };
  std::priority_queue<Attempt, std::vector<Attempt>, AttemptLater> queue;
  for (std::size_t r = 0; r < records; ++r) {
    queue.push(Attempt{result.flows[r].arrival_s, r});
  }

  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const Link& link : links_) capacities.push_back(link.capacity_mbps);

  std::vector<std::size_t> degraded_hosts;
  std::vector<std::size_t> reference_hosts;
  std::vector<std::uint8_t> up_buf;
  std::vector<std::size_t> aborted;  // epoch-abort scratch, record ids
  std::vector<ActiveFlow> active;

  const auto force_cloud = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    record.forced_cloud = true;
    record.from_cloud = true;
    record.local_hit = false;
    record.tier = core::FallbackTier::kCloud;
    const double size = instance.data(record.item).size_mb;
    record.completion_s =
        plan.cloud_completion(now, instance.latency().cloud_transfer_seconds(size));
    legs_left[r] = 0;
  };

  // Starts one coded attempt at `now`: resolves all k fragments, records
  // a direct completion (all legs local/cloud) or adds the routed legs.
  const auto start_attempt = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    record.from_cloud = false;
    record.local_hit = false;
    record.hops = 0;
    const std::size_t serving = serving_of(r);
    const double size = instance.data(record.item).size_mb;
    const double frag_mb = strategy.delivery.item_fragment_mb(record.item);

    if (record.retries > options_.max_retries ||
        now - record.arrival_s > options_.timeout_s) {
      // Give up on the edge: one final, unabortable cloud transfer.
      force_cloud(r, now);
      return;
    }

    std::span<const std::uint8_t> server_up;
    const net::CostMatrix* costs = nullptr;
    const net::Graph* graph = &instance.graph();
    if (faults) {
      const fault::AvailabilitySnapshot& snap = injector->snapshot_at(now);
      server_up = snap.server_up;
      costs = &snap.costs;
      graph = &snap.graph;
    }
    if (breakers_active) {
      if (server_up.empty()) {
        up_buf.assign(instance.server_count(), 1);
      } else {
        up_buf.assign(server_up.begin(), server_up.end());
      }
      for (std::size_t i = 0; i < up_buf.size(); ++i) {
        if (!breakers[i].allows(now)) up_buf[i] = 0;
      }
      server_up = up_buf;
    }

    degraded_hosts.clear();
    reference_hosts.clear();
    for (const std::size_t host : strategy.delivery.hosts(record.item)) {
      if (!strategy.collaborative_delivery && host != serving) continue;
      reference_hosts.push_back(host);
      if (corruption && plan.replica_corrupted(host, record.item)) continue;
      degraded_hosts.push_back(host);
    }
    const coding::CodedDecision decision =
        resolver.resolve(degraded_hosts, serving, size, frag_mb, frag_k,
                         server_up, costs, reference_hosts);
    record.tier = decision.tier;
    record.from_cloud = decision.cloud_fragments > 0;
    cloud_done_s[r] =
        decision.cloud_fragments > 0
            ? plan.cloud_completion(
                  now, resolver.cloud_topup_seconds(decision.cloud_fragments,
                                                    frag_k, size, frag_mb))
            : now;

    attempt_sources[r].clear();
    legs_left[r] = 0;
    for (const std::size_t host : resolver.selected_hosts()) {
      attempt_sources[r].push_back(host);
      if (breakers_active) breakers[host].on_attempt_started(now);
      if (host == serving) continue;  // local fragment: instant read
      const net::Route route = net::shortest_route(*graph, host, serving);
      IDDE_ASSERT(!route.nodes.empty(),
                  "resolver picked an unreachable fragment host");
      record.hops = std::max(record.hops, route.hops());
      ActiveFlow flow;
      flow.record_index = r;
      flow.remaining_mb = frag_mb;
      for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
        const std::size_t l = link_between(route.nodes[s], route.nodes[s + 1]);
        IDDE_ASSERT(l != kNoLink, "route uses a missing link");
        flow.links.push_back(l);
      }
      active.push_back(std::move(flow));
      ++legs_left[r];
    }
    if (legs_left[r] == 0) {
      // No routed legs: local fragments are instant, so the cloud top-up
      // (now when there is none) is the completion.
      record.local_hit = decision.cloud_fragments == 0;
      record.completion_s = cloud_done_s[r];
      if (breakers_active) {
        for (const std::size_t host : attempt_sources[r]) {
          breakers[host].record_success(now);
        }
      }
    }
  };

  const auto dispatch_attempt = [&](std::size_t r, double now) {
    if (qos_active && started[r] == 0) {
      started[r] = 1;
      budget->on_fresh_arrival();
      if (unmeetable(r, now)) {
        result.flows[r].outcome = FlowOutcome::kShed;
        result.flows[r].completion_s = now;
        return;
      }
    } else if (qos_active && unmeetable(r, now)) {
      // Already admitted — the unmeetable retry becomes a cloud fetch.
      force_cloud(r, now);
      return;
    }
    start_attempt(r, now);
  };

  // One aborted coded attempt: a dead leg invalidates the whole fragment
  // set, so the record retries (or goes cloud-direct) as a unit.
  const auto abort_attempt = [&](std::size_t r, double now) {
    IDDE_OBS_COUNT("des.epoch_aborts_total", 1);
    FlowRecord& record = result.flows[r];
    ++record.retries;
    if (breakers_active) {
      for (const std::size_t host : attempt_sources[r]) {
        breakers[host].record_failure(now);
      }
    }
    if (qos_active && !budget->try_spend_retry()) {
      force_cloud(r, now);
      return;
    }
    const double backoff = std::min(
        options_.retry_backoff_s *
            std::ldexp(1.0, static_cast<int>(record.retries) - 1),
        options_.retry_backoff_max_s);
    queue.push(Attempt{now + backoff, r});
  };

  double now = 0.0;
  while (!active.empty() || !queue.empty()) {
    if (active.empty()) now = std::max(now, queue.top().time);
    while (!queue.empty() && queue.top().time <= now) {
      const Attempt attempt = queue.top();
      queue.pop();
      dispatch_attempt(attempt.record, now);
    }
    if (active.empty()) continue;  // next queue entry re-anchors `now`

    assign_max_min_rates(active, capacities);
    ++result.rate_recomputations;

    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& flow : active) {
      IDDE_ASSERT(flow.rate_mbps > 0.0, "starved flow");
      dt = std::min(dt, flow.remaining_mb / flow.rate_mbps);
    }
    if (!queue.empty()) dt = std::min(dt, queue.top().time - now);
    bool epoch_event = false;
    if (faults) {
      // Stop at the next edge-availability change so in-flight legs can
      // be validated against the new epoch.
      const double next_epoch = plan.next_edge_change_after(now);
      epoch_event = next_epoch - now <= dt;
      if (epoch_event) dt = next_epoch - now;
    }

    for (ActiveFlow& flow : active) flow.remaining_mb -= flow.rate_mbps * dt;
    now += dt;

    for (std::size_t f = 0; f < active.size();) {
      if (active[f].remaining_mb > 1e-9) {
        ++f;
        continue;
      }
      const std::size_t r = active[f].record_index;
      active[f] = active.back();
      active.pop_back();
      IDDE_ASSERT(legs_left[r] > 0, "leg completion underflow");
      if (--legs_left[r] == 0) {
        // Last edge leg landed; the cloud top-up may still be the tail.
        result.flows[r].completion_s = std::max(now, cloud_done_s[r]);
        if (breakers_active) {
          for (const std::size_t host : attempt_sources[r]) {
            breakers[host].record_success(now);
          }
        }
      }
    }

    if (epoch_event) {
      // A record aborts when any of its legs crosses a dead server/link.
      aborted.clear();
      for (const ActiveFlow& flow : active) {
        for (const std::size_t l : flow.links) {
          if (!plan.server_up(links_[l].a, now) ||
              !plan.server_up(links_[l].b, now) ||
              !plan.link_up(links_[l].a, links_[l].b, now)) {
            aborted.push_back(flow.record_index);
            break;
          }
        }
      }
      if (!aborted.empty()) {
        std::sort(aborted.begin(), aborted.end());
        aborted.erase(std::unique(aborted.begin(), aborted.end()),
                      aborted.end());
        for (std::size_t f = 0; f < active.size();) {
          if (std::binary_search(aborted.begin(), aborted.end(),
                                 active[f].record_index)) {
            active[f] = active.back();
            active.pop_back();
          } else {
            ++f;
          }
        }
        for (const std::size_t r : aborted) {
          legs_left[r] = 0;
          abort_attempt(r, now);
        }
      }
    }
  }

  if (qos_active) {
    result.qos.retries_denied = budget->denied();
    for (const qos::CircuitBreaker& breaker : breakers) {
      result.qos.breaker_opens += breaker.times_opened();
    }
    const double window = qos_cfg->arrivals.inert()
                              ? options_.arrival_window_s
                              : qos_cfg->arrivals.window_s;
    finalize(result, qos_cfg->admission.deadline_s, window);
  } else {
    finalize(result);
  }
  return result;
}

}  // namespace idde::des
