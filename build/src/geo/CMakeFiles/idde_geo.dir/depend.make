# Empty dependencies file for idde_geo.
# This may be replaced when dependencies are built.
