file(REMOVE_RECURSE
  "libidde_net.a"
)
