#include "radio/pathloss.hpp"

#include <algorithm>
#include <cmath>

namespace idde::radio {

double PathLossModel::gain(double distance_m) const {
  IDDE_EXPECTS(distance_m >= 0.0);
  const double d = std::max(distance_m, min_distance_m_);
  return eta_ * std::pow(d, -loss_exponent_);
}

}  // namespace idde::radio
