file(REMOVE_RECURSE
  "libidde_util.a"
)
