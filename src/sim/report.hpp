// Renders sweep results the way the paper's figures present them: one
// series table per metric (rows = sweep points, columns = approaches),
// plus CSV output for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/table.hpp"

namespace idde::sim {

enum class Metric { kRate, kLatency, kSolveTime };

[[nodiscard]] std::string metric_name(Metric metric);

/// Table of mean values (rows = points, columns = approaches).
[[nodiscard]] util::TextTable series_table(
    const std::vector<PointResult>& results, Metric metric,
    std::string x_label);

/// Long-format CSV: point,approach,metric,mean,ci95,n.
void write_csv(std::ostream& out, const std::vector<PointResult>& results,
               std::string_view x_label);

/// Per-approach advantage summary the paper quotes ("IDDE-G outperforms X
/// by Y%"): averages the relative gain of `ours` over each other approach
/// across all points. Rate uses relative gain, latency relative reduction.
struct Advantage {
  std::string versus;
  double rate_gain_pct = 0.0;
  double latency_reduction_pct = 0.0;
};

[[nodiscard]] std::vector<Advantage> advantages_of(
    const std::vector<PointResult>& results, const std::string& ours);

}  // namespace idde::sim
