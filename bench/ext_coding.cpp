// ext_coding — what does erasure-coded placement buy over 0/1 replication?
//
// Traces the (n, k) x storage-budget frontier at the Section 4.2 default
// size: per (budget, repetition) solve IDDE-G fault-free, then re-plan the
// delivery plane with the coded greedy at each fragment config and score
// replication vs coded three ways — analytic fault-free L_avg, analytic
// time-weighted degraded L_avg under the shared severity grid
// (bench/figure_common.hpp, with and without greedy repair), and a
// flow-level DES replay through the same fault plan (parallel fragment
// legs, retries, backoff).
//
// Two gates run in-binary (CI runs --smoke and fails on exit != 0):
//  1. k = 1 is bit-identical to replication: same placements and headroom
//     as core::GreedyDeliveryPlanner, same fault-free L_avg, the same
//     ResilienceReport field-for-field, and the same DES replay floats.
//  2. The coded frontier dominates replication somewhere: at >= 1
//     (budget, severity) point some k > 1 config reaches a strictly lower
//     degraded L_avg (no repair) than replication at equal storage.
//
// Emits BENCH_coding.json for cross-PR tracking.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "coding/coded_planner.hpp"
#include "coding/coded_profile.hpp"
#include "coding/coded_resilience.hpp"
#include "coding/fragment.hpp"
#include "core/greedy_delivery.hpp"
#include "core/metrics.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

/// Equality of the aggregate DES result — every float and counter the
/// replay reports, plus each flow's completion time. Bitwise: the k = 1
/// contract is "same events, same floats", not "close".
bool same_des_result(const des::FlowSimResult& a, const des::FlowSimResult& b) {
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    if (a.flows[i].arrival_s != b.flows[i].arrival_s ||
        a.flows[i].completion_s != b.flows[i].completion_s ||
        a.flows[i].retries != b.flows[i].retries ||
        a.flows[i].from_cloud != b.flows[i].from_cloud ||
        a.flows[i].local_hit != b.flows[i].local_hit ||
        a.flows[i].tier != b.flows[i].tier) {
      return false;
    }
  }
  return a.mean_duration_ms == b.mean_duration_ms &&
         a.p95_duration_ms == b.p95_duration_ms &&
         a.p99_duration_ms == b.p99_duration_ms &&
         a.max_duration_ms == b.max_duration_ms &&
         a.makespan_s == b.makespan_s && a.local_hits == b.local_hits &&
         a.cloud_fetches == b.cloud_fetches &&
         a.availability == b.availability && a.retry_count == b.retry_count &&
         a.forced_cloud_fetches == b.forced_cloud_fetches &&
         a.tier_counts == b.tier_counts;
}

bool same_report(const fault::ResilienceReport& a,
                 const fault::ResilienceReport& b) {
  return a.fault_free_latency_ms == b.fault_free_latency_ms &&
         a.degraded_latency_ms == b.degraded_latency_ms &&
         a.availability == b.availability &&
         a.tier_fraction == b.tier_fraction && a.epochs == b.epochs &&
         a.lost_placements == b.lost_placements &&
         a.repair_placements == b.repair_placements;
}

/// k = 1 placement identity: the coded profile holds exactly the
/// replication planner's placements and the same integer-KB headroom.
bool same_placements(const coding::CodedDeliveryProfile& coded,
                     const core::DeliveryProfile& replication) {
  for (std::size_t k = 0; k < coded.data_count(); ++k) {
    const auto ch = coded.hosts(k);
    const auto rh = replication.hosts(k);
    if (!std::equal(ch.begin(), ch.end(), rh.begin(), rh.end())) return false;
  }
  for (std::size_t i = 0; i < coded.server_count(); ++i) {
    if (coded.free_kb(i) != replication.free_kb(i)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t reps = 3;
  std::size_t base_seed = 7400;
  std::string out = "BENCH_coding.json";
  util::CliParser cli(
      "ext_coding: (n, k) x storage-budget frontier — coded vs replication "
      "fault-free L_avg, degraded L_avg, and DES replay, with in-binary "
      "k=1 bit-identity and coded-dominance gates");
  cli.add_flag("smoke", &smoke, "1 rep, moderate severity only (CI)");
  cli.add_size("reps", &reps, "seeded instances per budget point");
  cli.add_size("seed", &base_seed, "first instance seed");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  bool telemetry = false;
  std::string trace_out;
  cli.add_flag("telemetry", &telemetry,
               "enable runtime telemetry (adds a telemetry block to --out)");
  cli.add_string("trace-out", &trace_out,
                 "write a chrome://tracing JSON here (implies --telemetry)");
  if (!cli.parse(argc, argv)) return 0;
  if (smoke) reps = 1;
  if (telemetry) obs::set_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  const std::vector<double> budgets =
      smoke ? std::vector<double>{0.5, 1.0}
            : std::vector<double>{0.5, 1.0, 1.5};
  const auto profiles = bench::make_severity_profiles(smoke);

  const model::InstanceParams base_params = sim::paper_default_params();
  // n bounds how many servers may hold a fragment of one item, so the
  // replication-equivalent config is (n = N, k = 1) — n below N would cap
  // the replica count, which plain replication does not. The coded rows
  // keep n = N (spread wherever the greedy wants) and vary the fragment
  // granularity k; one tight-n row shows the redundancy cap n/k = 2.
  const std::size_t n_servers = base_params.server_count;
  const std::vector<coding::FragmentConfig> configs{{n_servers, 1},
                                                    {n_servers, 2},
                                                    {n_servers, 3},
                                                    {n_servers, 4},
                                                    {8, 4}};
  const auto approaches = sim::make_paper_approaches(100.0);
  const core::Approach* solver = nullptr;
  for (const auto& approach : approaches) {
    if (approach->name() == "IDDE-G") solver = approach.get();
  }
  IDDE_EXPECTS(solver != nullptr);

  std::printf("ext_coding: N=%zu M=%zu K=%zu, %zu rep(s), %zu budget(s), "
              "%zu config(s)\n\n",
              base_params.server_count, base_params.user_count,
              base_params.data_count, reps, budgets.size(), configs.size());

  bool k1_identical = true;
  bool coded_dominates = false;
  util::JsonArray json_budgets;

  for (const double budget : budgets) {
    model::InstanceParams params = base_params;
    params.min_storage_mb *= budget;
    params.max_storage_mb *= budget;
    const model::InstanceBuilder builder(params);

    // [config][profile] means; config index 0 is reserved for replication.
    const std::size_t rows = configs.size() + 1;
    std::vector<util::RunningStats> fault_free(rows);
    std::vector<std::vector<util::RunningStats>> degraded_none(
        rows, std::vector<util::RunningStats>(profiles.size()));
    std::vector<std::vector<util::RunningStats>> degraded_greedy(
        rows, std::vector<util::RunningStats>(profiles.size()));
    std::vector<std::vector<util::RunningStats>> avail(
        rows, std::vector<util::RunningStats>(profiles.size()));
    std::vector<util::RunningStats> des_p99(rows), des_retries(rows);
    std::vector<util::RunningStats> placements(rows);

    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = base_seed + rep;
      const model::ProblemInstance instance = builder.build(seed);
      util::Rng rng(seed ^ 0x5e111e5ULL);
      const core::Strategy strategy = solver->solve(instance, rng);

      // Replication reference sigma, re-planned from the final allocation
      // (identical to the strategy's own phase 2 — and the exact object
      // the k = 1 gate compares against).
      core::GreedyDeliveryPlanner replication_planner(instance);
      const core::GreedyDeliveryResult replication =
          replication_planner.plan(strategy.allocation);
      fault_free[0].add(core::average_latency_ms(
          instance, strategy.allocation, replication.delivery));
      placements[0].add(static_cast<double>(replication.placements));

      std::vector<fault::FaultPlan> plans(profiles.size());
      for (std::size_t f = 0; f < profiles.size(); ++f) {
        plans[f] = fault::FaultPlan::generate(instance, profiles[f].fault,
                                              seed ^ 0x4a17);
        const fault::ResilienceReport none = fault::evaluate_resilience(
            instance, strategy, plans[f], fault::RepairPolicy::kNone);
        const fault::ResilienceReport greedy = fault::evaluate_resilience(
            instance, strategy, plans[f], fault::RepairPolicy::kGreedy);
        degraded_none[0][f].add(none.degraded_latency_ms);
        degraded_greedy[0][f].add(greedy.degraded_latency_ms);
        avail[0][f].add(none.availability);
      }

      // DES replay through the first (moderate) severity plan.
      des::FlowSimOptions des_options;
      des_options.arrival_window_s = 10.0;
      des_options.fault_plan = &plans[0];
      const des::FlowLevelSimulator simulator(instance, des_options);
      util::Rng des_rng(seed ^ 0xde5ULL);
      const des::FlowSimResult replication_replay =
          simulator.run(strategy, des_rng);
      des_p99[0].add(replication_replay.p99_duration_ms);
      des_retries[0].add(static_cast<double>(replication_replay.retry_count));

      coding::CodedGreedyPlanner coded_planner(instance);
      for (std::size_t c = 0; c < configs.size(); ++c) {
        const coding::FragmentConfig config = configs[c];
        coding::CodedPlanResult coded =
            coded_planner.plan(strategy.allocation, config,
                               strategy.collaborative_delivery);
        const double coded_ms = coding::coded_average_latency_ms(
            instance, strategy.allocation, coded.delivery,
            strategy.collaborative_delivery);
        fault_free[c + 1].add(coded_ms);
        placements[c + 1].add(static_cast<double>(coded.placements));

        coding::CodedStrategy coded_strategy(strategy.allocation,
                                             std::move(coded.delivery));
        coded_strategy.collaborative_delivery =
            strategy.collaborative_delivery;
        coded_strategy.approach_name = "IDDE-G+coded";
        coded_strategy.placements = coded.placements;

        std::optional<fault::ResilienceReport> k1_none;
        for (std::size_t f = 0; f < profiles.size(); ++f) {
          const fault::ResilienceReport none =
              coding::evaluate_coded_resilience(instance, coded_strategy,
                                                plans[f],
                                                fault::RepairPolicy::kNone);
          const fault::ResilienceReport greedy =
              coding::evaluate_coded_resilience(instance, coded_strategy,
                                                plans[f],
                                                fault::RepairPolicy::kGreedy);
          degraded_none[c + 1][f].add(none.degraded_latency_ms);
          degraded_greedy[c + 1][f].add(greedy.degraded_latency_ms);
          avail[c + 1][f].add(none.availability);
          if (f == 0) k1_none = none;
        }

        util::Rng coded_rng(seed ^ 0xde5ULL);
        const des::FlowSimResult coded_replay =
            simulator.run_coded(coded_strategy, coded_rng);
        des_p99[c + 1].add(coded_replay.p99_duration_ms);
        des_retries[c + 1].add(static_cast<double>(coded_replay.retry_count));

        // Gate 1: the (N, 1) config replays replication bit-for-bit.
        if (config.n == n_servers && config.k == 1) {
          const bool placements_ok =
              same_placements(coded_strategy.delivery, replication.delivery);
          const bool latency_ok =
              coded_ms == core::average_latency_ms(
                              instance, strategy.allocation,
                              replication.delivery);
          const fault::ResilienceReport reference =
              fault::evaluate_resilience(
                  instance,
                  core::Strategy(strategy.allocation,
                                 core::DeliveryProfile(replication.delivery)),
                  plans[0], fault::RepairPolicy::kNone);
          const bool report_ok = k1_none && same_report(*k1_none, reference);
          const bool des_ok =
              same_des_result(coded_replay, replication_replay);
          if (!placements_ok || !latency_ok || !report_ok || !des_ok) {
            std::fprintf(stderr,
                         "GATE k=1 bit-identity FAILED at budget %.2f rep "
                         "%zu (placements %d, latency %d, report %d, des "
                         "%d)\n",
                         budget, rep, placements_ok, latency_ok, report_ok,
                         des_ok);
            k1_identical = false;
          }
        }
      }
    }

    // Gate 2: some k > 1 config strictly beats replication's degraded
    // L_avg (no repair) at this budget under some severity profile.
    for (std::size_t f = 0; f < profiles.size(); ++f) {
      for (std::size_t c = 0; c < configs.size(); ++c) {
        if (configs[c].k <= 1) continue;
        if (degraded_none[c + 1][f].mean() < degraded_none[0][f].mean()) {
          coded_dominates = true;
        }
      }
    }

    std::printf("storage budget x%.2f:\n", budget);
    util::TextTable table({"scheme", "fault-free L_avg (ms)",
                           "degraded (no repair)", "degraded (repair)",
                           "availability", "DES p99 (ms)", "placements"});
    util::JsonArray json_schemes;
    for (std::size_t row = 0; row < rows; ++row) {
      const std::string name =
          row == 0 ? "replication"
                   : "coded(" + std::to_string(configs[row - 1].n) + "," +
                         std::to_string(configs[row - 1].k) + ")";
      table.start_row()
          .add(name)
          .add(fault_free[row].mean())
          .add(degraded_none[row][0].mean())
          .add(degraded_greedy[row][0].mean())
          .add(avail[row][0].mean())
          .add(des_p99[row].mean())
          .add(placements[row].mean());
      util::JsonObject scheme;
      scheme["name"] = name;
      if (row > 0) {
        scheme["n"] = configs[row - 1].n;
        scheme["k"] = configs[row - 1].k;
      }
      scheme["fault_free_latency_ms"] = fault_free[row].mean();
      scheme["placements"] = placements[row].mean();
      scheme["des_p99_ms"] = des_p99[row].mean();
      scheme["des_retries"] = des_retries[row].mean();
      util::JsonArray json_profiles;
      for (std::size_t f = 0; f < profiles.size(); ++f) {
        util::JsonObject entry;
        entry["name"] = std::string(profiles[f].name);
        entry["degraded_latency_ms_no_repair"] = degraded_none[row][f].mean();
        entry["degraded_latency_ms_greedy_repair"] =
            degraded_greedy[row][f].mean();
        entry["availability"] = avail[row][f].mean();
        json_profiles.emplace_back(std::move(entry));
      }
      scheme["profiles"] = std::move(json_profiles);
      json_schemes.emplace_back(std::move(scheme));
    }
    table.print(std::cout);
    std::puts("");
    util::JsonObject json_budget;
    json_budget["storage_budget_factor"] = budget;
    json_budget["schemes"] = std::move(json_schemes);
    json_budgets.emplace_back(std::move(json_budget));
  }

  std::printf("gates: k=1 bit-identity %s, coded dominance %s\n",
              k1_identical ? "ok" : "FAILED",
              coded_dominates ? "ok" : "FAILED");

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("ext_coding");
    util::JsonObject shape;
    shape["servers"] = base_params.server_count;
    shape["users"] = base_params.user_count;
    shape["data"] = base_params.data_count;
    shape["reps"] = reps;
    shape["base_seed"] = base_seed;
    doc["instance"] = std::move(shape);
    doc["budgets"] = std::move(json_budgets);
    util::JsonObject gates;
    gates["k1_bit_identical"] = k1_identical;
    gates["coded_dominates_replication"] = coded_dominates;
    doc["gates"] = std::move(gates);
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::global().write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return (k1_identical && coded_dominates) ? 0 : 1;
}
