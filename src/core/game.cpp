#include "core/game.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace idde::core {

namespace {

/// Telemetry for one finished solve (both engines). Pure observation —
/// the engines' move sequences are bit-identical with this on or off.
void record_game_telemetry(const GameResult& result) {
  IDDE_OBS_COUNT("game.solves_total", 1);
  IDDE_OBS_COUNT("game.moves_total", result.moves);
  IDDE_OBS_COUNT("game.rounds_total", result.rounds);
  IDDE_OBS_COUNT("game.benefit_evaluations_total",
                 result.benefit_evaluations);
  IDDE_OBS_COUNT("game.frozen_users_total", result.frozen_users);
  IDDE_OBS_HISTOGRAM("game.rounds", result.rounds);
  IDDE_OBS_HISTOGRAM("game.moves", result.moves);
}

}  // namespace

IddeUGame::IddeUGame(const model::ProblemInstance& instance,
                     GameOptions options)
    : instance_(&instance), options_(options) {
  IDDE_EXPECTS(options.improvement_epsilon >= 0.0);
  IDDE_EXPECTS(options.max_rounds > 0);
}

IddeUGame::BestResponse IddeUGame::best_response(
    const radio::InterferenceField& field, radio::BatchEvaluator* batch,
    std::size_t user, std::size_t* evaluations) const {
  BestResponse best;
  std::size_t count = 0;
  const std::size_t channels = instance_->radio_env().channels_per_server;
  const auto& servers = options_.candidate_servers != nullptr
                            ? (*options_.candidate_servers)[user]
                            : instance_->covering_servers(user);
  if (batch != nullptr) {
    // One SoA sweep prices every candidate; the argmax scan below walks
    // the results in the same (server, channel) order with the same
    // strict-> comparison as the scalar loop, so the winning slot and the
    // evaluation count are identical.
    const std::span<const double> priced = batch->benefits(user, servers);
    count = priced.size();
    for (std::size_t a = 0; a < servers.size(); ++a) {
      for (std::size_t channel = 0; channel < channels; ++channel) {
        const double benefit = priced[a * channels + channel];
        if (benefit > best.benefit) {
          best = BestResponse{ChannelSlot{servers[a], channel}, benefit};
        }
      }
    }
  } else {
    for (const std::size_t server : servers) {
      for (std::size_t channel = 0; channel < channels; ++channel) {
        const ChannelSlot slot{server, channel};
        const double benefit = field.benefit(user, slot);
        ++count;
        if (benefit > best.benefit) {
          best = BestResponse{slot, benefit};
        }
      }
    }
  }
  if (evaluations != nullptr) *evaluations += count;
  return best;
}

GameResult IddeUGame::run() {
  return run_from(AllocationProfile(instance_->user_count(), kUnallocated));
}

GameResult IddeUGame::run_from(const AllocationProfile& start) {
  IDDE_EXPECTS(start.size() == instance_->user_count());
  IDDE_OBS_SPAN("game.solve");
  // kCycleProbe deliberately violates the invariants the dirty-set cache
  // is built on (moves that do not improve benefit), so it always takes
  // the serial full-scan engine.
  const bool incremental =
      options_.incremental && options_.rule != UpdateRule::kCycleProbe;
  GameResult result =
      incremental ? run_incremental(start) : run_full_scan(start);
  record_game_telemetry(result);
  return result;
}

GameResult IddeUGame::run_full_scan(const AllocationProfile& start) {
  radio::InterferenceField field(instance_->radio_env());
  for (std::size_t j = 0; j < start.size(); ++j) {
    if (start[j].allocated()) field.add_user(j, start[j]);
  }
  std::optional<radio::BatchEvaluator> batch;
  if (options_.batched) batch.emplace(field);
  radio::BatchEvaluator* const batch_ptr = batch ? &*batch : nullptr;

  GameResult result;
  const std::size_t user_count = instance_->user_count();
  const double eps = options_.improvement_epsilon;
  std::vector<std::size_t> moves_of(user_count, 0);
  const auto movable = [&](std::size_t j) {
    return moves_of[j] < options_.max_moves_per_user;
  };
  const auto record_move = [&](std::size_t j) {
    if (++moves_of[j] == options_.max_moves_per_user) ++result.frozen_users;
  };

  // Benefit of the user's current decision; 0 when unallocated (a user
  // always gains by joining some channel, matching Eq. 12's positivity).
  const auto current_benefit = [&](std::size_t j) {
    const ChannelSlot slot = field.slot_of(j);
    return slot.allocated() ? field.benefit(j, slot) : 0.0;
  };

  while (result.rounds < options_.max_rounds) {
    ++result.rounds;
    bool moved = false;

    switch (options_.rule) {
      case UpdateRule::kBestImprovement: {
        // Every user submits its candidate; the largest gain wins.
        std::size_t winner = ChannelSlot::kNone;
        ChannelSlot winner_slot = kUnallocated;
        double winner_gain = eps;
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, batch_ptr, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          const double gain = candidate.benefit - current_benefit(j);
          if (gain > winner_gain) {
            winner_gain = gain;
            winner = j;
            winner_slot = candidate.slot;
          }
        }
        if (winner != ChannelSlot::kNone) {
          field.move_user(winner, winner_slot);
          record_move(winner);
          ++result.moves;
          moved = true;
        }
        break;
      }
      case UpdateRule::kFirstImprovement: {
        for (std::size_t j = 0; j < user_count && !moved; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, batch_ptr, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          if (candidate.benefit - current_benefit(j) > eps) {
            field.move_user(j, candidate.slot);
            record_move(j);
            ++result.moves;
            moved = true;
          }
        }
        break;
      }
      case UpdateRule::kAsyncSweep: {
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          const BestResponse candidate =
              best_response(field, batch_ptr, j, &result.benefit_evaluations);
          if (!candidate.slot.allocated()) continue;
          if (candidate.benefit - current_benefit(j) > eps) {
            field.move_user(j, candidate.slot);
            record_move(j);
            ++result.moves;
            moved = true;
          }
        }
        break;
      }
      case UpdateRule::kCycleProbe: {
        // Watchdog-validation rule (see game.hpp): rotate the first
        // eligible user through its candidate slots, ignoring benefit.
        const std::size_t channels =
            instance_->radio_env().channels_per_server;
        for (std::size_t j = 0; j < user_count && !moved; ++j) {
          if (!movable(j)) continue;
          const auto& servers =
              options_.candidate_servers != nullptr
                  ? (*options_.candidate_servers)[j]
                  : instance_->covering_servers(j);
          if (servers.size() * channels < 2) continue;
          const ChannelSlot slot = field.slot_of(j);
          // Flat candidate index: position in the server-major,
          // channel-minor scan order (or "before the first" when
          // unallocated), advanced by one modulo the candidate count.
          std::size_t flat = 0;
          if (slot.allocated()) {
            for (std::size_t s = 0; s < servers.size(); ++s) {
              if (servers[s] == slot.server) {
                flat = (s * channels + slot.channel + 1) %
                       (servers.size() * channels);
                break;
              }
            }
          }
          field.move_user(
              j, ChannelSlot{servers[flat / channels], flat % channels});
          record_move(j);
          ++result.moves;
          moved = true;
        }
        break;
      }
    }

    if (!moved) {
      result.converged = true;
      break;
    }
  }

  if (!result.converged && !options_.budgeted) {
    util::log_warn("IDDE-U game hit the round cap ({} rounds, {} moves)",
                   result.rounds, result.moves);
  }
  if (result.frozen_users > 0) {
    util::log_debug(
        "IDDE-U game froze {} cycling users after {} moves each",
        result.frozen_users, options_.max_moves_per_user);
  }
  result.allocation.resize(user_count);
  result.final_benefits.resize(user_count, 0.0);
  for (std::size_t j = 0; j < user_count; ++j) {
    result.allocation[j] = field.slot_of(j);
    if (result.allocation[j].allocated()) {
      result.final_benefits[j] = field.benefit(j, result.allocation[j]);
    }
  }
  return result;
}

GameResult IddeUGame::run_incremental(const AllocationProfile& start) {
  radio::InterferenceField field(instance_->radio_env());
  for (std::size_t j = 0; j < start.size(); ++j) {
    if (start[j].allocated()) field.add_user(j, start[j]);
  }

  GameResult result;
  const std::size_t user_count = instance_->user_count();
  const double eps = options_.improvement_epsilon;
  std::vector<std::size_t> moves_of(user_count, 0);
  const auto movable = [&](std::size_t j) {
    return moves_of[j] < options_.max_moves_per_user;
  };
  const auto record_move = [&](std::size_t j) {
    if (++moves_of[j] == options_.max_moves_per_user) ++result.frozen_users;
  };

  std::unique_ptr<util::ThreadPool> pool;
  if (options_.threads != 1 && user_count > 1) {
    pool = std::make_unique<util::ThreadPool>(options_.threads);
  }

  // Batched evaluators are per-thread scratch (SoA accumulators), never
  // shared: one for the serial paths plus one per pool lane for the
  // parallel fan-out. Each call reads the live field, so mid-sweep moves
  // (kAsyncSweep) are priced against the current state, like the scalar
  // path.
  std::optional<radio::BatchEvaluator> batch;
  if (options_.batched) batch.emplace(field);
  radio::BatchEvaluator* const batch_ptr = batch ? &*batch : nullptr;
  std::vector<radio::BatchEvaluator> lane_batch;
  if (pool != nullptr && options_.batched) {
    lane_batch.reserve(pool->size());
    for (std::size_t lane = 0; lane < pool->size(); ++lane) {
      lane_batch.emplace_back(field);
    }
  }

  // The cache: each user's best response and current benefit against the
  // field state at its last refresh. A user is dirty iff a later move may
  // have invalidated either value — it covers the vacated or entered
  // server (so some candidate shares a channel index with a perturbed
  // slot) or it is the mover itself. Everyone starts dirty.
  std::vector<BestResponse> cached(user_count);
  std::vector<double> current(user_count, 0.0);
  std::vector<char> dirty(user_count, 1);
  std::vector<std::size_t> dirty_list;
  dirty_list.reserve(user_count);

  const auto evaluate_user = [&](radio::BatchEvaluator* eval, std::size_t j,
                                 std::size_t* evaluations) {
    cached[j] = best_response(field, eval, j, evaluations);
    const ChannelSlot slot = field.slot_of(j);
    current[j] = slot.allocated() ? field.benefit(j, slot) : 0.0;
  };

  // Below this many dirty users a pool dispatch costs more than the
  // evaluations themselves (one mutex/condvar round-trip per lane); the
  // steady-state dirty set after a move is usually this small.
  constexpr std::size_t kMinParallelBatch = 64;

  // Re-evaluates every dirty movable user (frozen users never move again,
  // so their cache entries are dead). The field is read-only here, which
  // makes the fan-out embarrassingly parallel; results land in distinct
  // cache slots, so no synchronisation beyond the evaluation counter.
  //
  // Concurrency contract of the fan-out (stress-tested under TSan by
  // tests/test_concurrency_stress.cpp): workers share the field and its
  // version counters strictly read-only — the version guard below turns
  // any future violation of that contract into a hard failure instead of
  // a silent race — and each worker writes only cached[j] / current[j]
  // for its own j, so entries are disjoint by construction.
  const auto refresh_dirty = [&] {
    dirty_list.clear();
    for (std::size_t j = 0; j < user_count; ++j) {
      if (dirty[j] != 0 && movable(j)) dirty_list.push_back(j);
    }
    IDDE_OBS_HISTOGRAM("game.dirty_set_size", dirty_list.size());
    if (pool != nullptr && dirty_list.size() >= kMinParallelBatch) {
      // Backlog sampled before dispatch: non-zero only when the pool is
      // shared with other in-flight work.
      IDDE_OBS_HISTOGRAM("game.pool_queue_depth", pool->queued());
      const std::uint64_t version_before = field.version();
      // memory-order: seq_cst tally; only read after parallel_for_lanes
      // joins, so no cross-thread ordering is derived from it.
      std::atomic<std::size_t> evaluations{0};
      util::parallel_for_lanes(
          *pool, dirty_list.size(), [&](std::size_t lane, std::size_t idx) {
            std::size_t local = 0;
            radio::BatchEvaluator* const eval =
                lane_batch.empty() ? nullptr : &lane_batch[lane];
            evaluate_user(eval, dirty_list[idx], &local);
            evaluations.fetch_add(local, std::memory_order_relaxed);
          });
      IDDE_ASSERT(field.version() == version_before,
                  "InterferenceField mutated during parallel refresh");
      result.benefit_evaluations += evaluations.load();
    } else {
      for (const std::size_t j : dirty_list) {
        evaluate_user(batch_ptr, j, &result.benefit_evaluations);
      }
    }
    for (const std::size_t j : dirty_list) dirty[j] = 0;
  };

  // Dirty-set invariant: the applied move perturbed exactly the two slots
  // in the field's delta report, so a user's cache survives unless its
  // coverage reaches one of those servers (all of its candidates and both
  // interference terms read only slots at covering servers) or it moved.
  const auto apply_move = [&](std::size_t j, ChannelSlot slot) {
    field.move_user(j, slot);
    const radio::MoveDelta& delta = field.last_move();
    dirty[delta.user] = 1;
    if (delta.from.allocated()) {
      for (const std::size_t u : instance_->covered_users(delta.from.server)) {
        dirty[u] = 1;
      }
    }
    if (delta.to.allocated()) {
      for (const std::size_t u : instance_->covered_users(delta.to.server)) {
        dirty[u] = 1;
      }
    }
    record_move(j);
    ++result.moves;
  };

  while (result.rounds < options_.max_rounds) {
    ++result.rounds;
    bool moved = false;

    switch (options_.rule) {
      case UpdateRule::kBestImprovement: {
        refresh_dirty();
        // Same winner scan as the full engine, over cached candidates:
        // strict > keeps the lowest index among equal gains.
        std::size_t winner = ChannelSlot::kNone;
        double winner_gain = eps;
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          if (!cached[j].slot.allocated()) continue;
          const double gain = cached[j].benefit - current[j];
          if (gain > winner_gain) {
            winner_gain = gain;
            winner = j;
          }
        }
        if (winner != ChannelSlot::kNone) {
          apply_move(winner, cached[winner].slot);
          moved = true;
        }
        break;
      }
      case UpdateRule::kFirstImprovement: {
        refresh_dirty();
        for (std::size_t j = 0; j < user_count && !moved; ++j) {
          if (!movable(j)) continue;
          if (!cached[j].slot.allocated()) continue;
          if (cached[j].benefit - current[j] > eps) {
            apply_move(j, cached[j].slot);
            moved = true;
          }
        }
        break;
      }
      case UpdateRule::kAsyncSweep: {
        // Moves mutate the field mid-sweep, so evaluation is inherently
        // sequential here; with a pool we still batch the dirty set
        // accumulated since the last sweep, then lazily re-evaluate users
        // re-dirtied by this sweep's earlier moves at their turn.
        if (pool != nullptr) refresh_dirty();
        for (std::size_t j = 0; j < user_count; ++j) {
          if (!movable(j)) continue;
          if (dirty[j] != 0) {
            evaluate_user(batch_ptr, j, &result.benefit_evaluations);
            dirty[j] = 0;
          }
          if (!cached[j].slot.allocated()) continue;
          if (cached[j].benefit - current[j] > eps) {
            apply_move(j, cached[j].slot);
            moved = true;
          }
        }
        break;
      }
      case UpdateRule::kCycleProbe:
        // Unreachable: run_from routes kCycleProbe to the full-scan
        // engine (its non-improving moves break the dirty-set contract).
        IDDE_ASSERT(false, "kCycleProbe on the incremental engine");
        break;
    }

    if (!moved) {
      result.converged = true;
      break;
    }
  }

  if (!result.converged && !options_.budgeted) {
    util::log_warn("IDDE-U game hit the round cap ({} rounds, {} moves)",
                   result.rounds, result.moves);
  }
  if (result.frozen_users > 0) {
    util::log_debug(
        "IDDE-U game froze {} cycling users after {} moves each",
        result.frozen_users, options_.max_moves_per_user);
  }
  result.allocation.resize(user_count);
  result.final_benefits.resize(user_count, 0.0);
  for (std::size_t j = 0; j < user_count; ++j) {
    const ChannelSlot slot = field.slot_of(j);
    result.allocation[j] = slot;
    if (!slot.allocated()) continue;
    // Serve from the cache where it is warm; frozen users are skipped by
    // refresh_dirty and may be stale, so recompute those.
    result.final_benefits[j] = (dirty[j] == 0 && movable(j))
                                   ? current[j]
                                   : field.benefit(j, slot);
  }
  return result;
}

bool is_nash_equilibrium(const model::ProblemInstance& instance,
                         const AllocationProfile& allocation, double epsilon) {
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (allocation[j].allocated()) field.add_user(j, allocation[j]);
  }
  const std::size_t channels = instance.radio_env().channels_per_server;
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    const double current = allocation[j].allocated()
                               ? field.benefit(j, allocation[j])
                               : 0.0;
    for (const std::size_t server : instance.covering_servers(j)) {
      for (std::size_t channel = 0; channel < channels; ++channel) {
        if (field.benefit(j, ChannelSlot{server, channel}) >
            current + epsilon) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace idde::core
