// Planar geometry primitives. All coordinates are metres in a local
// tangent-plane frame (the EUA extraction covers ~2 km of the Melbourne CBD,
// where planar distance is indistinguishable from geodesic distance).
#pragma once

#include <cmath>

namespace idde::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] inline double squared_distance_m2(const Point& a,
                                             const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance_m(const Point& a, const Point& b) noexcept {
  return std::sqrt(squared_distance_m2(a, b));
}

}  // namespace idde::geo
