#include "core/validation.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace idde::core {

std::vector<std::string> validate_strategy(
    const model::ProblemInstance& instance, const Strategy& strategy) {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string message) {
    problems.push_back(std::move(message));
  };

  if (strategy.allocation.size() != instance.user_count()) {
    complain("allocation profile size mismatch");
    return problems;
  }

  const std::size_t channels = instance.radio_env().channels_per_server;
  for (std::size_t j = 0; j < strategy.allocation.size(); ++j) {
    const ChannelSlot slot = strategy.allocation[j];
    if (!slot.allocated()) continue;
    if (slot.server >= instance.server_count()) {
      complain(util::format("user {} allocated to unknown server {}", j,
                            slot.server));
      continue;
    }
    if (slot.channel >= channels) {
      complain(util::format("user {} allocated to unknown channel {}", j,
                            slot.channel));
    }
    const auto& covering = instance.covering_servers(j);
    if (!std::binary_search(covering.begin(), covering.end(), slot.server)) {
      complain(util::format(
          "user {} allocated to server {} outside its coverage (Eq. 1)", j,
          slot.server));
    }
  }

  // Eq. (6), recomputed from scratch.
  std::vector<double> used(instance.server_count(), 0.0);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      if (i >= instance.server_count()) {
        complain(util::format("item {} placed on unknown server {}", k, i));
        continue;
      }
      if (!strategy.delivery.placed(i, k)) {
        complain(util::format("host list/flag mismatch for item {}", k));
      }
      used[i] += instance.data(k).size_mb;
    }
  }
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    if (used[i] > instance.server(i).storage_mb + 1e-6) {
      complain(util::format(
          "server {} stores {} MB but reserved only {} MB (Eq. 6)", i, used[i],
          instance.server(i).storage_mb));
    }
  }
  return problems;
}

}  // namespace idde::core
