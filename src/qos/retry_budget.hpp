// Global token-bucket retry budget.
//
// Per-flow exponential backoff (FlowSimOptions) spaces retries out but
// does not cap their number: under a long outage every aborted flow keeps
// retrying, and the retry traffic itself sustains the overload — the
// classic retry storm. The budget couples retries to fresh work instead:
// each fresh arrival deposits `ratio` tokens (clamped to `burst`), each
// retry withdraws one, and a retry with an empty bucket is denied — the
// engine sends that request cloud-direct instead of back into the edge.
// ratio < 0 disables the budget entirely (bit-identical to pre-QoS
// behaviour); ratio 0.1 caps retries at ~10% of fresh arrivals.
#pragma once

#include <algorithm>
#include <cstddef>

#include "qos/config.hpp"

namespace idde::qos {

class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetConfig& config)
      : config_(config), tokens_(config.inert() ? 0.0 : config.burst) {}

  /// Deposits `ratio` tokens (fresh work funds future retries).
  void on_fresh_arrival() noexcept {
    if (config_.inert()) return;
    tokens_ = std::min(config_.burst, tokens_ + config_.ratio);
  }

  /// Withdraws one token; false (and counts the denial) when the bucket
  /// cannot cover a whole retry. An inert budget always grants.
  [[nodiscard]] bool try_spend_retry() noexcept {
    if (config_.inert()) return true;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    ++denied_;
    return false;
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::size_t denied() const noexcept { return denied_; }

  /// Checkpoint/restore: overwrites the bucket level and denial count with
  /// values captured from a prior run (bit-identical resume of long-running
  /// controllers). The config itself is not part of the state — the caller
  /// reconstructs the budget from the same config first.
  void restore(double tokens, std::size_t denied) noexcept {
    tokens_ = tokens;
    denied_ = denied;
  }

 private:
  RetryBudgetConfig config_;
  double tokens_;
  std::size_t denied_ = 0;
};

}  // namespace idde::qos
