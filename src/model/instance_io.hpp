// Full-instance (de)serialisation. Unlike sim/scenario.hpp (which stores
// *generator parameters*), this stores the materialised instance — exact
// positions, storage, link weights, gains — so a solved scenario can be
// archived, diffed, or fed to external tooling and reloaded bit-exactly.
#pragma once

#include <string>

#include "model/instance.hpp"
#include "util/json.hpp"

namespace idde::model {

/// Serialises every component of the instance. Channel gains are stored
/// explicitly (they are model inputs, not always derivable from geometry).
[[nodiscard]] util::Json instance_to_json(const ProblemInstance& instance);

/// Rebuilds an instance. Throws util::JsonError on malformed input AND on
/// shape/range inconsistencies (bad indices, non-finite or out-of-range
/// values, mismatched matrix sizes) — untrusted documents never abort the
/// process or reach downstream constructors in an invalid state.
[[nodiscard]] ProblemInstance instance_from_json(const util::Json& json);

[[nodiscard]] std::string instance_to_string(const ProblemInstance& instance,
                                             int indent = -1);
[[nodiscard]] ProblemInstance instance_from_string(const std::string& text);

}  // namespace idde::model
