// ext_overload — what saves goodput when offered load exceeds capacity?
//
// The paper's Eq. 8/9 model admits every request instantly; this bench
// replays IDDE-G's strategy through the overload-aware DES (DESIGN.md
// §12) over a load-multiplier x shedding-policy x retry-budget grid.
// Open-loop Poisson arrivals decouple offered load from the request
// matrix; per-server admission (bounded slots + waiting room) makes
// overload bite; the policies differ in what they drop:
//
//   none            unbounded FIFO — the congestion-collapse control
//                   group. Every request is eventually served, almost
//                   none within its deadline.
//   reject-newest   bounded queue, drop arrivals on overflow.
//   deadline-aware  additionally purge requests whose deadline is
//                   provably unmeetable, at arrival and at the queue
//                   head.
//
// Acceptance (recorded in BENCH_overload.json, enforced at exit): at a
// 10x load, deadline-aware shedding keeps goodput >= 80% of the 1x
// goodput, while the no-shedding control collapses below 50% of it.
//
// --soak N runs the chaos mode instead: N seeds of overload + fault plan
// + circuit breakers on a small instance, checking the accounting
// invariant (admitted + shed + rejected == offered) per seed. CI runs it
// under ASan/UBSan; any crash, leak or accounting hole fails the job.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dynamic/churn.hpp"
#include "dynamic/mobility.hpp"
#include "dynamic/world.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/overload.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

core::ApproachPtr find_approach(std::vector<core::ApproachPtr>& approaches,
                                const std::string& name) {
  for (core::ApproachPtr& approach : approaches) {
    if (approach->name() == name) return std::move(approach);
  }
  std::fprintf(stderr, "approach %s not found\n", name.c_str());
  std::exit(1);
}

struct PolicyAxis {
  const char* label;
  qos::SheddingPolicy policy;
};

constexpr PolicyAxis kPolicies[] = {
    {"none", qos::SheddingPolicy::kNone},
    {"reject-newest", qos::SheddingPolicy::kRejectNewest},
    {"deadline-aware", qos::SheddingPolicy::kDeadlineAware},
};

/// The chaos soak: seeded (load, policy, process) variations composed
/// with a fault plan and live breakers. Returns the number of seeds that
/// violated the accounting invariant (the engine also IDDE_ASSERTs it).
int run_soak(std::size_t seeds, std::uint64_t base_seed) {
  model::InstanceParams params;
  params.server_count = 10;
  params.user_count = 50;
  params.data_count = 4;
  const model::InstanceBuilder builder(params);
  auto approaches = sim::make_paper_approaches(50.0);
  const core::ApproachPtr idde_g = find_approach(approaches, "IDDE-G");

  std::size_t violations = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    const model::ProblemInstance instance = builder.build(seed);
    util::Rng rng(seed ^ 0x5e111e5ULL);
    const core::Strategy strategy = idde_g->solve(instance, rng);

    // The chaos layer also draws the dynamic events: walk every user for a
    // few simulated seconds (so the replay runs a *stale* strategy in a
    // drifted world) and knock churned-offline users out of the
    // allocation (their requests fall through to the cloud path).
    util::Rng walk_rng(seed ^ 0x3a1c0deULL);
    dynamic::RandomWaypointModel mobility(
        dynamic::user_positions(instance),
        geo::BoundingBox::square(params.eua.area_side_m), {}, walk_rng);
    for (std::size_t step = 0; step <= s % 4; ++step) {
      mobility.step(1.0, walk_rng);
    }
    const model::ProblemInstance drifted = dynamic::with_user_positions(
        instance, mobility.positions(),
        radio::PathLossModel(params.pathloss_eta, params.pathloss_exponent));
    util::Rng churn_rng(seed ^ 0xc1124ULL);
    dynamic::ChurnParams churn_params;
    churn_params.initial_online_fraction = 0.8;
    dynamic::ChurnProcess churn(instance.user_count(), churn_params,
                                churn_rng);
    churn.step(5.0, churn_rng);
    core::AllocationProfile churned_allocation = strategy.allocation;
    std::size_t offline = 0;
    for (std::size_t j = 0; j < churned_allocation.size(); ++j) {
      if (!churn.online(j)) {
        churned_allocation[j] = core::kUnallocated;
        ++offline;
      }
    }
    const core::Strategy churned(std::move(churned_allocation),
                                 strategy.delivery);

    sim::OverloadCell cell;
    const double loads[] = {2.0, 6.0, 10.0};
    // Cycle the retry budget through empty (every abort goes cloud-direct),
    // tight and unlimited, so all three budget paths soak.
    const double ratios[] = {0.0, 0.1, -1.0};
    cell.qos = sim::chaos_qos_config(loads[s % 3], kPolicies[s % 3].policy,
                                     ratios[s % 3]);
    if (s % 2 == 1) {
      cell.qos.arrivals.process = qos::ArrivalProcess::kFlashCrowd;
    }
    cell.fault = sim::chaos_fault_profile();
    cell.seed = seed;
    const des::FlowSimResult result =
        sim::run_overload_cell(drifted, churned, cell);
    const des::QosStats& stats = result.qos;
    const bool ok =
        stats.admitted + stats.shed + stats.rejected == stats.offered;
    if (!ok) ++violations;
    std::printf(
        "soak seed %llu: offline=%zu offered=%zu admitted=%zu shed=%zu "
        "rejected=%zu denied=%zu breaker_opens=%zu %s\n",
        static_cast<unsigned long long>(seed), offline, stats.offered,
        stats.admitted, stats.shed, stats.rejected, stats.retries_denied,
        stats.breaker_opens, ok ? "ok" : "ACCOUNTING VIOLATION");
  }
  if (violations > 0) {
    std::fprintf(stderr, "soak: %zu of %zu seeds violated accounting\n",
                 violations, seeds);
    return 1;
  }
  std::printf("soak: %zu seeds clean (accounting exact, no crashes)\n", seeds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t soak = 0;
  std::size_t reps = 3;
  std::size_t base_seed = 8200;
  std::string out = "BENCH_overload.json";
  util::CliParser cli(
      "ext_overload: load x shedding-policy x retry-budget sweep through "
      "the overload-aware DES; --soak N runs the chaos mode (overload + "
      "faults + breakers) over N seeds");
  cli.add_flag("smoke", &smoke, "reduced grid, 1 rep (CI)");
  cli.add_size("soak", &soak, "chaos-soak seed count (0 = run the sweep)");
  cli.add_size("reps", &reps, "seeded instances per cell");
  cli.add_size("seed", &base_seed, "first instance seed");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  bool telemetry = false;
  cli.add_flag("telemetry", &telemetry,
               "enable runtime telemetry (adds a telemetry block to --out)");
  if (!cli.parse(argc, argv)) return 0;
  if (telemetry) obs::set_enabled(true);
  if (soak > 0) return run_soak(soak, base_seed);
  if (smoke) reps = 1;

  model::InstanceParams params;
  params.server_count = 15;
  params.user_count = 100;
  params.data_count = 5;
  const model::InstanceBuilder builder(params);
  auto approaches = sim::make_paper_approaches(100.0);
  const core::ApproachPtr idde_g = find_approach(approaches, "IDDE-G");

  const std::vector<double> loads =
      smoke ? std::vector<double>{1.0, 10.0}
            : std::vector<double>{1.0, 3.0, 10.0};
  const std::vector<double> retry_ratios =
      smoke ? std::vector<double>{0.1} : std::vector<double>{-1.0, 0.1};

  std::printf("ext_overload: N=%zu M=%zu K=%zu, %zu rep(s)\n\n",
              params.server_count, params.user_count, params.data_count,
              reps);

  // Solve once per rep; every cell replays the same strategies.
  std::vector<model::ProblemInstance> instances;
  std::vector<core::Strategy> strategies;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = base_seed + rep;
    instances.push_back(builder.build(seed));
    util::Rng rng(seed ^ 0x5e111e5ULL);
    strategies.push_back(idde_g->solve(instances.back(), rng));
  }

  util::JsonArray json_cells;
  // goodput_rps means for the acceptance check, keyed below.
  double goodput_1x_deadline = 0.0;
  double goodput_10x_deadline = 0.0;
  double goodput_10x_none = 0.0;
  for (const double load : loads) {
    util::TextTable table({"policy", "retry-ratio", "offered/s", "goodput/s",
                           "shed", "rejected", "misses", "p99 (ms)",
                           "queue wait (ms)"});
    for (const PolicyAxis& axis : kPolicies) {
      for (const double ratio : retry_ratios) {
        util::RunningStats goodput, offered, shed, rejected, misses, p99,
            wait;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          sim::OverloadCell cell;
          cell.qos = sim::overload_qos_config(load, axis.policy, ratio);
          cell.seed = base_seed + rep;
          const des::FlowSimResult result = sim::run_overload_cell(
              instances[rep], strategies[rep], cell);
          goodput.add(result.qos.goodput_rps);
          offered.add(result.qos.offered_rps);
          shed.add(static_cast<double>(result.qos.shed));
          rejected.add(static_cast<double>(result.qos.rejected));
          misses.add(static_cast<double>(result.qos.deadline_misses));
          p99.add(result.p99_duration_ms);
          wait.add(result.qos.mean_queue_wait_ms);
        }
        table.start_row()
            .add(axis.label)
            .add(ratio)
            .add(offered.mean())
            .add(goodput.mean())
            .add(shed.mean())
            .add(rejected.mean())
            .add(misses.mean())
            .add(p99.mean())
            .add(wait.mean());
        util::JsonObject cell_json;
        cell_json["load_multiplier"] = load;
        cell_json["policy"] = std::string(axis.label);
        cell_json["retry_ratio"] = ratio;
        cell_json["offered_rps"] = offered.mean();
        cell_json["goodput_rps"] = goodput.mean();
        cell_json["shed"] = shed.mean();
        cell_json["rejected"] = rejected.mean();
        cell_json["deadline_misses"] = misses.mean();
        cell_json["p99_ms"] = p99.mean();
        cell_json["mean_queue_wait_ms"] = wait.mean();
        json_cells.emplace_back(std::move(cell_json));

        // The acceptance cells all use the bounded retry budget.
        if (ratio == retry_ratios.back()) {
          if (load == 1.0 &&
              axis.policy == qos::SheddingPolicy::kDeadlineAware) {
            goodput_1x_deadline = goodput.mean();
          }
          if (load == 10.0 &&
              axis.policy == qos::SheddingPolicy::kDeadlineAware) {
            goodput_10x_deadline = goodput.mean();
          }
          if (load == 10.0 && axis.policy == qos::SheddingPolicy::kNone) {
            goodput_10x_none = goodput.mean();
          }
        }
      }
    }
    std::printf("load %gx:\n", load);
    table.print(std::cout);
    std::puts("");
  }

  // Deadline-aware shedding must hold goodput at or above the 1x level
  // under a 10x load; the no-shedding control must demonstrably collapse —
  // its goodput falls below half of what shedding achieves at the same
  // load (its absolute floor is propped up by uncapacitated cloud-direct
  // serves, which scale with load, so the collapse is measured against
  // the achievable goodput).
  const double deadline_ratio =
      goodput_1x_deadline > 0.0 ? goodput_10x_deadline / goodput_1x_deadline
                                : 0.0;
  const double none_ratio =
      goodput_10x_deadline > 0.0 ? goodput_10x_none / goodput_10x_deadline
                                 : 1.0;
  const bool pass = deadline_ratio >= 0.8 && none_ratio < 0.5;
  std::printf(
      "acceptance: deadline-aware 10x/1x goodput %.2f (need >= 0.80), "
      "no-shedding/deadline-aware at 10x %.2f (need < 0.50): %s\n",
      deadline_ratio, none_ratio, pass ? "PASS" : "FAIL");

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("ext_overload");
    util::JsonObject shape;
    shape["servers"] = params.server_count;
    shape["users"] = params.user_count;
    shape["data"] = params.data_count;
    shape["reps"] = reps;
    shape["base_seed"] = base_seed;
    doc["instance"] = std::move(shape);
    doc["qos_defaults"] = qos::qos_to_json(sim::overload_qos_config(
        1.0, qos::SheddingPolicy::kDeadlineAware, 0.1));
    doc["cells"] = std::move(json_cells);
    util::JsonObject acceptance;
    acceptance["goodput_rps_1x_deadline_aware"] = goodput_1x_deadline;
    acceptance["goodput_rps_10x_deadline_aware"] = goodput_10x_deadline;
    acceptance["goodput_rps_10x_none"] = goodput_10x_none;
    acceptance["deadline_aware_ratio"] = deadline_ratio;
    acceptance["none_ratio"] = none_ratio;
    acceptance["pass"] = pass;
    doc["acceptance"] = std::move(acceptance);
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  return pass ? 0 : 1;
}
