// Figure 6 — effectiveness in Set #4: R_avg and L_avg vs the edge-network
// link density (1.0..3.0 step 0.4; N=30, M=200, K=5).
#include "figure_common.hpp"

int main() {
  return idde::bench::run_figure_set(idde::sim::paper_sets()[3], "fig6_set4");
}
