// Event vocabulary of the online controller. Events are *derived*, not
// stored: each tick the controller steps its deterministic processes
// (mobility, churn, fault plan) and emits the induced events in a fixed
// order, so the event sequence is a pure function of (config, seed) and
// never needs to be checkpointed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace idde::serve {

enum class EventKind : std::uint8_t {
  kServerDown,    ///< subject = server id; allocations and replicas lost
  kServerUp,      ///< subject = server id; capacity returned
  kUserLeave,     ///< subject = user id; channel released
  kUserJoin,      ///< subject = user id; wants an allocation
  kUserStranded,  ///< subject = user id; walked out of serving coverage
  kSigmaRefresh,  ///< subject = 0; periodic delivery re-heal
  // Gray-failure events (appended so the values above stay stable in
  // checkpoints and hashes).
  kServerGray,       ///< subject = server id; health score crossed the
                     ///< demotion threshold — slow, not down
  kServerRecovered,  ///< subject = server id; health score recovered
};

struct Event {
  EventKind kind = EventKind::kSigmaRefresh;
  std::size_t subject = 0;
};

/// Backlog continuation of a repair that ran out of budget (or was
/// deferred by an open breaker). `deadline_tick` is absolute; a task
/// still queued past it is shed, not run.
enum class RepairKind : std::uint8_t {
  kEquilibrium,  ///< budgeted best-response pass over the allocation
  kSigma,        ///< budgeted greedy heal of the delivery profile
};

struct RepairTask {
  RepairKind kind = RepairKind::kEquilibrium;
  std::size_t deadline_tick = 0;
  std::size_t attempts = 0;
};

}  // namespace idde::serve
