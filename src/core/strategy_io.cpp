#include "core/strategy_io.hpp"

#include "util/format.hpp"

namespace idde::core {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json strategy_to_json(const Strategy& strategy) {
  JsonArray allocation;
  for (const ChannelSlot& slot : strategy.allocation) {
    if (!slot.allocated()) {
      allocation.emplace_back(nullptr);
    } else {
      allocation.push_back(Json(JsonObject{
          {"server", Json(slot.server)},
          {"channel", Json(slot.channel)},
      }));
    }
  }
  JsonArray placements;
  for (std::size_t k = 0; k < strategy.delivery.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      placements.push_back(Json(JsonObject{
          {"server", Json(i)},
          {"item", Json(k)},
      }));
    }
  }
  return Json(JsonObject{
      {"format", Json("idde-strategy-v1")},
      {"approach", Json(strategy.approach_name)},
      {"collaborative_delivery", Json(strategy.collaborative_delivery)},
      {"allocation", Json(std::move(allocation))},
      {"placements", Json(std::move(placements))},
  });
}

Strategy strategy_from_json(const model::ProblemInstance& instance,
                            const Json& json) {
  if (json.string_or("format", "") != "idde-strategy-v1") {
    throw util::JsonError("unknown strategy format (want idde-strategy-v1)");
  }
  const auto& allocation_json = json.at("allocation").as_array();
  if (allocation_json.size() != instance.user_count()) {
    throw util::JsonError(util::format("allocation has {} slots, want {}",
                                       allocation_json.size(),
                                       instance.user_count()));
  }

  AllocationProfile allocation(instance.user_count(), kUnallocated);
  for (std::size_t j = 0; j < allocation_json.size(); ++j) {
    const Json& slot = allocation_json[j];
    if (slot.is_null()) continue;
    allocation[j] = ChannelSlot{
        util::as_index(slot.at("server"), instance.server_count(),
                       "allocation server"),
        util::as_index(slot.at("channel"),
                       instance.radio_env().channels_per_server,
                       "allocation channel"),
    };
  }

  DeliveryProfile delivery(instance);
  for (const Json& placement : json.at("placements").as_array()) {
    const std::size_t server = util::as_index(
        placement.at("server"), instance.server_count(), "placement server");
    const std::size_t item = util::as_index(
        placement.at("item"), instance.data_count(), "placement item");
    // place() aborts on infeasibility; an untrusted document must not.
    if (!delivery.can_place(server, item)) {
      throw util::JsonError(util::format(
          "placement (server {}, item {}) is a duplicate or exceeds storage",
          server, item));
    }
    delivery.place(server, item);
  }

  Strategy strategy{std::move(allocation), std::move(delivery)};
  strategy.approach_name = json.string_or("approach", "");
  strategy.collaborative_delivery =
      json.bool_or("collaborative_delivery", true);
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

std::string strategy_to_string(const Strategy& strategy, int indent) {
  return strategy_to_json(strategy).dump(indent);
}

Strategy strategy_from_string(const model::ProblemInstance& instance,
                              const std::string& text) {
  return strategy_from_json(instance, Json::parse(text));
}

}  // namespace idde::core
