// Random edge-storage-system topologies, following the paper's recipe:
// "given density and N, density*N links are generated randomly to connect
// edge servers". We additionally guarantee connectivity with a uniform random
// spanning tree (the paper's instances are connected by construction of the
// EUA backbone), so the link count is max(N-1, round(density*N)).
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "util/random.hpp"

namespace idde::net {

struct TopologyParams {
  double density = 1.0;          ///< links = round(density * N)
  double min_speed_mbps = 2000;  ///< per-link transfer speed, MB/s
  double max_speed_mbps = 6000;
};

/// Returns the undirected edge list (weights = 1/speed seconds-per-MB).
[[nodiscard]] std::vector<Edge> generate_topology(std::size_t node_count,
                                                  const TopologyParams& params,
                                                  util::Rng& rng);

/// Convenience wrapper building the Graph directly.
[[nodiscard]] Graph generate_topology_graph(std::size_t node_count,
                                            const TopologyParams& params,
                                            util::Rng& rng);

}  // namespace idde::net
