#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace idde::net {

std::vector<double> dijkstra(const Graph& graph, std::size_t source) {
  std::vector<double> dist(graph.node_count());
  DijkstraScratch scratch;
  dijkstra_into(graph, source, dist, scratch);
  return dist;
}

void dijkstra_into(const Graph& graph, std::size_t source,
                   std::span<double> dist, DijkstraScratch& scratch) {
  IDDE_EXPECTS(source < graph.node_count());
  IDDE_EXPECTS(dist.size() == graph.node_count());
  std::fill(dist.begin(), dist.end(), kUnreachable);
  dist[source] = 0.0;
  // Explicit push_heap/pop_heap on the scratch vector of (distance, node)
  // pairs — identical pop order to std::priority_queue with std::greater<>,
  // but the backing store is the caller's and survives across calls.
  auto& heap = scratch.heap;
  heap.clear();
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    const auto [d, node] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    if (d > dist[node]) continue;  // stale entry
    for (const Neighbor& nb : graph.neighbors(node)) {
      const double candidate = d + nb.weight;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        heap.emplace_back(candidate, nb.node);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
}

CostMatrix::CostMatrix(const Graph& graph) : n_(graph.node_count()) {
  costs_.resize(n_ * n_, kUnreachable);
  DijkstraScratch scratch;
  const std::span<double> all(costs_);
  for (std::size_t source = 0; source < n_; ++source) {
    dijkstra_into(graph, source, all.subspan(source * n_, n_), scratch);
  }
}

Route shortest_route(const Graph& graph, std::size_t from, std::size_t to) {
  IDDE_EXPECTS(from < graph.node_count());
  IDDE_EXPECTS(to < graph.node_count());
  // Dijkstra with parent tracking.
  std::vector<double> dist(graph.node_count(), kUnreachable);
  std::vector<std::size_t> parent(graph.node_count(),
                                  static_cast<std::size_t>(-1));
  dist[from] = 0.0;
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    if (node == to) break;
    for (const Neighbor& nb : graph.neighbors(node)) {
      const double candidate = d + nb.weight;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        parent[nb.node] = node;
        queue.emplace(candidate, nb.node);
      }
    }
  }
  Route route;
  if (dist[to] == kUnreachable) return route;
  route.cost = dist[to];
  for (std::size_t node = to;; node = parent[node]) {
    route.nodes.push_back(node);
    if (node == from) break;
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  return route;
}

std::vector<double> floyd_warshall(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<double> dist(n * n, kUnreachable);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i * n + i] = 0.0;
    for (const Neighbor& nb : graph.neighbors(i)) {
      dist[i * n + nb.node] = std::min(dist[i * n + nb.node], nb.weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist[i * n + k];
      if (dik == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double through = dik + dist[k * n + j];
        if (through < dist[i * n + j]) dist[i * n + j] = through;
      }
    }
  }
  return dist;
}

namespace {

/// Relaxes the tile [i0,i1) x [j0,j1) through intermediates [k0,k1). The
/// tile and the two k-facing panels are the only memory touched, which is
/// what keeps the blocked sweep inside cache.
void relax_tile(std::vector<double>& dist, std::size_t n, std::size_t i0,
                std::size_t i1, std::size_t j0, std::size_t j1,
                std::size_t k0, std::size_t k1) {
  for (std::size_t k = k0; k < k1; ++k) {
    const double* const row_k = dist.data() + k * n;
    for (std::size_t i = i0; i < i1; ++i) {
      const double dik = dist[i * n + k];
      if (dik == kUnreachable) continue;
      double* const row_i = dist.data() + i * n;
      for (std::size_t j = j0; j < j1; ++j) {
        const double through = dik + row_k[j];
        if (through < row_i[j]) row_i[j] = through;
      }
    }
  }
}

}  // namespace

std::vector<double> floyd_warshall_blocked(const Graph& graph,
                                           std::size_t block) {
  IDDE_EXPECTS(block > 0);
  const std::size_t n = graph.node_count();
  std::vector<double> dist(n * n, kUnreachable);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i * n + i] = 0.0;
    for (const Neighbor& nb : graph.neighbors(i)) {
      dist[i * n + nb.node] = std::min(dist[i * n + nb.node], nb.weight);
    }
  }
  const std::size_t tiles = (n + block - 1) / block;
  const auto lo = [&](std::size_t t) { return t * block; };
  const auto hi = [&](std::size_t t) { return std::min(n, t * block + block); };
  for (std::size_t kb = 0; kb < tiles; ++kb) {
    const std::size_t k0 = lo(kb);
    const std::size_t k1 = hi(kb);
    // Phase 1: the pivot tile depends only on itself.
    relax_tile(dist, n, k0, k1, k0, k1, k0, k1);
    // Phase 2: the pivot row and column depend on the pivot tile.
    for (std::size_t t = 0; t < tiles; ++t) {
      if (t == kb) continue;
      relax_tile(dist, n, k0, k1, lo(t), hi(t), k0, k1);  // pivot row
      relax_tile(dist, n, lo(t), hi(t), k0, k1, k0, k1);  // pivot column
    }
    // Phase 3: every remaining tile reads its row/column panels from
    // phase 2 — three tiles of working set per relax_tile call.
    for (std::size_t ib = 0; ib < tiles; ++ib) {
      if (ib == kb) continue;
      for (std::size_t jb = 0; jb < tiles; ++jb) {
        if (jb == kb) continue;
        relax_tile(dist, n, lo(ib), hi(ib), lo(jb), hi(jb), k0, k1);
      }
    }
  }
  return dist;
}

}  // namespace idde::net
