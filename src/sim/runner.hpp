// Runs one approach on one instance, timing it and validating the result —
// the unit of work every experiment is built from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/approach.hpp"
#include "core/metrics.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::sim {

struct RunRecord {
  std::string approach;
  core::StrategyMetrics metrics;
  double solve_ms = 0.0;       ///< the Fig. 7 computation-time metric
  bool strategy_valid = true;  ///< validate_strategy found no violations
  std::size_t game_rounds = 0;
  std::size_t game_moves = 0;
};

/// Solves, times and evaluates. Aborts in tests if the strategy violates
/// feasibility when `require_valid` is set. `strategy_out`, when non-null,
/// receives the solved strategy (for downstream evaluation such as DES
/// replay or resilience scoring) without re-solving.
[[nodiscard]] RunRecord run_approach(
    const model::ProblemInstance& instance, const core::Approach& approach,
    util::Rng& rng, bool require_valid = false,
    std::optional<core::Strategy>* strategy_out = nullptr);

/// The paper's five approaches (Section 4.1) in presentation order:
/// IDDE-IP, IDDE-G, SAA, CDP, DUP-G. `ip_budget_ms` caps the anytime
/// solver (env IDDE_IP_BUDGET_MS still wins). `game_threads` is forwarded
/// to GameOptions::threads of the game-based approaches (IDDE-G, DUP-G):
/// 1 = serial, 0 = hardware concurrency. Leave at 1 when repetitions are
/// already fanned out over a pool (see sim::run_sweep) to avoid
/// oversubscription.
[[nodiscard]] std::vector<core::ApproachPtr> make_paper_approaches(
    double ip_budget_ms = 200.0, std::size_t game_threads = 1);

}  // namespace idde::sim
