// VR streaming scenario — the workload class the paper's introduction
// motivates ("high-quality VR ... requires a 20 ms end-to-end latency or
// lower to prevent motion sickness"). A vendor reserves edge storage for VR
// scene bundles and needs to know what fraction of its users experience
// sub-20 ms scene fetches under each delivery strategy.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/delivery.hpp"
#include "core/metrics.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

/// Per-request latencies (ms) under a strategy, honouring its delivery
/// semantics.
std::vector<double> request_latencies_ms(const model::ProblemInstance& inst,
                                         const core::Strategy& strategy) {
  std::vector<double> latencies;
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const bool allocated = strategy.allocation[j].allocated();
    const std::size_t serving =
        allocated ? strategy.allocation[j].server : 0;
    for (const std::size_t k : inst.requests().items_of(j)) {
      const double size = inst.data(k).size_mb;
      double best = inst.latency().cloud_transfer_seconds(size);
      if (allocated) {
        for (const std::size_t host : strategy.delivery.hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          best = std::min(
              best, inst.latency().edge_transfer_seconds(host, serving, size));
        }
      }
      latencies.push_back(best * 1e3);
    }
  }
  return latencies;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seed = 7;
  double deadline_ms = 20.0;
  util::CliParser cli(
      "vr_streaming: fraction of VR scene fetches under the motion-sickness "
      "deadline per approach");
  cli.add_size("seed", &seed, "instance seed");
  cli.add_double("deadline-ms", &deadline_ms, "VR latency deadline");
  if (!cli.parse(argc, argv)) return 0;

  // VR bundles are mid-sized and the catalogue is small but hot.
  model::InstanceParams params = sim::paper_default_params();
  params.data_count = 6;
  params.data_size_choices_mb = {45.0, 60.0, 75.0};
  params.zipf_exponent = 1.1;  // a few very popular scenes
  params.user_count = 250;

  const model::ProblemInstance instance =
      model::make_instance(params, static_cast<std::uint64_t>(seed));
  std::printf(
      "VR scenario: %zu users, %zu scene bundles, %.0f ms deadline\n\n",
      instance.user_count(), instance.data_count(), deadline_ms);

  util::TextTable table({"approach", "R_avg (MB/s)", "L_avg (ms)",
                         "p95 latency (ms)", "fetches < deadline"});
  for (const core::ApproachPtr& approach : sim::make_paper_approaches(100.0)) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 1);
    const core::Strategy strategy = approach->solve(instance, rng);
    const core::StrategyMetrics metrics = core::evaluate(instance, strategy);
    const auto latencies = request_latencies_ms(instance, strategy);
    const std::size_t ok = static_cast<std::size_t>(
        std::count_if(latencies.begin(), latencies.end(),
                      [&](double l) { return l <= deadline_ms; }));
    table.start_row()
        .add(approach->name())
        .add(metrics.avg_rate_mbps)
        .add(metrics.avg_latency_ms)
        .add(util::percentile(latencies, 95.0))
        .add(util::format("{}% ({}/{})",
                          static_cast<int>(100.0 * static_cast<double>(ok) /
                                           static_cast<double>(
                                               latencies.size())),
                          ok, latencies.size()));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nInterference-aware allocation plus collaborative delivery is what "
      "keeps the sub-20 ms fraction high.");
  return 0;
}
