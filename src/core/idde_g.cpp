#include "core/idde_g.hpp"

namespace idde::core {

Strategy IddeG::solve(const model::ProblemInstance& instance,
                      util::Rng& /*rng*/) const {
  // Phase 1: IDDE-U game -> Nash equilibrium allocation.
  GameOptions game_options = options_.game;
  // Size the safety cap from the instance: with kBestImprovement one user
  // moves per round and empirical trajectories stay well under 30 moves
  // per user; the cap only exists to bound pathological inputs.
  game_options.max_rounds =
      std::max<std::size_t>(1000, instance.user_count() * 200);
  IddeUGame game(instance, game_options);
  GameResult game_result = game.run();

  // Phase 2: ratio-greedy delivery on the equilibrium allocation.
  GreedyDeliveryPlanner planner(instance);
  GreedyDeliveryResult delivery_result =
      options_.lazy_greedy ? planner.plan(game_result.allocation)
                           : planner.plan_naive(game_result.allocation);

  Strategy strategy{std::move(game_result.allocation),
                    std::move(delivery_result.delivery)};
  strategy.approach_name = name();
  strategy.game_rounds = game_result.rounds;
  strategy.game_moves = game_result.moves;
  strategy.game_converged = game_result.converged;
  strategy.placements = delivery_result.placements;
  return strategy;
}

}  // namespace idde::core
