// Time-budgeted anytime search over the joint (allocation, placement)
// space — the in-repo substitute for feeding the Section 2.3 model to IBM
// CPLEX's CP Optimizer with a capped search time (the paper's IDDE-IP
// benchmark). See DESIGN.md §5 for the substitution argument.
//
// Contract mirrored from the original: "best incumbent after T ms".
//  - Allocation (objective #1 first, as in the model statement): repeated
//    randomised constructive probes — users assigned in a random order,
//    each to the candidate channel with the highest immediate benefit —
//    scored by exact R_avg; the best probe wins. No equilibrium refinement,
//    so it trails IDDE-G's Nash profile by a few percent.
//  - Placement (objective #2 with the remaining budget): the model-order
//    branch-and-bound of placement_bnb.hpp, whose early incumbents come
//    from diving on the variable order rather than a gain heuristic —
//    exactly the behaviour of an untuned CP model, and the reason the
//    paper's IDDE-IP shows poor latency despite a generous time budget.
#pragma once

#include "core/approach.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::solver {

struct JointSearchOptions {
  double budget_ms = 200.0;
  /// Fraction of the budget spent on the allocation objective.
  double allocation_share = 0.5;
};

struct JointSearchResult {
  core::Strategy strategy;
  std::size_t allocation_probes = 0;
  std::size_t placement_nodes = 0;
  bool placement_proven_optimal = false;
};

[[nodiscard]] JointSearchResult joint_search(
    const model::ProblemInstance& instance, util::Rng& rng,
    const JointSearchOptions& options);

}  // namespace idde::solver
