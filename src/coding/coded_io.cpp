#include "coding/coded_io.hpp"

#include "util/format.hpp"

namespace idde::coding {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json coded_strategy_to_json(const CodedStrategy& strategy) {
  JsonArray allocation;
  for (const core::ChannelSlot& slot : strategy.allocation) {
    if (!slot.allocated()) {
      allocation.emplace_back(nullptr);
    } else {
      allocation.push_back(Json(JsonObject{
          {"server", Json(slot.server)},
          {"channel", Json(slot.channel)},
      }));
    }
  }
  JsonArray placements;
  for (std::size_t k = 0; k < strategy.delivery.data_count(); ++k) {
    for (const std::size_t i : strategy.delivery.hosts(k)) {
      placements.push_back(Json(JsonObject{
          {"server", Json(i)},
          {"item", Json(k)},
      }));
    }
  }
  return Json(JsonObject{
      {"format", Json("idde-coded-strategy-v1")},
      {"approach", Json(strategy.approach_name)},
      {"collaborative_delivery", Json(strategy.collaborative_delivery)},
      {"coding", Json(JsonObject{
                     {"n", Json(strategy.delivery.config().n)},
                     {"k", Json(strategy.delivery.config().k)},
                 })},
      {"allocation", Json(std::move(allocation))},
      {"placements", Json(std::move(placements))},
  });
}

CodedStrategy coded_strategy_from_json(const model::ProblemInstance& instance,
                                       const Json& json) {
  if (json.string_or("format", "") != "idde-coded-strategy-v1") {
    throw util::JsonError(
        "unknown coded strategy format (want idde-coded-strategy-v1)");
  }
  const Json& coding = json.at("coding");
  FragmentConfig config;
  // n is capped by the server count (more fragments than servers can
  // never be placed) and k by n; both must be at least 1.
  config.n = util::as_index(coding.at("n"), instance.server_count() + 1,
                            "coding n");
  config.k = util::as_index(coding.at("k"), config.n + 1, "coding k");
  if (config.k < 1 || !config.valid()) {
    throw util::JsonError(util::format(
        "invalid code shape (n {}, k {}): need 1 <= k <= n", config.n,
        config.k));
  }

  const auto& allocation_json = json.at("allocation").as_array();
  if (allocation_json.size() != instance.user_count()) {
    throw util::JsonError(util::format("allocation has {} slots, want {}",
                                       allocation_json.size(),
                                       instance.user_count()));
  }
  core::AllocationProfile allocation(instance.user_count(), core::kUnallocated);
  for (std::size_t j = 0; j < allocation_json.size(); ++j) {
    const Json& slot = allocation_json[j];
    if (slot.is_null()) continue;
    allocation[j] = core::ChannelSlot{
        util::as_index(slot.at("server"), instance.server_count(),
                       "allocation server"),
        util::as_index(slot.at("channel"),
                       instance.radio_env().channels_per_server,
                       "allocation channel"),
    };
  }

  CodedDeliveryProfile delivery(instance, config);
  for (const Json& placement : json.at("placements").as_array()) {
    const std::size_t server = util::as_index(
        placement.at("server"), instance.server_count(), "placement server");
    const std::size_t item = util::as_index(
        placement.at("item"), instance.data_count(), "placement item");
    // place() aborts on infeasibility; an untrusted document must not.
    if (!delivery.can_place(server, item)) {
      throw util::JsonError(util::format(
          "fragment (server {}, item {}) is a duplicate, exceeds the item's "
          "n fragments, or exceeds storage",
          server, item));
    }
    delivery.place(server, item);
  }

  CodedStrategy strategy{std::move(allocation), std::move(delivery)};
  strategy.approach_name = json.string_or("approach", "");
  strategy.collaborative_delivery =
      json.bool_or("collaborative_delivery", true);
  strategy.placements = strategy.delivery.placement_count();
  return strategy;
}

std::string coded_strategy_to_string(const CodedStrategy& strategy,
                                     int indent) {
  return coded_strategy_to_json(strategy).dump(indent);
}

CodedStrategy coded_strategy_from_string(const model::ProblemInstance& instance,
                                         const std::string& text) {
  return coded_strategy_from_json(instance, Json::parse(text));
}

}  // namespace idde::coding
