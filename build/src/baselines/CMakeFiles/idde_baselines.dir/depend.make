# Empty dependencies file for idde_baselines.
# This may be replaced when dependencies are built.
