#include "model/instance_io.hpp"

#include <utility>

#include "net/graph_gen.hpp"
#include "util/format.hpp"

namespace idde::model {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json instance_to_json(const ProblemInstance& instance) {
  JsonArray servers;
  for (const EdgeServer& s : instance.servers()) {
    servers.push_back(Json(JsonObject{
        {"x", Json(s.position.x)},
        {"y", Json(s.position.y)},
        {"radius_m", Json(s.coverage_radius_m)},
        {"storage_mb", Json(s.storage_mb)},
    }));
  }

  JsonArray users;
  for (const User& u : instance.users()) {
    users.push_back(Json(JsonObject{
        {"x", Json(u.position.x)},
        {"y", Json(u.position.y)},
        {"power_w", Json(u.power_watts)},
        {"max_rate_mbps", Json(u.max_rate_mbps)},
    }));
  }

  JsonArray data;
  for (const DataItem& d : instance.data_items()) {
    data.push_back(Json(JsonObject{{"size_mb", Json(d.size_mb)}}));
  }

  JsonArray requests;  // per user, the list of requested item ids
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    JsonArray items;
    for (const std::size_t k : instance.requests().items_of(j)) {
      items.emplace_back(k);
    }
    requests.push_back(Json(std::move(items)));
  }

  // Undirected edge list reconstructed from the adjacency (from < to keeps
  // each edge once; parallel edges are preserved pairwise).
  JsonArray edges;
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    for (const net::Neighbor& nb : instance.graph().neighbors(i)) {
      if (i < nb.node) {
        edges.push_back(Json(JsonObject{
            {"from", Json(i)},
            {"to", Json(nb.node)},
            {"seconds_per_mb", Json(nb.weight)},
        }));
      }
    }
  }

  const auto& env = instance.radio_env();
  JsonArray gains;  // row-major N x M
  gains.reserve(env.gain.size());
  for (const double g : env.gain) gains.emplace_back(g);
  JsonArray bandwidth;
  for (const double b : env.bandwidth) bandwidth.emplace_back(b);

  return Json(JsonObject{
      {"format", Json("idde-instance-v1")},
      {"servers", Json(std::move(servers))},
      {"users", Json(std::move(users))},
      {"data", Json(std::move(data))},
      {"requests", Json(std::move(requests))},
      {"edges", Json(std::move(edges))},
      {"cloud_speed_mbps", Json(instance.latency().cloud_speed_mbps())},
      {"radio",
       Json(JsonObject{
           {"channels_per_server", Json(env.channels_per_server)},
           {"noise_watts", Json(env.noise_watts)},
           {"bandwidth_mbps", Json(std::move(bandwidth))},
           {"gain", Json(std::move(gains))},
       })},
  });
}

ProblemInstance instance_from_json(const Json& json) {
  // Every shape and range constraint the downstream constructors assert
  // (RequestMatrix, net::Graph, ProblemInstance, the interference model)
  // is checked here first, so a hostile document fails with a JsonError
  // instead of aborting the process or indexing out of bounds.
  if (json.string_or("format", "") != "idde-instance-v1") {
    throw util::JsonError("unknown instance format (want idde-instance-v1)");
  }

  std::vector<EdgeServer> servers;
  for (const Json& s : json.at("servers").as_array()) {
    servers.push_back(EdgeServer{
        .position = {s.at("x").as_number(), s.at("y").as_number()},
        .coverage_radius_m = s.at("radius_m").as_number(),
        .storage_mb = util::as_finite(s.at("storage_mb"), 0.0,
                                      "server storage_mb"),
    });
  }

  std::vector<User> users;
  for (const Json& u : json.at("users").as_array()) {
    users.push_back(User{
        .position = {u.at("x").as_number(), u.at("y").as_number()},
        .power_watts = util::as_positive(u.at("power_w"), "user power_w"),
        .max_rate_mbps = u.at("max_rate_mbps").as_number(),
    });
  }

  std::vector<DataItem> data;
  for (const Json& d : json.at("data").as_array()) {
    data.push_back(DataItem{
        .size_mb = util::as_positive(d.at("size_mb"), "data size_mb")});
  }

  RequestMatrix requests(users.size(), data.size());
  const auto& request_rows = json.at("requests").as_array();
  if (request_rows.size() != users.size()) {
    throw util::JsonError(util::format(
        "request rows {} != user count {}", request_rows.size(), users.size()));
  }
  for (std::size_t j = 0; j < request_rows.size(); ++j) {
    for (const Json& item : request_rows[j].as_array()) {
      requests.add_request(j,
                           util::as_index(item, data.size(), "requested item"));
    }
  }

  std::vector<net::Edge> edges;
  for (const Json& e : json.at("edges").as_array()) {
    net::Edge edge{
        util::as_index(e.at("from"), servers.size(), "edge endpoint"),
        util::as_index(e.at("to"), servers.size(), "edge endpoint"),
        util::as_finite(e.at("seconds_per_mb"), 0.0, "edge seconds_per_mb"),
    };
    if (edge.from == edge.to) {
      throw util::JsonError(
          util::format("self-loop edge at server {}", edge.from));
    }
    edges.push_back(edge);
  }
  net::Graph graph(servers.size(), edges);
  net::DeliveryLatencyModel latency(
      net::CostMatrix(graph),
      util::as_positive(json.at("cloud_speed_mbps"), "cloud_speed_mbps"));

  const Json& radio_json = json.at("radio");
  radio::RadioEnvironment env;
  env.server_count = servers.size();
  env.user_count = users.size();
  const std::int64_t channels = radio_json.at("channels_per_server").as_int();
  if (channels < 1 || channels > 1024) {
    throw util::JsonError(
        util::format("channels_per_server {} out of range [1, 1024]",
                     channels));
  }
  env.channels_per_server = static_cast<std::size_t>(channels);
  env.noise_watts =
      util::as_finite(radio_json.at("noise_watts"), 0.0, "noise_watts");
  for (const Json& b : radio_json.at("bandwidth_mbps").as_array()) {
    env.bandwidth.push_back(util::as_positive(b, "bandwidth_mbps entry"));
  }
  if (env.bandwidth.size() != servers.size() * env.channels_per_server) {
    throw util::JsonError(util::format(
        "bandwidth_mbps has {} entries, want servers x channels = {}",
        env.bandwidth.size(), servers.size() * env.channels_per_server));
  }
  for (const Json& g : radio_json.at("gain").as_array()) {
    env.gain.push_back(util::as_finite(g, 0.0, "gain entry"));
  }
  if (env.gain.size() != servers.size() * users.size()) {
    throw util::JsonError(
        util::format("gain has {} entries, want servers x users = {}",
                     env.gain.size(), servers.size() * users.size()));
  }
  env.power.reserve(users.size());
  for (const User& u : users) env.power.push_back(u.power_watts);

  // Coverage is geometric; recompute rather than store.
  env.covering_servers.resize(users.size());
  for (std::size_t j = 0; j < users.size(); ++j) {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (geo::distance_m(servers[i].position, users[j].position) <=
          servers[i].coverage_radius_m) {
        env.covering_servers[j].push_back(i);
      }
    }
  }

  return ProblemInstance(std::move(servers), std::move(users), std::move(data),
                         std::move(requests), std::move(graph),
                         std::move(latency), std::move(env));
}

std::string instance_to_string(const ProblemInstance& instance, int indent) {
  return instance_to_json(instance).dump(indent);
}

ProblemInstance instance_from_string(const std::string& text) {
  return instance_from_json(Json::parse(text));
}

}  // namespace idde::model
