file(REMOVE_RECURSE
  "CMakeFiles/idde_geo.dir/eua.cpp.o"
  "CMakeFiles/idde_geo.dir/eua.cpp.o.d"
  "CMakeFiles/idde_geo.dir/generators.cpp.o"
  "CMakeFiles/idde_geo.dir/generators.cpp.o.d"
  "CMakeFiles/idde_geo.dir/spatial_grid.cpp.o"
  "CMakeFiles/idde_geo.dir/spatial_grid.cpp.o.d"
  "libidde_geo.a"
  "libidde_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
