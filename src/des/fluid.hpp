// Internal fluid-flow machinery shared by the DES engines (flow_sim.cpp
// and flow_sim_qos.cpp). Not part of the public des:: surface.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace idde::des::detail {

/// One routed transfer in flight.
struct ActiveFlow {
  std::size_t record_index;
  double remaining_mb;
  std::vector<std::size_t> links;
  double rate_mbps = 0.0;
};

/// Max-min fair rates for the active flows over shared links (iterative
/// water-filling: repeatedly freeze the flows of the tightest link).
/// Templated so engines with richer per-leg state (the hedged engine's
/// HedgedLeg) share the same arithmetic: any Flow with `links` and
/// `rate_mbps` members works, and instantiating with ActiveFlow is the
/// original function bit for bit.
template <typename Flow>
inline void assign_max_min_rates(std::vector<Flow>& flows,
                                 const std::vector<double>& capacities) {
  std::vector<double> remaining_cap = capacities;
  std::vector<std::size_t> unfrozen_count(capacities.size(), 0);
  std::vector<bool> frozen(flows.size(), false);
  for (const Flow& flow : flows) {
    for (const std::size_t l : flow.links) ++unfrozen_count[l];
  }
  std::size_t flows_left = flows.size();
  while (flows_left > 0) {
    // Tightest link among those still carrying unfrozen flows.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = static_cast<std::size_t>(-1);
    for (std::size_t l = 0; l < capacities.size(); ++l) {
      if (unfrozen_count[l] == 0) continue;
      const double share =
          remaining_cap[l] / static_cast<double>(unfrozen_count[l]);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    IDDE_ASSERT(best_link != static_cast<std::size_t>(-1),
                "active flow without links");
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      const auto& ls = flows[f].links;
      if (std::find(ls.begin(), ls.end(), best_link) == ls.end()) continue;
      flows[f].rate_mbps = best_share;
      frozen[f] = true;
      --flows_left;
      for (const std::size_t l : ls) {
        remaining_cap[l] -= best_share;
        --unfrozen_count[l];
      }
      // Guard fp residue.
      for (const std::size_t l : ls) {
        remaining_cap[l] = std::max(remaining_cap[l], 0.0);
      }
    }
  }
}

}  // namespace idde::des::detail
