#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace idde::obs {

namespace detail {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

namespace {

/// Relaxed CAS loop folding `v` into an atomic double with `op`.
template <typename Op>
void atomic_fold(std::atomic<double>& target, double v, Op op) noexcept {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, op(observed, v),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_fold(sum_, value, [](double a, double b) { return a + b; });
  atomic_fold(min_, value, [](double a, double b) { return std::min(a, b); });
  atomic_fold(max_, value, [](double a, double b) { return std::max(a, b); });
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kBucketCount - 1;
  auto sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(exp - kMinExp) *
                 static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_midpoint(std::size_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, kMinExp - 1) * 0.5;
  if (index == kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t linear = index - 1;
  const int exp =
      kMinExp + static_cast<int>(linear / static_cast<std::size_t>(kSubBuckets));
  const auto sub =
      static_cast<double>(linear % static_cast<std::size_t>(kSubBuckets));
  const double base = std::ldexp(1.0, exp - 1);
  const double width = base / kSubBuckets;
  return base + width * (sub + 0.5);
}

std::pair<double, double> Histogram::bucket_range(double value) noexcept {
  const std::size_t index = bucket_index(value);
  if (index == 0) return {0.0, std::ldexp(1.0, kMinExp - 1)};
  if (index == kBucketCount - 1) {
    return {std::ldexp(1.0, kMaxExp),
            std::numeric_limits<double>::infinity()};
  }
  const std::size_t linear = index - 1;
  const int exp =
      kMinExp + static_cast<int>(linear / static_cast<std::size_t>(kSubBuckets));
  const auto sub =
      static_cast<double>(linear % static_cast<std::size_t>(kSubBuckets));
  const double base = std::ldexp(1.0, exp - 1);
  const double width = base / kSubBuckets;
  return {base + width * sub, base + width * (sub + 1.0)};
}

double Histogram::percentile(double p) const {
  IDDE_EXPECTS(p >= 0.0 && p <= 100.0);
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  if (p == 0.0) return lo;
  if (p == 100.0) return hi;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::clamp<std::uint64_t>(rank, 1, n);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return std::clamp(bucket_midpoint(b), lo, hi);
    }
  }
  // Writers racing the scan can leave cumulative < rank; the tail bucket
  // is the right answer then.
  return hi;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.mean = snap.sum / static_cast<double>(snap.count);
  snap.p50 = percentile(50.0);
  snap.p90 = percentile(90.0);
  snap.p99 = percentile(99.0);
  snap.p999 = percentile(99.9);
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

util::Json HistogramSnapshot::to_json() const {
  util::JsonObject object;
  object["count"] = count;
  object["min"] = min;
  object["max"] = max;
  object["sum"] = sum;
  object["mean"] = mean;
  object["p50"] = p50;
  object["p90"] = p90;
  object["p99"] = p99;
  object["p999"] = p999;
  return util::Json(std::move(object));
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

/// Node-map lookup-or-insert shared by the three metric kinds. The caller
/// holds the registry mutex.
template <typename Map>
auto& find_or_insert(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_insert(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_insert(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_insert(histograms_, name);
}

util::Json MetricsRegistry::scrape() {
  const util::MutexLock lock(mutex_);
  util::JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  util::JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->value();
  }
  util::JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->snapshot().to_json();
  }
  util::JsonObject doc;
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return util::Json(std::move(doc));
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace idde::obs
