#include "dynamic/migration.hpp"

#include "util/assert.hpp"

namespace idde::dynamic {

MigrationPlan plan_migration(const model::ProblemInstance& instance,
                             const core::DeliveryProfile& previous,
                             const core::DeliveryProfile& next) {
  IDDE_EXPECTS(previous.server_count() == instance.server_count());
  IDDE_EXPECTS(next.server_count() == instance.server_count());
  MigrationPlan plan;
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    const double size = instance.data(k).size_mb;
    const auto old_hosts = previous.hosts(k);
    for (const std::size_t to : next.hosts(k)) {
      if (previous.placed(to, k)) continue;  // replica already in place
      // Cheapest source: nearest previous replica or the cloud.
      double best_seconds = instance.latency().cloud_transfer_seconds(size);
      std::size_t best_source = MigrationStep::kFromCloud;
      for (const std::size_t from : old_hosts) {
        const double seconds =
            instance.latency().edge_transfer_seconds(from, to, size);
        if (seconds < best_seconds) {
          best_seconds = seconds;
          best_source = from;
        }
      }
      plan.steps.push_back(MigrationStep{k, to, best_source, best_seconds});
      plan.total_mb += size;
      plan.total_transfer_seconds += best_seconds;
      if (best_source == MigrationStep::kFromCloud) ++plan.cloud_fetches;
    }
  }
  return plan;
}

}  // namespace idde::dynamic
