// Figure 4 — effectiveness in Set #2: R_avg and L_avg vs the number of
// users M (50..350 step 50; N=30, K=5, density=1.0).
#include "figure_common.hpp"

int main() {
  return idde::bench::run_figure_set(idde::sim::paper_sets()[1], "fig4_set2");
}
