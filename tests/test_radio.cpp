// Radio layer: unit conversions, path loss, and the incremental
// interference field checked against the from-scratch reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "radio/interference.hpp"
#include "radio/pathloss.hpp"
#include "radio/units.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace {

using namespace idde::radio;
using idde::util::Rng;

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-9);
  for (const double dbm : {-174.0, -90.0, -30.0, 0.0, 20.0}) {
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
  }
}

TEST(Units, PaperNoiseFloor) {
  // -174 dBm ~ 3.98e-21 W.
  EXPECT_NEAR(default_noise_watts(), 3.98e-21, 0.01e-21);
}

TEST(PathLoss, PowerLawDecay) {
  const PathLossModel model(1.0, 3.0);
  EXPECT_DOUBLE_EQ(model.gain(10.0), 1e-3);
  EXPECT_DOUBLE_EQ(model.gain(100.0), 1e-6);
  // Doubling distance with loss=3 cuts gain by 8.
  EXPECT_NEAR(model.gain(20.0) / model.gain(10.0), 1.0 / 8.0, 1e-12);
}

TEST(PathLoss, EtaScalesLinearly) {
  const PathLossModel a(1.0, 3.0);
  const PathLossModel b(2.5, 3.0);
  EXPECT_NEAR(b.gain(50.0) / a.gain(50.0), 2.5, 1e-12);
}

TEST(PathLoss, MinDistanceClampsGain) {
  const PathLossModel model(1.0, 3.0, 5.0);
  EXPECT_DOUBLE_EQ(model.gain(0.0), model.gain(5.0));
  EXPECT_DOUBLE_EQ(model.gain(2.0), model.gain(5.0));
  EXPECT_LT(model.gain(10.0), model.gain(5.0));
}

/// Builds a random radio environment with full coverage structure.
RadioEnvironment make_env(std::size_t servers, std::size_t users,
                          std::size_t channels, Rng& rng,
                          double coverage_prob = 0.7) {
  RadioEnvironment env;
  env.server_count = servers;
  env.user_count = users;
  env.channels_per_server = channels;
  env.noise_watts = default_noise_watts();
  env.gain.resize(servers * users);
  env.power.resize(users);
  env.bandwidth.assign(servers * channels, 200.0);
  for (std::size_t j = 0; j < users; ++j) {
    env.power[j] = rng.uniform(1.0, 5.0);
  }
  for (std::size_t i = 0; i < servers; ++i) {
    for (std::size_t j = 0; j < users; ++j) {
      // Distances 50..250 m under eta=1, loss=3.
      const double d = rng.uniform(50.0, 250.0);
      env.gain[i * users + j] = std::pow(d, -3.0);
    }
  }
  env.covering_servers.resize(users);
  for (std::size_t j = 0; j < users; ++j) {
    for (std::size_t i = 0; i < servers; ++i) {
      if (rng.bernoulli(coverage_prob)) env.covering_servers[j].push_back(i);
    }
    if (env.covering_servers[j].empty()) {
      env.covering_servers[j].push_back(rng.index(servers));
    }
  }
  env.check();
  return env;
}

/// Random allocation within coverage.
std::vector<ChannelSlot> random_alloc(const RadioEnvironment& env, Rng& rng,
                                      double allocate_prob = 0.9) {
  std::vector<ChannelSlot> alloc(env.user_count, kUnallocated);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    if (!rng.bernoulli(allocate_prob)) continue;
    const auto& cov = env.covering_servers[j];
    alloc[j] = ChannelSlot{cov[rng.index(cov.size())],
                           rng.index(env.channels_per_server)};
  }
  return alloc;
}

// check() is the model-layer gate for file- and generator-sourced
// environments: inconsistencies must surface as util::ValidationError (the
// structured CLI error contract), not as an abort.
TEST(RadioEnvironment, CheckThrowsValidationErrorOnBadInput) {
  Rng rng(7);
  const RadioEnvironment good = make_env(3, 4, 2, rng, 1.0);
  EXPECT_NO_THROW(good.check());

  RadioEnvironment bad = good;
  bad.gain.pop_back();  // shape mismatch
  EXPECT_THROW(bad.check(), idde::util::ValidationError);

  bad = good;
  bad.power[1] = 0.0;  // non-positive transmit power
  EXPECT_THROW(bad.check(), idde::util::ValidationError);

  bad = good;
  bad.noise_watts = -1.0;
  EXPECT_THROW(bad.check(), idde::util::ValidationError);

  bad = good;
  std::swap(bad.covering_servers[0].front(), bad.covering_servers[0].back());
  if (bad.covering_servers[0].size() > 1) {  // unsorted coverage set
    EXPECT_THROW(bad.check(), idde::util::ValidationError);
  }

  bad = good;
  bad.covering_servers[2].push_back(99);  // server index out of range
  EXPECT_THROW(bad.check(), idde::util::ValidationError);
}

TEST(InterferenceField, SingleUserSeesOnlyNoise) {
  Rng rng(1);
  const RadioEnvironment env = make_env(3, 1, 2, rng, 1.0);
  InterferenceField field(env);
  const ChannelSlot slot{0, 0};
  const double expected =
      env.gain_at(0, 0) * env.power[0] / env.noise_watts;
  EXPECT_NEAR(field.sinr(0, slot) / expected, 1.0, 1e-9);
}

TEST(InterferenceField, InCellInterferenceReducesSinr) {
  Rng rng(2);
  const RadioEnvironment env = make_env(2, 3, 2, rng, 1.0);
  InterferenceField field(env);
  const ChannelSlot slot{0, 0};
  const double alone = field.sinr(0, slot);
  field.add_user(1, slot);  // same channel
  const double with_one = field.sinr(0, slot);
  field.add_user(2, slot);
  const double with_two = field.sinr(0, slot);
  EXPECT_GT(alone, with_one);
  EXPECT_GT(with_one, with_two);
}

TEST(InterferenceField, DifferentChannelNoInCellInterference) {
  Rng rng(3);
  const RadioEnvironment env = make_env(1, 2, 2, rng, 1.0);
  InterferenceField field(env);
  const double alone = field.sinr(0, {0, 0});
  field.add_user(1, {0, 1});  // other channel, same (only) server
  EXPECT_NEAR(field.sinr(0, {0, 0}), alone, alone * 1e-12);
}

TEST(InterferenceField, CrossCellInterferenceOnlyOnSameChannelIndex) {
  Rng rng(4);
  const RadioEnvironment env = make_env(2, 2, 2, rng, 1.0);
  InterferenceField field(env);
  const double alone = field.sinr(0, {0, 0});
  field.add_user(1, {1, 0});  // other covering server, same channel index
  EXPECT_LT(field.sinr(0, {0, 0}), alone);
  field.move_user(1, {1, 1});  // other channel index: interference gone
  EXPECT_NEAR(field.sinr(0, {0, 0}), alone, alone * 1e-12);
}

TEST(InterferenceField, RemoveRestoresState) {
  Rng rng(5);
  const RadioEnvironment env = make_env(4, 6, 3, rng);
  InterferenceField field(env);
  const ChannelSlot probe{env.covering_servers[0][0], 0};
  const double before = field.sinr(0, probe);
  field.add_user(1, ChannelSlot{env.covering_servers[1][0], 0});
  field.add_user(2, ChannelSlot{env.covering_servers[2][0], 0});
  field.remove_user(1);
  field.remove_user(2);
  EXPECT_NEAR(field.sinr(0, probe), before, std::abs(before) * 1e-9);
  EXPECT_FALSE(field.slot_of(1).allocated());
}

TEST(InterferenceField, RemoveUnallocatedIsNoop) {
  Rng rng(6);
  const RadioEnvironment env = make_env(2, 2, 2, rng);
  InterferenceField field(env);
  field.remove_user(0);  // must not abort
  EXPECT_FALSE(field.slot_of(0).allocated());
}

TEST(InterferenceField, ClearResetsEverything) {
  Rng rng(7);
  const RadioEnvironment env = make_env(3, 5, 2, rng);
  InterferenceField field(env);
  const auto alloc = random_alloc(env, rng, 1.0);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    field.add_user(j, alloc[j]);
  }
  field.clear();
  for (std::size_t i = 0; i < env.server_count; ++i) {
    for (std::size_t x = 0; x < env.channels_per_server; ++x) {
      EXPECT_DOUBLE_EQ(field.channel_power_watts(i, x), 0.0);
    }
  }
  for (std::size_t j = 0; j < env.user_count; ++j) {
    EXPECT_FALSE(field.slot_of(j).allocated());
  }
}

TEST(InterferenceField, ChannelPowerTracksMembers) {
  Rng rng(8);
  const RadioEnvironment env = make_env(2, 4, 2, rng, 1.0);
  InterferenceField field(env);
  field.add_user(0, {0, 0});
  field.add_user(1, {0, 0});
  field.add_user(2, {0, 1});
  EXPECT_NEAR(field.channel_power_watts(0, 0), env.power[0] + env.power[1], 1e-12);
  EXPECT_NEAR(field.channel_power_watts(0, 1), env.power[2], 1e-12);
  EXPECT_DOUBLE_EQ(field.channel_power_watts(1, 0), 0.0);
}

TEST(InterferenceField, HypotheticalEvaluationExcludesSelf) {
  Rng rng(9);
  const RadioEnvironment env = make_env(2, 2, 2, rng, 1.0);
  InterferenceField field(env);
  // User 0 allocated at (0,0); probing (1,0) must not count user 0's own
  // transmission as cross-cell interference against itself.
  field.add_user(0, {0, 0});
  const double probe_with_self_present = field.sinr(0, {1, 0});
  field.remove_user(0);
  const double probe_clean = field.sinr(0, {1, 0});
  EXPECT_NEAR(probe_with_self_present, probe_clean,
              std::abs(probe_clean) * 1e-9);
}

TEST(InterferenceField, RateIsShannon) {
  Rng rng(10);
  const RadioEnvironment env = make_env(2, 3, 2, rng, 1.0);
  InterferenceField field(env);
  field.add_user(1, {0, 0});
  const ChannelSlot slot{0, 0};
  const double r = field.sinr(0, slot);
  EXPECT_NEAR(field.rate_mbps(0, slot), 200.0 * std::log2(1.0 + r), 1e-9);
}

TEST(InterferenceField, BenefitMatchesEq12Shape) {
  Rng rng(11);
  const RadioEnvironment env = make_env(1, 2, 1, rng, 1.0);
  InterferenceField field(env);
  // Alone: beta = g p / (g p) = 1.
  EXPECT_NEAR(field.benefit(0, {0, 0}), 1.0, 1e-12);
  field.add_user(1, {0, 0});
  // With a peer on the channel: beta = p0 / (p0 + p1) (gains cancel).
  EXPECT_NEAR(field.benefit(0, {0, 0}),
              env.power[0] / (env.power[0] + env.power[1]), 1e-12);
}

TEST(InterferenceField, BenefitBoundedByOne) {
  Rng rng(12);
  const RadioEnvironment env = make_env(4, 10, 3, rng);
  InterferenceField field(env);
  const auto alloc = random_alloc(env, rng);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    if (alloc[j].allocated()) field.add_user(j, alloc[j]);
  }
  for (std::size_t j = 0; j < env.user_count; ++j) {
    for (const std::size_t i : env.covering_servers[j]) {
      for (std::size_t x = 0; x < env.channels_per_server; ++x) {
        const double b = field.benefit(j, {i, x});
        EXPECT_GT(b, 0.0);
        EXPECT_LE(b, 1.0 + 1e-12);
      }
    }
  }
}

// Property: the incremental field agrees with the from-scratch reference
// for every user and candidate slot, across random allocation histories
// (adds, removes, moves).
class FieldVsReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldVsReferenceTest, AgreesAfterRandomHistory) {
  Rng rng(GetParam());
  const std::size_t servers = 2 + rng.index(5);
  const std::size_t users = 3 + rng.index(12);
  const std::size_t channels = 1 + rng.index(3);
  const RadioEnvironment env = make_env(servers, users, channels, rng);
  InterferenceField field(env);
  std::vector<ChannelSlot> shadow(users, kUnallocated);

  // Random mutation history.
  for (int step = 0; step < 200; ++step) {
    const std::size_t j = rng.index(users);
    const int op = static_cast<int>(rng.index(3));
    if (op == 0 && !shadow[j].allocated()) {
      const auto& cov = env.covering_servers[j];
      const ChannelSlot slot{cov[rng.index(cov.size())],
                             rng.index(channels)};
      field.add_user(j, slot);
      shadow[j] = slot;
    } else if (op == 1 && shadow[j].allocated()) {
      field.remove_user(j);
      shadow[j] = kUnallocated;
    } else {
      const auto& cov = env.covering_servers[j];
      const ChannelSlot slot{cov[rng.index(cov.size())],
                             rng.index(channels)};
      field.move_user(j, slot);
      shadow[j] = slot;
    }
  }

  // Full agreement check.
  for (std::size_t j = 0; j < users; ++j) {
    for (const std::size_t i : env.covering_servers[j]) {
      for (std::size_t x = 0; x < channels; ++x) {
        const ChannelSlot slot{i, x};
        const double fast = field.sinr(j, slot);
        const double slow = sinr_reference(env, shadow, j, slot);
        EXPECT_NEAR(fast / slow, 1.0, 1e-6)
            << "user " << j << " slot (" << i << "," << x << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldVsReferenceTest,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(ChangeTracking, VersionsBumpOnlyOnPerturbedSlots) {
  Rng rng(7);
  const RadioEnvironment env = make_env(3, 4, 2, rng, 1.0);
  InterferenceField field(env);
  EXPECT_EQ(field.version(), 0u);
  EXPECT_EQ(field.last_move().user, ChannelSlot::kNone);

  const ChannelSlot a{0, 0};
  const ChannelSlot b{2, 1};
  field.add_user(0, a);
  EXPECT_EQ(field.version(), 1u);
  EXPECT_EQ(field.slot_version(a), 1u);
  EXPECT_EQ(field.slot_version(b), 0u);
  EXPECT_EQ(field.last_move().user, 0u);
  EXPECT_FALSE(field.last_move().from.allocated());
  EXPECT_EQ(field.last_move().to, a);

  // A move bumps exactly the vacated and entered slots and reports both.
  field.move_user(0, b);
  EXPECT_EQ(field.version(), 3u);  // remove + add
  EXPECT_EQ(field.slot_version(a), 2u);
  EXPECT_EQ(field.slot_version(b), 1u);
  EXPECT_EQ(field.slot_version(ChannelSlot{1, 0}), 0u);
  EXPECT_EQ(field.last_move().user, 0u);
  EXPECT_EQ(field.last_move().from, a);
  EXPECT_EQ(field.last_move().to, b);
  EXPECT_EQ(field.last_move().version, field.version());

  field.remove_user(0);
  EXPECT_EQ(field.slot_version(b), 2u);
  EXPECT_EQ(field.last_move().from, b);
  EXPECT_FALSE(field.last_move().to.allocated());

  // clear() invalidates every slot.
  field.add_user(1, a);
  const std::uint64_t before = field.version();
  field.clear();
  EXPECT_GT(field.version(), before);
  EXPECT_EQ(field.slot_version(a), 4u);
  EXPECT_EQ(field.slot_version(b), 3u);
  EXPECT_EQ(field.last_move().user, ChannelSlot::kNone);
}

TEST(ChangeTracking, EqualSlotVersionsImplyEqualBenefits) {
  // The contract the game's dirty set relies on: after a move, any user
  // whose coverage misses both perturbed servers sees identical benefits
  // at every one of its candidates.
  Rng rng(8);
  const RadioEnvironment env = make_env(6, 12, 3, rng, 0.4);
  InterferenceField field(env);
  std::vector<ChannelSlot> alloc = random_alloc(env, rng);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    if (alloc[j].allocated()) field.add_user(j, alloc[j]);
  }
  std::vector<std::vector<double>> before(env.user_count);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    for (const std::size_t i : env.covering_servers[j]) {
      for (std::size_t x = 0; x < env.channels_per_server; ++x) {
        before[j].push_back(field.benefit(j, ChannelSlot{i, x}));
      }
    }
  }

  // Move user 0 somewhere else within coverage.
  const auto& cov0 = env.covering_servers[0];
  const ChannelSlot target{cov0[cov0.size() - 1],
                           env.channels_per_server - 1};
  const ChannelSlot old0 = alloc[0];
  field.move_user(0, target);
  const MoveDelta& delta = field.last_move();

  for (std::size_t j = 1; j < env.user_count; ++j) {
    const auto& cov = env.covering_servers[j];
    const bool touches =
        (delta.from.allocated() &&
         std::binary_search(cov.begin(), cov.end(), delta.from.server)) ||
        (delta.to.allocated() &&
         std::binary_search(cov.begin(), cov.end(), delta.to.server));
    if (touches) continue;  // dirty by the game's criterion
    std::size_t idx = 0;
    for (const std::size_t i : cov) {
      for (std::size_t x = 0; x < env.channels_per_server; ++x) {
        EXPECT_EQ(field.benefit(j, ChannelSlot{i, x}), before[j][idx])
            << "clean user " << j << " drifted after move " << old0.server
            << "->" << target.server;
        ++idx;
      }
    }
  }
}

TEST(BenefitReference, MatchesIncrementalFieldAfterMoveChurn) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    Rng rng(seed);
    const RadioEnvironment env = make_env(5, 10, 3, rng, 0.6);
    InterferenceField field(env);
    std::vector<ChannelSlot> shadow(env.user_count, kUnallocated);
    for (int step = 0; step < 200; ++step) {
      const std::size_t j = rng.index(env.user_count);
      const auto& cov = env.covering_servers[j];
      const ChannelSlot slot{cov[rng.index(cov.size())],
                             rng.index(env.channels_per_server)};
      field.move_user(j, slot);
      shadow[j] = slot;
    }
    for (std::size_t j = 0; j < env.user_count; ++j) {
      for (const std::size_t i : env.covering_servers[j]) {
        for (std::size_t x = 0; x < env.channels_per_server; ++x) {
          const ChannelSlot slot{i, x};
          EXPECT_NEAR(field.benefit(j, slot),
                      benefit_reference(env, shadow, j, slot), 1e-12)
              << "seed " << seed << " user " << j;
        }
      }
    }
  }
}

}  // namespace
