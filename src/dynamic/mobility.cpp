#include "dynamic/mobility.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace idde::dynamic {

RandomWaypointModel::RandomWaypointModel(
    std::vector<geo::Point> initial_positions, geo::BoundingBox bounds,
    MobilityParams params, util::Rng& rng)
    : positions_(std::move(initial_positions)),
      bounds_(bounds),
      params_(params) {
  IDDE_EXPECTS(params.min_speed_mps > 0.0);
  IDDE_EXPECTS(params.max_speed_mps >= params.min_speed_mps);
  IDDE_EXPECTS(params.pause_seconds >= 0.0);
  walks_.resize(positions_.size());
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    assign_waypoint(j, rng);
  }
}

void RandomWaypointModel::assign_waypoint(std::size_t user, util::Rng& rng) {
  walks_[user].waypoint =
      geo::Point{rng.uniform(bounds_.min.x, bounds_.max.x),
                 rng.uniform(bounds_.min.y, bounds_.max.y)};
  walks_[user].speed_mps =
      rng.uniform(params_.min_speed_mps, params_.max_speed_mps);
}

void RandomWaypointModel::restore_state(std::vector<geo::Point> positions,
                                        std::vector<WalkState> walks,
                                        double total_distance_m) {
  IDDE_EXPECTS(positions.size() == positions_.size());
  IDDE_EXPECTS(walks.size() == walks_.size());
  IDDE_EXPECTS(total_distance_m >= 0.0);
  positions_ = std::move(positions);
  walks_ = std::move(walks);
  total_distance_m_ = total_distance_m;
}

void RandomWaypointModel::step(double dt_seconds, util::Rng& rng) {
  IDDE_EXPECTS(dt_seconds >= 0.0);
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    double budget = dt_seconds;
    WalkState& walk = walks_[j];
    geo::Point& pos = positions_[j];
    while (budget > 0.0) {
      if (walk.pause_left_s > 0.0) {
        const double pause = std::min(walk.pause_left_s, budget);
        walk.pause_left_s -= pause;
        budget -= pause;
        continue;
      }
      const double dist_to_waypoint = geo::distance_m(pos, walk.waypoint);
      const double reachable = walk.speed_mps * budget;
      if (reachable >= dist_to_waypoint) {
        // Arrive, pause, re-target.
        total_distance_m_ += dist_to_waypoint;
        budget -= dist_to_waypoint / walk.speed_mps;
        pos = walk.waypoint;
        walk.pause_left_s = params_.pause_seconds;
        assign_waypoint(j, rng);
      } else {
        const double frac = reachable / dist_to_waypoint;
        pos.x += (walk.waypoint.x - pos.x) * frac;
        pos.y += (walk.waypoint.y - pos.y) * frac;
        total_distance_m_ += reachable;
        budget = 0.0;
      }
    }
  }
}

}  // namespace idde::dynamic
