#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace idde::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::local_buffer_locked() {
  // Cache key: (owner, epoch). A reset bumps the epoch, so stale cached
  // pointers are replaced — never dereferenced — on the next event.
  thread_local std::shared_ptr<ThreadBuffer> cached;
  thread_local const void* cached_owner = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  if (cached_owner != this || cached_epoch != epoch_ || cached == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    buffers_.push_back(buffer);
    cached = std::move(buffer);
    cached_owner = this;
    cached_epoch = epoch_;
  }
  return cached;
}

void Tracer::record(std::string_view name,
                    std::chrono::steady_clock::time_point start,
                    double duration_ms, std::string_view args) {
  const bool capture = trace_enabled();
  std::shared_ptr<ThreadBuffer> buffer;
  double ts_us = 0.0;
  {
    const util::MutexLock rollup_lock(rollup_mutex_);
    auto it = rollup_.find(name);
    if (it == rollup_.end()) {
      it = rollup_
               .emplace(std::string(name), std::make_unique<PhaseAggregate>())
               .first;
    }
    PhaseAggregate& aggregate = *it->second;
    ++aggregate.count;
    aggregate.total_ms += duration_ms;
    aggregate.max_ms = std::max(aggregate.max_ms, duration_ms);
    aggregate.histogram.record(duration_ms);
    if (capture) {
      // Nested under rollup_mutex_ (declared rollup_mutex_ -> mutex_) so a
      // concurrent reset() — which takes both — cannot slip between the
      // rollup sample above and this buffer registration.
      const util::MutexLock lock(mutex_);
      // Clamped: a span constructed before the tracer existed (or before a
      // reset re-anchored the clock) starts at the origin, not before it.
      ts_us = std::max(
          0.0,
          std::chrono::duration<double, std::micro>(start - origin_).count());
      buffer = local_buffer_locked();
    }
  }
  if (buffer != nullptr) {
    TraceEvent event;
    event.name = std::string(name);
    event.args = std::string(args);
    event.ts_us = ts_us;
    event.dur_us = duration_ms * 1e3;
    event.tid = buffer->tid;
    const util::MutexLock lock(buffer->mutex);
    buffer->events.push_back(std::move(event));
  }
}

util::Json Tracer::chrome_trace() {
  // Snapshot the buffer list under the registry lock, then drain each
  // buffer under its own lock — no nesting, and events recorded by live
  // threads during the copy simply land in the next export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const util::MutexLock lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    const util::MutexLock lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.tid < b.tid;
            });

  util::JsonArray trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    util::JsonObject entry;
    entry["name"] = event.name;
    entry["cat"] = std::string("idde");
    entry["ph"] = std::string("X");
    entry["ts"] = event.ts_us;
    entry["dur"] = event.dur_us;
    entry["pid"] = 1;
    entry["tid"] = static_cast<std::int64_t>(event.tid);
    if (!event.args.empty()) {
      util::JsonObject args;
      args["detail"] = event.args;
      entry["args"] = std::move(args);
    }
    trace_events.emplace_back(std::move(entry));
  }
  util::JsonObject doc;
  doc["displayTimeUnit"] = std::string("ms");
  doc["traceEvents"] = std::move(trace_events);
  return util::Json(std::move(doc));
}

bool Tracer::write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace().dump(1) << "\n";
  return static_cast<bool>(out);
}

util::TextTable Tracer::rollup_table() {
  util::TextTable table({"phase", "count", "total ms", "mean ms", "p50 ms",
                         "p90 ms", "p99 ms", "max ms"});
  const util::MutexLock lock(rollup_mutex_);
  for (const auto& [name, aggregate] : rollup_) {
    const HistogramSnapshot snap = aggregate->histogram.snapshot();
    table.start_row()
        .add(name)
        .add(aggregate->count)
        .add(aggregate->total_ms, 2)
        .add(aggregate->count > 0
                 ? aggregate->total_ms / static_cast<double>(aggregate->count)
                 : 0.0,
             3)
        .add(snap.p50, 3)
        .add(snap.p90, 3)
        .add(snap.p99, 3)
        .add(aggregate->max_ms, 3);
  }
  return table;
}

util::Json Tracer::rollup_json() {
  const util::MutexLock lock(rollup_mutex_);
  util::JsonObject doc;
  for (const auto& [name, aggregate] : rollup_) {
    const HistogramSnapshot snap = aggregate->histogram.snapshot();
    util::JsonObject entry;
    entry["count"] = aggregate->count;
    entry["total_ms"] = aggregate->total_ms;
    entry["mean_ms"] =
        aggregate->count > 0
            ? aggregate->total_ms / static_cast<double>(aggregate->count)
            : 0.0;
    entry["p50"] = snap.p50;
    entry["p90"] = snap.p90;
    entry["p99"] = snap.p99;
    entry["p999"] = snap.p999;
    entry["max"] = aggregate->max_ms;
    doc[name] = std::move(entry);
  }
  return util::Json(std::move(doc));
}

void Tracer::reset() {
  // Both capabilities, in the declared order, so no span can land half of
  // its (rollup sample, trace event) pair across the wipe.
  const util::MutexLock rollup_lock(rollup_mutex_);
  const util::MutexLock lock(mutex_);
  buffers_.clear();
  rollup_.clear();
  ++epoch_;
  origin_ = std::chrono::steady_clock::now();
}

}  // namespace idde::obs
