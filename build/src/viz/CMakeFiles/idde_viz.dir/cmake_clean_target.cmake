file(REMOVE_RECURSE
  "libidde_viz.a"
)
