"""Suppression baseline: committed, justified exemptions for repo-wide rules.

The baseline is the escape hatch for findings that are understood and
accepted (a third-party idiom, a measured exception) without weakening the
rule for new code. Contract, enforced here:

  - every entry carries a one-line non-empty `reason`;
  - entries match findings by (rule, file, key) — never by line number, so
    unrelated edits cannot silently detach an entry;
  - a stale entry (matching no current finding) FAILS the run: baselines
    only shrink deliberately, and a fixed finding must take its entry with
    it.

Format (tools/analyze/baseline.json):
  {"entries": [{"rule": "...", "file": "...", "key": "...",
                "reason": "one line"}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

REQUIRED_FIELDS = ("rule", "file", "key", "reason")


class BaselineError(ValueError):
    """Malformed baseline file — a usage error, not a finding."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    file: str
    key: str
    reason: str

    @property
    def ident(self) -> tuple[str, str, str]:
        return (self.rule, self.file, self.key)


def load_baseline(path: Path) -> list[BaselineEntry]:
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise BaselineError(f"{path}: not valid JSON: {err}") from err
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise BaselineError(f'{path}: expected {{"entries": [...]}}')
    entries: list[BaselineEntry] = []
    seen: set[tuple[str, str, str]] = set()
    for i, item in enumerate(data["entries"]):
        if not isinstance(item, dict):
            raise BaselineError(f"{path}: entries[{i}] is not an object")
        missing = [f for f in REQUIRED_FIELDS
                   if not isinstance(item.get(f), str) or not item[f].strip()]
        if missing:
            raise BaselineError(
                f"{path}: entries[{i}] missing or empty field(s): "
                f"{', '.join(missing)} (every entry needs a one-line reason)")
        unknown = set(item) - set(REQUIRED_FIELDS)
        if unknown:
            raise BaselineError(
                f"{path}: entries[{i}] has unknown field(s): "
                f"{sorted(unknown)}")
        entry = BaselineEntry(item["rule"], item["file"], item["key"],
                              item["reason"].strip())
        if entry.ident in seen:
            raise BaselineError(
                f"{path}: duplicate entry for {entry.ident}")
        seen.add(entry.ident)
        entries.append(entry)
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry],
) -> tuple[list[Finding], int, list[BaselineEntry]]:
    """Splits findings into (surviving, baselined_count, stale_entries)."""
    by_ident = {entry.ident: entry for entry in entries}
    used: set[tuple[str, str, str]] = set()
    surviving: list[Finding] = []
    for finding in findings:
        ident = (finding.rule, finding.file, finding.key)
        if ident in by_ident:
            used.add(ident)
        else:
            surviving.append(finding)
    stale = [entry for entry in entries if entry.ident not in used]
    return surviving, len(findings) - len(surviving), stale
