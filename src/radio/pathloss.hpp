// Log-distance path-loss channel gain, Section 2.2:
//     g_{i,x,j} = eta * H_{i,j}^{-loss}
// with eta the frequency-dependent factor and loss the path-loss exponent
// (the evaluation uses eta = 1, loss = 3). The gain is clamped below a
// minimum distance so co-located user/server pairs cannot produce an
// unbounded gain.
#pragma once

#include "util/assert.hpp"

namespace idde::radio {

class PathLossModel {
 public:
  PathLossModel(double eta, double loss_exponent, double min_distance_m = 1.0)
      : eta_(eta), loss_exponent_(loss_exponent),
        min_distance_m_(min_distance_m) {
    IDDE_EXPECTS(eta > 0.0);
    IDDE_EXPECTS(loss_exponent > 0.0);
    IDDE_EXPECTS(min_distance_m > 0.0);
  }

  /// The paper's evaluation setting (eta = 1, loss = 3).
  static PathLossModel paper_default() { return {1.0, 3.0}; }

  [[nodiscard]] double gain(double distance_m) const;

  [[nodiscard]] double eta() const noexcept { return eta_; }
  [[nodiscard]] double loss_exponent() const noexcept {
    return loss_exponent_;
  }

 private:
  double eta_;
  double loss_exponent_;
  double min_distance_m_;
};

}  // namespace idde::radio
