#include "serve/controller.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/delivery.hpp"
#include "core/game.hpp"
#include "core/idde_g.hpp"
#include "core/potential.hpp"
#include "core/repair_planner.hpp"
#include "geo/bbox.hpp"
#include "obs/obs.hpp"
#include "serve/checkpoint.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace idde::serve {

namespace {

/// Stream salt + ids for the controller's independent RNG streams.
constexpr std::uint64_t kServeSeedSalt = 0x5e12e5e12e5e12e5ULL;
constexpr std::uint64_t kFaultSeedSalt = 0xfa017fa017ULL;
constexpr std::uint64_t kGraySeedSalt = 0x96a7fa5a17ULL;
constexpr std::uint64_t kWalkStream = 1;
constexpr std::uint64_t kChurnStream = 2;
constexpr std::uint64_t kSolveStream = 3;

fault::FaultPlan make_plan(const model::ProblemInstance& base,
                           const ServeConfig& config, std::uint64_t seed) {
  fault::FaultPlan plan =
      fault::FaultPlan::generate(base, config.faults, seed ^ kFaultSeedSalt);
  if (config.flash_failure_tick > 0 && config.flash_failure_fraction > 0.0) {
    // The injected schedule would collide with randomly drawn server
    // downtime; chaos studies run one or the other.
    IDDE_EXPECTS(config.faults.server_mtbf_s <= 0.0);
    IDDE_EXPECTS(config.flash_failure_fraction <= 1.0);
    IDDE_EXPECTS(config.flash_failure_duration_ticks > 0);
    const double start = static_cast<double>(config.flash_failure_tick) *
                         config.tick_seconds;
    const double end =
        start + static_cast<double>(config.flash_failure_duration_ticks) *
                    config.tick_seconds;
    const auto victims = static_cast<std::size_t>(
        std::floor(config.flash_failure_fraction *
                   static_cast<double>(base.server_count())));
    for (std::size_t i = 0; i < victims; ++i) {
      plan.add_server_downtime(i, fault::Interval{start, end});
    }
  }
  return plan;
}

util::Json rng_to_json(const util::Rng& rng) {
  const util::RngState state = rng.state();
  util::JsonArray words;
  for (const std::uint64_t word : state.words) {
    words.emplace_back(u64_to_hex(word));
  }
  util::JsonObject object;
  object.emplace("words", std::move(words));
  object.emplace("spare", state.has_spare_normal);
  object.emplace("spare_value", double_to_bits(state.spare_normal));
  return object;
}

void rng_from_json(const util::Json& value, std::string_view what,
                   util::Rng& rng) {
  util::RngState state;
  const util::JsonArray& words = value.at("words").as_array();
  if (words.size() != state.words.size()) {
    throw util::JsonError(util::format("{}: expected 4 state words", what));
  }
  for (std::size_t i = 0; i < state.words.size(); ++i) {
    state.words[i] = hex_to_u64(words[i].as_string(), what);
  }
  state.has_spare_normal = value.at("spare").as_bool();
  state.spare_normal = bits_to_double(value.at("spare_value"), what);
  rng.set_state(state);
}

/// Decodes a hex array into size_t values, each checked against `bound`
/// (pass kNoBound to skip the range check).
constexpr std::size_t kNoBound = static_cast<std::size_t>(-1);

std::vector<std::size_t> indices_from_json(const util::Json& value,
                                           std::size_t bound,
                                           std::string_view what) {
  const util::JsonArray& array = value.as_array();
  std::vector<std::size_t> out;
  out.reserve(array.size());
  for (const util::Json& element : array) {
    const auto index =
        static_cast<std::size_t>(hex_to_u64(element.as_string(), what));
    if (bound != kNoBound && index >= bound) {
      throw util::JsonError(
          util::format("{}: index {} out of range [0, {})", what, index,
                       bound));
    }
    out.push_back(index);
  }
  return out;
}

util::Json indices_to_json(const std::vector<std::size_t>& values) {
  util::JsonArray array;
  array.reserve(values.size());
  for (const std::size_t v : values) array.emplace_back(u64_to_hex(v));
  return array;
}

std::vector<double> doubles_from_json(const util::Json& value,
                                      std::string_view what) {
  const util::JsonArray& array = value.as_array();
  std::vector<double> out;
  out.reserve(array.size());
  for (const util::Json& element : array) {
    out.push_back(bits_to_double(element, what));
  }
  return out;
}

util::Json doubles_to_json(const std::vector<double>& values) {
  util::JsonArray array;
  array.reserve(values.size());
  for (const double v : values) array.push_back(double_to_bits(v));
  return array;
}

}  // namespace

ServeController::ServeController(ServeConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      seed_(seed),
      base_(model::make_instance(config_.base, seed)),
      pathloss_(config_.base.pathloss_eta, config_.base.pathloss_exponent),
      plan_(make_plan(base_, config_, seed)),
      gray_plan_(fault::DegradationPlan::generate(base_, config_.degradation,
                                                  seed ^ kGraySeedSalt)),
      health_(base_.server_count(), config_.health),
      tracker_(base_, pathloss_),
      walk_rng_(util::Rng(seed ^ kServeSeedSalt).fork(kWalkStream)),
      churn_rng_(util::Rng(seed ^ kServeSeedSalt).fork(kChurnStream)),
      solve_rng_(util::Rng(seed ^ kServeSeedSalt).fork(kSolveStream)),
      mobility_(dynamic::user_positions(base_),
                geo::BoundingBox::square(config_.base.eua.area_side_m),
                config_.mobility, walk_rng_),
      churn_(base_.user_count(),
             config_.churn_enabled ? config_.churn : dynamic::ChurnParams{},
             churn_rng_),
      retry_(config_.retry),
      trajectory_hash_(kFnvOffsetBasis) {
  IDDE_EXPECTS(config_.tick_seconds > 0.0);
  IDDE_EXPECTS(config_.repair_rounds_per_event > 0);
  IDDE_EXPECTS(config_.repair_placements_per_event > 0);
  IDDE_EXPECTS(config_.backlog_capacity > 0);
  IDDE_EXPECTS(config_.watchdog_strike_limit > 0);

  plan_.server_up_mask(base_.server_count(), 0.0, up_mask_);
  prev_up_mask_ = up_mask_;
  gray_mask_.assign(base_.server_count(), 0);

  // Initial solve at t = 0, always with the production rule — an injected
  // chaos rule (kCycleProbe) applies to *repairs*, which is what the
  // watchdog protects; starting from garbage would test nothing.
  core::IddeGOptions options;
  options.game.threads = config_.solver_threads;
  std::vector<std::vector<std::size_t>> candidates;
  if (config_.churn_enabled) {
    candidates.resize(base_.user_count());
    for (std::size_t j = 0; j < base_.user_count(); ++j) {
      if (churn_.online(j)) candidates[j] = base_.covering_servers(j);
    }
    options.game.candidate_servers = &candidates;
  }
  core::Strategy strategy =
      core::IddeG(options).solve(tracker_.instance(), solve_rng_);
  allocation_ = std::move(strategy.allocation);
  extract_sigma(strategy.delivery);
  lkg_allocation_ = allocation_;
  lkg_sigma_server_ = sigma_server_;
  lkg_sigma_item_ = sigma_item_;
}

TickReport ServeController::tick() {
  ++tick_;
  ++status_.ticks;
  const double t = static_cast<double>(tick_) * config_.tick_seconds;
  TickReport report;
  report.tick = tick_;
  IDDE_OBS_SPAN("serve.tick");

  mobility_.step(config_.tick_seconds, walk_rng_);
  tracker_.update(mobility_.positions());
  derive_events(t);
  report.events = events_.size();
  status_.events_total += events_.size();

  // Bookkeeping first (the world must be consistent before any repair
  // runs), then one budgeted repair dispatch per event.
  for (const Event& event : events_) {
    retry_.on_fresh_arrival();
    apply_bookkeeping(event);
  }
  for (const Event& event : events_) dispatch_repairs(event, report);

  drain_backlog(report);

  if (breaker_open_ && cooldown_left_ > 0) {
    --cooldown_left_;
    if (cooldown_left_ == 0) half_open_ = true;
  }

  report.backlog = backlog_.size();
  status_.backlog_peak = std::max(status_.backlog_peak, backlog_.size());
  report.breaker_open = breaker_open_;
  report.degraded = breaker_open_ || !equilibrium_clean_ || !sigma_clean_ ||
                    !backlog_.empty();
  if (report.degraded) ++status_.degraded_ticks;
  if (config_.flash_failure_tick > 0 && status_.recovery_ticks == 0 &&
      tick_ >= config_.flash_failure_tick && !report.degraded) {
    status_.recovery_ticks = tick_ - config_.flash_failure_tick + 1;
  }

  IDDE_OBS_COUNT("serve.ticks_total", 1);
  IDDE_OBS_COUNT("serve.events_total", report.events);
  IDDE_OBS_COUNT("serve.repairs_total", report.repairs);
  IDDE_OBS_COUNT("serve.shed_total", report.shed);
  if (report.degraded) IDDE_OBS_COUNT("serve.degraded_ticks_total", 1);
  IDDE_OBS_GAUGE_SET("serve.backlog_depth", report.backlog);
  IDDE_OBS_HISTOGRAM("serve.tick_repair_rounds", report.repair_rounds);

  fold_tick_hash();
  prev_up_mask_ = up_mask_;
  return report;
}

void ServeController::derive_events(double t) {
  events_.clear();
  // Availability is piecewise-constant between the plan's epoch
  // boundaries, so the mask only needs rebuilding when a boundary falls
  // inside this tick — the same epoch view fault::FaultInjector slices on.
  if (plan_.availability_changed_between(t - config_.tick_seconds, t)) {
    plan_.server_up_mask(base_.server_count(), t, up_mask_);
  }
  for (std::size_t i = 0; i < up_mask_.size(); ++i) {
    if (prev_up_mask_[i] != 0 && up_mask_[i] == 0) {
      events_.push_back(Event{EventKind::kServerDown, i});
    } else if (prev_up_mask_[i] == 0 && up_mask_[i] != 0) {
      events_.push_back(Event{EventKind::kServerUp, i});
    }
  }
  if (!gray_plan_.inert()) {
    // Feed the tracker from the degradation schedule: the plan's latency
    // multiplier at time t *is* the observed/expected inflation of a leg
    // served now, and a non-zero loss rate counts as a lost leg. The
    // hysteretic demotion latch then drives gray/recovered events exactly
    // like the up-mask diff drives down/up events.
    for (std::size_t i = 0; i < up_mask_.size(); ++i) {
      health_.record_leg(i, 1.0, gray_plan_.latency_multiplier(i, t));
      if (gray_plan_.loss_prob(i, t) > 0.0) health_.record_loss(i);
      const bool gray = health_.demoted(i);
      if (gray && gray_mask_[i] == 0) {
        gray_mask_[i] = 1;
        events_.push_back(Event{EventKind::kServerGray, i});
      } else if (!gray && gray_mask_[i] != 0) {
        gray_mask_[i] = 0;
        events_.push_back(Event{EventKind::kServerRecovered, i});
      }
    }
  }
  if (config_.churn_enabled) {
    const std::vector<bool> before = churn_.mask();
    churn_.step(config_.tick_seconds, churn_rng_);
    for (std::size_t j = 0; j < before.size(); ++j) {
      if (before[j] == churn_.online(j)) continue;
      events_.push_back(Event{
          before[j] ? EventKind::kUserLeave : EventKind::kUserJoin, j});
    }
  }
  // Stranded movers: still allocated to a live server they no longer
  // reach. (Users on dead servers are covered by kServerDown.)
  const model::ProblemInstance& inst = tracker_.instance();
  for (std::size_t j = 0; j < allocation_.size(); ++j) {
    if (!allocation_[j].allocated()) continue;
    const std::size_t server = allocation_[j].server;
    if (up_mask_[server] == 0) continue;
    const auto& covering = inst.covering_servers(j);
    if (!std::binary_search(covering.begin(), covering.end(), server)) {
      events_.push_back(Event{EventKind::kUserStranded, j});
    }
  }
  if (config_.sigma_refresh_period_ticks > 0 &&
      tick_ % config_.sigma_refresh_period_ticks == 0) {
    events_.push_back(Event{EventKind::kSigmaRefresh, 0});
  }
}

void ServeController::apply_bookkeeping(const Event& event) {
  switch (event.kind) {
    case EventKind::kServerDown:
      for (core::ChannelSlot& slot : allocation_) {
        if (slot.allocated() && slot.server == event.subject) {
          slot = core::kUnallocated;
        }
      }
      sigma_clean_ = false;  // replicas on the dead server are gone
      equilibrium_clean_ = false;
      break;
    case EventKind::kServerUp:
      sigma_clean_ = false;  // returned capacity is unexploited
      equilibrium_clean_ = false;
      break;
    case EventKind::kUserLeave:
    case EventKind::kUserStranded:
      allocation_[event.subject] = core::kUnallocated;
      equilibrium_clean_ = false;
      break;
    case EventKind::kUserJoin:
      equilibrium_clean_ = false;
      break;
    case EventKind::kSigmaRefresh:
      sigma_clean_ = false;
      break;
    case EventKind::kServerGray:
      // The server still holds its replicas, but every leg through it now
      // pays the inflation — sigma should route around it.
      sigma_clean_ = false;
      break;
    case EventKind::kServerRecovered:
      sigma_clean_ = false;  // readmitted capacity is unexploited
      break;
  }
}

void ServeController::dispatch_repairs(const Event& event,
                                       TickReport& report) {
  bool wants_equilibrium = false;
  bool wants_sigma = false;
  switch (event.kind) {
    case EventKind::kServerDown:
    case EventKind::kServerUp:
      wants_equilibrium = true;
      wants_sigma = true;
      break;
    case EventKind::kUserLeave:
    case EventKind::kUserJoin:
    case EventKind::kUserStranded:
      wants_equilibrium = true;
      break;
    case EventKind::kSigmaRefresh:
      wants_sigma = true;
      break;
    case EventKind::kServerGray:
    case EventKind::kServerRecovered:
      // Gray transitions get the same budgeted sigma heal a crash gets;
      // the allocation plane is untouched (the server is still serving).
      wants_sigma = true;
      break;
  }
  if (breaker_open_ && !half_open_) {
    // Cooling down: bank the work instead of running it.
    if (wants_equilibrium) enqueue_repair(RepairKind::kEquilibrium, 0, report);
    if (wants_sigma) enqueue_repair(RepairKind::kSigma, 0, report);
    return;
  }
  if (wants_equilibrium && !run_equilibrium_repair(report)) {
    enqueue_repair(RepairKind::kEquilibrium, 0, report);
  }
  if (wants_sigma && !(breaker_open_ && !half_open_) &&
      !run_sigma_repair(report)) {
    enqueue_repair(RepairKind::kSigma, 0, report);
  }
}

void ServeController::build_candidates() {
  const model::ProblemInstance& inst = tracker_.instance();
  candidates_.resize(inst.user_count());
  for (std::size_t j = 0; j < candidates_.size(); ++j) {
    candidates_[j].clear();
    if (!user_online(j)) continue;
    for (const std::size_t i : inst.covering_servers(j)) {
      if (up_mask_[i] != 0) candidates_[j].push_back(i);
    }
  }
}

bool ServeController::run_equilibrium_repair(TickReport& report) {
  const model::ProblemInstance& inst = tracker_.instance();
  build_candidates();
  core::GameOptions options;
  options.rule = config_.repair_rule;
  options.max_rounds = config_.repair_rounds_per_event;
  options.budgeted = true;
  options.threads = config_.solver_threads;
  options.candidate_servers = &candidates_;
  core::IddeUGame game(inst, options);
  const core::AllocationProfile before = allocation_;
  core::GameResult result = game.run_from(before);
  ++status_.repairs_total;
  ++report.repairs;
  status_.repair_rounds_total += result.rounds;
  status_.repair_moves_total += result.moves;
  report.repair_rounds += result.rounds;
  IDDE_OBS_HISTOGRAM("serve.repair_rounds", result.rounds);

  if (result.moves >= config_.watchdog_suspect_moves && !result.converged) {
    // Suspiciously busy and still not done — cycling dynamics look
    // exactly like this. The potential (Eq. 13) is the arbiter, but only
    // *strict descent* convicts: the heterogeneous-gain game is not an
    // exact potential game, so honest budget-capped repairs occasionally
    // leave the potential flat or slightly perturbed.
    ++status_.potential_checks;
    const double potential_before = core::potential(inst, before);
    const double potential_after =
        core::potential(inst, result.allocation);
    if (potential_after < potential_before - 1e-9) {
      ++status_.watchdog_strikes;
      ++strikes_;
      equilibrium_clean_ = false;
      IDDE_OBS_COUNT("serve.watchdog_strikes_total", 1);
      // The repair's moves are bogus: discard them (allocation_ stays at
      // `before`). A strike in the half-open probe re-trips immediately.
      if (half_open_ || strikes_ >= config_.watchdog_strike_limit) {
        trip_breaker();
      }
      return false;
    }
  }
  allocation_ = std::move(result.allocation);
  if (!result.converged) {
    equilibrium_clean_ = false;
    return false;
  }
  equilibrium_clean_ = true;
  strikes_ = 0;
  if (breaker_open_) {
    breaker_open_ = false;
    half_open_ = false;
    cooldown_left_ = 0;
  }
  maybe_update_lkg();
  return true;
}

bool ServeController::run_sigma_repair(TickReport& report) {
  const model::ProblemInstance& inst = tracker_.instance();
  const core::DeliveryProfile sigma = materialize_sigma();
  core::RepairPlanner planner(inst);
  const std::size_t budget = config_.repair_placements_per_event;
  // With an active gray plane, demoted servers are excluded from the heal
  // exactly like dead ones: new placements avoid them and their replicas
  // stop counting as coverage. The mask itself is (up && !gray).
  const std::vector<std::uint8_t>* mask = &up_mask_;
  std::vector<std::uint8_t> healthy;
  if (!gray_plan_.inert()) {
    healthy.resize(up_mask_.size());
    for (std::size_t i = 0; i < up_mask_.size(); ++i) {
      healthy[i] =
          static_cast<std::uint8_t>(up_mask_[i] != 0 && gray_mask_[i] == 0);
    }
    mask = &healthy;
  }
  core::RepairResult result =
      planner.replan(allocation_, sigma, *mask, {}, true, budget);
  ++status_.repairs_total;
  ++report.repairs;
  extract_sigma(result.delivery);
  // Exhausting the placement budget means the lazy greedy may still hold
  // profitable candidates — another pass is owed.
  sigma_clean_ = result.repair_placements < budget;
  if (sigma_clean_) maybe_update_lkg();
  return sigma_clean_;
}

void ServeController::enqueue_repair(RepairKind kind, std::size_t attempts,
                                     TickReport& report) {
  if (attempts > 0 && !retry_.try_spend_retry()) {
    // Retry budget exhausted: the continuation is dropped; the system
    // stays degraded until a fresh event funds another attempt.
    return;
  }
  if (backlog_.size() >= config_.backlog_capacity) {
    // Deadline-aware shedding: the queued task nearest to expiry has the
    // least remaining chance of running in time — drop it.
    const auto victim = std::min_element(
        backlog_.begin(), backlog_.end(),
        [](const RepairTask& a, const RepairTask& b) {
          return a.deadline_tick < b.deadline_tick;
        });
    backlog_.erase(victim);
    ++status_.shed_total;
    ++report.shed;
  }
  backlog_.push_back(RepairTask{
      kind, tick_ + config_.backlog_deadline_ticks, attempts});
}

void ServeController::drain_backlog(TickReport& report) {
  if (breaker_open_ && !half_open_) return;  // cooling down
  std::size_t drained = 0;
  while (!backlog_.empty() && drained < config_.backlog_drain_per_tick) {
    const RepairTask task = backlog_.front();
    backlog_.pop_front();
    if (task.deadline_tick < tick_) {
      // Expired in the queue: shedding is free, does not consume drain
      // budget.
      ++status_.shed_total;
      ++report.shed;
      continue;
    }
    ++drained;
    const bool healed = task.kind == RepairKind::kEquilibrium
                            ? run_equilibrium_repair(report)
                            : run_sigma_repair(report);
    if (!healed) {
      enqueue_repair(task.kind, task.attempts + 1, report);
      if (breaker_open_ && !half_open_) break;  // tripped mid-drain
    }
  }
}

void ServeController::trip_breaker() {
  breaker_open_ = true;
  half_open_ = false;
  cooldown_left_ = std::max<std::size_t>(1, config_.watchdog_cooldown_ticks);
  strikes_ = 0;
  ++status_.breaker_trips;
  IDDE_OBS_COUNT("serve.breaker_trips_total", 1);
  restore_lkg();
}

void ServeController::restore_lkg() {
  ++status_.lkg_restores;
  const model::ProblemInstance& inst = tracker_.instance();
  allocation_ = lkg_allocation_;
  // The LKG was recorded against a possibly different world — sanitise:
  // offline users, dead servers and out-of-reach slots drop to cloud.
  for (std::size_t j = 0; j < allocation_.size(); ++j) {
    if (!allocation_[j].allocated()) continue;
    const std::size_t server = allocation_[j].server;
    const auto& covering = inst.covering_servers(j);
    if (!user_online(j) || up_mask_[server] == 0 ||
        !std::binary_search(covering.begin(), covering.end(), server)) {
      allocation_[j] = core::kUnallocated;
    }
  }
  core::DeliveryProfile profile(inst);
  for (std::size_t idx = 0; idx < lkg_sigma_server_.size(); ++idx) {
    const std::size_t server = lkg_sigma_server_[idx];
    const std::size_t item = lkg_sigma_item_[idx];
    if (up_mask_[server] != 0 && profile.can_place(server, item)) {
      profile.place(server, item);
    }
  }
  extract_sigma(profile);
  // A sanitised fallback is valid but not an equilibrium for the current
  // world; both planes stay dirty until honest repairs re-converge.
  equilibrium_clean_ = false;
  sigma_clean_ = false;
}

void ServeController::maybe_update_lkg() {
  if (!equilibrium_clean_ || !sigma_clean_ || breaker_open_) return;
  lkg_allocation_ = allocation_;
  lkg_sigma_server_ = sigma_server_;
  lkg_sigma_item_ = sigma_item_;
}

void ServeController::extract_sigma(const core::DeliveryProfile& delivery) {
  sigma_server_.clear();
  sigma_item_.clear();
  for (std::size_t k = 0; k < base_.data_count(); ++k) {
    for (const std::size_t host : delivery.hosts(k)) {
      sigma_server_.push_back(host);
      sigma_item_.push_back(k);
    }
  }
  sigma_free_mb_.resize(base_.server_count());
  for (std::size_t i = 0; i < base_.server_count(); ++i) {
    sigma_free_mb_[i] = delivery.free_mb(i);
  }
}

core::DeliveryProfile ServeController::materialize_sigma() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(sigma_server_.size());
  for (std::size_t idx = 0; idx < sigma_server_.size(); ++idx) {
    pairs.emplace_back(sigma_server_[idx], sigma_item_[idx]);
  }
  return core::DeliveryProfile::restore(tracker_.instance(), pairs,
                                        sigma_free_mb_);
}

bool ServeController::user_online(std::size_t user) const {
  return !config_.churn_enabled || churn_.online(user);
}

void ServeController::fold_tick_hash() {
  std::uint64_t hash = trajectory_hash_;
  hash = fnv1a_fold(hash, tick_);
  for (const Event& event : events_) {
    hash = fnv1a_fold(hash, static_cast<std::uint64_t>(event.kind));
    hash = fnv1a_fold(hash, event.subject);
  }
  for (const core::ChannelSlot& slot : allocation_) {
    hash = fnv1a_fold(hash, slot.server);
    hash = fnv1a_fold(hash, slot.channel);
  }
  for (std::size_t idx = 0; idx < sigma_server_.size(); ++idx) {
    hash = fnv1a_fold(hash, sigma_server_[idx]);
    hash = fnv1a_fold(hash, sigma_item_[idx]);
  }
  for (const double free : sigma_free_mb_) {
    hash = fnv1a_fold(hash, std::bit_cast<std::uint64_t>(free));
  }
  hash = fnv1a_fold(hash, backlog_.size());
  hash = fnv1a_fold(hash,
                    static_cast<std::uint64_t>(breaker_open_ ? 1 : 0) |
                        (half_open_ ? 2 : 0) |
                        (equilibrium_clean_ ? 4 : 0) |
                        (sigma_clean_ ? 8 : 0));
  hash = fnv1a_fold(hash, strikes_);
  hash = fnv1a_fold(hash, cooldown_left_);
  // Gated on plan activity so inert-config trajectories keep their
  // pre-gray hashes bit-identically.
  if (!gray_plan_.inert()) {
    for (const std::uint8_t gray : gray_mask_) {
      hash = fnv1a_fold(hash, gray);
    }
  }
  trajectory_hash_ = hash;
}

std::uint64_t ServeController::guard_hash() const {
  std::uint64_t hash = kFnvOffsetBasis;
  hash = fnv1a_fold(hash, seed_);
  hash = fnv1a_fold(hash, base_.user_count());
  hash = fnv1a_fold(hash, base_.server_count());
  hash = fnv1a_fold(hash, base_.data_count());
  hash = fnv1a_fold(hash, std::bit_cast<std::uint64_t>(config_.tick_seconds));
  hash = fnv1a_fold(hash, static_cast<std::uint64_t>(config_.repair_rule));
  hash = fnv1a_fold(hash, config_.repair_rounds_per_event);
  hash = fnv1a_fold(hash, config_.repair_placements_per_event);
  hash = fnv1a_fold(hash, config_.backlog_capacity);
  hash = fnv1a_fold(hash, config_.backlog_deadline_ticks);
  hash = fnv1a_fold(hash, config_.backlog_drain_per_tick);
  hash = fnv1a_fold(hash, config_.watchdog_suspect_moves);
  hash = fnv1a_fold(hash, config_.watchdog_strike_limit);
  hash = fnv1a_fold(hash, config_.watchdog_cooldown_ticks);
  hash = fnv1a_fold(hash, config_.sigma_refresh_period_ticks);
  hash = fnv1a_fold(hash, config_.flash_failure_tick);
  hash = fnv1a_fold(hash, config_.flash_failure_duration_ticks);
  hash = fnv1a_fold(hash, config_.churn_enabled ? 1 : 0);
  // Every event-source rate shapes the trajectory, so a checkpoint taken
  // under one fault/churn/mobility configuration must not restore into
  // another — the plans are regenerated from config on restore and would
  // silently diverge.
  const auto fold_bits = [&hash](double value) {
    hash = fnv1a_fold(hash, std::bit_cast<std::uint64_t>(value));
  };
  fold_bits(config_.faults.horizon_s);
  fold_bits(config_.faults.server_mtbf_s);
  fold_bits(config_.faults.server_mttr_s);
  fold_bits(config_.faults.link_mtbf_s);
  fold_bits(config_.faults.link_mttr_s);
  fold_bits(config_.faults.cloud_mtbf_s);
  fold_bits(config_.faults.cloud_mttr_s);
  fold_bits(config_.faults.replica_corruption_prob);
  fold_bits(config_.churn.arrival_rate_hz);
  fold_bits(config_.churn.mean_session_s);
  fold_bits(config_.churn.initial_online_fraction);
  fold_bits(config_.mobility.min_speed_mps);
  fold_bits(config_.mobility.max_speed_mps);
  fold_bits(config_.mobility.pause_seconds);
  fold_bits(config_.flash_failure_fraction);
  fold_bits(config_.degradation.horizon_s);
  fold_bits(config_.degradation.gray_fraction);
  fold_bits(config_.degradation.peak_multiplier_min);
  fold_bits(config_.degradation.peak_multiplier_max);
  fold_bits(config_.degradation.loss_prob_max);
  fold_bits(config_.degradation.onset_latest_s);
  fold_bits(config_.degradation.ramp_weight);
  fold_bits(config_.degradation.plateau_weight);
  fold_bits(config_.degradation.flap_weight);
  fold_bits(config_.degradation.ramp_s);
  hash = fnv1a_fold(hash, config_.degradation.ramp_steps);
  fold_bits(config_.degradation.plateau_s);
  fold_bits(config_.degradation.flap_period_s);
  fold_bits(config_.health.ewma_alpha);
  fold_bits(config_.health.demote_score);
  fold_bits(config_.health.recover_score);
  fold_bits(config_.health.loss_weight);
  hash = fnv1a_fold(hash, config_.health.min_samples);
  return hash;
}

std::string ServeController::checkpoint(int indent) const {
  util::JsonObject root;
  root.emplace("guard", u64_to_hex(guard_hash()));
  root.emplace("tick", u64_to_hex(tick_));
  root.emplace("hash", u64_to_hex(trajectory_hash_));

  util::JsonObject rng;
  rng.emplace("walk", rng_to_json(walk_rng_));
  rng.emplace("churn", rng_to_json(churn_rng_));
  rng.emplace("solve", rng_to_json(solve_rng_));
  root.emplace("rng", std::move(rng));

  util::JsonObject mobility;
  util::JsonArray positions;
  positions.reserve(mobility_.positions().size() * 2);
  for (const geo::Point& p : mobility_.positions()) {
    positions.push_back(double_to_bits(p.x));
    positions.push_back(double_to_bits(p.y));
  }
  mobility.emplace("positions", std::move(positions));
  util::JsonArray walks;
  walks.reserve(mobility_.walks().size() * 4);
  for (const dynamic::RandomWaypointModel::WalkState& walk :
       mobility_.walks()) {
    walks.push_back(double_to_bits(walk.waypoint.x));
    walks.push_back(double_to_bits(walk.waypoint.y));
    walks.push_back(double_to_bits(walk.speed_mps));
    walks.push_back(double_to_bits(walk.pause_left_s));
  }
  mobility.emplace("walks", std::move(walks));
  mobility.emplace("distance", double_to_bits(mobility_.total_distance_m()));
  root.emplace("mobility", std::move(mobility));

  std::string churn_mask(churn_.user_count(), '0');
  for (std::size_t j = 0; j < churn_.user_count(); ++j) {
    if (churn_.online(j)) churn_mask[j] = '1';
  }
  root.emplace("churn_mask", std::move(churn_mask));

  // Health plane (gray failures). The degradation plan itself is derived
  // (regenerated from config and seed); only the tracker's evidence and
  // the demotion mask are state.
  util::JsonObject health;
  util::JsonArray health_ewma;
  util::JsonArray health_legs;
  util::JsonArray health_losses;
  std::string demoted_mask(base_.server_count(), '0');
  std::string gray_mask(base_.server_count(), '0');
  for (std::size_t i = 0; i < base_.server_count(); ++i) {
    const core::ServerHealth& h = health_.state()[i];
    health_ewma.push_back(double_to_bits(h.ewma_inflation));
    health_legs.emplace_back(u64_to_hex(h.legs));
    health_losses.emplace_back(u64_to_hex(h.losses));
    if (h.demoted) demoted_mask[i] = '1';
    if (gray_mask_[i] != 0) gray_mask[i] = '1';
  }
  health.emplace("ewma", std::move(health_ewma));
  health.emplace("legs", std::move(health_legs));
  health.emplace("losses", std::move(health_losses));
  health.emplace("demoted", std::move(demoted_mask));
  health.emplace("gray_mask", std::move(gray_mask));
  root.emplace("health", std::move(health));

  util::JsonArray alloc_server;
  util::JsonArray alloc_channel;
  for (const core::ChannelSlot& slot : allocation_) {
    alloc_server.emplace_back(u64_to_hex(slot.server));
    alloc_channel.emplace_back(u64_to_hex(slot.channel));
  }
  root.emplace("alloc_server", std::move(alloc_server));
  root.emplace("alloc_channel", std::move(alloc_channel));

  root.emplace("sigma_server", indices_to_json(sigma_server_));
  root.emplace("sigma_item", indices_to_json(sigma_item_));
  root.emplace("sigma_free_mb", doubles_to_json(sigma_free_mb_));

  util::JsonArray lkg_alloc_server;
  util::JsonArray lkg_alloc_channel;
  for (const core::ChannelSlot& slot : lkg_allocation_) {
    lkg_alloc_server.emplace_back(u64_to_hex(slot.server));
    lkg_alloc_channel.emplace_back(u64_to_hex(slot.channel));
  }
  root.emplace("lkg_alloc_server", std::move(lkg_alloc_server));
  root.emplace("lkg_alloc_channel", std::move(lkg_alloc_channel));
  root.emplace("lkg_sigma_server", indices_to_json(lkg_sigma_server_));
  root.emplace("lkg_sigma_item", indices_to_json(lkg_sigma_item_));

  util::JsonArray backlog;
  backlog.reserve(backlog_.size() * 3);
  for (const RepairTask& task : backlog_) {
    backlog.emplace_back(u64_to_hex(static_cast<std::uint64_t>(task.kind)));
    backlog.emplace_back(u64_to_hex(task.deadline_tick));
    backlog.emplace_back(u64_to_hex(task.attempts));
  }
  root.emplace("backlog", std::move(backlog));

  util::JsonObject watchdog;
  watchdog.emplace("strikes", u64_to_hex(strikes_));
  watchdog.emplace("cooldown_left", u64_to_hex(cooldown_left_));
  watchdog.emplace("breaker_open", breaker_open_);
  watchdog.emplace("half_open", half_open_);
  watchdog.emplace("equilibrium_clean", equilibrium_clean_);
  watchdog.emplace("sigma_clean", sigma_clean_);
  root.emplace("watchdog", std::move(watchdog));

  util::JsonObject retry;
  retry.emplace("tokens", double_to_bits(retry_.tokens()));
  retry.emplace("denied", u64_to_hex(retry_.denied()));
  root.emplace("retry", std::move(retry));

  util::JsonObject counters;
  counters.emplace("ticks", u64_to_hex(status_.ticks));
  counters.emplace("events_total", u64_to_hex(status_.events_total));
  counters.emplace("repairs_total", u64_to_hex(status_.repairs_total));
  counters.emplace("repair_rounds_total",
                   u64_to_hex(status_.repair_rounds_total));
  counters.emplace("repair_moves_total",
                   u64_to_hex(status_.repair_moves_total));
  counters.emplace("degraded_ticks", u64_to_hex(status_.degraded_ticks));
  counters.emplace("backlog_peak", u64_to_hex(status_.backlog_peak));
  counters.emplace("shed_total", u64_to_hex(status_.shed_total));
  counters.emplace("potential_checks", u64_to_hex(status_.potential_checks));
  counters.emplace("watchdog_strikes", u64_to_hex(status_.watchdog_strikes));
  counters.emplace("breaker_trips", u64_to_hex(status_.breaker_trips));
  counters.emplace("lkg_restores", u64_to_hex(status_.lkg_restores));
  counters.emplace("recovery_ticks", u64_to_hex(status_.recovery_ticks));
  root.emplace("counters", std::move(counters));

  return seal_checkpoint(util::Json(std::move(root)), indent);
}

void ServeController::validate_sigma(
    const std::vector<std::size_t>& servers,
    const std::vector<std::size_t>& items) const {
  if (servers.size() != items.size()) {
    throw util::JsonError("checkpoint: sigma server/item length mismatch");
  }
  // Mirror DeliveryProfile::place feasibility exactly (same integer-KB
  // ledger, in replay order) so a valid checkpoint never trips internal
  // asserts and a hostile one fails structurally here.
  std::vector<std::int64_t> free_kb;
  free_kb.reserve(base_.server_count());
  for (const model::EdgeServer& server : base_.servers()) {
    free_kb.push_back(core::mb_to_kb(server.storage_mb));
  }
  std::vector<std::uint8_t> placed(
      base_.server_count() * base_.data_count(), 0);
  for (std::size_t idx = 0; idx < servers.size(); ++idx) {
    const std::size_t server = servers[idx];
    const std::size_t item = items[idx];
    std::uint8_t& flag = placed[server * base_.data_count() + item];
    if (flag != 0) {
      throw util::JsonError(util::format(
          "checkpoint: duplicate sigma placement ({}, {})", server, item));
    }
    const std::int64_t size_kb = core::mb_to_kb(base_.data(item).size_mb);
    if (size_kb > free_kb[server]) {
      throw util::JsonError(util::format(
          "checkpoint: sigma placement ({}, {}) exceeds server storage",
          server, item));
    }
    flag = 1;
    free_kb[server] -= size_kb;
  }
}

void ServeController::restore(std::string_view checkpoint_text) {
  const util::Json payload = open_checkpoint(checkpoint_text);
  if (hex_to_u64(payload.at("guard").as_string(), "checkpoint guard") !=
      guard_hash()) {
    throw util::JsonError(
        "checkpoint: config/seed mismatch (guard hash differs)");
  }
  const std::size_t user_count = base_.user_count();
  const std::size_t server_count = base_.server_count();
  const std::size_t channels = base_.radio_env().channels_per_server;

  tick_ = hex_to_u64(payload.at("tick").as_string(), "checkpoint tick");
  trajectory_hash_ =
      hex_to_u64(payload.at("hash").as_string(), "checkpoint hash");

  const util::Json& rng = payload.at("rng");
  rng_from_json(rng.at("walk"), "checkpoint rng.walk", walk_rng_);
  rng_from_json(rng.at("churn"), "checkpoint rng.churn", churn_rng_);
  rng_from_json(rng.at("solve"), "checkpoint rng.solve", solve_rng_);

  const util::Json& mobility = payload.at("mobility");
  const std::vector<double> flat_positions =
      doubles_from_json(mobility.at("positions"), "checkpoint positions");
  const std::vector<double> flat_walks =
      doubles_from_json(mobility.at("walks"), "checkpoint walks");
  if (flat_positions.size() != user_count * 2 ||
      flat_walks.size() != user_count * 4) {
    throw util::JsonError("checkpoint: mobility state size mismatch");
  }
  std::vector<geo::Point> positions(user_count);
  std::vector<dynamic::RandomWaypointModel::WalkState> walks(user_count);
  for (std::size_t j = 0; j < user_count; ++j) {
    positions[j] = geo::Point{flat_positions[j * 2], flat_positions[j * 2 + 1]};
    walks[j].waypoint = geo::Point{flat_walks[j * 4], flat_walks[j * 4 + 1]};
    walks[j].speed_mps = flat_walks[j * 4 + 2];
    walks[j].pause_left_s = flat_walks[j * 4 + 3];
  }
  const double distance =
      bits_to_double(mobility.at("distance"), "checkpoint distance");
  if (!(distance >= 0.0)) {
    throw util::JsonError("checkpoint: negative walk distance");
  }
  mobility_.restore_state(std::move(positions), std::move(walks), distance);
  tracker_.update(mobility_.positions());

  const std::string& mask_text = payload.at("churn_mask").as_string();
  if (mask_text.size() != user_count) {
    throw util::JsonError("checkpoint: churn mask size mismatch");
  }
  std::vector<bool> mask(user_count);
  for (std::size_t j = 0; j < user_count; ++j) {
    if (mask_text[j] != '0' && mask_text[j] != '1') {
      throw util::JsonError("checkpoint: churn mask must be 0/1");
    }
    mask[j] = mask_text[j] == '1';
  }
  churn_.restore_mask(std::move(mask));

  const util::Json& health = payload.at("health");
  const std::vector<double> health_ewma =
      doubles_from_json(health.at("ewma"), "checkpoint health ewma");
  const std::vector<std::size_t> health_legs = indices_from_json(
      health.at("legs"), kNoBound, "checkpoint health legs");
  const std::vector<std::size_t> health_losses = indices_from_json(
      health.at("losses"), kNoBound, "checkpoint health losses");
  const std::string& demoted_text = health.at("demoted").as_string();
  const std::string& gray_text = health.at("gray_mask").as_string();
  if (health_ewma.size() != server_count ||
      health_legs.size() != server_count ||
      health_losses.size() != server_count ||
      demoted_text.size() != server_count ||
      gray_text.size() != server_count) {
    throw util::JsonError("checkpoint: health state size mismatch");
  }
  std::vector<core::ServerHealth> health_state(server_count);
  for (std::size_t i = 0; i < server_count; ++i) {
    if (!std::isfinite(health_ewma[i]) || health_ewma[i] < 0.0) {
      throw util::JsonError(util::format(
          "checkpoint: health ewma out of range for server {}", i));
    }
    if ((demoted_text[i] != '0' && demoted_text[i] != '1') ||
        (gray_text[i] != '0' && gray_text[i] != '1')) {
      throw util::JsonError("checkpoint: health masks must be 0/1");
    }
    health_state[i].ewma_inflation = health_ewma[i];
    health_state[i].legs = health_legs[i];
    health_state[i].losses = health_losses[i];
    health_state[i].demoted = demoted_text[i] == '1';
  }
  health_.restore_state(std::move(health_state));
  gray_mask_.resize(server_count);
  for (std::size_t i = 0; i < server_count; ++i) {
    gray_mask_[i] = static_cast<std::uint8_t>(gray_text[i] == '1');
  }

  // Derived availability is regenerated, never stored: the plan is a pure
  // function of (config, seed), so the mask at the restored tick matches.
  plan_.server_up_mask(server_count,
                       static_cast<double>(tick_) * config_.tick_seconds,
                       up_mask_);
  prev_up_mask_ = up_mask_;

  const auto read_allocation =
      [&](std::string_view server_key, std::string_view channel_key,
          std::string_view what) {
        const std::vector<std::size_t> servers = indices_from_json(
            payload.at(server_key), kNoBound, what);
        const std::vector<std::size_t> slots = indices_from_json(
            payload.at(channel_key), kNoBound, what);
        if (servers.size() != user_count || slots.size() != user_count) {
          throw util::JsonError(
              util::format("{}: expected {} users", what, user_count));
        }
        core::AllocationProfile profile(user_count, core::kUnallocated);
        for (std::size_t j = 0; j < user_count; ++j) {
          if (servers[j] == core::ChannelSlot::kNone) continue;
          if (servers[j] >= server_count || slots[j] >= channels) {
            throw util::JsonError(
                util::format("{}: slot out of range for user {}", what, j));
          }
          profile[j] = core::ChannelSlot{servers[j], slots[j]};
        }
        return profile;
      };
  allocation_ = read_allocation("alloc_server", "alloc_channel",
                                "checkpoint allocation");
  lkg_allocation_ = read_allocation("lkg_alloc_server", "lkg_alloc_channel",
                                    "checkpoint lkg allocation");

  sigma_server_ = indices_from_json(payload.at("sigma_server"), server_count,
                                    "checkpoint sigma server");
  sigma_item_ = indices_from_json(payload.at("sigma_item"),
                                  base_.data_count(), "checkpoint sigma item");
  validate_sigma(sigma_server_, sigma_item_);
  sigma_free_mb_ = doubles_from_json(payload.at("sigma_free_mb"),
                                     "checkpoint sigma free_mb");
  if (sigma_free_mb_.size() != server_count) {
    throw util::JsonError("checkpoint: sigma free_mb size mismatch");
  }
  for (std::size_t i = 0; i < server_count; ++i) {
    // Capacity bound in the same KB quantization the ledger uses — the
    // rounded capacity can sit up to half a KB above storage_mb.
    const double capacity_mb =
        static_cast<double>(core::mb_to_kb(base_.server(i).storage_mb)) /
        1024.0;
    if (!std::isfinite(sigma_free_mb_[i]) ||
        sigma_free_mb_[i] < -1e-6 ||
        sigma_free_mb_[i] > capacity_mb + 1e-6) {
      throw util::JsonError(util::format(
          "checkpoint: sigma free_mb out of range for server {}", i));
    }
  }
  lkg_sigma_server_ = indices_from_json(
      payload.at("lkg_sigma_server"), server_count, "checkpoint lkg server");
  lkg_sigma_item_ =
      indices_from_json(payload.at("lkg_sigma_item"), base_.data_count(),
                        "checkpoint lkg item");
  validate_sigma(lkg_sigma_server_, lkg_sigma_item_);

  const util::JsonArray& backlog = payload.at("backlog").as_array();
  if (backlog.size() % 3 != 0) {
    throw util::JsonError("checkpoint: backlog must be (kind, deadline, "
                          "attempts) triples");
  }
  backlog_.clear();
  for (std::size_t idx = 0; idx < backlog.size(); idx += 3) {
    const std::uint64_t kind =
        hex_to_u64(backlog[idx].as_string(), "checkpoint backlog kind");
    if (kind > static_cast<std::uint64_t>(RepairKind::kSigma)) {
      throw util::JsonError("checkpoint: unknown backlog repair kind");
    }
    backlog_.push_back(RepairTask{
        static_cast<RepairKind>(kind),
        static_cast<std::size_t>(hex_to_u64(backlog[idx + 1].as_string(),
                                            "checkpoint backlog deadline")),
        static_cast<std::size_t>(hex_to_u64(backlog[idx + 2].as_string(),
                                            "checkpoint backlog attempts"))});
  }
  if (backlog_.size() > config_.backlog_capacity) {
    throw util::JsonError("checkpoint: backlog exceeds configured capacity");
  }

  const util::Json& watchdog = payload.at("watchdog");
  strikes_ = hex_to_u64(watchdog.at("strikes").as_string(),
                        "checkpoint strikes");
  cooldown_left_ = hex_to_u64(watchdog.at("cooldown_left").as_string(),
                              "checkpoint cooldown");
  breaker_open_ = watchdog.at("breaker_open").as_bool();
  half_open_ = watchdog.at("half_open").as_bool();
  equilibrium_clean_ = watchdog.at("equilibrium_clean").as_bool();
  sigma_clean_ = watchdog.at("sigma_clean").as_bool();

  const util::Json& retry = payload.at("retry");
  const double tokens = bits_to_double(retry.at("tokens"),
                                       "checkpoint retry tokens");
  if (!std::isfinite(tokens) || tokens < 0.0) {
    throw util::JsonError("checkpoint: retry tokens out of range");
  }
  retry_.restore(tokens, hex_to_u64(retry.at("denied").as_string(),
                                    "checkpoint retry denied"));

  const util::Json& counters = payload.at("counters");
  const auto counter = [&](std::string_view key) {
    return static_cast<std::size_t>(
        hex_to_u64(counters.at(key).as_string(), key));
  };
  status_.ticks = counter("ticks");
  status_.events_total = counter("events_total");
  status_.repairs_total = counter("repairs_total");
  status_.repair_rounds_total = counter("repair_rounds_total");
  status_.repair_moves_total = counter("repair_moves_total");
  status_.degraded_ticks = counter("degraded_ticks");
  status_.backlog_peak = counter("backlog_peak");
  status_.shed_total = counter("shed_total");
  status_.potential_checks = counter("potential_checks");
  status_.watchdog_strikes = counter("watchdog_strikes");
  status_.breaker_trips = counter("breaker_trips");
  status_.lkg_restores = counter("lkg_restores");
  status_.recovery_ticks = counter("recovery_ticks");

  events_.clear();
}

}  // namespace idde::serve
