# Empty dependencies file for fig3_servers.
# This may be replaced when dependencies are built.
