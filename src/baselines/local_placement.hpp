// Per-server ("local") placement policies shared by the non-collaborative
// baselines. Each server fills its own reserved storage by the value of
// items to *its own* users, ignoring what neighbours store — the
// duplication-prone behaviour that edge-server collaboration avoids.
#pragma once

#include <cstddef>
#include <span>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::baselines {

struct LocalPlacementOptions {
  /// Normalise item value by size (value-per-MB) instead of absolute value.
  bool per_mb = true;
  /// Fraction of the demand signal each server observes; < 1 simulates the
  /// sample-average estimation of SAA. 1.0 = exact demand.
  double sample_fraction = 1.0;
};

/// Builds a delivery profile where every server greedily stores the items
/// most demanded by the users in `demand_users[i]` (e.g. covered users for
/// SAA/DUP-G, allocated users for CDP-like policies). Item value is
/// demand_count * cloud_latency (the local-hit saving), optionally per MB.
[[nodiscard]] core::DeliveryProfile local_demand_placement(
    const model::ProblemInstance& instance,
    std::span<const std::vector<std::size_t>> demand_users,
    const LocalPlacementOptions& options, util::Rng& rng);

}  // namespace idde::baselines
