file(REMOVE_RECURSE
  "CMakeFiles/fig6_density.dir/bench/fig6_density.cpp.o"
  "CMakeFiles/fig6_density.dir/bench/fig6_density.cpp.o.d"
  "bench/fig6_density"
  "bench/fig6_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
