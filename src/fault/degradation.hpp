// Gray-failure schedules: servers that degrade without dying.
//
// The binary FaultPlan models crash/recover — a server is either in the
// graph or not. Real edge storage mostly fails *partially*: a disk that
// slows to a crawl, an overloaded NIC dropping frames, a metastable
// brown-out that never trips a liveness probe. A DegradationPlan is the
// gray analogue of a FaultPlan: a pre-drawn, seed-reproducible schedule of
// per-server latency multipliers and loss rates, composable with a binary
// plan (the DES consumes both; a server can be slow *and* later crash).
//
// Trajectory shapes (drawn per gray server by weighted lottery):
//   slow ramp    multiplier climbs in steps from 1 to a peak, then holds —
//                the classic ageing-disk / filling-queue signature;
//   metastable   a plateau at the peak for a bounded interval, then full
//                recovery — brown-outs that fix themselves;
//   flapping     the multiplier alternates peak/healthy with a short
//                period — the breaker-hostile pattern.
//
// Determinism contract (same as FaultPlan): a plan is a pure function of
// (instance topology, DegradationProfile, seed); every per-server stream
// is forked by a fixed stream id, and the per-leg loss lottery is a
// stateless hash of (server, flow, attempt), so query order and thread
// count cannot change the schedule. An inert profile generates an inert
// plan, and every consumer short-circuits on `inert()` — the gray layer
// is zero-cost (bit-identical replay) when disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/instance.hpp"
#include "util/json.hpp"

namespace idde::fault {

/// Gray-failure process parameters. `gray_fraction` <= 0 disables the
/// whole layer (the inert profile).
struct DegradationProfile {
  /// Degradation is only scheduled in [0, horizon_s); everything is
  /// healthy afterwards.
  double horizon_s = 60.0;
  /// Expected fraction of servers drawn gray (independent per server).
  double gray_fraction = 0.0;
  /// Peak latency multiplier, drawn uniformly per gray server.
  double peak_multiplier_min = 3.0;
  double peak_multiplier_max = 8.0;
  /// Per-leg loss probability at the peak multiplier; intermediate
  /// segments scale it by their relative severity. 0 = slow but lossless.
  double loss_prob_max = 0.0;
  /// Onset time of the episode, drawn uniformly in [0, onset_latest_s].
  double onset_latest_s = 20.0;
  // Shape lottery weights (relative; all zero would be rejected).
  double ramp_weight = 1.0;
  double plateau_weight = 1.0;
  double flap_weight = 1.0;
  /// Slow ramp: the climb from 1 to the peak spans `ramp_s` in
  /// `ramp_steps` piecewise-constant steps, then holds to the horizon.
  double ramp_s = 20.0;
  std::size_t ramp_steps = 8;
  /// Metastable plateau: peak for `plateau_s`, then full recovery.
  double plateau_s = 15.0;
  /// Flapping: alternate peak / healthy with this full period.
  double flap_period_s = 4.0;

  /// True when no server can be drawn gray — the inert profile.
  [[nodiscard]] bool inert() const noexcept { return gray_fraction <= 0.0; }
};

/// One piecewise-constant slice of a server's gray trajectory. Half-open
/// [start_s, end_s); outside every segment the server is healthy
/// (multiplier 1, loss 0).
struct GraySegment {
  double start_s = 0.0;
  double end_s = 0.0;
  double latency_multiplier = 1.0;  ///< >= 1; service-rate divisor
  double loss_prob = 0.0;           ///< per-leg loss probability in [0, 1)
  friend bool operator==(const GraySegment&, const GraySegment&) = default;
};

class DegradationPlan {
 public:
  /// Default plan: every server healthy forever.
  DegradationPlan() = default;

  /// Draws a plan for `instance`'s servers from `profile`. Deterministic
  /// in (topology, profile, seed); an inert profile yields an inert plan.
  [[nodiscard]] static DegradationPlan generate(
      const model::ProblemInstance& instance,
      const DegradationProfile& profile, std::uint64_t seed);

  // Manual construction (tests and targeted what-if studies). Segments
  // must be added in increasing, non-overlapping order per server.
  void add_server_segment(std::size_t server, GraySegment segment);
  void set_horizon(double horizon_s);
  /// Seed of the stateless per-leg loss lottery (generate() sets it; set
  /// it explicitly for manual plans that use loss rates).
  void set_loss_seed(std::uint64_t seed) { loss_seed_ = seed; }

  /// True when the plan schedules nothing — consumers take their
  /// pre-gray fast path (bit-identical to a plan-less run).
  [[nodiscard]] bool inert() const noexcept;

  [[nodiscard]] double horizon_s() const noexcept { return horizon_s_; }
  [[nodiscard]] std::uint64_t loss_seed() const noexcept { return loss_seed_; }

  // Point queries. Servers without segments (or outside them) are healthy.
  [[nodiscard]] double latency_multiplier(std::size_t server, double t) const;
  [[nodiscard]] double loss_prob(std::size_t server, double t) const;

  /// Stateless per-leg loss lottery at the (server, t) loss rate: a lost
  /// leg transfers fully but fails its integrity check on completion.
  /// Pure function of (plan, server, flow_id, attempt) — order- and
  /// thread-independent, like FaultPlan::replica_corrupted.
  [[nodiscard]] bool leg_lost(std::size_t server, std::uint64_t flow_id,
                              std::size_t attempt, double t) const;

  /// Sorted unique times at which any server's (multiplier, loss) pair
  /// changes — the gray analogue of FaultPlan::edge_change_times().
  [[nodiscard]] const std::vector<double>& change_times() const noexcept {
    return changes_;
  }
  /// First gray change strictly after `t` (+inf when none).
  [[nodiscard]] double next_change_after(double t) const;

  /// Introspection for tests and reporting.
  [[nodiscard]] const std::vector<std::vector<GraySegment>>& server_segments()
      const noexcept {
    return segments_;
  }

  friend bool operator==(const DegradationPlan&,
                         const DegradationPlan&) = default;

 private:
  [[nodiscard]] const GraySegment* segment_at(std::size_t server,
                                              double t) const;

  double horizon_s_ = 0.0;
  std::vector<std::vector<GraySegment>> segments_;  // index = server id
  std::vector<double> changes_;                     // sorted unique
  std::uint64_t loss_seed_ = 0;
};

// Checkpoint IO. Format-tagged JSON; doubles are written at full
// round-trip precision so a reloaded plan replays bit-identically.
// Loaders validate structurally (tag, bounds against the instance,
// ordering, ranges) and throw util::JsonError on anything malformed —
// never an assert (fuzzed in tests/test_io_fuzz.cpp).
[[nodiscard]] util::Json degradation_to_json(const DegradationPlan& plan);
[[nodiscard]] DegradationPlan degradation_from_json(
    const model::ProblemInstance& instance, const util::Json& json);
[[nodiscard]] std::string degradation_to_string(const DegradationPlan& plan,
                                                int indent = -1);
[[nodiscard]] DegradationPlan degradation_from_string(
    const model::ProblemInstance& instance, const std::string& text);

}  // namespace idde::fault
