// Benchmark-approach tests: feasibility for all five approaches, behavioural
// contracts (delivery semantics, allocation policies), and determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/allocators.hpp"
#include "baselines/cdp.hpp"
#include "baselines/dup_g.hpp"
#include "baselines/idde_ip.hpp"
#include "baselines/local_placement.hpp"
#include "baselines/saa.hpp"
#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "core/validation.hpp"
#include "geo/point.hpp"
#include "model/instance_builder.hpp"
#include "sim/runner.hpp"
#include "util/timer.hpp"

namespace {

using namespace idde;
using model::InstanceParams;
using model::ProblemInstance;

InstanceParams small_params() {
  InstanceParams p;
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

TEST(NearestAllocation, PicksGeometricallyNearestServer) {
  const ProblemInstance inst = model::make_instance(small_params(), 1);
  const auto profile = baselines::nearest_allocation(inst);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!profile[j].allocated()) {
      EXPECT_TRUE(inst.covering_servers(j).empty());
      continue;
    }
    const double chosen = geo::distance_m(
        inst.server(profile[j].server).position, inst.user(j).position);
    for (const std::size_t i : inst.covering_servers(j)) {
      EXPECT_LE(chosen,
                geo::distance_m(inst.server(i).position, inst.user(j).position) +
                    1e-9);
    }
  }
}

TEST(NearestAllocation, LeastLoadedBalancesChannels) {
  const ProblemInstance inst = model::make_instance(small_params(), 2);
  const auto profile = baselines::nearest_allocation(inst);
  const std::size_t channels = inst.radio_env().channels_per_server;
  // Per-server channel loads must differ by at most 1 (round-robin-like).
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    std::vector<std::size_t> load(channels, 0);
    for (std::size_t j = 0; j < inst.user_count(); ++j) {
      if (profile[j].allocated() && profile[j].server == i) {
        ++load[profile[j].channel];
      }
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    EXPECT_LE(*hi - *lo, 1u) << "server " << i;
  }
}

TEST(RandomAllocation, StaysWithinCoverage) {
  const ProblemInstance inst = model::make_instance(small_params(), 3);
  util::Rng rng(3);
  const auto profile = baselines::random_allocation(inst, rng);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!profile[j].allocated()) continue;
    const auto& covering = inst.covering_servers(j);
    EXPECT_TRUE(std::binary_search(covering.begin(), covering.end(),
                                   profile[j].server));
  }
}

TEST(LocalPlacement, RespectsStorageAndDemand) {
  const ProblemInstance inst = model::make_instance(small_params(), 4);
  std::vector<std::vector<std::size_t>> demand(inst.server_count());
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    demand[i] = inst.covered_users(i);
  }
  util::Rng rng(4);
  const auto delivery = baselines::local_demand_placement(
      inst, demand, {.per_mb = true, .sample_fraction = 1.0}, rng);
  std::vector<double> used(inst.server_count(), 0.0);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : delivery.hosts(k)) {
      used[i] += inst.data(k).size_mb;
    }
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_LE(used[i], inst.server(i).storage_mb + 1e-9);
  }
}

TEST(LocalPlacement, NoDemandNoPlacement) {
  const ProblemInstance inst = model::make_instance(small_params(), 5);
  std::vector<std::vector<std::size_t>> demand(inst.server_count());
  util::Rng rng(5);
  const auto delivery = baselines::local_demand_placement(
      inst, demand, {.per_mb = true, .sample_fraction = 1.0}, rng);
  EXPECT_EQ(delivery.placement_count(), 0u);
}

// All five approaches produce feasible strategies on random instances.
class ApproachFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ApproachFeasibilityTest, ProducesValidStrategy) {
  const auto [approach_index, seed] = GetParam();
  const auto approaches = sim::make_paper_approaches(/*ip_budget_ms=*/30.0);
  const ProblemInstance inst = model::make_instance(small_params(), seed);
  util::Rng rng(seed ^ 0x1234);
  const core::Strategy strategy =
      approaches[static_cast<std::size_t>(approach_index)]->solve(inst, rng);
  EXPECT_TRUE(core::validate_strategy(inst, strategy).empty())
      << approaches[static_cast<std::size_t>(approach_index)]->name();
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, ApproachFeasibilityTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(10, 11, 12)));

TEST(Cdp, IsNonCollaborativeAndNamed) {
  const ProblemInstance inst = model::make_instance(small_params(), 20);
  util::Rng rng(20);
  const baselines::Cdp cdp;
  EXPECT_EQ(cdp.name(), "CDP");
  const core::Strategy s = cdp.solve(inst, rng);
  EXPECT_FALSE(s.collaborative_delivery);
  EXPECT_EQ(s.approach_name, "CDP");
}

TEST(DupG, IsNonCollaborative) {
  const ProblemInstance inst = model::make_instance(small_params(), 21);
  util::Rng rng(21);
  const core::Strategy s = baselines::DupG().solve(inst, rng);
  EXPECT_FALSE(s.collaborative_delivery);
}

TEST(DupG, AllocatesOnlyToCacheHoldingServers) {
  const ProblemInstance inst = model::make_instance(small_params(), 22);
  util::Rng rng(22);
  const core::Strategy s = baselines::DupG().solve(inst, rng);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (!s.allocation[j].allocated()) continue;
    bool holds = false;
    for (const std::size_t k : inst.requests().items_of(j)) {
      if (s.delivery.placed(s.allocation[j].server, k)) {
        holds = true;
        break;
      }
    }
    EXPECT_TRUE(holds) << "user " << j;
  }
}

TEST(DupG, MayLeaveUsersUnallocated) {
  // The hard cache-coupling typically strands some users — that is the
  // behaviour that costs DUP-G data rate in the comparison.
  std::size_t total_unallocated = 0;
  for (std::uint64_t seed = 23; seed < 27; ++seed) {
    const ProblemInstance inst = model::make_instance(small_params(), seed);
    util::Rng rng(seed);
    const core::Strategy s = baselines::DupG().solve(inst, rng);
    total_unallocated += inst.user_count() -
                         static_cast<std::size_t>(std::count_if(
                             s.allocation.begin(), s.allocation.end(),
                             [](const core::ChannelSlot& c) {
                               return c.allocated();
                             }));
  }
  EXPECT_GT(total_unallocated, 0u);
}

TEST(Saa, CollaborativeDeliveryFlagSet) {
  const ProblemInstance inst = model::make_instance(small_params(), 28);
  util::Rng rng(28);
  const core::Strategy s = baselines::Saa().solve(inst, rng);
  EXPECT_TRUE(s.collaborative_delivery);
}

TEST(Saa, SamplingChangesWithRngButStaysFeasible) {
  const ProblemInstance inst = model::make_instance(small_params(), 29);
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  const baselines::Saa saa(0.5);
  const core::Strategy a = saa.solve(inst, rng_a);
  const core::Strategy b = saa.solve(inst, rng_b);
  EXPECT_TRUE(core::validate_strategy(inst, a).empty());
  EXPECT_TRUE(core::validate_strategy(inst, b).empty());
}

TEST(IddeIp, RespectsEnvBudgetOverride) {
  ::setenv("IDDE_IP_BUDGET_MS", "12", 1);
  const baselines::IddeIp ip(500.0);
  EXPECT_DOUBLE_EQ(ip.budget_ms(), 12.0);
  ::unsetenv("IDDE_IP_BUDGET_MS");
  const baselines::IddeIp ip2(500.0);
  EXPECT_DOUBLE_EQ(ip2.budget_ms(), 500.0);
}

TEST(IddeIp, SolveTimeTracksBudget) {
  ::unsetenv("IDDE_IP_BUDGET_MS");
  const ProblemInstance inst = model::make_instance(small_params(), 30);
  const baselines::IddeIp ip(50.0);
  util::Rng rng(30);
  util::Stopwatch sw;
  (void)ip.solve(inst, rng);
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 40.0);
  EXPECT_LE(ms, 500.0);  // generous upper bound for CI noise
}

TEST(IddeG, StrategyDiagnosticsFilled) {
  const ProblemInstance inst = model::make_instance(small_params(), 31);
  util::Rng rng(31);
  const core::Strategy s = core::IddeG().solve(inst, rng);
  EXPECT_EQ(s.approach_name, "IDDE-G");
  EXPECT_TRUE(s.game_converged);
  EXPECT_GT(s.game_moves, 0u);
  EXPECT_GT(s.placements, 0u);
  EXPECT_TRUE(s.collaborative_delivery);
}

TEST(IddeG, NaiveAndLazyOptionsAgreeOnLatency) {
  const ProblemInstance inst = model::make_instance(small_params(), 32);
  util::Rng rng(32);
  core::IddeGOptions lazy_options;
  core::IddeGOptions naive_options;
  naive_options.lazy_greedy = false;
  const core::Strategy a = core::IddeG(lazy_options).solve(inst, rng);
  const core::Strategy b = core::IddeG(naive_options).solve(inst, rng);
  const auto ma = core::evaluate(inst, a);
  const auto mb = core::evaluate(inst, b);
  EXPECT_NEAR(ma.avg_latency_ms, mb.avg_latency_ms, 1e-6);
}

TEST(Approaches, NamesMatchPaperOrder) {
  const auto approaches = sim::make_paper_approaches();
  ASSERT_EQ(approaches.size(), 5u);
  EXPECT_EQ(approaches[0]->name(), "IDDE-IP");
  EXPECT_EQ(approaches[1]->name(), "IDDE-G");
  EXPECT_EQ(approaches[2]->name(), "SAA");
  EXPECT_EQ(approaches[3]->name(), "CDP");
  EXPECT_EQ(approaches[4]->name(), "DUP-G");
}

}  // namespace
