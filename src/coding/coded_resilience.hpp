// Analytic resilience of a coded strategy: the coded mirror of
// fault::evaluate_resilience. Every epoch of the fault plan resolves
// every request through the coded Eq. 8 resolver over the surviving
// fragments (optionally re-healed by the coded repair planner) and the
// results are time-weighted over [0, horizon). Reuses
// fault::ResilienceReport so replication and coded runs are directly
// comparable; at k = 1 the numbers are bit-identical to
// fault::evaluate_resilience on the equivalent replication strategy.
#pragma once

#include "coding/coded_evaluator.hpp"
#include "coding/coded_profile.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance.hpp"

namespace idde::coding {

/// L_avg (Eq. 9) of a coded strategy in milliseconds.
[[nodiscard]] inline double coded_average_latency_ms(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation,
    const CodedDeliveryProfile& delivery, bool collaborative = true) {
  CodedDeliveryEvaluator evaluator(instance, allocation, delivery.config(),
                                   collaborative);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : delivery.hosts(k)) evaluator.commit(i, k);
  }
  return evaluator.average_latency_seconds() * 1e3;
}

/// Coded mirror of fault::evaluate_resilience (see that header for the
/// epoch/weighting semantics). An inert plan short-circuits to the
/// fault-free metrics exactly.
[[nodiscard]] fault::ResilienceReport evaluate_coded_resilience(
    const model::ProblemInstance& instance, const CodedStrategy& strategy,
    const fault::FaultPlan& plan,
    fault::RepairPolicy policy = fault::RepairPolicy::kNone);

}  // namespace idde::coding
