#include "core/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::core {

std::vector<double> user_rates(const model::ProblemInstance& instance,
                               const AllocationProfile& allocation) {
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  radio::InterferenceField field(instance.radio_env());
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (allocation[j].allocated()) field.add_user(j, allocation[j]);
  }
  std::vector<double> rates(instance.user_count(), 0.0);
  for (std::size_t j = 0; j < allocation.size(); ++j) {
    if (!allocation[j].allocated()) continue;
    const double shannon = field.rate_mbps(j, allocation[j]);
    rates[j] = std::min(instance.user(j).max_rate_mbps, shannon);
  }
  return rates;
}

double average_data_rate_mbps(const model::ProblemInstance& instance,
                         const AllocationProfile& allocation) {
  if (instance.user_count() == 0) return 0.0;
  const auto rates = user_rates(instance, allocation);
  double sum = 0.0;
  for (const double r : rates) sum += r;
  return sum / static_cast<double>(instance.user_count());
}

double average_latency_ms(const model::ProblemInstance& instance,
                          const AllocationProfile& allocation,
                          const DeliveryProfile& delivery,
                          bool collaborative) {
  DeliveryEvaluator evaluator(instance, allocation, collaborative);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : delivery.hosts(k)) evaluator.commit(i, k);
  }
  return evaluator.average_latency_seconds() * 1e3;
}

StrategyMetrics evaluate(const model::ProblemInstance& instance,
                         const Strategy& strategy) {
  StrategyMetrics metrics;
  metrics.avg_rate_mbps = average_data_rate_mbps(instance, strategy.allocation);
  metrics.avg_latency_ms =
      average_latency_ms(instance, strategy.allocation, strategy.delivery,
                         strategy.collaborative_delivery);
  metrics.allocated_users = static_cast<std::size_t>(
      std::count_if(strategy.allocation.begin(), strategy.allocation.end(),
                    [](const ChannelSlot& s) { return s.allocated(); }));
  metrics.placements = strategy.delivery.placement_count();
  return metrics;
}

}  // namespace idde::core
