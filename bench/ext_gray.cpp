// ext_gray — does health-scored routing + hedged delivery beat the binary
// fault model under gray (slow-not-dead) failures?
//
// Sweeps gray severity x hedging policy at the Section 4.2 default size.
// Per (profile, repetition): solve IDDE-G fault-free, draw a seeded
// DegradationPlan (slow ramps / metastable plateaus / flapping — every
// server formally "up" the whole horizon, so the binary fault model sees
// nothing), then replay the same strategy through the gray world four
// ways:
//
//   binary          blind routing, no hedges — what the pre-gray pipeline
//                   would do, since FaultPlan reports all-up
//   hedged          speculative backup legs after the hedge deadline
//   health          health-scored source selection (gray servers demoted)
//   health+hedged   both; deadlines also shrink with the source's score
//
// Two gates run in-binary (CI runs --smoke and fails on exit != 0):
//
//  1. inert bit-identity: a null degradation pointer, a pointer to an
//     inert plan, and a default (disabled) HedgeConfig all replay the
//     plain pipeline float-for-float.
//  2. p99 win: health+hedged holds a strictly lower p99 than the blind
//     binary replay on every profile (aggregated over repetitions — a
//     single rep's p99-th flow can be untouched by the gray draw, in
//     which case both replays produce the identical tail).
//
// Emits BENCH_gray.json for cross-PR tracking; --smoke runs 1 rep of the
// metastable profile only (CI).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "core/strategy.hpp"
#include "des/flow_sim.hpp"
#include "fault/degradation.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/paper.hpp"
#include "sim/runner.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace idde;

struct GrayProfile {
  const char* name;
  fault::DegradationProfile degradation;
};

std::vector<GrayProfile> make_gray_profiles(bool smoke) {
  // All profiles cover the 10 s arrival window with early onsets so the
  // replayed flows actually live through the degradation, and none of
  // them ever takes a server formally down.
  fault::DegradationProfile metastable;
  metastable.horizon_s = 120.0;
  metastable.gray_fraction = 0.35;
  metastable.peak_multiplier_min = 6.0;
  metastable.peak_multiplier_max = 10.0;
  metastable.loss_prob_max = 0.0;
  metastable.onset_latest_s = 2.0;
  metastable.ramp_weight = 0.0;
  metastable.plateau_weight = 1.0;
  metastable.flap_weight = 0.0;
  metastable.plateau_s = 60.0;

  if (smoke) return {{"metastable", metastable}};

  fault::DegradationProfile ramp = metastable;
  ramp.ramp_weight = 1.0;
  ramp.plateau_weight = 0.0;
  ramp.peak_multiplier_min = 4.0;
  ramp.peak_multiplier_max = 8.0;
  ramp.ramp_s = 6.0;
  ramp.ramp_steps = 8;

  fault::DegradationProfile lossy = metastable;
  lossy.loss_prob_max = 0.05;

  return {{"slow-ramp", ramp},
          {"metastable", metastable},
          {"metastable-lossy", lossy}};
}

struct HedgePolicy {
  const char* name;
  bool enabled;
  bool health_aware;
};

constexpr HedgePolicy kPolicies[] = {
    {"binary", false, false},
    {"hedged", true, false},
    {"health", false, true},
    {"health+hedged", true, true},
};

/// Bitwise equality of the aggregate DES result plus each flow's
/// completion — the inert contract is "same events, same floats".
bool same_des_result(const des::FlowSimResult& a, const des::FlowSimResult& b) {
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    if (a.flows[i].arrival_s != b.flows[i].arrival_s ||
        a.flows[i].completion_s != b.flows[i].completion_s ||
        a.flows[i].retries != b.flows[i].retries ||
        a.flows[i].from_cloud != b.flows[i].from_cloud ||
        a.flows[i].local_hit != b.flows[i].local_hit ||
        a.flows[i].tier != b.flows[i].tier) {
      return false;
    }
  }
  return a.mean_duration_ms == b.mean_duration_ms &&
         a.p95_duration_ms == b.p95_duration_ms &&
         a.p99_duration_ms == b.p99_duration_ms &&
         a.max_duration_ms == b.max_duration_ms &&
         a.makespan_s == b.makespan_s && a.local_hits == b.local_hits &&
         a.cloud_fetches == b.cloud_fetches &&
         a.retry_count == b.retry_count &&
         a.hedge_launches == b.hedge_launches &&
         a.hedge_wasted_mb == b.hedge_wasted_mb;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t reps = 3;
  std::size_t base_seed = 7500;
  std::string out = "BENCH_gray.json";
  util::CliParser cli(
      "ext_gray: gray-severity x hedging-policy sweep — p99 latency of "
      "blind vs health-aware vs hedged delivery under slow-server plans "
      "the binary fault model cannot see, with in-binary inert "
      "bit-identity and p99-win gates");
  cli.add_flag("smoke", &smoke, "1-rep metastable profile only (CI)");
  cli.add_size("reps", &reps, "seeded instances per profile");
  cli.add_size("seed", &base_seed, "first instance seed");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  bool telemetry = false;
  std::string trace_out;
  cli.add_flag("telemetry", &telemetry,
               "enable runtime telemetry (adds a telemetry block to --out)");
  cli.add_string("trace-out", &trace_out,
                 "write a chrome://tracing JSON here (implies --telemetry)");
  if (!cli.parse(argc, argv)) return 0;
  if (smoke) reps = 1;
  if (telemetry) obs::set_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  const model::InstanceParams params = sim::paper_default_params();
  const model::InstanceBuilder builder(params);
  const auto approaches = sim::make_paper_approaches(100.0);
  const core::Approach* solver = nullptr;
  for (const auto& approach : approaches) {
    if (approach->name() == "IDDE-G") solver = approach.get();
  }
  IDDE_EXPECTS(solver != nullptr);
  const auto profiles = make_gray_profiles(smoke);

  std::printf("ext_gray: N=%zu M=%zu K=%zu, %zu rep(s)\n\n",
              params.server_count, params.user_count, params.data_count, reps);

  bool inert_identical = true;
  bool p99_win = true;
  util::JsonArray json_profiles;
  for (const GrayProfile& profile : profiles) {
    util::TextTable table({"policy", "mean (ms)", "p99 (ms)", "hedges",
                           "hedge wins", "wasted MB", "losses", "cloud"});
    util::JsonArray json_policies;
    std::vector<util::RunningStats> mean_ms(std::size(kPolicies));
    std::vector<util::RunningStats> p99_ms(std::size(kPolicies));
    std::vector<util::RunningStats> hedges(std::size(kPolicies));
    std::vector<util::RunningStats> wins(std::size(kPolicies));
    std::vector<util::RunningStats> wasted(std::size(kPolicies));
    std::vector<util::RunningStats> losses(std::size(kPolicies));
    std::vector<util::RunningStats> cloud(std::size(kPolicies));
    std::size_t gray_servers = 0;

    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = base_seed + rep;
      const model::ProblemInstance instance = builder.build(seed);
      util::Rng solve_rng(seed ^ 0x5e111e5ULL);
      const core::Strategy strategy = solver->solve(instance, solve_rng);
      const fault::DegradationPlan plan = fault::DegradationPlan::generate(
          instance, profile.degradation, seed ^ 0x96a1);
      IDDE_EXPECTS(!plan.inert());  // a vacuous sweep gates nothing
      for (const auto& segments : plan.server_segments()) {
        if (!segments.empty()) ++gray_servers;
      }

      // Gate 1 (first profile only): null plan, inert plan and default
      // HedgeConfig all take the exact pre-gray code path.
      if (&profile == &profiles.front()) {
        des::FlowSimOptions plain;
        plain.arrival_window_s = 10.0;
        util::Rng rng_a(seed ^ 0xde5ULL);
        const des::FlowSimResult baseline =
            des::FlowLevelSimulator(instance, plain).run(strategy, rng_a);
        const fault::DegradationPlan inert_plan;
        des::FlowSimOptions gated = plain;
        gated.degradation = &inert_plan;
        util::Rng rng_b(seed ^ 0xde5ULL);
        const des::FlowSimResult with_inert =
            des::FlowLevelSimulator(instance, gated).run(strategy, rng_b);
        if (!same_des_result(baseline, with_inert)) inert_identical = false;
      }

      for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
        des::FlowSimOptions options;
        options.arrival_window_s = 10.0;
        options.degradation = &plan;
        options.hedge.enabled = kPolicies[p].enabled;
        options.hedge.health_aware = kPolicies[p].health_aware;
        util::Rng rng(seed ^ 0xde5ULL);  // same arrivals for every policy
        const des::FlowSimResult result =
            des::FlowLevelSimulator(instance, options).run(strategy, rng);
        mean_ms[p].add(result.mean_duration_ms);
        p99_ms[p].add(result.p99_duration_ms);
        hedges[p].add(static_cast<double>(result.hedge_launches));
        wins[p].add(static_cast<double>(result.hedge_wins));
        wasted[p].add(result.hedge_wasted_mb);
        losses[p].add(static_cast<double>(result.loss_aborts));
        cloud[p].add(static_cast<double>(result.cloud_fetches));
      }
    }
    // Gate 2: the full policy must beat the blind one on every profile.
    if (!(p99_ms[3].mean() < p99_ms[0].mean())) p99_win = false;

    for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
      table.start_row()
          .add(kPolicies[p].name)
          .add(mean_ms[p].mean())
          .add(p99_ms[p].mean())
          .add(hedges[p].mean())
          .add(wins[p].mean())
          .add(wasted[p].mean())
          .add(losses[p].mean())
          .add(cloud[p].mean());
      util::JsonObject entry;
      entry["name"] = std::string(kPolicies[p].name);
      entry["mean_duration_ms"] = mean_ms[p].mean();
      entry["p99_duration_ms"] = p99_ms[p].mean();
      entry["hedge_launches"] = hedges[p].mean();
      entry["hedge_wins"] = wins[p].mean();
      entry["hedge_wasted_mb"] = wasted[p].mean();
      entry["loss_aborts"] = losses[p].mean();
      entry["cloud_fetches"] = cloud[p].mean();
      json_policies.emplace_back(std::move(entry));
    }
    std::printf(
        "profile %s (gray %.0f%%, peak %g-%gx, loss %g, %zu gray "
        "server-draws over %zu rep(s)):\n",
        profile.name, profile.degradation.gray_fraction * 100.0,
        profile.degradation.peak_multiplier_min,
        profile.degradation.peak_multiplier_max,
        profile.degradation.loss_prob_max, gray_servers, reps);
    table.print(std::cout);
    std::puts("");

    util::JsonObject json_profile;
    json_profile["name"] = std::string(profile.name);
    json_profile["gray_fraction"] = profile.degradation.gray_fraction;
    json_profile["peak_multiplier_min"] =
        profile.degradation.peak_multiplier_min;
    json_profile["peak_multiplier_max"] =
        profile.degradation.peak_multiplier_max;
    json_profile["loss_prob_max"] = profile.degradation.loss_prob_max;
    json_profile["gray_server_draws"] = gray_servers;
    json_profile["policies"] = std::move(json_policies);
    json_profiles.emplace_back(std::move(json_profile));
  }

  std::printf("gates: inert bit-identity %s, health+hedged p99 win %s\n",
              inert_identical ? "PASS" : "FAIL", p99_win ? "PASS" : "FAIL");

  if (!out.empty()) {
    util::JsonObject doc;
    doc["bench"] = std::string("ext_gray");
    util::JsonObject shape;
    shape["servers"] = params.server_count;
    shape["users"] = params.user_count;
    shape["data"] = params.data_count;
    shape["reps"] = reps;
    shape["base_seed"] = base_seed;
    doc["instance"] = std::move(shape);
    doc["profiles"] = std::move(json_profiles);
    util::JsonObject gates;
    gates["inert_bit_identical"] = inert_identical;
    gates["health_hedged_p99_win"] = p99_win;
    doc["gates"] = std::move(gates);
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::global().write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return inert_identical && p99_win ? 0 : 1;
}
