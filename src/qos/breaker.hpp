// Per-server circuit breaker (closed / open / half-open).
//
// A server whose deliveries keep aborting (crashes, dead links) should be
// taken out of the source rotation instead of being retried into — every
// retry against a down server burns a retry token, a queue slot and the
// request's deadline. The breaker watches a rolling window of delivery
// outcomes per source server:
//
//   closed     all traffic allowed. When the window holds >= min_samples
//              outcomes and the failure fraction reaches
//              failure_threshold, trip to open.
//   open       the server is excluded from failover resolution (requests
//              fall through to surviving replicas or go cloud-direct) for
//              open_duration_s of simulated time.
//   half-open  after the cooldown, up to half_open_probes concurrent trial
//              deliveries are allowed. The first success closes the
//              breaker (window reset); the first failure re-opens it.
//              half_open_probe_cap bounds the *total* probes one half-open
//              episode may launch: a flapping gray server whose probes are
//              abandoned (e.g. a hedge won elsewhere) could otherwise hold
//              the breaker half-open forever; at the cap it re-opens.
//
// Gray servers fail slow, not dead: with slow_ratio > 0 a completed
// delivery whose observed time reaches slow_ratio × the expected time is
// recorded as a failure outcome (record_completion), so sustained latency
// inflation trips the breaker exactly like aborts do.
//
// All transitions are driven by simulated event times passed in by the
// engine — the breaker holds no clock and is fully deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qos/config.hpp"

namespace idde::qos {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config)
      : config_(config),
        // capacity-bound: config.window outcomes (ring buffer).
        outcomes_(config.window > 0 ? config.window : 1, 0) {}

  /// May this server serve a delivery starting at `now_s` (simulated seconds)? Transitions
  /// open -> half-open when the cooldown has elapsed.
  [[nodiscard]] bool allows(double now_s) noexcept {
    if (config_.inert()) return true;
    refresh(now_s);
    if (state_ == BreakerState::kClosed) return true;
    if (state_ == BreakerState::kOpen) return false;
    if (config_.half_open_probe_cap > 0 &&
        episode_probes_ >= config_.half_open_probe_cap) {
      // Probe budget of this half-open episode exhausted without a
      // verdict: stop letting the flapping server dribble probes and
      // re-open for a full cooldown.
      open(now_s);
      return false;
    }
    return probes_started_ < config_.half_open_probes;
  }

  /// The engine actually routed a delivery from this server (counts a
  /// half-open probe).
  void on_attempt_started(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) {
      ++probes_started_;
      ++episode_probes_;
    }
  }

  /// A routed probe was abandoned without a verdict (epoch abort, hedge
  /// lost the race): frees its concurrency slot; the episode count keeps
  /// charging it against half_open_probe_cap.
  void on_probe_abandoned(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen && probes_started_ > 0) {
      --probes_started_;
    }
  }

  /// Outcome of a *completed* delivery with known expected/observed
  /// timing: with slow_ratio configured, finishing at or beyond
  /// slow_ratio × expected counts as a failure (gray-server trip),
  /// otherwise as a success.
  void record_completion(double now_s, double observed_s,
                         double expected_s) noexcept {
    if (config_.inert()) return;
    if (config_.slow_ratio > 0.0 && expected_s > 0.0 &&
        observed_s >= config_.slow_ratio * expected_s) {
      record_failure(now_s);
    } else {
      record_success(now_s);
    }
  }

  void record_success(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) {
      close();
      return;
    }
    if (state_ == BreakerState::kClosed) push_outcome(1);
  }

  void record_failure(double now_s) noexcept {
    if (config_.inert()) return;
    refresh(now_s);
    if (state_ == BreakerState::kHalfOpen) {
      open(now_s);
      return;
    }
    if (state_ != BreakerState::kClosed) return;  // outcomes while open: moot
    push_outcome(0);
    if (filled_ >= config_.min_samples && filled_ > 0) {
      const double failure_rate =
          static_cast<double>(failures_) / static_cast<double>(filled_);
      if (failure_rate >= config_.failure_threshold) open(now_s);
    }
  }

  [[nodiscard]] BreakerState state(double now_s) noexcept {
    refresh(now_s);
    return state_;
  }

  /// Times the breaker tripped closed -> open (or re-opened from
  /// half-open); the qos.breaker_opens metric.
  [[nodiscard]] std::size_t times_opened() const noexcept {
    return times_opened_;
  }

 private:
  void refresh(double now_s) noexcept {
    if (state_ == BreakerState::kOpen && now_s >= open_until_) {
      state_ = BreakerState::kHalfOpen;
      probes_started_ = 0;
      episode_probes_ = 0;
    }
  }

  void open(double now_s) noexcept {
    state_ = BreakerState::kOpen;
    open_until_ = now_s + config_.open_duration_s;
    ++times_opened_;
  }

  void close() noexcept {
    state_ = BreakerState::kClosed;
    next_ = 0;
    filled_ = 0;
    failures_ = 0;
    for (auto& outcome : outcomes_) outcome = 0;
  }

  void push_outcome(std::uint8_t success) noexcept {
    if (filled_ == outcomes_.size()) {
      if (outcomes_[next_] == 0) --failures_;
    } else {
      ++filled_;
    }
    outcomes_[next_] = success;
    if (success == 0) ++failures_;
    next_ = (next_ + 1) % outcomes_.size();
  }

  BreakerConfig config_;
  std::vector<std::uint8_t> outcomes_;  // ring; capacity-bound: window
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t failures_ = 0;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_ = 0.0;
  std::size_t probes_started_ = 0;   // live (unresolved) probes
  std::size_t episode_probes_ = 0;   // total launched this half-open episode
  std::size_t times_opened_ = 0;
};

}  // namespace idde::qos
