// Fixture: inline suppressions — both sites count as suppressed, not found.
#include <cstdlib>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> cache;  // lint: allow(unordered-container)

int noisy() {
  return rand();  // lint: allow(naked-rand)
}

}  // namespace fixture
