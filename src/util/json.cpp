#include "util/json.hpp"

#include "util/format.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace idde::util {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t pos) {
  throw JsonError(util::format("JSON error at offset {}: {}", pos, what), pos);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(util::format("expected '{}'", c), pos_ - 1);
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Json(nullptr);
      default: return parse_number();
    }
  }

  // Bounds recursion in parse_object/parse_array: untrusted input like
  // "[[[[..." must fail with a JsonError, not exhaust the stack.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > Json::kMaxParseDepth) {
        fail("nesting too deep", parser_.pos_);
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      const std::size_t key_pos = pos_;
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      const auto [it, inserted] = object.emplace(std::move(key), parse_value());
      if (!inserted) {
        // Silently keeping either copy hides data from the producer.
        fail(util::format("duplicate key '{}'", it->first), key_pos);
      }
      skip_whitespace();
      const char c = take();
      if (c == '}') return Json(std::move(object));
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') return Json(std::move(array));
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_ - 1);
          }
          // UTF-8 encode (BMP only; surrogate pairs rejected).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogates unsupported", pos_);
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) {
      fail("bad number", start);
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void dump_value(const Json& value, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void dump_value(const Json& value, std::string& out, int indent, int depth) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    const auto& array = value.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& element : array) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_value(element, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& object = value.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, element] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(key, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_value(element, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("not a number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  // Guard the cast: NaN or a value outside [-2^63, 2^63) is UB under
  // static_cast (float-cast-overflow). 2^63 is exactly representable as a
  // double, so these bounds are exact; NaN fails both comparisons.
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    throw JsonError(util::format("number {} out of int64 range", d));
  }
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) throw JsonError(util::format("missing key '{}'", key));
  return *found;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& object = std::get<JsonObject>(value_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* found = find(key);
  return (found != nullptr && found->is_number()) ? found->as_number()
                                                  : fallback;
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  const Json* found = find(key);
  return (found != nullptr && found->is_number()) ? found->as_int() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* found = find(key);
  return (found != nullptr && found->is_bool()) ? found->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* found = find(key);
  return (found != nullptr && found->is_string()) ? found->as_string()
                                                  : fallback;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

std::size_t as_index(const Json& value, std::size_t bound,
                     std::string_view what) {
  const std::int64_t v = value.as_int();
  if (v < 0 || static_cast<std::size_t>(v) >= bound) {
    throw JsonError(
        util::format("{} {} out of range [0, {})", what, v, bound));
  }
  return static_cast<std::size_t>(v);
}

double as_finite(const Json& value, double min_inclusive,
                 std::string_view what) {
  const double v = value.as_number();
  if (!std::isfinite(v) || v < min_inclusive) {
    throw JsonError(util::format("{} must be a finite number >= {} (got {})",
                                 what, min_inclusive, v));
  }
  return v;
}

double as_positive(const Json& value, std::string_view what) {
  const double v = value.as_number();
  if (!std::isfinite(v) || v <= 0.0) {
    throw JsonError(
        util::format("{} must be a finite number > 0 (got {})", what, v));
  }
  return v;
}

}  // namespace idde::util
