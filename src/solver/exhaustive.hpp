// Brute-force optimal solvers for tiny instances. They are the test
// oracles behind the approximation-ratio and POA property tests
// (Theorems 5-7): exponential in M (allocation) and N*K (placement), so
// callers must keep instances tiny; both abort beyond a hard size guard.
#pragma once

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::solver {

/// Optimal user allocation for Objective #1: maximises R_avg (Eq. 5) by
/// enumerating every profile in prod_j (|V_j| * X + 1). Requires
/// prod <= 2^22 or aborts.
[[nodiscard]] core::AllocationProfile optimal_allocation(
    const model::ProblemInstance& instance);

/// Optimal delivery profile for Objective #2 given a fixed allocation:
/// minimises total latency by depth-first enumeration over the N*K
/// placement decisions with storage pruning. Requires N*K <= 24 or aborts.
[[nodiscard]] core::DeliveryProfile optimal_delivery(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation);

}  // namespace idde::solver
