#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace idde::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(std::string_view name, Kind kind, void* storage,
                           std::string_view help, std::string default_repr) {
  IDDE_EXPECTS(storage != nullptr);
  IDDE_EXPECTS(!name.empty());
  IDDE_ASSERT(find(name) == nullptr, "duplicate CLI option");
  options_.push_back(Option{std::string(name), kind, storage,
                            std::string(help), std::move(default_repr)});
}

void CliParser::add_int(std::string_view name, int* storage,
                        std::string_view help) {
  add_option(name, Kind::kInt, storage, help, std::to_string(*storage));
}

void CliParser::add_size(std::string_view name, std::size_t* storage,
                         std::string_view help) {
  add_option(name, Kind::kSize, storage, help, std::to_string(*storage));
}

void CliParser::add_double(std::string_view name, double* storage,
                           std::string_view help) {
  add_option(name, Kind::kDouble, storage, help, util::format("{}", *storage));
}

void CliParser::add_string(std::string_view name, std::string* storage,
                           std::string_view help) {
  add_option(name, Kind::kString, storage, help, *storage);
}

void CliParser::add_flag(std::string_view name, bool* storage,
                         std::string_view help) {
  add_option(name, Kind::kFlag, storage, help, *storage ? "true" : "false");
}

CliParser::Option* CliParser::find(std::string_view name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

void CliParser::assign(Option& opt, std::string_view value) {
  const auto parse_number = [&](auto& out) {
    const auto result =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (result.ec != std::errc{} || result.ptr != value.data() + value.size()) {
      throw std::invalid_argument(
          util::format("bad value '{}' for --{}", value, opt.name));
    }
  };
  switch (opt.kind) {
    case Kind::kInt: parse_number(*static_cast<int*>(opt.storage)); break;
    case Kind::kSize:
      parse_number(*static_cast<std::size_t*>(opt.storage));
      break;
    case Kind::kDouble: {
      // from_chars<double> is available in GCC 12.
      parse_number(*static_cast<double*>(opt.storage));
      break;
    }
    case Kind::kString:
      *static_cast<std::string*>(opt.storage) = std::string(value);
      break;
    case Kind::kFlag: {
      bool& flag = *static_cast<bool*>(opt.storage);
      if (value == "true" || value == "1") flag = true;
      else if (value == "false" || value == "0") flag = false;
      else throw std::invalid_argument(util::format("bad bool '{}'", value));
      break;
    }
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!arg.starts_with("--")) {
      throw std::invalid_argument(util::format("unexpected argument '{}'", arg));
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      throw std::invalid_argument(util::format("unknown flag --{}", name));
    }
    if (inline_value.has_value()) {
      assign(*opt, *inline_value);
    } else if (opt->kind == Kind::kFlag) {
      *static_cast<bool*>(opt->storage) = true;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument(
            util::format("flag --{} expects a value", name));
      }
      assign(*opt, argv[++i]);
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::string out = description_ + "\n\nOptions:\n";
  for (const auto& opt : options_) {
    out += "  --" + pad_right(opt.name, 18) + " " + opt.help +
           " (default: " + opt.default_repr + ")\n";
  }
  out += "  --" + pad_right("help", 18) + " show this message\n";
  return out;
}

}  // namespace idde::util
