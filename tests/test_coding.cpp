// src/coding/ contract tests. The load-bearing property throughout: at
// k = 1 every coded component (profile, evaluator, planner, resolver,
// repair, resilience, DES replay) is bit-identical to its replication
// counterpart — same feasibility decisions, same floats, same tiers — so
// the coded plane is a strict generalisation, not a parallel
// implementation that drifts. k > 1 behaviour is checked against
// structural invariants (cloud cap, n-cap, ledger exactness, rescan
// convergence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "coding/coded_evaluator.hpp"
#include "coding/coded_io.hpp"
#include "coding/coded_planner.hpp"
#include "coding/coded_profile.hpp"
#include "coding/coded_resilience.hpp"
#include "coding/coded_resolver.hpp"
#include "coding/fragment.hpp"
#include "core/delivery.hpp"
#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "core/repair_planner.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

using namespace idde;

model::InstanceParams sized(std::size_t n, std::size_t m, std::size_t k) {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

/// The replication-equivalent config: k = 1 whole-item fragments with no
/// host cap below the server count.
coding::FragmentConfig replication_config(
    const model::ProblemInstance& instance) {
  return {instance.server_count(), 1};
}

core::Strategy solve(const model::ProblemInstance& instance,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  return core::IddeG().solve(instance, rng);
}

/// Copies a replication sigma into a coded (N, 1) profile.
coding::CodedDeliveryProfile as_coded(const model::ProblemInstance& instance,
                                      const core::DeliveryProfile& sigma) {
  coding::CodedDeliveryProfile coded(instance, replication_config(instance));
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : sigma.hosts(k)) coded.place(i, k);
  }
  return coded;
}

void expect_same_profile(const coding::CodedDeliveryProfile& coded,
                         const core::DeliveryProfile& replication) {
  ASSERT_EQ(coded.placement_count(), replication.placement_count());
  for (std::size_t k = 0; k < coded.data_count(); ++k) {
    const auto ch = coded.hosts(k);
    const auto rh = replication.hosts(k);
    ASSERT_TRUE(std::equal(ch.begin(), ch.end(), rh.begin(), rh.end()))
        << "item " << k;
  }
  for (std::size_t i = 0; i < coded.server_count(); ++i) {
    EXPECT_EQ(coded.free_kb(i), replication.free_kb(i)) << "server " << i;
  }
}

TEST(Fragment, SizeKbIsCeilDivOfExactItemKb) {
  // 10 MB = 10240 KB: k = 3 -> ceil(10240 / 3) = 3414.
  EXPECT_EQ(coding::fragment_size_kb(10.0, 3), 3414);
  EXPECT_EQ(coding::fragment_size_kb(10.0, 1), core::mb_to_kb(10.0));
  // k fragments always cover the item: k * frag_kb >= item_kb.
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double mb = 0.1 + 50.0 * rng.uniform();
    const std::size_t k = 1 + rng.index(6);
    EXPECT_GE(static_cast<std::int64_t>(k) * coding::fragment_size_kb(mb, k),
              core::mb_to_kb(mb));
  }
}

TEST(Fragment, SizeMbIsExactAtKEqualsOne) {
  EXPECT_EQ(coding::fragment_size_mb(7.25, 1), 7.25);
  EXPECT_EQ(coding::fragment_size_mb(9.0, 3), 3.0);
}

TEST(Fragment, ConfigValidity) {
  EXPECT_TRUE((coding::FragmentConfig{1, 1}).valid());
  EXPECT_TRUE((coding::FragmentConfig{4, 2}).valid());
  EXPECT_FALSE((coding::FragmentConfig{2, 3}).valid());
  EXPECT_FALSE((coding::FragmentConfig{0, 0}).valid());
  EXPECT_TRUE((coding::FragmentConfig{5, 1}).replication());
  EXPECT_FALSE((coding::FragmentConfig{4, 2}).replication());
}

// At k = 1 the coded profile must make the same feasibility decision and
// keep the same integer-KB ledger as core::DeliveryProfile through any
// interleaving of placements and removals.
TEST(CodedProfile, K1ReplaysDeliveryProfileThroughRandomMutations) {
  const auto inst = model::make_instance(sized(8, 30, 5), 42);
  coding::CodedDeliveryProfile coded(inst, replication_config(inst));
  core::DeliveryProfile replication(inst);
  util::Rng rng(7);
  for (int step = 0; step < 2000; ++step) {
    const std::size_t i = rng.index(inst.server_count());
    const std::size_t k = rng.index(inst.data_count());
    ASSERT_EQ(coded.can_place(i, k), replication.can_place(i, k));
    if (coded.placed(i, k) && rng.index(3) == 0) {
      coded.remove(i, k);
      replication.remove(i, k);
    } else if (coded.can_place(i, k)) {
      coded.place(i, k);
      replication.place(i, k);
    }
  }
  expect_same_profile(coded, replication);
}

TEST(CodedProfile, NCapRejectsExtraFragmentsDespiteHeadroom) {
  const auto inst = model::make_instance(sized(6, 20, 3), 3);
  coding::CodedDeliveryProfile coded(inst, {2, 2});
  std::size_t placed = 0;
  for (std::size_t i = 0; i < inst.server_count() && placed < 2; ++i) {
    if (coded.can_place(i, 0)) {
      coded.place(i, 0);
      ++placed;
    }
  }
  ASSERT_EQ(placed, 2u);
  EXPECT_EQ(coded.fragment_count(0), 2u);
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_FALSE(coded.can_place(i, 0));
  }
}

TEST(CodedProfile, LedgerChargesCeilDividedFragments) {
  const auto inst = model::make_instance(sized(6, 20, 3), 5);
  const coding::FragmentConfig config{inst.server_count(), 3};
  coding::CodedDeliveryProfile coded(inst, config);
  const std::int64_t before = coded.free_kb(0);
  ASSERT_TRUE(coded.can_place(0, 1));
  coded.place(0, 1);
  EXPECT_EQ(before - coded.free_kb(0),
            coding::fragment_size_kb(inst.data(1).size_mb, 3));
  coded.remove(0, 1);
  EXPECT_EQ(coded.free_kb(0), before);
}

TEST(CodedProfile, RestoreIsReplayOrderIndependent) {
  const auto inst = model::make_instance(sized(8, 30, 5), 13);
  const coding::FragmentConfig config{inst.server_count(), 2};
  coding::CodedDeliveryProfile live(inst, config);
  std::vector<std::pair<std::size_t, std::size_t>> placements;
  util::Rng rng(77);
  for (int tries = 0; tries < 200; ++tries) {
    const std::size_t i = rng.index(inst.server_count());
    const std::size_t k = rng.index(inst.data_count());
    if (live.can_place(i, k)) {
      live.place(i, k);
      placements.emplace_back(i, k);
    }
  }
  ASSERT_FALSE(placements.empty());
  // Shuffle and restore: the integer ledger makes order irrelevant.
  for (std::size_t i = placements.size(); i > 1; --i) {
    std::swap(placements[i - 1], placements[rng.index(i)]);
  }
  const auto restored =
      coding::CodedDeliveryProfile::restore(inst, config, placements);
  ASSERT_EQ(restored.placement_count(), live.placement_count());
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    const auto a = restored.hosts(k);
    const auto b = live.hosts(k);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_EQ(restored.free_kb(i), live.free_kb(i));
  }
}

// The coded greedy at k = 1 must commit the exact move sequence of the
// replication greedy: same final placements, same headroom, same total
// latency to the last bit. (gain_evaluations differs by design — the
// coded planner's terminating rescan re-scores every candidate.)
TEST(CodedPlanner, K1BitIdenticalToGreedyDeliveryPlanner) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = model::make_instance(sized(10, 50, 4), seed);
    const auto strategy = solve(inst, seed);
    core::GreedyDeliveryPlanner replication_planner(inst);
    const auto replication = replication_planner.plan(strategy.allocation);
    coding::CodedGreedyPlanner coded_planner(inst);
    const auto coded =
        coded_planner.plan(strategy.allocation, replication_config(inst));
    EXPECT_EQ(coded.placements, replication.placements);
    expect_same_profile(coded.delivery, replication.delivery);
    EXPECT_EQ(coding::coded_total_latency_seconds(inst, strategy.allocation,
                                                  coded.delivery),
              core::total_latency_seconds(inst, strategy.allocation,
                                          replication.delivery));
  }
}

TEST(CodedPlanner, K2SaturatesWithinCapsAndBeatsEmptySigma) {
  const auto inst = model::make_instance(sized(10, 50, 4), 9);
  const auto strategy = solve(inst, 9);
  coding::CodedGreedyPlanner planner(inst);
  const coding::FragmentConfig config{inst.server_count(), 2};
  const auto result = planner.plan(strategy.allocation, config);
  EXPECT_GT(result.placements, 0u);
  EXPECT_GE(result.rescan_rounds, 1u);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    EXPECT_LE(result.delivery.fragment_count(k), config.n);
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_GE(result.delivery.free_kb(i), 0);
  }
  // Committing fragments can only lower latency below the all-cloud sigma.
  const coding::CodedDeliveryProfile empty(inst, config);
  EXPECT_LT(coding::coded_total_latency_seconds(inst, strategy.allocation,
                                                result.delivery),
            coding::coded_total_latency_seconds(inst, strategy.allocation,
                                                empty));
}

// The coded resolver at k = 1 is core::resolve_with_failover: same
// seconds (bitwise), same fallback tier, cloud iff cloud, under random
// server-up masks.
TEST(CodedResolver, K1MatchesResolveWithFailoverUnderRandomMasks) {
  const auto inst = model::make_instance(sized(10, 40, 5), 21);
  const auto strategy = solve(inst, 21);
  coding::CodedResolver resolver(inst);
  util::Rng rng(5);
  std::vector<std::uint8_t> up(inst.server_count(), 1);
  for (int round = 0; round < 50; ++round) {
    for (auto& flag : up) flag = rng.index(4) > 0 ? 1 : 0;
    for (std::size_t j = 0; j < inst.user_count(); ++j) {
      const core::ChannelSlot slot = strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t k : inst.requests().items_of(j)) {
        const double size = inst.data(k).size_mb;
        const auto hosts = strategy.delivery.hosts(k);
        const core::FailoverDecision expected =
            core::resolve_with_failover(inst, hosts, serving, size, up);
        const coding::CodedDecision got =
            resolver.resolve(hosts, serving, size, size, 1, up);
        EXPECT_EQ(got.seconds, expected.seconds);
        EXPECT_EQ(got.tier, expected.tier);
        EXPECT_EQ(got.cloud_only(), expected.source == core::kCloudSource);
      }
    }
  }
}

// For any k the coded Eq. 8 never exceeds the whole-item cloud fetch:
// e = 0 (all-cloud) is always a candidate and the min is exact.
TEST(CodedResolver, NeverExceedsWholeItemCloudFetch) {
  const auto inst = model::make_instance(sized(10, 40, 5), 23);
  const auto strategy = solve(inst, 23);
  coding::CodedGreedyPlanner planner(inst);
  coding::CodedResolver resolver(inst);
  util::Rng rng(3);
  std::vector<std::uint8_t> up(inst.server_count(), 1);
  for (const std::size_t k_of : {2u, 3u, 4u}) {
    const coding::FragmentConfig config{inst.server_count(), k_of};
    const auto plan = planner.plan(strategy.allocation, config);
    for (auto& flag : up) flag = rng.index(3) > 0 ? 1 : 0;
    for (std::size_t j = 0; j < inst.user_count(); ++j) {
      const core::ChannelSlot slot = strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t item : inst.requests().items_of(j)) {
        const auto decision =
            resolver.resolve_item(plan.delivery, item, serving, up);
        const double cloud =
            inst.latency().cloud_transfer_seconds(inst.data(item).size_mb);
        EXPECT_LE(decision.seconds, cloud);
        EXPECT_EQ(decision.edge_fragments + decision.cloud_fragments > 0,
                  true);
        EXPECT_LE(decision.edge_fragments, k_of);
      }
    }
  }
}

fault::FaultProfile busy_profile() {
  fault::FaultProfile profile;
  profile.horizon_s = 45.0;
  profile.server_mtbf_s = 15.0;
  profile.server_mttr_s = 5.0;
  profile.link_mtbf_s = 12.0;
  profile.link_mttr_s = 4.0;
  profile.cloud_mtbf_s = 30.0;
  profile.cloud_mttr_s = 3.0;
  profile.replica_corruption_prob = 0.05;
  return profile;
}

// Coded repair at k = 1 resumes the greedy exactly like core::RepairPlanner
// (same survivors kept, same repairs committed, same recovered gain).
TEST(CodedRepair, K1MatchesCoreRepairPlanner) {
  const auto inst = model::make_instance(sized(10, 50, 4), 31);
  const auto strategy = solve(inst, 31);
  const auto coded_sigma = as_coded(inst, strategy.delivery);
  core::RepairPlanner core_repair(inst);
  coding::CodedRepairPlanner coded_repair(inst);
  util::Rng rng(17);
  std::vector<std::uint8_t> up(inst.server_count(), 1);
  for (int round = 0; round < 20; ++round) {
    for (auto& flag : up) flag = rng.index(4) > 0 ? 1 : 0;
    const auto expected = core_repair.replan(strategy.allocation,
                                             strategy.delivery, up);
    const auto got =
        coded_repair.replan(strategy.allocation, coded_sigma, up);
    EXPECT_EQ(got.lost_placements, expected.lost_placements);
    EXPECT_EQ(got.repair_placements, expected.repair_placements);
    EXPECT_EQ(got.recovered_gain_seconds, expected.recovered_gain_seconds);
    expect_same_profile(got.delivery, expected.delivery);
  }
}

// Analytic coded resilience at k = 1 reproduces fault::evaluate_resilience
// field-for-field under both repair policies.
TEST(CodedResilience, K1BitIdenticalToReplicationResilience) {
  for (std::uint64_t seed = 40; seed <= 42; ++seed) {
    const auto inst = model::make_instance(sized(10, 50, 4), seed);
    const auto strategy = solve(inst, seed);
    coding::CodedStrategy coded(strategy.allocation,
                                as_coded(inst, strategy.delivery));
    coded.collaborative_delivery = strategy.collaborative_delivery;
    const auto plan =
        fault::FaultPlan::generate(inst, busy_profile(), seed ^ 0x4a17);
    ASSERT_FALSE(plan.inert());
    for (const auto policy :
         {fault::RepairPolicy::kNone, fault::RepairPolicy::kGreedy}) {
      const auto expected =
          fault::evaluate_resilience(inst, strategy, plan, policy);
      const auto got =
          coding::evaluate_coded_resilience(inst, coded, plan, policy);
      EXPECT_EQ(got.fault_free_latency_ms, expected.fault_free_latency_ms);
      EXPECT_EQ(got.degraded_latency_ms, expected.degraded_latency_ms);
      EXPECT_EQ(got.availability, expected.availability);
      EXPECT_EQ(got.tier_fraction, expected.tier_fraction);
      EXPECT_EQ(got.epochs, expected.epochs);
      EXPECT_EQ(got.lost_placements, expected.lost_placements);
      EXPECT_EQ(got.repair_placements, expected.repair_placements);
    }
  }
}

TEST(CodedResilience, InertPlanShortCircuitsToFaultFree) {
  const auto inst = model::make_instance(sized(8, 40, 4), 50);
  const auto strategy = solve(inst, 50);
  coding::CodedStrategy coded(strategy.allocation,
                              as_coded(inst, strategy.delivery));
  const fault::FaultPlan inert;
  const auto report =
      coding::evaluate_coded_resilience(inst, coded, inert);
  EXPECT_EQ(report.degraded_latency_ms, report.fault_free_latency_ms);
  EXPECT_EQ(report.availability, 1.0);
  EXPECT_EQ(report.epochs, 1u);
}

// The coded DES engine at k = 1 under a non-inert plan replays run()
// bit-for-bit: same rng draws, same events, same floats.
TEST(CodedDes, K1BitIdenticalToFaultyReplay) {
  for (std::uint64_t seed = 60; seed <= 62; ++seed) {
    const auto inst = model::make_instance(sized(10, 50, 4), seed);
    const auto strategy = solve(inst, seed);
    coding::CodedStrategy coded(strategy.allocation,
                                as_coded(inst, strategy.delivery));
    coded.collaborative_delivery = strategy.collaborative_delivery;
    const auto plan =
        fault::FaultPlan::generate(inst, busy_profile(), seed ^ 0x4a17);
    ASSERT_FALSE(plan.inert());
    des::FlowSimOptions options;
    options.arrival_window_s = 15.0;
    options.fault_plan = &plan;
    const des::FlowLevelSimulator simulator(inst, options);
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const auto expected = simulator.run(strategy, rng_a);
    const auto got = simulator.run_coded(coded, rng_b);
    ASSERT_EQ(got.flows.size(), expected.flows.size());
    for (std::size_t f = 0; f < got.flows.size(); ++f) {
      EXPECT_EQ(got.flows[f].arrival_s, expected.flows[f].arrival_s);
      EXPECT_EQ(got.flows[f].completion_s, expected.flows[f].completion_s);
      EXPECT_EQ(got.flows[f].retries, expected.flows[f].retries);
      EXPECT_EQ(got.flows[f].forced_cloud, expected.flows[f].forced_cloud);
      EXPECT_EQ(got.flows[f].from_cloud, expected.flows[f].from_cloud);
      EXPECT_EQ(got.flows[f].local_hit, expected.flows[f].local_hit);
      EXPECT_EQ(got.flows[f].tier, expected.flows[f].tier);
    }
    EXPECT_EQ(got.mean_duration_ms, expected.mean_duration_ms);
    EXPECT_EQ(got.p99_duration_ms, expected.p99_duration_ms);
    EXPECT_EQ(got.makespan_s, expected.makespan_s);
    EXPECT_EQ(got.availability, expected.availability);
    EXPECT_EQ(got.retry_count, expected.retry_count);
    EXPECT_EQ(got.tier_counts, expected.tier_counts);
    EXPECT_EQ(got.local_hits, expected.local_hits);
    EXPECT_EQ(got.cloud_fetches, expected.cloud_fetches);
  }
}

// k > 1: the coded replay stays structurally sound under faults — every
// request completes finitely, the QoS invariant holds, and repeated runs
// are bit-identical (determinism of the multi-leg engine).
TEST(CodedDes, K2ReplayIsSoundAndDeterministic) {
  const auto inst = model::make_instance(sized(10, 50, 4), 70);
  const auto strategy = solve(inst, 70);
  coding::CodedGreedyPlanner planner(inst);
  const auto plan_result = planner.plan(strategy.allocation,
                                        {inst.server_count(), 2});
  coding::CodedStrategy coded(strategy.allocation,
                              coding::CodedDeliveryProfile(plan_result.delivery));
  const auto plan =
      fault::FaultPlan::generate(inst, busy_profile(), 0x70 ^ 0x4a17);
  des::FlowSimOptions options;
  options.arrival_window_s = 15.0;
  options.fault_plan = &plan;
  const des::FlowLevelSimulator simulator(inst, options);
  util::Rng rng_a(70);
  util::Rng rng_b(70);
  const auto a = simulator.run_coded(coded, rng_a);
  const auto b = simulator.run_coded(coded, rng_b);
  ASSERT_FALSE(a.flows.empty());
  for (const auto& flow : a.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
    EXPECT_LT(flow.duration_s(), 1e6);
  }
  EXPECT_EQ(a.qos.offered, a.flows.size());
  EXPECT_EQ(a.qos.admitted + a.qos.shed + a.qos.rejected, a.qos.offered);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries);
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
}

// Sweep coded columns must not depend on the repetition-pool thread count
// (the per-rep staging + serial fold discipline extends to coded rows).
TEST(CodedSweep, ColumnsBitIdenticalAcrossThreadCounts) {
  const fault::FaultProfile profile = busy_profile();
  const coding::FragmentConfig config{8, 2};
  std::vector<sim::SweepPoint> points{{"N=8", sized(8, 30, 3)}};
  const auto run = [&](std::size_t threads) {
    sim::SweepOptions options;
    options.repetitions = 3;
    options.threads = threads;
    options.ip_budget_ms = 5.0;
    options.fault_profile = &profile;
    options.repair_policy = fault::RepairPolicy::kGreedy;
    options.coding = &config;
    return sim::run_paper_sweep(points, options);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].cells.size(), parallel[p].cells.size());
    for (std::size_t c = 0; c < serial[p].cells.size(); ++c) {
      const auto& a = serial[p].cells[c];
      const auto& b = parallel[p].cells[c];
      EXPECT_EQ(a.latency_ms.mean, b.latency_ms.mean);
      EXPECT_EQ(a.degraded_latency_ms.mean, b.degraded_latency_ms.mean);
      EXPECT_EQ(a.coded_latency_ms.mean, b.coded_latency_ms.mean);
      EXPECT_EQ(a.coded_latency_ms.half_width, b.coded_latency_ms.half_width);
      EXPECT_EQ(a.coded_degraded_latency_ms.mean,
                b.coded_degraded_latency_ms.mean);
      EXPECT_EQ(a.coded_availability.mean, b.coded_availability.mean);
      EXPECT_EQ(a.coded_latency_ms.n, b.coded_latency_ms.n);
    }
  }
}

TEST(CodedIo, RoundTripsIntactStrategy) {
  const auto inst = model::make_instance(sized(8, 30, 4), 81);
  const auto strategy = solve(inst, 81);
  coding::CodedGreedyPlanner planner(inst);
  const auto plan = planner.plan(strategy.allocation, {6, 2});
  coding::CodedStrategy coded(strategy.allocation,
                              coding::CodedDeliveryProfile(plan.delivery));
  coded.approach_name = "IDDE-G+coded";
  coded.placements = plan.placements;
  const std::string text = coding::coded_strategy_to_string(coded, 2);
  const auto back = coding::coded_strategy_from_string(inst, text);
  EXPECT_EQ(coding::coded_strategy_to_string(back, 2), text);
  EXPECT_EQ(back.delivery.config().n, 6u);
  EXPECT_EQ(back.delivery.config().k, 2u);
  // Host sets and ledger survive the round trip.
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    const auto a = back.delivery.hosts(k);
    const auto b = coded.delivery.hosts(k);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    EXPECT_EQ(back.delivery.free_kb(i), coded.delivery.free_kb(i));
  }
}

TEST(CodedIo, HostileDocumentsAreRejectedStructurally) {
  const auto inst = model::make_instance(sized(5, 12, 3), 83);
  const std::vector<std::string> hostile = {
      // wrong format tag
      R"({"format":"idde-strategy-v1","coding":{"n":1,"k":1},"allocation":[],"placements":[]})",
      // invalid shapes: k = 0, n < k, absurd n
      R"({"format":"idde-coded-strategy-v1","coding":{"n":1,"k":0},"allocation":[],"placements":[]})",
      R"({"format":"idde-coded-strategy-v1","coding":{"n":1,"k":2},"allocation":[],"placements":[]})",
      R"({"format":"idde-coded-strategy-v1","coding":{"n":99,"k":1},"allocation":[],"placements":[]})",
      // duplicate fragment placement
      R"({"format":"idde-coded-strategy-v1","coding":{"n":5,"k":2},"allocation":[],"placements":[{"server":0,"item":0},{"server":0,"item":0}]})",
      // out-of-range placement indices
      R"({"format":"idde-coded-strategy-v1","coding":{"n":5,"k":2},"allocation":[],"placements":[{"server":17,"item":0}]})",
      "",
      "[3]",
  };
  for (const auto& text : hostile) {
    EXPECT_THROW((void)coding::coded_strategy_from_string(inst, text),
                 util::JsonError)
        << text;
  }
}

TEST(CodedScenario, FragmentConfigJsonRoundTripsAndValidates) {
  const coding::FragmentConfig config{6, 4};
  const util::Json json = sim::fragment_config_to_json(config);
  const auto back = sim::fragment_config_from_json(json);
  EXPECT_EQ(back.n, 6u);
  EXPECT_EQ(back.k, 4u);
  // Defaults apply for missing fields.
  const auto defaults =
      sim::fragment_config_from_json(util::Json::parse("{}"));
  EXPECT_EQ(defaults.n, 1u);
  EXPECT_EQ(defaults.k, 1u);
  EXPECT_THROW((void)sim::fragment_config_from_json(
                   util::Json::parse(R"({"n":1,"k":2})")),
               util::JsonError);
  EXPECT_THROW((void)sim::fragment_config_from_json(
                   util::Json::parse(R"({"n":2,"k":0})")),
               util::JsonError);
}

}  // namespace
