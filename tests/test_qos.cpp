// Overload-protection layer: unit contracts of the qos:: building blocks
// (admission queue, retry budget, circuit breaker, arrival generation,
// config JSON), the inert-config bit-identity guarantee, and the
// end-to-end overload behaviour (deadline-aware shedding holds goodput
// under a 10x load; no-shedding collapses; accounting is exact).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/idde_g.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance_builder.hpp"
#include "qos/admission.hpp"
#include "qos/arrivals.hpp"
#include "qos/breaker.hpp"
#include "qos/config.hpp"
#include "qos/retry_budget.hpp"
#include "sim/overload.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

struct Solved {
  model::ProblemInstance instance;
  core::Strategy strategy;
};

Solved solved_instance(std::uint64_t seed) {
  model::ProblemInstance instance = model::make_instance(small_params(), seed);
  util::Rng rng(seed);
  core::Strategy strategy = core::IddeG().solve(instance, rng);
  return Solved{std::move(instance), std::move(strategy)};
}

// ---------------------------------------------------------------- config

TEST(QosConfig, DefaultsAreInert) {
  const qos::QosConfig config;
  EXPECT_TRUE(config.arrivals.inert());
  EXPECT_TRUE(config.admission.inert());
  EXPECT_TRUE(config.retry_budget.inert());
  EXPECT_TRUE(config.breaker.inert());
  EXPECT_TRUE(config.inert());
}

TEST(QosConfig, EachSubsystemBreaksInertness) {
  qos::QosConfig config;
  config.arrivals.process = qos::ArrivalProcess::kPoisson;
  EXPECT_FALSE(config.inert());
  config = {};
  config.admission.service_slots = 2;
  EXPECT_FALSE(config.inert());
  config = {};
  config.admission.policy = qos::SheddingPolicy::kRejectNewest;
  EXPECT_FALSE(config.inert());
  config = {};
  config.admission.deadline_s = 1.0;
  EXPECT_FALSE(config.inert());
  config = {};
  config.retry_budget.ratio = 0.0;  // zero budget is active, not inert
  EXPECT_FALSE(config.inert());
  config = {};
  config.breaker.enabled = true;
  EXPECT_FALSE(config.inert());
}

TEST(QosConfig, JsonRoundTripsEveryField) {
  qos::QosConfig config;
  config.arrivals.process = qos::ArrivalProcess::kFlashCrowd;
  config.arrivals.load_multiplier = 7.5;
  config.arrivals.window_s = 12.0;
  config.arrivals.flash_fraction = 0.25;
  config.arrivals.flash_start_s = 3.0;
  config.arrivals.flash_width_s = 0.5;
  config.admission.policy = qos::SheddingPolicy::kDeadlineAware;
  config.admission.service_slots = 3;
  config.admission.queue_capacity = 9;
  config.admission.deadline_s = 1.5;
  config.admission.local_service_s_per_mb = 0.01;
  config.retry_budget.ratio = 0.2;
  config.retry_budget.burst = 5.0;
  config.breaker.enabled = true;
  config.breaker.window = 11;
  config.breaker.min_samples = 4;
  config.breaker.failure_threshold = 0.7;
  config.breaker.open_duration_s = 3.5;
  config.breaker.half_open_probes = 1;
  config.breaker.half_open_probe_cap = 6;
  config.breaker.slow_ratio = 4.0;

  const qos::QosConfig back = qos::qos_from_json(qos::qos_to_json(config));
  EXPECT_EQ(back.arrivals.process, config.arrivals.process);
  EXPECT_EQ(back.arrivals.load_multiplier, config.arrivals.load_multiplier);
  EXPECT_EQ(back.arrivals.window_s, config.arrivals.window_s);
  EXPECT_EQ(back.arrivals.flash_fraction, config.arrivals.flash_fraction);
  EXPECT_EQ(back.arrivals.flash_start_s, config.arrivals.flash_start_s);
  EXPECT_EQ(back.arrivals.flash_width_s, config.arrivals.flash_width_s);
  EXPECT_EQ(back.admission.policy, config.admission.policy);
  EXPECT_EQ(back.admission.service_slots, config.admission.service_slots);
  EXPECT_EQ(back.admission.queue_capacity, config.admission.queue_capacity);
  EXPECT_EQ(back.admission.deadline_s, config.admission.deadline_s);
  EXPECT_EQ(back.admission.local_service_s_per_mb,
            config.admission.local_service_s_per_mb);
  EXPECT_EQ(back.retry_budget.ratio, config.retry_budget.ratio);
  EXPECT_EQ(back.retry_budget.burst, config.retry_budget.burst);
  EXPECT_EQ(back.breaker.enabled, config.breaker.enabled);
  EXPECT_EQ(back.breaker.window, config.breaker.window);
  EXPECT_EQ(back.breaker.min_samples, config.breaker.min_samples);
  EXPECT_EQ(back.breaker.failure_threshold, config.breaker.failure_threshold);
  EXPECT_EQ(back.breaker.open_duration_s, config.breaker.open_duration_s);
  EXPECT_EQ(back.breaker.half_open_probes, config.breaker.half_open_probes);
  EXPECT_EQ(back.breaker.half_open_probe_cap,
            config.breaker.half_open_probe_cap);
  EXPECT_EQ(back.breaker.slow_ratio, config.breaker.slow_ratio);
  EXPECT_FALSE(back.inert());
}

TEST(QosConfig, EmptyJsonYieldsDefaultsAndUnknownNamesThrow) {
  const qos::QosConfig config = qos::qos_from_json(util::Json(util::JsonObject{}));
  EXPECT_TRUE(config.inert());
  EXPECT_THROW((void)qos::shedding_policy_from_string("drop-everything"),
               util::JsonError);
  EXPECT_THROW((void)qos::arrival_process_from_string("tsunami"),
               util::JsonError);
}

// ------------------------------------------------------- admission queue

TEST(AdmissionQueue, FifoOrderAndCompaction) {
  qos::AdmissionConfig config;
  config.policy = qos::SheddingPolicy::kRejectNewest;
  config.queue_capacity = 1000;
  qos::AdmissionQueue queue(config);
  // Push/pop far past the compaction threshold; order must survive.
  std::size_t next_push = 0;
  std::size_t next_pop = 0;
  for (std::size_t round = 0; round < 300; ++round) {
    for (int i = 0; i < 3; ++i) {
      queue.push(qos::QueueEntry{next_push++, 0.0, false});
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_FALSE(queue.empty());
      EXPECT_EQ(queue.pop_front().record, next_pop++);
    }
  }
  while (!queue.empty()) EXPECT_EQ(queue.pop_front().record, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(AdmissionQueue, FullSemanticsPerPolicy) {
  qos::AdmissionConfig bounded;
  bounded.policy = qos::SheddingPolicy::kRejectNewest;
  bounded.queue_capacity = 2;
  qos::AdmissionQueue queue(bounded);
  EXPECT_FALSE(queue.full());
  queue.push({0, 0.0, false});
  queue.push({1, 0.0, false});
  EXPECT_TRUE(queue.full());

  qos::AdmissionConfig unbounded;
  unbounded.policy = qos::SheddingPolicy::kNone;
  unbounded.queue_capacity = 2;
  qos::AdmissionQueue none(unbounded);
  none.push({0, 0.0, false});
  none.push({1, 0.0, false});
  none.push({2, 0.0, false});
  EXPECT_FALSE(none.full());  // kNone is unbounded by design
}

// ----------------------------------------------------------- retry budget

TEST(RetryBudget, InertGrantsEverything) {
  qos::RetryBudgetConfig config;  // ratio < 0 = unlimited
  qos::RetryBudget budget(config);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.try_spend_retry());
  EXPECT_EQ(budget.denied(), 0u);
}

TEST(RetryBudget, ZeroRatioDeniesAfterBurst) {
  qos::RetryBudgetConfig config;
  config.ratio = 0.0;
  config.burst = 2.0;
  qos::RetryBudget budget(config);
  EXPECT_TRUE(budget.try_spend_retry());
  EXPECT_TRUE(budget.try_spend_retry());
  EXPECT_FALSE(budget.try_spend_retry());
  EXPECT_EQ(budget.denied(), 1u);
  budget.on_fresh_arrival();  // deposits 0 tokens
  EXPECT_FALSE(budget.try_spend_retry());
  EXPECT_EQ(budget.denied(), 2u);
}

TEST(RetryBudget, FreshArrivalsFundRetriesUpToBurst) {
  qos::RetryBudgetConfig config;
  config.ratio = 0.5;
  config.burst = 1.0;
  qos::RetryBudget budget(config);
  EXPECT_TRUE(budget.try_spend_retry());  // the initial burst
  EXPECT_FALSE(budget.try_spend_retry());
  budget.on_fresh_arrival();
  EXPECT_FALSE(budget.try_spend_retry());  // 0.5 token: not a whole retry
  budget.on_fresh_arrival();
  EXPECT_TRUE(budget.try_spend_retry());
  for (int i = 0; i < 10; ++i) budget.on_fresh_arrival();
  EXPECT_EQ(budget.tokens(), 1.0);  // clamped at burst
}

// -------------------------------------------------------- circuit breaker

qos::BreakerConfig breaker_config() {
  qos::BreakerConfig config;
  config.enabled = true;
  config.window = 8;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.open_duration_s = 5.0;
  config.half_open_probes = 2;
  return config;
}

TEST(CircuitBreaker, TripsAtThresholdAfterMinSamples) {
  qos::CircuitBreaker breaker(breaker_config());
  breaker.record_failure(0.0);
  breaker.record_failure(0.1);
  breaker.record_failure(0.2);
  // 3 failures, below min_samples: still closed.
  EXPECT_TRUE(breaker.allows(0.3));
  breaker.record_failure(0.3);
  EXPECT_FALSE(breaker.allows(0.4));  // 4/4 failed >= 0.5: open
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreaker, SuccessesKeepItClosed) {
  qos::CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 20; ++i) {
    breaker.record_success(0.1 * i);
    breaker.record_failure(0.1 * i);  // 50% failures... interleaved
    // The rolling rate never *reaches* the threshold before min_samples,
    // and sits exactly at 0.5 after: the breaker trips.
  }
  EXPECT_EQ(breaker.state(2.1), qos::BreakerState::kOpen);

  qos::CircuitBreaker healthy(breaker_config());
  for (int i = 0; i < 20; ++i) {
    healthy.record_success(0.1 * i);
    if (i % 3 == 0) healthy.record_failure(0.1 * i);  // ~25% failures
  }
  EXPECT_EQ(healthy.state(2.1), qos::BreakerState::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeLifecycle) {
  qos::CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 4; ++i) breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(0.0), qos::BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows(4.9));  // cooldown not elapsed
  EXPECT_TRUE(breaker.allows(5.1));   // half-open
  EXPECT_EQ(breaker.state(5.1), qos::BreakerState::kHalfOpen);
  breaker.on_attempt_started(5.1);
  breaker.on_attempt_started(5.2);
  EXPECT_FALSE(breaker.allows(5.3));  // both probes in flight
  // A probe failure re-opens (and counts another trip)...
  breaker.record_failure(5.4);
  EXPECT_EQ(breaker.state(5.4), qos::BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // ...and after the next cooldown a probe success closes for good.
  EXPECT_TRUE(breaker.allows(10.5));
  breaker.on_attempt_started(10.5);
  breaker.record_success(10.6);
  EXPECT_EQ(breaker.state(10.6), qos::BreakerState::kClosed);
  // The window was reset on close: old failures don't linger.
  breaker.record_failure(10.7);
  EXPECT_TRUE(breaker.allows(10.8));
}

// The flap sequence a gray server produces: every half-open probe routed
// through it is abandoned without a verdict (an epoch abort, a hedge that
// won elsewhere), so probes_started_ keeps returning to zero and an
// uncapped breaker would sit half-open dribbling probes forever. The
// episode cap converts the Nth verdict-less probe into a fresh open.
TEST(CircuitBreaker, ProbeCapReopensAFlappingHalfOpen) {
  qos::BreakerConfig config = breaker_config();
  config.half_open_probe_cap = 3;
  qos::CircuitBreaker breaker(config);
  for (int i = 0; i < 4; ++i) breaker.record_failure(0.0);
  ASSERT_EQ(breaker.state(0.0), qos::BreakerState::kOpen);

  double now = 5.1;  // past the cooldown: half-open
  for (std::size_t probe = 0; probe < 3; ++probe) {
    ASSERT_TRUE(breaker.allows(now));
    breaker.on_attempt_started(now);
    breaker.on_probe_abandoned(now + 0.05);  // no verdict, slot freed
    now += 0.1;
  }
  // Three probes launched and abandoned: the episode budget is spent, the
  // next admission check re-opens instead of granting a fourth probe.
  EXPECT_FALSE(breaker.allows(now));
  EXPECT_EQ(breaker.state(now), qos::BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);

  // The next half-open episode starts with a fresh budget — and a probe
  // that actually completes still closes the breaker.
  now += config.open_duration_s + 0.1;
  ASSERT_TRUE(breaker.allows(now));
  breaker.on_attempt_started(now);
  breaker.record_success(now + 0.1);
  EXPECT_EQ(breaker.state(now + 0.1), qos::BreakerState::kClosed);
}

// An uncapped breaker (the pre-gray default) must keep the old behaviour:
// verdict-less probes never re-open it.
TEST(CircuitBreaker, UncappedHalfOpenToleratesAbandonedProbes) {
  qos::CircuitBreaker breaker(breaker_config());  // half_open_probe_cap = 0
  for (int i = 0; i < 4; ++i) breaker.record_failure(0.0);
  double now = 5.1;
  for (std::size_t probe = 0; probe < 20; ++probe) {
    ASSERT_TRUE(breaker.allows(now));
    breaker.on_attempt_started(now);
    breaker.on_probe_abandoned(now + 0.05);
    now += 0.1;
  }
  EXPECT_EQ(breaker.state(now), qos::BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
}

// Sustained latency inflation trips the breaker through completed (not
// aborted) deliveries: observed >= slow_ratio * expected is a failure.
TEST(CircuitBreaker, SlowCompletionsTripLikeFailures) {
  qos::BreakerConfig config = breaker_config();
  config.slow_ratio = 4.0;
  qos::CircuitBreaker breaker(config);
  for (int i = 0; i < 3; ++i) {
    breaker.record_completion(0.1 * i, 0.05, 0.05);  // on time: success
  }
  EXPECT_EQ(breaker.state(0.3), qos::BreakerState::kClosed);
  for (int i = 0; i < 7; ++i) {
    breaker.record_completion(0.4 + 0.1 * i, 0.20, 0.05);  // 4x: failure
  }
  // Window 8, min_samples 4: the slow completions reach 50% of the ring.
  EXPECT_EQ(breaker.state(1.2), qos::BreakerState::kOpen);

  // slow_ratio = 0 (the default) records every completion as a success.
  qos::CircuitBreaker lenient(breaker_config());
  for (int i = 0; i < 20; ++i) {
    lenient.record_completion(0.1 * i, 10.0, 0.01);
  }
  EXPECT_EQ(lenient.state(2.1), qos::BreakerState::kClosed);
}

TEST(CircuitBreaker, InertBreakerNeverBlocks) {
  qos::CircuitBreaker breaker{qos::BreakerConfig{}};
  for (int i = 0; i < 50; ++i) breaker.record_failure(0.1 * i);
  EXPECT_TRUE(breaker.allows(100.0));
  EXPECT_EQ(breaker.times_opened(), 0u);
}

// ------------------------------------------------------------- arrivals

TEST(Arrivals, DeterministicAndScalesWithLoad) {
  const auto inst = model::make_instance(small_params(), 3);
  qos::ArrivalConfig config;
  config.process = qos::ArrivalProcess::kPoisson;
  config.load_multiplier = 3.0;
  config.window_s = 10.0;

  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const auto a = qos::generate_arrivals(inst, config, rng_a);
  const auto b = qos::generate_arrivals(inst, config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].time_s, b[i].time_s);
  }

  const double base =
      static_cast<double>(inst.requests().total_requests());
  EXPECT_GT(static_cast<double>(a.size()), 2.0 * base);
  EXPECT_LT(static_cast<double>(a.size()), 4.0 * base);
  for (const auto& arrival : a) {
    EXPECT_GE(arrival.time_s, 0.0);
    EXPECT_LT(arrival.time_s, config.window_s);
    EXPECT_LT(arrival.user, inst.user_count());
  }
}

TEST(Arrivals, FlashCrowdConcentratesArrivals) {
  const auto inst = model::make_instance(small_params(), 4);
  qos::ArrivalConfig config;
  config.process = qos::ArrivalProcess::kFlashCrowd;
  config.load_multiplier = 5.0;
  config.window_s = 20.0;
  config.flash_fraction = 0.6;
  config.flash_start_s = 5.0;
  config.flash_width_s = 1.0;
  util::Rng rng(7);
  const auto arrivals = qos::generate_arrivals(inst, config, rng);
  std::size_t in_flash = 0;
  for (const auto& arrival : arrivals) {
    EXPECT_GE(arrival.time_s, 0.0);
    EXPECT_LT(arrival.time_s, config.window_s);
    if (arrival.time_s >= 5.0 && arrival.time_s < 6.0) ++in_flash;
  }
  // ~60% land in a window that holds 5% of the time axis.
  EXPECT_GT(static_cast<double>(in_flash),
            0.45 * static_cast<double>(arrivals.size()));
}

// ------------------------------------------------- inert bit-identity

TEST(QosEngine, InertConfigIsBitIdenticalToNoConfig) {
  // The PR 5 analogue of InertFaultPlanIsBitIdenticalToNoPlan: attaching
  // an all-default QosConfig must take the exact pre-QoS code path.
  const auto s = solved_instance(11);
  const qos::QosConfig inert_config;
  ASSERT_TRUE(inert_config.inert());
  des::FlowSimOptions base;
  base.arrival_window_s = 10.0;
  base.link_capacity_scale = 0.2;
  des::FlowSimOptions with_config = base;
  with_config.qos = &inert_config;
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const auto a = des::FlowLevelSimulator(s.instance, base).run(s.strategy,
                                                               rng_a);
  const auto b =
      des::FlowLevelSimulator(s.instance, with_config).run(s.strategy, rng_b);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s);
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
    EXPECT_EQ(a.flows[f].outcome, b.flows[f].outcome);
    EXPECT_EQ(a.flows[f].tier, b.flows[f].tier);
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
  EXPECT_EQ(a.p95_duration_ms, b.p95_duration_ms);
  EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
  EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.rate_recomputations, b.rate_recomputations);
  // And composed with an inert fault plan on top: still the same path.
  const fault::FaultPlan inert_plan;
  with_config.fault_plan = &inert_plan;
  util::Rng rng_c(11);
  const auto c =
      des::FlowLevelSimulator(s.instance, with_config).run(s.strategy, rng_c);
  EXPECT_EQ(a.mean_duration_ms, c.mean_duration_ms);
  EXPECT_EQ(a.makespan_s, c.makespan_s);
}

TEST(QosEngine, InertRunHasTrivialSloAccounting) {
  const auto s = solved_instance(12);
  des::FlowLevelSimulator sim(s.instance);
  util::Rng rng(12);
  const auto result = sim.run(s.strategy, rng);
  EXPECT_EQ(result.qos.offered, result.flows.size());
  EXPECT_EQ(result.qos.admitted, result.flows.size());
  EXPECT_EQ(result.qos.shed, 0u);
  EXPECT_EQ(result.qos.rejected, 0u);
  EXPECT_EQ(result.qos.deadline_misses, 0u);
  EXPECT_EQ(result.qos.goodput_flows, result.flows.size());
}

// --------------------------------------------------- end-to-end overload

TEST(QosEngine, AccountingIsExactUnderEveryPolicy) {
  const auto s = solved_instance(13);
  for (const auto policy :
       {qos::SheddingPolicy::kNone, qos::SheddingPolicy::kRejectNewest,
        qos::SheddingPolicy::kDeadlineAware}) {
    sim::OverloadCell cell;
    cell.qos = sim::overload_qos_config(8.0, policy, 0.1);
    cell.seed = 13;
    const auto result = sim::run_overload_cell(s.instance, s.strategy, cell);
    EXPECT_EQ(result.qos.admitted + result.qos.shed + result.qos.rejected,
              result.qos.offered);
    EXPECT_GT(result.qos.offered, s.instance.requests().total_requests());
    for (const auto& flow : result.flows) {
      if (flow.outcome == des::FlowOutcome::kServed) {
        EXPECT_GE(flow.completion_s, flow.arrival_s);
      }
    }
    if (policy == qos::SheddingPolicy::kNone) {
      EXPECT_EQ(result.qos.shed + result.qos.rejected, 0u);
    }
  }
}

TEST(QosEngine, DeadlineAwareHoldsGoodputWhileNoneCollapses) {
  // The ISSUE acceptance criterion, on the test-sized instance: at 10x
  // offered load, deadline-aware shedding keeps goodput >= 80% of the 1x
  // goodput; the no-shedding control collapses below half of what
  // shedding achieves (its floor is cloud-direct serves, which scale
  // with load, so collapse is measured against achievable goodput).
  const auto s = solved_instance(14);
  const auto run_cell = [&](double load, qos::SheddingPolicy policy) {
    sim::OverloadCell cell;
    cell.qos = sim::overload_qos_config(load, policy, 0.1);
    cell.seed = 14;
    return sim::run_overload_cell(s.instance, s.strategy, cell);
  };
  const auto base = run_cell(1.0, qos::SheddingPolicy::kDeadlineAware);
  const auto aware = run_cell(10.0, qos::SheddingPolicy::kDeadlineAware);
  const auto none = run_cell(10.0, qos::SheddingPolicy::kNone);

  ASSERT_GT(base.qos.goodput_rps, 0.0);
  EXPECT_GE(aware.qos.goodput_rps, 0.8 * base.qos.goodput_rps);
  EXPECT_LT(none.qos.goodput_rps, 0.5 * aware.qos.goodput_rps);
  // The failure mode is latency divergence, not lost work: kNone serves
  // everything it admitted, far past the deadline.
  EXPECT_EQ(none.qos.admitted, none.qos.offered);
  EXPECT_GT(none.qos.deadline_misses, none.qos.offered / 2);
  EXPECT_GT(none.p99_duration_ms, aware.p99_duration_ms);
}

TEST(QosEngine, ChaosModeComposesFaultsAndOverload) {
  const auto s = solved_instance(15);
  sim::OverloadCell cell;
  cell.qos = sim::chaos_qos_config(6.0, qos::SheddingPolicy::kDeadlineAware,
                                   0.0);
  cell.fault = sim::chaos_fault_profile();
  cell.seed = 15;
  const auto result = sim::run_overload_cell(s.instance, s.strategy, cell);
  EXPECT_EQ(result.qos.admitted + result.qos.shed + result.qos.rejected,
            result.qos.offered);
  // The chaos plan must actually exercise the failure paths: aborted
  // attempts happened, and with a zero retry budget each one either was
  // denied (cloud-direct) or hit the caps.
  EXPECT_GT(result.retry_count, 0u);
  EXPECT_GT(result.qos.retries_denied, 0u);
  EXPECT_GT(result.forced_cloud_fetches, 0u);
  for (const auto& flow : result.flows) {
    if (flow.outcome == des::FlowOutcome::kServed) {
      EXPECT_GE(flow.completion_s, flow.arrival_s);
    }
  }
}

TEST(QosEngine, BreakersTripOnCorruptReplicasAndForceFallback) {
  // A corrupt replica is invisible at resolve time (checksum-on-read), so
  // it keeps failing deliveries until its server's breaker opens and
  // failover routes around it.
  const auto s = solved_instance(16);
  sim::OverloadCell cell;
  cell.qos = sim::chaos_qos_config(6.0, qos::SheddingPolicy::kDeadlineAware,
                                   -1.0);
  cell.fault.horizon_s = 12.0;
  cell.fault.replica_corruption_prob = 0.4;  // corruption only, no crashes
  cell.seed = 16;
  ASSERT_FALSE(cell.fault.inert());
  const auto result = sim::run_overload_cell(s.instance, s.strategy, cell);
  EXPECT_GT(result.qos.breaker_opens, 0u);
  EXPECT_GT(result.retry_count, 0u);
  // While breakers are open, deliveries fall through to other tiers.
  EXPECT_GT(result.tier_counts[1] + result.tier_counts[2], 0u);
  EXPECT_EQ(result.qos.admitted + result.qos.shed + result.qos.rejected,
            result.qos.offered);
}

TEST(QosEngine, QueueWaitIsAccountedUnderOverload) {
  const auto s = solved_instance(17);
  sim::OverloadCell cell;
  cell.qos = sim::overload_qos_config(10.0, qos::SheddingPolicy::kRejectNewest,
                                      -1.0);
  cell.seed = 17;
  const auto result = sim::run_overload_cell(s.instance, s.strategy, cell);
  EXPECT_GT(result.qos.mean_queue_wait_ms, 0.0);
  EXPECT_GT(result.qos.rejected, 0u);
  bool some_wait = false;
  for (const auto& flow : result.flows) {
    if (flow.queue_wait_s > 0.0) {
      some_wait = true;
      EXPECT_EQ(flow.outcome, des::FlowOutcome::kServed);
    }
  }
  EXPECT_TRUE(some_wait);
}

}  // namespace
